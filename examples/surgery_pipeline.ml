(* The Section-4 regalization pipeline, step by step, with verification.

   Starting from the "tangle" rule set — whose single rule
   E(x,y) → ∃z E(y,z) ∧ E(z,y) is neither forward-existential nor
   predicate-unique — each surgery is applied in order and its defining
   properties are checked on the spot:

     encode        Ch(I,R) ↔ Ch({⊤}, R ∪ {⊤→I})        (Corollary 15)
     reify         binary signature                      (Lemma 19/20)
     streamline    fwd-existential + predicate-unique    (Lemmas 24/25)
     body-rewrite  quickness                             (Lemmas 30/32)
*)

open Nca_logic
module Pipeline = Nca_surgery.Pipeline
module Properties = Nca_surgery.Properties

let () =
  let entry = Nca_core.Rulesets.tangle in
  Fmt.pr "input rule set (%s):@.%a@.instance: %a@.@." entry.name Rule.pp_set
    entry.rules Instance.pp entry.instance;
  let p = Pipeline.regalize entry.instance entry.rules in
  List.iter
    (fun (s : Pipeline.step) ->
      let r = Properties.describe s.rules in
      Fmt.pr "after %-12s  %a@.  (%s)@." s.label Properties.pp_report r
        s.note)
    p.steps;
  Fmt.pr "@.pipeline complete: %b@." p.complete;
  Fmt.pr "verifying chase preservation on this input:@.";
  List.iter
    (fun (label, ok) -> Fmt.pr "  %-12s chase preserved: %b@." label ok)
    (Pipeline.verify_chase_preservation ~depth:3 entry.instance entry.rules p);
  let report = Pipeline.final_report p in
  Fmt.pr "@.final rule set is regal-shaped: binary=%b fwd∃=%b pred-uniq=%b@."
    report.binary report.forward_existential report.predicate_unique;
  Fmt.pr "(UCQ-rewritability and quickness are semantic; the test suite \
          checks them per query and per sample instance.)@.";
  Fmt.pr "@.final rules:@.%a@." Rule.pp_set p.final
