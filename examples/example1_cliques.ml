(* The paper's Example 1 and its bdd repair, side by side.

   Example 1 (successor + transitivity) is the prototypical gap between
   unrestricted and finite entailment: its chase is an infinite strict
   order — tournaments of every size, no loop — but every finite model
   must close a cycle into a loop. It is NOT a counterexample to
   (bdd ⇒ fc) because transitivity is not bdd.

   Repairing it with the bdd two-hop rule E(x,x') ∧ E(y,y') → E(x,y')
   keeps the tournaments but, exactly as Theorem 1 demands, the loop
   appears as well. This example reproduces that contrast, level by
   level. *)

open Nca_logic
module Theorem1 = Nca_core.Theorem1
module Rulesets = Nca_core.Rulesets

let report (entry : Rulesets.entry) ~depth =
  Fmt.pr "@.== %s ==@.%s@.%a@.instance: %a@.@." entry.name entry.description
    Rule.pp_set entry.rules Instance.pp entry.instance;
  let points =
    Theorem1.series ~max_depth:depth ~e:entry.e entry.instance entry.rules
  in
  Fmt.pr "level | atoms | max tournament | loop@.";
  List.iter
    (fun (p : Theorem1.point) ->
      Fmt.pr "%5d | %5d | %14d | %b@." p.level p.level_atoms
        p.level_tournament p.level_loop)
    points;
  let v =
    Theorem1.validate ~max_depth:depth ~e:entry.e entry.instance entry.rules
  in
  Fmt.pr "verdict: %a@." Theorem1.pp_verdict v;
  v

let () =
  let v1 = report Rulesets.example1 ~depth:5 in
  let v2 = report Rulesets.example1_bdd ~depth:4 in
  Fmt.pr
    "@.Example 1 (not bdd): tournaments reach size %d with no loop — an \
     infinite-model-only phenomenon.@."
    v1.max_tournament;
  Fmt.pr
    "Repaired bdd variant: tournament size %d and the loop holds (%b) — \
     Theorem 1 in action.@."
    v2.max_tournament v2.loop;
  assert (not v1.loop);
  assert (v2.loop)
