open Nca_logic

let () =
  (* Example 1 of the paper *)
  let rules = Parser.parse_rules
    {| succ: E(x,y) -> E(y,z).
       trans: E(x,y), E(y,z) -> E(x,z). |} in
  let db = Parser.instance "E(a,b)" in
  Fmt.pr "rules:@.%a@." Rule.pp_set rules;
  let chase = Nca_chase.Chase.run ~max_depth:4 db rules in
  Fmt.pr "chase: %a@." Nca_chase.Chase.pp_stats chase;
  let loop = Cq.loop_query (Symbol.make "E" 2) in
  Fmt.pr "loop entailed: %b@." (Nca_chase.Chase.entails chase loop);
  (* rewriting of E(x0,x1) under the bdd variant *)
  let bddrules = Parser.parse_rules
    {| succ: E(x,y) -> E(y,z).
       short: E(x,x1), E(y,y1) -> E(x,y1). |} in
  let q = Cq.atom_query (Symbol.make "E" 2) in
  let out = Nca_rewriting.Rewrite.rewrite bddrules q in
  Fmt.pr "rewriting of E: complete=%b rounds=%d size=%d@.%a@."
    out.complete out.rounds (Ucq.size out.ucq) Ucq.pp out.ucq;
  let out1 = Nca_rewriting.Rewrite.rewrite rules q in
  Fmt.pr "rewriting under Example1: complete=%b rounds=%d size=%d@."
    out1.complete out1.rounds (Ucq.size out1.ucq)
