open Nca_logic

let () =
  let entry = Nca_core.Rulesets.example1_bdd in
  Fmt.pr "== %s ==@.%a@." entry.name Rule.pp_set entry.rules;
  let pipeline = Nca_surgery.Pipeline.regalize entry.instance entry.rules in
  Fmt.pr "pipeline complete=%b, final rules=%d@." pipeline.complete
    (List.length pipeline.final);
  Fmt.pr "final properties: %a@." Nca_surgery.Properties.pp_report
    (Nca_surgery.Pipeline.final_report pipeline);
  let t = Nca_core.Witness.analyze ~depth:4 ~e:entry.e pipeline.final in
  Fmt.pr "Ch(R∃): %a@." Nca_chase.Chase.pp_stats t.chase_ex;
  Fmt.pr "Ch(R∃) DAG: %b@."
    (Nca_graph.Digraph.Term_graph.is_dag
       (Nca_graph.Digraph.of_instance entry.e t.chase_ex.instance));
  Fmt.pr "full atoms=%d, E-edges=%d, Q_inj size=%d complete=%b@."
    (Instance.cardinal t.full)
    (List.length (Nca_core.Witness.edges t))
    (Ucq.size t.rewriting) t.rewriting_complete;
  (match Nca_core.Witness.edges t with
  | (s, tt) :: _ ->
      Fmt.pr "first edge: E(%a,%a)@." Term.pp s Term.pp tt;
      let ws = Nca_core.Witness.witnesses t s tt in
      Fmt.pr "|W(s,t)| = %d@." (List.length ws);
      (match Nca_core.Witness.valley_witness t s tt with
      | Some (q, _) ->
          Fmt.pr "valley witness: %a (shape %a)@." Cq.pp q
            Nca_core.Valley.pp_shape (Nca_core.Valley.shape q)
      | None -> Fmt.pr "no valley witness found@.")
  | [] -> Fmt.pr "no E edges@.");
  let g = Nca_graph.Digraph.of_instance entry.e t.full in
  Fmt.pr "max tournament in full: %d; loop: %b@."
    (Nca_graph.Tournament.max_tournament_size g)
    (Cq.holds t.full (Cq.loop_query entry.e))
