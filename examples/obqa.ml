(* Ontology-based query answering, the paper's motivating task (Sec. 1).

   A small "research lab" ontology over a legacy database. Conjunctive
   queries are answered two ways — forward by materializing a chase
   prefix, backward by UCQ rewriting evaluated on the database alone —
   and Proposition 4's equivalence is checked whenever the rewriting
   reaches its fixpoint. Rule r3 propagates lab membership along
   supervision chains, a transitivity flavor that makes some queries
   non-UCQ-rewritable: for those the rewriting budget runs out and the
   chase is the only method — exactly the bdd/non-bdd boundary the paper
   lives on. *)

open Nca_logic
module Answering = Nca_rewriting.Answering
module Rewrite = Nca_rewriting.Rewrite

let ontology =
  Parser.parse_rules
    {|
      # every researcher works in some lab
      r1: Researcher(x) -> WorksIn(x, l), Lab(l).
      # lab members supervise someone junior
      r2: WorksIn(x, l), Senior(x) -> Supervises(x, y), Researcher(y).
      # supervision happens inside the supervisor's lab
      r3: Supervises(x, y), WorksIn(x, l) -> WorksIn(y, l).
      # supervisees are researchers
      r4: Supervises(x, y) -> Researcher(y).
    |}

let database =
  Parser.instance
    "Researcher(alice), Senior(alice), WorksIn(alice, biolab), \
     Lab(biolab), Researcher(bob), WorksIn(bob, biolab)"

let queries =
  [
    ("who is a researcher?", Parser.query "?(x) Researcher(x)");
    ("who works somewhere?", Parser.query "?(x) WorksIn(x, l)");
    ("labs with a senior member", Parser.query "?(l) WorksIn(x, l), Senior(x)");
    ("is anyone supervised?", Parser.query "? Supervises(x, y)");
  ]

let pp_tuple ppf tuple =
  if tuple = [] then Fmt.string ppf "yes"
  else Fmt.(list ~sep:comma Term.pp) ppf tuple

let () =
  Fmt.pr "ontology:@.%a@.@.database: %a@.@." Rule.pp_set ontology Instance.pp
    database;
  List.iter
    (fun (label, q) ->
      Fmt.pr "— %s  (%a)@." label Cq.pp q;
      let forward = Answering.answers_via_chase ~depth:5 ontology database q in
      Fmt.pr "  chase:     @[<h>%a@]@."
        Fmt.(list ~sep:(any "; ") pp_tuple)
        forward;
      (match Answering.answers_via_rewriting ontology database q with
      | Some backward ->
          Fmt.pr "  rewriting: @[<h>%a@]@."
            Fmt.(list ~sep:(any "; ") pp_tuple)
            backward;
          let agree = Answering.methods_agree ontology database q in
          Fmt.pr "  methods agree (Prop. 4): %b@." (agree = Some true);
          assert (agree = Some true)
      | None -> Fmt.pr "  rewriting: budget exhausted@.");
      let out = Rewrite.rewrite ontology q in
      Fmt.pr "  |rewriting| = %d disjuncts, fixpoint in %d rounds@.@."
        (Ucq.size out.ucq) out.rounds)
    queries
