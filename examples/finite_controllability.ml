(* Finite controllability, computed.

   A rule set is finitely controllable (fc) when entailment over all
   models and over finite models coincide. Example 1 (successor +
   transitivity) is the standard witness that arbitrary rule sets are
   not fc: the chase — an infinite universal model — has no E-loop, yet
   every finite model must close a cycle.

   Both sides become computations here:
   - the unrestricted side is the chase: Loop_E does not hold;
   - the finite side is a bounded model search with the loop forbidden:
     it exhausts its space at every domain budget, so no loop-free
     finite model exists.

   The same computation on the bdd repair shows why it is not a
   counterexample to (bdd ⇒ fc): there the chase itself entails the loop
   (Theorem 1 at work), so both semantics agree. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Finite_model = Nca_chase.Finite_model
module Rulesets = Nca_core.Rulesets

let loop e = Cq.loop_query e

let side_by_side (entry : Rulesets.entry) =
  Fmt.pr "@.== %s ==@.%a@." entry.name Rule.pp_set entry.rules;
  let chase = Chase.run ~max_depth:5 entry.instance entry.rules in
  let unrestricted = Cq.holds chase.instance (loop entry.e) in
  Fmt.pr "unrestricted semantics (chase, %a): Loop_E %s@." Chase.pp_stats
    chase
    (if unrestricted then "ENTAILED" else "not entailed");
  List.iter
    (fun fresh ->
      match
        Finite_model.loop_free_model_exists ~fresh ~e:entry.e entry.instance
          entry.rules
      with
      | Finite_model.Exists ->
          Fmt.pr "  finite, +%d elements: loop-free model EXISTS@." fresh
      | Finite_model.Absent ->
          Fmt.pr
            "  finite, +%d elements: every model has a loop (search space \
             covered)@."
            fresh
      | Finite_model.Unknown _ ->
          Fmt.pr "  finite, +%d elements: budget exhausted@." fresh)
    [ 0; 1; 2 ];
  (match Finite_model.search ~fresh:1 entry.instance entry.rules with
  | Model m ->
      Fmt.pr "  a smallest-effort finite model: %a (loop: %b)@." Instance.pp
        m
        (Cq.holds m (loop entry.e))
  | No_model -> Fmt.pr "  no finite model within budget@."
  | Exhausted _ -> Fmt.pr "  model search budget exhausted@.");
  unrestricted

let () =
  let u1 = side_by_side Rulesets.example1 in
  let u2 = side_by_side Rulesets.example1_bdd in
  Fmt.pr
    "@.Example 1: unrestricted ⊭ Loop_E (%b) but finite ⊨ Loop_E — the two \
     semantics diverge; the rule set is not fc (and not bdd).@."
    u1;
  Fmt.pr
    "Repaired bdd variant: the chase already entails Loop_E (%b) — no \
     divergence, consistent with (bdd ⇒ fc).@."
    u2;
  assert (not u1);
  assert u2
