(** Directed graphs over an arbitrary ordered vertex type.

    A (directed) graph is a pair [⟨V, E⟩] with [E ⊆ V × V] (Section 2.4).
    Loops (edges from a node to itself) are allowed; tournament and DAG
    analysis live in {!module:Tournament} and here respectively. *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (V : VERTEX) : sig
  type t

  module VSet : Set.S with type elt = V.t
  module VMap : Map.S with type key = V.t

  val empty : t
  val add_vertex : V.t -> t -> t
  val add_edge : V.t -> V.t -> t -> t
  val of_edges : (V.t * V.t) list -> t

  val vertices : t -> V.t list
  val edges : t -> (V.t * V.t) list
  val num_vertices : t -> int
  val num_edges : t -> int

  val mem_vertex : V.t -> t -> bool
  val has_edge : V.t -> V.t -> t -> bool
  val succs : V.t -> t -> VSet.t
  val preds : V.t -> t -> VSet.t
  val out_degree : V.t -> t -> int
  val in_degree : V.t -> t -> int

  val loops : t -> V.t list
  (** Vertices [v] with an edge [v → v]. *)

  val has_loop : t -> bool

  val is_dag : t -> bool
  (** No directed cycle (loops included). *)

  val topo_sort : t -> V.t list option
  (** A topological order of the vertices, or [None] on a cyclic graph. *)

  val reachable : V.t -> t -> VSet.t
  (** Vertices reachable from [v] by a non-empty directed path. *)

  val reaches : V.t -> V.t -> t -> bool
  (** [reaches s t g]: is there a non-empty directed path from [s] to [t]?
    This is the strict order [s <_I t] of Definition 38 when [g] is a DAG. *)

  val maximal_vertices : t -> V.t list
  (** Vertices with no outgoing edge to a different vertex — the
      [≤]-maximal elements of Definition 38 on a DAG. *)

  val restrict : VSet.t -> t -> t
  (** Induced subgraph. *)

  val undirected_neighbors : V.t -> t -> VSet.t
  (** Successors and predecessors combined, excluding the vertex itself. *)

  val weakly_connected_components : t -> VSet.t list

  val pp : t Fmt.t
end

module Term_graph : module type of Make (struct
  type t = Nca_logic.Term.t

  let compare = Nca_logic.Term.compare
  let pp = Nca_logic.Term.pp
end)

val of_instance : Nca_logic.Symbol.t -> Nca_logic.Instance.t -> Term_graph.t
(** The E-graph of an instance: vertices are all terms of the active domain,
    edges the pairs of the given binary predicate. *)

val of_atoms : Nca_logic.Atom.t list -> Term_graph.t
(** The graph of a set of binary atoms, ignoring predicates (used for the
    order [<_q] over a query's variables, Definition 38): every binary atom
    [P(s, t)] contributes an edge [s → t]; atoms of other arities only
    contribute their terms as vertices. *)
