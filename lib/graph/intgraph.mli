(** Imperative digraphs over dense integer vertex ids.

    The analysis layers intern their vertices — predicate positions,
    existential variables, rules — into dense ids [0 .. n-1] and run
    reachability, topological sorting and cycle search here, instead of
    on structural maps ({!Digraph}). Edges are deduplicated on
    insertion; successor lists keep first-insertion order. Ids are an
    internal representation only: every boundary whose order reaches
    printed output must sort by the structural order of the underlying
    vertices, not by id. *)

type t

val create : int -> t
(** [create n] is the edgeless graph over vertices [0 .. n-1]. *)

val size : t -> int
(** The number of vertices (fixed at creation). *)

val num_edges : t -> int
(** The number of distinct edges inserted so far. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u → v]; inserting an edge twice
    is a no-op. Raises [Invalid_argument] when a vertex is out of
    range. *)

val mem_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors of a vertex in first-insertion order, duplicate-free. *)

val edges : t -> (int * int) list
(** Every edge, grouped by source vertex in increasing id order,
    successors in first-insertion order. *)

val reaches : t -> int -> int -> bool
(** [reaches g s t]: is there a path of {e at least one} edge from [s]
    to [t]?  In particular [reaches g v v] holds only when [v] lies on
    a cycle. *)

val topo_sort : t -> int list option
(** A topological order of all vertices (sources first), or [None] when
    the graph has a cycle. *)

val find_cycle : t -> int list option
(** A cycle [[v0; v1; …; vk]] with an edge from each vertex to the next
    and from [vk] back to [v0] (a self-loop yields [[v]]); [None] when
    the graph is acyclic. *)
