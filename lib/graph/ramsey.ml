(* Known exact small Ramsey numbers, keyed by the sorted argument list with
   the trivial entries (1 and 2) already removed. *)
let exact_table =
  [
    ([ 3; 3 ], 6);
    ([ 3; 4 ], 9);
    ([ 3; 5 ], 14);
    ([ 3; 6 ], 18);
    ([ 3; 7 ], 23);
    ([ 3; 8 ], 28);
    ([ 3; 9 ], 36);
    ([ 4; 4 ], 18);
    ([ 4; 5 ], 25);
    ([ 3; 3; 3 ], 17);
  ]

let normalize args =
  List.iter
    (fun s -> if s < 1 then invalid_arg "Ramsey: arguments must be >= 1")
    args;
  if args = [] then invalid_arg "Ramsey: empty argument list";
  (* 1 forces the answer 1; 2 is neutral: a 2-tournament only needs one
     edge, so that color can be dropped. *)
  if List.mem 1 args then `One
  else
    match List.sort Int.compare (List.filter (fun s -> s > 2) args) with
    | [] -> `Value 2
    | [ s ] -> `Value s
    | key -> `Key key

let memo : (int list, int) Hashtbl.t = Hashtbl.create 64

let rec bound_of_key key =
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
      let v =
        match List.assoc_opt key exact_table with
        | Some v -> v
        | None ->
            (* Greenwood–Gleason recursion. *)
            let n = List.length key in
            let parts =
              List.init n (fun i ->
                  let decremented =
                    List.mapi (fun j s -> if i = j then s - 1 else s) key
                  in
                  compute decremented)
            in
            2 - n + List.fold_left ( + ) 0 parts
      in
      Hashtbl.add memo key v;
      v

and compute args =
  match normalize args with
  | `One -> 1
  | `Value v -> v
  | `Key key -> bound_of_key key

let upper_bound args = compute args

let four_clique_bound ~colors =
  if colors < 1 then invalid_arg "Ramsey.four_clique_bound: colors < 1";
  upper_bound (List.init colors (fun _ -> 4))

let is_exact args =
  match normalize args with
  | `One | `Value _ -> true
  | `Key key -> List.mem_assoc key exact_table
