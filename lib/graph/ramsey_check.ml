open Nca_logic
module G = Digraph.Term_graph

let vertex i = Term.cst (Fmt.str "t%d" i)

let random_tournament ~seed ~size =
  let st = Random.State.make [| seed |] in
  let g = ref G.empty in
  for i = 0 to size - 1 do
    g := G.add_vertex (vertex i) !g;
    for j = i + 1 to size - 1 do
      if Random.State.bool st then g := G.add_edge (vertex i) (vertex j) !g
      else g := G.add_edge (vertex j) (vertex i) !g
    done
  done;
  !g

let random_coloring ~seed ~colors g =
  let st = Random.State.make [| seed |] in
  List.map (fun e -> (e, Random.State.int st colors)) (G.edges g)

let monochromatic_tournament colored ~size =
  let colors = List.sort_uniq Int.compare (List.map snd colored) in
  List.find_map
    (fun c ->
      let g =
        G.of_edges
          (List.filter_map
             (fun (e, c') -> if c = c' then Some e else None)
             colored)
      in
      Option.map
        (fun t -> (c, t))
        (Tournament.find_tournament_of_size size g))
    colors

let check_theorem7 ~seed ~colors ~target ~trials =
  let n = Ramsey.upper_bound (List.init colors (fun _ -> target)) in
  let rec go i =
    if i >= trials then true
    else
      let t = random_tournament ~seed:(seed + i) ~size:n in
      let colored = random_coloring ~seed:(seed + i + 7919) ~colors t in
      match monochromatic_tournament colored ~size:target with
      | Some _ -> go (i + 1)
      | None -> false
  in
  go 0
