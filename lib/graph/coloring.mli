(** Graph coloring — the measure behind Conjecture 44.

    The paper's discussion (Section 6) conjectures that UCQ-rewritable
    rule sets cannot define structures of arbitrarily high chromatic
    number without entailing [Loop_E]. A proper coloring here colors the
    {e orientation closure}: vertices joined by an edge in either
    direction get distinct colors; a graph with a loop has no proper
    coloring at all.

    Erdős' theorem (Thm. 45) is why the conjecture needs new ideas: high
    chromatic number does not require any 4-clique. The module provides a
    greedy upper bound and an exact small-k decision procedure, enough to
    chart chromatic growth of chase prefixes. *)

val greedy_chromatic : Digraph.Term_graph.t -> int option
(** Largest-first greedy coloring of the orientation closure; an upper
    bound on the chromatic number. [None] when the graph has a loop. *)

val is_k_colorable : int -> Digraph.Term_graph.t -> bool
(** Exact backtracking test (exponential; intended for chase-prefix
    sizes). Loops make every [k] fail. *)

val chromatic_number : ?max_k:int -> Digraph.Term_graph.t -> int option
(** The exact chromatic number of the orientation closure, searched up to
    [max_k] (default: the greedy bound). [None] when the graph has a
    loop. *)

val coloring : int -> Digraph.Term_graph.t -> (Nca_logic.Term.t * int) list option
(** A witness proper [k]-coloring, when one exists. *)

val clique_lower_bound : Digraph.Term_graph.t -> int
(** Any tournament forces that many colors: [χ ≥ max tournament size]. *)
