(** Finite multisets with the lexicographic order of Section 2.4.

    A multiset over [D] is a function [D → ℕ] with finite support. The
    strict lexicographic order [<_lex] compares maxima first, then recurses
    on the multisets with one occurrence of the maximum removed. Lemma 8:
    on multisets of bounded size over a well-founded order, [<_lex] is
    well-founded — this is what makes the peak-removing argument
    (Lemma 40) terminate, and our implementation of that argument asserts
    the strict decrease at every step. *)

module type ELT = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (X : ELT) : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val of_list : X.t list -> t
  val to_list : t -> X.t list
  (** Sorted, with multiplicities expanded. *)

  val add : X.t -> t -> t
  val remove : X.t -> t -> t
  (** Removes one occurrence (no-op when absent). *)

  val count : X.t -> t -> int
  val size : t -> int

  val union : t -> t -> t
  (** [∪ₘ]: multiplicities add up. *)

  val inter : t -> t -> t
  (** [∩ₘ]: pointwise minimum. *)

  val diff : t -> t -> t
  (** [∖ₘ]: truncated pointwise difference. *)

  val max_opt : t -> X.t option
  (** [maxₘ], undefined ([None]) on the empty multiset. *)

  val compare_lex : t -> t -> int
  (** The (non-strict) lexicographic order [≤_lex]; [compare_lex a b < 0]
      iff [a <_lex b]. *)

  val equal : t -> t -> bool
  val pp : t Fmt.t
end

module Int_multiset : module type of Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)
