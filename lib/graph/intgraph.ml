type t = {
  size : int;
  mutable num_edges : int;
  adj : int list array;  (** reversed insertion order *)
  mem : (int, unit) Hashtbl.t;  (** keys [u * size + v] *)
}

let create n =
  if n < 0 then invalid_arg "Intgraph.create: negative size";
  { size = n; num_edges = 0; adj = Array.make n []; mem = Hashtbl.create 64 }

let size g = g.size
let num_edges g = g.num_edges

let check g v =
  if v < 0 || v >= g.size then invalid_arg "Intgraph: vertex out of range"

let key g u v = (u * g.size) + v
let mem_edge g u v = Hashtbl.mem g.mem (key g u v)

let add_edge g u v =
  check g u;
  check g v;
  if not (mem_edge g u v) then begin
    Hashtbl.add g.mem (key g u v) ();
    g.adj.(u) <- v :: g.adj.(u);
    g.num_edges <- g.num_edges + 1
  end

let succs g u =
  check g u;
  List.rev g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    acc := List.fold_left (fun acc v -> (u, v) :: acc) !acc g.adj.(u)
  done;
  !acc

let reaches g s t =
  check g s;
  check g t;
  let seen = Array.make g.size false in
  (* DFS from the successors of [s], so [s] itself is reached only
     through a cycle — matching {!Digraph.reaches}. *)
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit g.adj.(v)
    end
  in
  List.iter visit g.adj.(s);
  seen.(t)

(* Three-color DFS: White = 0, Gray = 1, Black = 2. A back edge to a
   Gray vertex closes a cycle along the current stack. *)
let find_cycle g =
  let color = Array.make g.size 0 in
  let exception Found of int list in
  (* [path] lists the Gray vertices, current first. *)
  let rec visit path v =
    color.(v) <- 1;
    List.iter
      (fun w ->
        match color.(w) with
        | 0 -> visit (w :: path) w
        | 1 ->
            (* cycle: [w … v] along the stack, plus the edge [v → w] *)
            let rec take acc = function
              | [] -> acc
              | x :: tl -> if x = w then w :: acc else take (x :: acc) tl
            in
            raise (Found (take [] path))
        | _ -> ())
      (succs g v);
    color.(v) <- 2
  in
  try
    for v = 0 to g.size - 1 do
      if color.(v) = 0 then visit [ v ] v
    done;
    None
  with Found c -> Some c

let topo_sort g =
  match find_cycle g with
  | Some _ -> None
  | None ->
      let visited = Array.make g.size false in
      let order = ref [] in
      let rec visit v =
        if not visited.(v) then begin
          visited.(v) <- true;
          List.iter visit (succs g v);
          order := v :: !order
        end
      in
      for v = 0 to g.size - 1 do
        visit v
      done;
      Some !order
