open Nca_logic
module G = Digraph.Term_graph

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_id t = escape (Fmt.str "%a" Term.pp t)

let of_graph ?(name = "G") ?(highlight = Term.Set.empty) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "digraph \"%s\" {\n" (escape name));
  List.iter
    (fun v ->
      let attrs =
        if Term.Set.mem v highlight then
          " [style=filled, fillcolor=lightblue]"
        else ""
      in
      Buffer.add_string buf (Fmt.str "  \"%s\"%s;\n" (node_id v) attrs))
    (G.vertices g);
  List.iter
    (fun (v, w) ->
      Buffer.add_string buf
        (Fmt.str "  \"%s\" -> \"%s\";\n" (node_id v) (node_id w)))
    (G.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_instance ?name ?highlight ~e i =
  of_graph ?name ?highlight (Digraph.of_instance e i)

let of_dag ?(name = "proof") ~nodes ~edges () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=BT;\n";
  List.iter
    (fun (id, label, kind) ->
      let attrs =
        match kind with
        | `Input -> ", shape=box, style=filled, fillcolor=lightgrey"
        | `Derived -> ", shape=box"
      in
      Buffer.add_string buf
        (Fmt.str "  \"%s\" [label=\"%s\"%s];\n" (escape id) (escape label)
           attrs))
    nodes;
  List.iter
    (fun (src, dst, label) ->
      let attrs =
        match label with
        | None -> ""
        | Some l -> Fmt.str " [label=\"%s\"]" (escape l)
      in
      Buffer.add_string buf
        (Fmt.str "  \"%s\" -> \"%s\"%s;\n" (escape src) (escape dst) attrs))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_cq ?(name = "query") q =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "digraph \"%s\" {\n" (escape name));
  let answers = Cq.answer_vars q in
  List.iter
    (fun v ->
      let shape = if Term.Set.mem v answers then "box" else "ellipse" in
      Buffer.add_string buf
        (Fmt.str "  \"%s\" [shape=%s];\n" (node_id v) shape))
    (Term.sorted_elements (Cq.vars q));
  List.iter
    (fun a ->
      match Atom.as_edge a with
      | Some (s, t) ->
          Buffer.add_string buf
            (Fmt.str "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (node_id s)
               (node_id t)
               (escape (Symbol.name (Atom.pred a))))
      | None -> ())
    (Cq.body q);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
