(** Graphviz DOT export for chase graphs and query shapes. *)

val of_graph :
  ?name:string ->
  ?highlight:Nca_logic.Term.Set.t ->
  Digraph.Term_graph.t ->
  string
(** A [digraph] document; highlighted vertices (e.g. a tournament) are
    filled. *)

val of_instance :
  ?name:string ->
  ?highlight:Nca_logic.Term.Set.t ->
  e:Nca_logic.Symbol.t ->
  Nca_logic.Instance.t ->
  string
(** The E-graph of an instance, loops included. *)

val of_dag :
  ?name:string ->
  nodes:(string * string * [ `Input | `Derived ]) list ->
  edges:(string * string * string option) list ->
  unit ->
  string
(** A generic labelled DAG — the renderer behind derivation/proof
    export. Each node is [(id, label, kind)]: input nodes are drawn
    filled, derived nodes plain boxes; each edge is
    [(src_id, dst_id, label)], e.g. premise → conclusion labelled by the
    rule name. [rankdir=BT], so premises sit below their conclusions. *)

val of_cq : ?name:string -> Nca_logic.Cq.t -> string
(** A query body as a graph; answer variables are drawn as boxes (the two
    "ends" of a valley query). *)
