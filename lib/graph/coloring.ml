module G = Digraph.Term_graph

let neighbors g v = G.undirected_neighbors v g

(* Largest-degree-first greedy coloring; colors are 0-based. *)
let greedy g =
  if G.has_loop g then None
  else begin
    let order =
      List.sort
        (fun a b ->
          Int.compare
            (G.VSet.cardinal (neighbors g b))
            (G.VSet.cardinal (neighbors g a)))
        (G.vertices g)
    in
    let colors = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let used =
          G.VSet.fold
            (fun w acc ->
              match Hashtbl.find_opt colors w with
              | Some c -> c :: acc
              | None -> acc)
            (neighbors g v) []
        in
        let rec first c = if List.mem c used then first (c + 1) else c in
        Hashtbl.replace colors v (first 0))
      order;
    Some colors
  end

let greedy_chromatic g =
  match greedy g with
  | None -> None
  | Some colors ->
      Some
        (Hashtbl.fold (fun _ c acc -> max acc (c + 1)) colors
           (if G.num_vertices g = 0 then 0 else 1))

let coloring k g =
  if G.has_loop g then None
  else begin
    (* backtracking over vertices in descending closure degree *)
    let order =
      List.sort
        (fun a b ->
          Int.compare
            (G.VSet.cardinal (neighbors g b))
            (G.VSet.cardinal (neighbors g a)))
        (G.vertices g)
    in
    let colors = Hashtbl.create 64 in
    let rec assign = function
      | [] -> true
      | v :: rest ->
          let blocked =
            G.VSet.fold
              (fun w acc ->
                match Hashtbl.find_opt colors w with
                | Some c -> c :: acc
                | None -> acc)
              (neighbors g v) []
          in
          let rec try_color c =
            if c >= k then false
            else if List.mem c blocked then try_color (c + 1)
            else begin
              Hashtbl.replace colors v c;
              if assign rest then true
              else begin
                Hashtbl.remove colors v;
                try_color (c + 1)
              end
            end
          in
          try_color 0
    in
    if assign order then
      Some (List.map (fun v -> (v, Hashtbl.find colors v)) order)
    else None
  end

let is_k_colorable k g = Option.is_some (coloring k g)

let clique_lower_bound g = Tournament.max_tournament_size g

let chromatic_number ?max_k g =
  match greedy_chromatic g with
  | None -> None
  | Some upper ->
      let limit = Option.value max_k ~default:upper in
      let lower = clique_lower_bound g in
      let rec search k =
        if k >= min upper limit then Some (min upper limit)
        else if is_k_colorable k g then Some k
        else search (k + 1)
      in
      search (max 1 lower)
