(** Ramsey numbers for edge-colored tournaments (Theorem 7).

    Theorem 7 states: for any [s₁, …, s_k ≥ 1] there is [R(s₁, …, s_k)]
    such that any tournament of that size whose edges are k-colored contains
    a sub-tournament of size [s_i] monochromatic in some color [i].

    Because the tournaments of this paper are inclusive-or structures,
    monochromatic sub-tournament extraction behaves exactly like clique
    Ramsey theory on the orientation closure, so we compute the classical
    multicolor (graph) Ramsey upper bounds:
    - [R(s) = s] for one color;
    - [R(…, 1, …) = 1] and [R(…, 2, s₂, …) = R(s₂, …)];
    - Greenwood–Gleason: [R(s₁,…,s_k) ≤ 2 - k + Σᵢ R(s₁,…,sᵢ-1,…,s_k)];
    seeded with the known small exact values (e.g. [R(3,3) = 6],
    [R(4,4) = 18], [R(3,3,3) = 17]).

    The bound [R(4, …, 4)] with one argument per disjunct of the injective
    rewriting [Q_⊠] is the tournament-size bound the paper extracts in
    Question 46. *)

val upper_bound : int list -> int
(** [upper_bound [s1; …; sk]] — an upper bound on [R(s1, …, sk)]. Raises
    [Invalid_argument] on an empty list or arguments [< 1]. *)

val four_clique_bound : colors:int -> int
(** [four_clique_bound ~colors:k] is [upper_bound [4; …; 4]] with [k]
    fours: the paper's bound [N(4, …, 4)] on tournament size for a rule set
    whose injective rewriting of [E] has [k] disjuncts (Question 46). *)

val is_exact : int list -> bool
(** Whether the returned value is a known exact Ramsey number rather than
    a recursive upper bound. *)
