(** Tournament (directed-clique) detection.

    Following the paper (Section 2.4, footnote 2), a {e tournament} is a set
    of vertices such that between any two {e distinct} vertices [v, w] there
    is an edge [v → w] {e or} [w → v] — the "or" is inclusive, so both
    orientations may be present. A tournament of size [k] in the E-graph of
    an instance witnesses [Tournaments_E] at size [k] (Definition 9).

    Tournaments in a digraph are exactly the cliques of its {e orientation
    closure}: the undirected graph with an edge between [v] and [w] iff
    [v → w] or [w → v]. We therefore run Bron–Kerbosch with pivoting on
    that closure. *)

val max_tournament : Digraph.Term_graph.t -> Nca_logic.Term.t list
(** A maximum-size tournament of the graph (empty list for the empty
    graph). Exponential in the worst case but fast on chase-sized graphs. *)

val max_tournament_size : Digraph.Term_graph.t -> int

val has_tournament_of_size : int -> Digraph.Term_graph.t -> bool
(** Early-exit search for a tournament of at least the given size. *)

val find_tournament_of_size :
  int -> Digraph.Term_graph.t -> Nca_logic.Term.t list option

val is_tournament : Nca_logic.Term.t list -> Digraph.Term_graph.t -> bool
(** Check that the given vertices form a tournament in the graph. *)

val greedy_lower_bound : Digraph.Term_graph.t -> int
(** A cheap greedy lower bound on the maximum tournament size (used to
    prune the exact search and as a fast statistic in benchmarks). *)
