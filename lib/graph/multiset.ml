module type ELT = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (X : ELT) = struct
  module M = Map.Make (X)

  type t = int M.t
  (* Invariant: all stored multiplicities are > 0. *)

  let empty = M.empty
  let is_empty = M.is_empty

  let add x m =
    M.update x (function None -> Some 1 | Some n -> Some (n + 1)) m

  let remove x m =
    M.update x
      (function
        | None -> None | Some 1 -> None | Some n -> Some (n - 1))
      m

  let of_list l = List.fold_left (fun m x -> add x m) empty l

  let to_list m =
    M.fold (fun x n acc -> List.init n (fun _ -> x) @ acc) m [] |> List.rev

  let count x m = match M.find_opt x m with None -> 0 | Some n -> n
  let size m = M.fold (fun _ n acc -> acc + n) m 0
  let union a b = M.union (fun _ n1 n2 -> Some (n1 + n2)) a b

  let inter a b =
    M.merge
      (fun _ n1 n2 ->
        match (n1, n2) with
        | Some n1, Some n2 -> Some (min n1 n2)
        | _ -> None)
      a b

  let diff a b =
    M.merge
      (fun _ n1 n2 ->
        match (n1, n2) with
        | Some n1, Some n2 -> if n1 > n2 then Some (n1 - n2) else None
        | Some n1, None -> Some n1
        | None, _ -> None)
      a b

  let max_opt m = Option.map fst (M.max_binding_opt m)

  let rec compare_lex a b =
    match (M.max_binding_opt a, M.max_binding_opt b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some (xa, _), Some (xb, _) ->
        let c = X.compare xa xb in
        if c <> 0 then c else compare_lex (remove xa a) (remove xb b)

  let equal a b = M.equal Int.equal a b

  let pp ppf m =
    let pp_entry ppf (x, n) =
      if n = 1 then X.pp ppf x else Fmt.pf ppf "%a×%d" X.pp x n
    in
    Fmt.pf ppf "{%a}ₘ" Fmt.(list ~sep:comma pp_entry) (M.bindings m)
end

module Int_multiset = Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)
