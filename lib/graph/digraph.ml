module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (V : VERTEX) = struct
  module VSet = Set.Make (V)
  module VMap = Map.Make (V)

  type t = { succ : VSet.t VMap.t; pred : VSet.t VMap.t }

  let empty = { succ = VMap.empty; pred = VMap.empty }

  let add_vertex v g =
    {
      succ = (if VMap.mem v g.succ then g.succ else VMap.add v VSet.empty g.succ);
      pred = (if VMap.mem v g.pred then g.pred else VMap.add v VSet.empty g.pred);
    }

  let add_to v w m =
    VMap.update v
      (function None -> Some (VSet.singleton w) | Some s -> Some (VSet.add w s))
      m

  let add_edge v w g =
    let g = add_vertex w (add_vertex v g) in
    { succ = add_to v w g.succ; pred = add_to w v g.pred }

  let of_edges l = List.fold_left (fun g (v, w) -> add_edge v w g) empty l
  let vertices g = List.map fst (VMap.bindings g.succ)

  let edges g =
    VMap.fold
      (fun v ws acc -> VSet.fold (fun w acc -> (v, w) :: acc) ws acc)
      g.succ []
    |> List.rev

  let num_vertices g = VMap.cardinal g.succ
  let num_edges g = VMap.fold (fun _ ws n -> n + VSet.cardinal ws) g.succ 0
  let mem_vertex v g = VMap.mem v g.succ

  let succs v g =
    match VMap.find_opt v g.succ with None -> VSet.empty | Some s -> s

  let preds v g =
    match VMap.find_opt v g.pred with None -> VSet.empty | Some s -> s

  let has_edge v w g = VSet.mem w (succs v g)
  let out_degree v g = VSet.cardinal (succs v g)
  let in_degree v g = VSet.cardinal (preds v g)

  let loops g =
    VMap.fold (fun v ws acc -> if VSet.mem v ws then v :: acc else acc) g.succ []
    |> List.rev

  let has_loop g = loops g <> []

  (* Iterative three-color DFS detecting back edges. *)
  let is_dag g =
    let color = Hashtbl.create 64 in
    let state v = try Hashtbl.find color v with Not_found -> `White in
    let exception Cycle in
    let rec visit v =
      match state v with
      | `Gray -> raise Cycle
      | `Black -> ()
      | `White ->
          Hashtbl.replace color v `Gray;
          VSet.iter visit (succs v g);
          Hashtbl.replace color v `Black
    in
    try
      VMap.iter (fun v _ -> visit v) g.succ;
      true
    with Cycle -> false

  let topo_sort g =
    if not (is_dag g) then None
    else begin
      let visited = Hashtbl.create 64 in
      let order = ref [] in
      let rec visit v =
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.add visited v ();
          VSet.iter visit (succs v g);
          order := v :: !order
        end
      in
      VMap.iter (fun v _ -> visit v) g.succ;
      Some !order
    end

  let reachable v g =
    let seen = ref VSet.empty in
    let rec visit w =
      if not (VSet.mem w !seen) then begin
        seen := VSet.add w !seen;
        VSet.iter visit (succs w g)
      end
    in
    VSet.iter visit (succs v g);
    !seen

  let reaches s t g = VSet.mem t (reachable s g)

  let maximal_vertices g =
    List.filter
      (fun v -> VSet.is_empty (VSet.remove v (succs v g)))
      (vertices g)

  let restrict keep g =
    let filter m =
      VMap.filter_map
        (fun v ws ->
          if VSet.mem v keep then Some (VSet.inter ws keep) else None)
        m
    in
    { succ = filter g.succ; pred = filter g.pred }

  let undirected_neighbors v g =
    VSet.remove v (VSet.union (succs v g) (preds v g))

  let weakly_connected_components g =
    let seen = ref VSet.empty in
    let rec grow v comp =
      if VSet.mem v !seen then comp
      else begin
        seen := VSet.add v !seen;
        VSet.fold grow
          (VSet.union (succs v g) (preds v g))
          (VSet.add v comp)
      end
    in
    List.filter_map
      (fun v -> if VSet.mem v !seen then None else Some (grow v VSet.empty))
      (vertices g)

  let pp ppf g =
    let pp_edge ppf (v, w) = Fmt.pf ppf "%a→%a" V.pp v V.pp w in
    Fmt.pf ppf "⟨{%a}, {%a}⟩"
      Fmt.(list ~sep:comma V.pp)
      (vertices g)
      Fmt.(list ~sep:comma pp_edge)
      (edges g)
end

module Term_graph = Make (struct
  type t = Nca_logic.Term.t

  let compare = Nca_logic.Term.compare
  let pp = Nca_logic.Term.pp
end)

let of_instance e i =
  let open Nca_logic in
  let g =
    Term.Set.fold Term_graph.add_vertex (Instance.adom i) Term_graph.empty
  in
  List.fold_left
    (fun g (s, t) -> Term_graph.add_edge s t g)
    g (Instance.edges e i)

let of_atoms atoms =
  let open Nca_logic in
  List.fold_left
    (fun g a ->
      match Atom.as_edge a with
      | Some (s, t) -> Term_graph.add_edge s t g
      | None ->
          Term.Set.fold Term_graph.add_vertex (Atom.terms a) g)
    Term_graph.empty atoms
