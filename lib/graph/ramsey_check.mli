(** Empirical validation of Theorem 7 (Ramsey for colored tournaments).

    Theorem 7 guarantees monochromatic sub-tournaments in large
    edge-colored tournaments. This module generates random tournaments
    and colorings, extracts monochromatic sub-tournaments by exact
    search, and checks the guarantee at the known thresholds — e.g. any
    2-coloring of a tournament of size [R(3,3) = 6] contains a
    monochromatic 3-tournament. This is the experimental counterpart of
    the Ramsey step in Proposition 41. *)

val random_tournament : seed:int -> size:int -> Digraph.Term_graph.t
(** A uniformly-oriented random tournament on [size] vertices
    (deterministic in [seed]); each pair gets exactly one direction. *)

val random_coloring :
  seed:int -> colors:int -> Digraph.Term_graph.t ->
  ((Nca_logic.Term.t * Nca_logic.Term.t) * int) list
(** Color every edge uniformly at random. *)

val monochromatic_tournament :
  ((Nca_logic.Term.t * Nca_logic.Term.t) * int) list -> size:int ->
  (int * Nca_logic.Term.t list) option
(** A monochromatic sub-tournament of at least the given size in some
    color, if one exists. *)

val check_theorem7 :
  seed:int -> colors:int -> target:int -> trials:int -> bool
(** Run [trials] random colorings of tournaments of size
    [Ramsey.upper_bound [target; …; target]] and verify each contains a
    monochromatic [target]-tournament. [true] = no counterexample (as
    Theorem 7 demands). *)
