module G = Digraph.Term_graph
module VSet = G.VSet

(* Neighbourhood in the orientation closure. *)
let closure_neighbors g v = G.undirected_neighbors v g

let is_tournament vs g =
  let rec ok = function
    | [] -> true
    | v :: rest ->
        List.for_all
          (fun w -> G.has_edge v w g || G.has_edge w v g)
          rest
        && ok rest
  in
  ok vs

(* Bron–Kerbosch with pivoting on the orientation closure. [target] bounds
   the search: once a clique of size [target] is found we stop (use
   [max_int] for the exact maximum). *)
let bron_kerbosch ?(target = max_int) g =
  let best = ref VSet.empty in
  let exception Done in
  let nbrs =
    let tbl = Hashtbl.create 64 in
    fun v ->
      match Hashtbl.find_opt tbl v with
      | Some s -> s
      | None ->
          let s = closure_neighbors g v in
          Hashtbl.add tbl v s;
          s
  in
  let rec expand r p x =
    if VSet.cardinal r > VSet.cardinal !best then begin
      best := r;
      if VSet.cardinal r >= target then raise Done
    end;
    if VSet.is_empty p && VSet.is_empty x then ()
    else if VSet.cardinal r + VSet.cardinal p <= VSet.cardinal !best then ()
    else begin
      (* pivot: vertex of p ∪ x with most neighbours in p *)
      let pivot =
        VSet.fold
          (fun v acc ->
            let d = VSet.cardinal (VSet.inter (nbrs v) p) in
            match acc with
            | Some (_, d') when d' >= d -> acc
            | _ -> Some (v, d))
          (VSet.union p x) None
      in
      let candidates =
        match pivot with
        | None -> p
        | Some (u, _) -> VSet.diff p (nbrs u)
      in
      let p = ref p and x = ref x in
      VSet.iter
        (fun v ->
          let nv = nbrs v in
          expand (VSet.add v r) (VSet.inter !p nv) (VSet.inter !x nv);
          p := VSet.remove v !p;
          x := VSet.add v !x)
        candidates
    end
  in
  (try expand VSet.empty (VSet.of_list (G.vertices g)) VSet.empty
   with Done -> ());
  !best

let max_tournament g = VSet.elements (bron_kerbosch g)
let max_tournament_size g = VSet.cardinal (bron_kerbosch g)

let find_tournament_of_size k g =
  if k <= 0 then Some []
  else
    let c = bron_kerbosch ~target:k g in
    if VSet.cardinal c >= k then Some (VSet.elements c) else None

let has_tournament_of_size k g = Option.is_some (find_tournament_of_size k g)

let greedy_lower_bound g =
  (* Repeatedly add the closure-highest-degree compatible vertex. *)
  let vs =
    List.sort
      (fun a b ->
        Int.compare
          (VSet.cardinal (closure_neighbors g b))
          (VSet.cardinal (closure_neighbors g a)))
      (G.vertices g)
  in
  let clique =
    List.fold_left
      (fun clique v ->
        if
          List.for_all
            (fun w -> G.has_edge v w g || G.has_edge w v g)
            clique
        then v :: clique
        else clique)
      [] vs
  in
  List.length clique
