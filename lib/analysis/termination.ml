open Nca_logic
module Acyclicity = Nca_chase.Acyclicity
module Chase = Nca_chase.Chase
module Classes = Nca_surgery.Classes
module Budget = Nca_obs.Budget
module Exhausted = Nca_obs.Exhausted
module Telemetry = Nca_obs.Telemetry
module Provenance = Nca_provenance.Provenance
module Proof = Nca_provenance.Proof
module Intgraph = Nca_graph.Intgraph

type criterion =
  | Datalog
  | Weak_acyclicity
  | Joint_acyclicity
  | Super_weak_acyclicity
  | Mfa

let criterion_name = function
  | Datalog -> "datalog"
  | Weak_acyclicity -> "weak-acyclicity"
  | Joint_acyclicity -> "joint-acyclicity"
  | Super_weak_acyclicity -> "super-weak-acyclicity"
  | Mfa -> "mfa"

let pp_criterion ppf c = Fmt.string ppf (criterion_name c)

type vertex = int * Term.t

type mfa_run = {
  mfa_depth : int;
  mfa_atoms : int;
  mfa_proof : Nca_provenance.Proof.t option;
}

type certificate =
  | Datalog_cert
  | Ranking of (Nca_chase.Acyclicity.position * int) list
  | Ja_order of vertex list
  | Swa_order of int list
  | Critical_chase of mfa_run

type witness = { w_rule : int; w_var : Term.t; w_hom : Subst.t }

type verdict =
  | Terminating of criterion * certificate
  | Non_terminating of witness
  | Unknown of Nca_obs.Exhausted.t

type t = {
  rules : Rule.t list;
  classes : Nca_surgery.Classes.t;
  jointly_acyclic : bool;
  ja_cycle : vertex list option;
  super_weakly_acyclic : bool;
  swa_cycle : int list option;
  mfa : bool option;
  cyclic_term : (int * Term.t) option;
  verdict : verdict;
}

(* ------------------------------------------------------------------ *)
(* Shared position machinery                                           *)

let positions_of_var atoms x =
  List.concat_map
    (fun a ->
      List.mapi
        (fun i t -> if Term.equal t x then Some (Atom.pred a, i) else None)
        (Atom.args a)
      |> List.filter_map Fun.id)
    atoms

module PosSet = Set.Make (struct
  type t = Symbol.t * int

  let compare (p, i) (q, j) =
    match Symbol.compare p q with 0 -> Int.compare i j | c -> c
end)

module PosMap = Map.Make (struct
  type t = Acyclicity.position

  let compare = Acyclicity.compare_positions
end)

let rule_name rules i =
  match List.nth_opt rules i with Some r -> Rule.name r | None -> "?"

(* ------------------------------------------------------------------ *)
(* Weak acyclicity: the ranking certificate                            *)

(* ρ(v) = the maximum number of special edges on any path ending at v —
   a Bellman–Ford-style fixpoint over the edge list. When the rule set
   is weakly acyclic the values are bounded by the number of special
   edges; a value beyond that bound witnesses a special cycle. *)
let ranking rules =
  let edges = Acyclicity.dependency_graph rules in
  let specials =
    List.length (List.filter (fun (e : Acyclicity.edge) -> e.special) edges)
  in
  let init =
    List.fold_left
      (fun m (e : Acyclicity.edge) ->
        PosMap.add e.source 0 (PosMap.add e.target 0 m))
      PosMap.empty edges
  in
  let rec fix m =
    let changed = ref false in
    let m =
      List.fold_left
        (fun m (e : Acyclicity.edge) ->
          let s = PosMap.find e.source m and t = PosMap.find e.target m in
          let need = s + if e.special then 1 else 0 in
          if t < need then begin
            changed := true;
            PosMap.add e.target need m
          end
          else m)
        m edges
    in
    if not !changed then Some m
    else if PosMap.exists (fun _ v -> v > specials) m then None
    else fix m
  in
  Option.map PosMap.bindings (fix init)

let check_ranking rules rho =
  let rank = List.fold_left (fun m (p, k) -> PosMap.add p k m) PosMap.empty rho in
  let edges = Acyclicity.dependency_graph rules in
  List.fold_left
    (fun acc (e : Acyclicity.edge) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match (PosMap.find_opt e.source rank, PosMap.find_opt e.target rank)
          with
          | None, _ | _, None ->
              Error
                (Fmt.str "ranking: no rank for position %a or %a"
                   Acyclicity.pp_position e.source Acyclicity.pp_position
                   e.target)
          | Some s, Some t ->
              if e.special && s >= t then
                Error
                  (Fmt.str
                     "ranking: special edge %a → %a not strictly increasing \
                      (%d ≥ %d)"
                     Acyclicity.pp_position e.source Acyclicity.pp_position
                     e.target s t)
              else if (not e.special) && s > t then
                Error
                  (Fmt.str "ranking: regular edge %a → %a decreasing (%d > %d)"
                     Acyclicity.pp_position e.source Acyclicity.pp_position
                     e.target s t)
              else Ok ()))
    (Ok ()) edges

(* ------------------------------------------------------------------ *)
(* Joint acyclicity: the existential-variable dependency graph         *)

(* Move(z): the least set of positions containing the head positions of
   z and closed under frontier propagation — whenever every body
   position of a frontier variable y (of any rule) lies in the set, y's
   head positions join it [Krötzsch & Rudolph]. *)
let move_of rules seed =
  let rec fix mv =
    let mv' =
      List.fold_left
        (fun mv r ->
          Term.Set.fold
            (fun y mv ->
              let bodyp = positions_of_var (Rule.body r) y in
              if List.for_all (fun p -> PosSet.mem p mv) bodyp then
                List.fold_left
                  (fun mv p -> PosSet.add p mv)
                  mv
                  (positions_of_var (Rule.head r) y)
              else mv)
            (Rule.frontier r) mv)
        mv rules
    in
    if PosSet.equal mv' mv then mv else fix mv'
  in
  fix (PosSet.of_list seed)

let ja_vertices rules =
  List.concat
    (List.mapi
       (fun k r ->
         List.map (fun z -> (k, z)) (Term.sorted_elements (Rule.exist_vars r)))
       rules)

(* Move sets for every (rule, existential variable) vertex. *)
let moves rules =
  let arr = Array.of_list rules in
  List.map
    (fun (k, z) ->
      ((k, z), move_of rules (positions_of_var (Rule.head arr.(k)) z)))
    (ja_vertices rules)

(* [feeds mv r]: can a null placed at the positions of [mv] reach every
   body position of some frontier variable of [r]? *)
let feeds mv r =
  Term.Set.exists
    (fun y ->
      List.for_all
        (fun p -> PosSet.mem p mv)
        (positions_of_var (Rule.body r) y))
    (Rule.frontier r)

let ja_edges rules =
  let arr = Array.of_list rules in
  let mvs = moves rules in
  List.concat_map
    (fun (v, mv) ->
      List.filter_map
        (fun ((k', _) as v', _) ->
          if feeds mv arr.(k') then Some (v, v') else None)
        mvs)
    mvs

let swa_edges rules =
  let arr = Array.of_list rules in
  let erules =
    List.filter
      (fun k -> not (Rule.is_datalog arr.(k)))
      (List.init (Array.length arr) Fun.id)
  in
  let mvs = moves rules in
  List.concat_map
    (fun ((k, _), mv) ->
      List.filter_map
        (fun k' -> if feeds mv arr.(k') then Some (k, k') else None)
        erules)
    mvs
  |> List.sort_uniq compare

(* Topological order / cycle of a vertex list under an edge list, via a
   dense interned graph. *)
let analyze_graph vertices edges index_of =
  let arr = Array.of_list vertices in
  let g = Intgraph.create (Array.length arr) in
  List.iter (fun (u, v) -> Intgraph.add_edge g (index_of u) (index_of v)) edges;
  match Intgraph.topo_sort g with
  | Some o -> (true, Some (List.map (fun i -> arr.(i)) o), None)
  | None ->
      let c = Option.get (Intgraph.find_cycle g) in
      (false, None, Some (List.map (fun i -> arr.(i)) c))

let ja_analysis rules =
  let vs = ja_vertices rules in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i (k, z) -> Hashtbl.replace tbl (k, Term.code z) i) vs;
  analyze_graph vs (ja_edges rules) (fun (k, z) ->
      Hashtbl.find tbl (k, Term.code z))

let swa_analysis rules =
  let arr = Array.of_list rules in
  let erules =
    List.filter
      (fun k -> not (Rule.is_datalog arr.(k)))
      (List.init (Array.length arr) Fun.id)
  in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i k -> Hashtbl.replace tbl k i) erules;
  analyze_graph erules (swa_edges rules) (Hashtbl.find tbl)

let check_topo ~what ~pp_v equal vertices edges order =
  let index v = List.find_index (equal v) order in
  if List.length order <> List.length vertices then
    Error (what ^ ": order and vertex set differ in size")
  else if not (List.for_all (fun v -> Option.is_some (index v)) vertices) then
    Error (what ^ ": order is missing a vertex")
  else
    List.fold_left
      (fun acc (u, v) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let iu = Option.get (index u) and iv = Option.get (index v) in
            if iu < iv then Ok ()
            else
              Error
                (Fmt.str "%s: edge %a → %a violates the order" what pp_v u pp_v
                   v))
      (Ok ()) edges

(* ------------------------------------------------------------------ *)
(* MFA: the critical-instance chase                                    *)

let default_budget = Budget.v ~max_depth:16 ~max_atoms:10_000 ()

let critical_of rules = Instance.critical (Rule.signature rules)

(* The (rule, existential variable) that created a null, read off the
   chase's per-null provenance. *)
let creator (c : Chase.t) n =
  Option.bind (Term.Map.find_opt n c.provenance)
    (fun (p : Chase.provenance) ->
      List.find_map
        (fun (z, t) -> if Term.equal t n then Some (p.rule, z, p.hom) else None)
        (Subst.bindings p.extension))

let rule_index rules r =
  let rec go i = function
    | [] -> None
    | r' :: tl -> if Rule.equal r r' then Some i else go (i + 1) tl
  in
  go 0 rules

(* A cyclic term: a null whose provenance ancestry (the nulls in the
   range of the creating homomorphism, transitively) contains a null
   created by the same rule and existential variable — the classical
   MFA failure condition, used here as an early abort. *)
let cyclic_term rules (c : Chase.t) =
  let parents n =
    match Term.Map.find_opt n c.provenance with
    | None -> []
    | Some (p : Chase.provenance) ->
        Term.Set.elements (Term.Set.filter Term.is_null (Subst.range p.hom))
  in
  let same_creator r z n' =
    match creator c n' with
    | Some (r', z', _) -> Rule.equal r r' && Term.equal z z'
    | None -> false
  in
  let cyclic r z hom =
    let rec go seen = function
      | [] -> false
      | n :: rest ->
          if Term.Set.mem n seen then go seen rest
          else if same_creator r z n then true
          else go (Term.Set.add n seen) (parents n @ rest)
    in
    go Term.Set.empty
      (Term.Set.elements (Term.Set.filter Term.is_null (Subst.range hom)))
  in
  Term.Map.fold
    (fun n _ acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match creator c n with
          | None -> None
          | Some (r, z, hom) ->
              if cyclic r z hom then
                Option.map (fun i -> (i, z)) (rule_index rules r)
              else None))
    c.provenance None

(* A derived fact of the chase with maximal round, smallest structural
   atom among ties — the deterministic root of the MFA proof. *)
let max_round_fact (c : Chase.t) =
  Provenance.fold
    (fun fact (e : Nca_provenance.Provenance.entry) acc ->
      if not (Instance.mem fact c.instance) then acc
      else
        match acc with
        | Some (_, r) when r > e.round -> acc
        | Some (f, r) when r = e.round ->
            if Atom.compare_structural fact f < 0 then Some (fact, e.round)
            else acc
        | _ -> Some (fact, e.round))
    None

let run_mfa ?pool budget rules =
  Telemetry.span "classify.mfa" @@ fun () ->
  let critical = critical_of rules in
  let already = Provenance.enabled () in
  if not already then Provenance.enable ();
  Fun.protect
    ~finally:(fun () -> if not already then Provenance.disable ())
    (fun () ->
      let chase =
        Chase.run ~variant:Semi_oblivious ~max_depth:1_000_000
          ~max_atoms:1_000_000 ~budget ?pool critical rules
      in
      Telemetry.count "classify.mfa.atoms" (Instance.cardinal chase.instance);
      Telemetry.count "classify.mfa.depth" chase.depth;
      let proof =
        if not chase.saturated then None
        else
          Option.bind (max_round_fact chase) (fun (fact, _) ->
              let p = Proof.of_fact fact in
              match Proof.check ~rules ~input:critical p with
              | Ok () -> Some p
              | Error _ -> None)
      in
      (chase, proof))

let check_mfa rules { mfa_depth; mfa_atoms; mfa_proof } =
  let critical = critical_of rules in
  let chase =
    Chase.run ~variant:Semi_oblivious ~max_depth:(mfa_depth + 1)
      ~max_atoms:(mfa_atoms + 1)
      ~budget:Budget.unlimited critical rules
  in
  if not chase.saturated then
    Error "mfa: the critical chase does not saturate within the recorded bounds"
  else if chase.depth <> mfa_depth then
    Error
      (Fmt.str "mfa: saturation depth %d does not match the recorded %d"
         chase.depth mfa_depth)
  else if Instance.cardinal chase.instance <> mfa_atoms then
    Error
      (Fmt.str "mfa: %d atoms do not match the recorded %d"
         (Instance.cardinal chase.instance)
         mfa_atoms)
  else
    match mfa_proof with
    | None -> Ok ()
    | Some p ->
        Result.map_error
          (fun (e : Proof.error) -> Fmt.str "mfa proof: %a" Proof.pp_error e)
          (Proof.check ~rules ~input:critical p)

(* ------------------------------------------------------------------ *)
(* Non-termination: the pumping witness                                *)

(* A homomorphism h : body(r) → body(r) ∪ head(r) sending a frontier
   variable to an existential variable. On the critical instance the
   rule fires (every atom over [*] is present); composing the firing's
   extended homomorphism with h yields a new semi-oblivious trigger
   whose frontier image contains the null just invented — so the rule
   fires forever, inventing a fresh null each round. *)
let find_witness rules =
  Telemetry.span "classify.witness" @@ fun () ->
  let indexed = List.mapi (fun i r -> (i, r)) rules in
  List.find_map
    (fun (i, r) ->
      let exist = Rule.exist_vars r in
      if Term.Set.is_empty exist then None
      else begin
        let tgt = Instance.of_list (Rule.body r @ Rule.head r) in
        let frontier = Term.sorted_elements (Rule.frontier r) in
        let found = ref None in
        Hom.iter (Rule.body r) tgt (fun h ->
            if Option.is_none !found then
              match
                List.find_opt
                  (fun y -> Term.Set.mem (Subst.apply h y) exist)
                  frontier
              with
              | Some y -> found := Some { w_rule = i; w_var = y; w_hom = h }
              | None -> ());
        !found
      end)
    indexed

let check_witness rules w =
  match List.nth_opt rules w.w_rule with
  | None -> Error "witness: rule index out of range"
  | Some r ->
      let body = Rule.body r and head = Rule.head r in
      let atoms = Atom.Set.of_list (body @ head) in
      let image = Subst.apply_atoms w.w_hom body in
      if not (List.for_all (fun a -> Atom.Set.mem a atoms) image) then
        Error "witness: homomorphism does not map the body into body ∪ head"
      else if not (Term.Set.mem w.w_var (Rule.frontier r)) then
        Error "witness: pumped variable is not in the frontier"
      else if
        not (Term.Set.mem (Subst.apply w.w_hom w.w_var) (Rule.exist_vars r))
      then Error "witness: pumped variable is not sent to an existential"
      else Ok ()

(* ------------------------------------------------------------------ *)
(* The referee                                                         *)

let vertex_equal (k, z) (k', z') = k = k' && Term.equal z z'

let check rules verdict =
  match verdict with
  | Terminating (Datalog, Datalog_cert) ->
      if List.for_all Rule.is_datalog rules then Ok ()
      else Error "datalog: an existential rule remains"
  | Terminating (Weak_acyclicity, Ranking rho) -> check_ranking rules rho
  | Terminating (Joint_acyclicity, Ja_order o) ->
      check_topo ~what:"joint acyclicity"
        ~pp_v:(fun ppf (k, z) -> Fmt.pf ppf "%s#%d.%a" (rule_name rules k) k Term.pp z)
        vertex_equal (ja_vertices rules) (ja_edges rules) o
  | Terminating (Super_weak_acyclicity, Swa_order o) ->
      let arr = Array.of_list rules in
      let erules =
        List.filter
          (fun k -> not (Rule.is_datalog arr.(k)))
          (List.init (Array.length arr) Fun.id)
      in
      check_topo ~what:"super-weak acyclicity"
        ~pp_v:(fun ppf k -> Fmt.pf ppf "%s#%d" (rule_name rules k) k)
        Int.equal erules (swa_edges rules) o
  | Terminating (Mfa, Critical_chase run) -> check_mfa rules run
  | Terminating (c, _) ->
      Error
        (Fmt.str "criterion %s carries a certificate of a different kind"
           (criterion_name c))
  | Non_terminating w -> check_witness rules w
  | Unknown _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* The classifier                                                      *)

let classify ?(budget = default_budget) ?pool rules =
  Telemetry.span "classify" @@ fun () ->
  Telemetry.incr "classify.runs";
  let classes = Classes.classify rules in
  let (ja_ok, ja_ord, ja_cyc), (swa_ok, swa_ord, swa_cyc) =
    Telemetry.span "classify.hierarchy" (fun () ->
        (ja_analysis rules, swa_analysis rules))
  in
  let verdict, mfa, cyc =
    if classes.datalog then (Terminating (Datalog, Datalog_cert), Some true, None)
    else if classes.weakly_acyclic then
      match ranking rules with
      | Some rho ->
          (Terminating (Weak_acyclicity, Ranking rho), Some true, None)
      | None ->
          (* unreachable: the ranking exists iff the set is WA *)
          (Unknown (Nca_obs.Exhausted.cancelled), None, None)
    else if ja_ok then
      (Terminating (Joint_acyclicity, Ja_order (Option.get ja_ord)), Some true, None)
    else if swa_ok then
      ( Terminating (Super_weak_acyclicity, Swa_order (Option.get swa_ord)),
        Some true,
        None )
    else begin
      (* every static test failed: probe the critical chase shallowly
         for a cyclic term, then commit the budget to the full run *)
      let probe =
        Telemetry.span "classify.probe" (fun () ->
            Chase.run ~variant:Semi_oblivious ~max_depth:3 ~max_atoms:2_000
              ~budget ?pool (critical_of rules) rules)
      in
      let probe_cyc =
        if probe.saturated then None else cyclic_term rules probe
      in
      let full =
        if probe.saturated || Option.is_none probe_cyc then
          Some (run_mfa ?pool budget rules)
        else None
      in
      match full with
      | Some (chase, proof) when chase.saturated ->
          let run =
            {
              mfa_depth = chase.depth;
              mfa_atoms = Instance.cardinal chase.instance;
              mfa_proof = proof;
            }
          in
          (Terminating (Mfa, Critical_chase run), Some true, None)
      | _ ->
          let cyc =
            match probe_cyc with
            | Some _ -> probe_cyc
            | None ->
                Option.bind full (fun (chase, _) -> cyclic_term rules chase)
          in
          let mfa = if Option.is_some cyc then Some false else None in
          let stopped =
            match full with
            | Some (chase, _) -> Option.get chase.stopped
            | None -> Option.get probe.stopped
          in
          (match find_witness rules with
          | Some w -> (Non_terminating w, mfa, cyc)
          | None -> (Unknown stopped, mfa, cyc))
    end
  in
  (match Telemetry.span "classify.check" (fun () -> check rules verdict) with
  | Ok () -> ()
  | Error e ->
      invalid_arg ("Termination.classify: certificate failed verification: " ^ e));
  (match verdict with
  | Terminating _ -> Telemetry.incr "classify.terminating"
  | Non_terminating _ -> Telemetry.incr "classify.non_terminating"
  | Unknown _ -> Telemetry.incr "classify.unknown");
  {
    rules;
    classes;
    jointly_acyclic = ja_ok;
    ja_cycle = ja_cyc;
    super_weakly_acyclic = swa_ok;
    swa_cycle = swa_cyc;
    mfa;
    cyclic_term = cyc;
    verdict;
  }

let cache : (Rule.t list * t) option ref = ref None

let classify_cached rules =
  match !cache with
  | Some (rs, t)
    when List.length rs = List.length rules && List.for_all2 Rule.equal rs rules
    ->
      t
  | _ ->
      let t = classify rules in
      cache := Some (rules, t);
      t

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let pp_vertex rules ppf (k, z) =
  Fmt.pf ppf "%s#%d.%a" (rule_name rules k) k Term.pp z

let pp_certificate rules ppf = function
  | Datalog_cert -> Fmt.string ppf "every rule is Datalog"
  | Ranking rho ->
      Fmt.pf ppf "position ranking: %a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (p, k) ->
              Fmt.pf ppf "%a=%d" Acyclicity.pp_position p k))
        rho
  | Ja_order o ->
      Fmt.pf ppf "existential-variable order: %a"
        Fmt.(list ~sep:(any " ≺ ") (pp_vertex rules))
        o
  | Swa_order o ->
      Fmt.pf ppf "trigger order: %a"
        Fmt.(
          list ~sep:(any " ≺ ") (fun ppf k ->
              Fmt.pf ppf "%s#%d" (rule_name rules k) k))
        o
  | Critical_chase m ->
      Fmt.pf ppf "critical-instance chase saturates: depth %d, %d atoms%s"
        m.mfa_depth m.mfa_atoms
        (match m.mfa_proof with
        | Some _ -> ", proof attached"
        | None -> "")

let pp_witness rules ppf w =
  let bindings =
    List.sort
      (fun (a, _) (b, _) -> Term.compare_names a b)
      (Subst.bindings w.w_hom)
  in
  Fmt.pf ppf "rule %s#%d pumps frontier variable %a into %a via {%a}"
    (rule_name rules w.w_rule)
    w.w_rule Term.pp w.w_var Term.pp
    (Subst.apply w.w_hom w.w_var)
    Fmt.(
      list ~sep:(any ", ") (fun ppf (x, t) ->
          Fmt.pf ppf "%a ↦ %a" Term.pp x Term.pp t))
    bindings

let pp_verdict rules ppf = function
  | Terminating (c, cert) ->
      Fmt.pf ppf "terminating via %a@,certificate: %a" pp_criterion c
        (pp_certificate rules) cert
  | Non_terminating w ->
      Fmt.pf ppf "non-terminating@,witness: %a" (pp_witness rules) w
  | Unknown e -> Fmt.pf ppf "unknown: %a" Nca_obs.Exhausted.pp e

let yn = function true -> "yes" | false -> "no"
let yn_opt = function Some b -> yn b | None -> "unknown"

let pp ppf t =
  let datalog, existential = Rule.split_datalog t.rules in
  Fmt.pf ppf "@[<v>rules: %d (%d datalog, %d existential)@,classes: %a@,"
    (List.length t.rules) (List.length datalog) (List.length existential)
    Classes.pp t.classes;
  Fmt.pf ppf
    "hierarchy: weakly-acyclic=%s jointly-acyclic=%s super-weakly-acyclic=%s \
     mfa=%s@,"
    (yn t.classes.weakly_acyclic)
    (yn t.jointly_acyclic)
    (yn t.super_weakly_acyclic)
    (yn_opt t.mfa);
  (match t.cyclic_term with
  | Some (k, z) ->
      Fmt.pf ppf "cyclic term: rule %s#%d nests the nulls it invents for %a@,"
        (rule_name t.rules k) k Term.pp z
  | None -> ());
  Fmt.pf ppf "verdict: %a@]" (pp_verdict t.rules) t.verdict

let json_of_certificate rules = function
  | Datalog_cert -> Json.Obj [ ("kind", Json.String "datalog") ]
  | Ranking rho ->
      Json.Obj
        [
          ("kind", Json.String "ranking");
          ( "ranks",
            Json.List
              (List.map
                 (fun (p, k) ->
                   Json.Obj
                     [
                       ( "position",
                         Json.String (Fmt.str "%a" Acyclicity.pp_position p) );
                       ("rank", Json.Int k);
                     ])
                 rho) );
        ]
  | Ja_order o ->
      Json.Obj
        [
          ("kind", Json.String "ja-order");
          ( "order",
            Json.List
              (List.map
                 (fun v ->
                   Json.String (Fmt.str "%a" (pp_vertex rules) v))
                 o) );
        ]
  | Swa_order o ->
      Json.Obj
        [
          ("kind", Json.String "swa-order");
          ("order", Json.List (List.map (fun k -> Json.Int k) o));
        ]
  | Critical_chase m ->
      Json.Obj
        [
          ("kind", Json.String "critical-chase");
          ("depth", Json.Int m.mfa_depth);
          ("atoms", Json.Int m.mfa_atoms);
          ("proof", Json.Bool (Option.is_some m.mfa_proof));
        ]

let to_json t =
  let c = t.classes in
  let verdict =
    match t.verdict with
    | Terminating (crit, cert) ->
        Json.Obj
          [
            ("status", Json.String "terminating");
            ("criterion", Json.String (criterion_name crit));
            ("certificate", json_of_certificate t.rules cert);
          ]
    | Non_terminating w ->
        let bindings =
          List.sort
            (fun (a, _) (b, _) -> Term.compare_names a b)
            (Subst.bindings w.w_hom)
        in
        Json.Obj
          [
            ("status", Json.String "non-terminating");
            ( "witness",
              Json.Obj
                [
                  ("rule", Json.Int w.w_rule);
                  ("rule_name", Json.String (rule_name t.rules w.w_rule));
                  ("var", Json.String (Term.name w.w_var));
                  ( "maps_to",
                    Json.String (Term.name (Subst.apply w.w_hom w.w_var)) );
                  ( "hom",
                    Json.List
                      (List.map
                         (fun (x, v) ->
                           Json.Obj
                             [
                               ("from", Json.String (Term.name x));
                               ("to", Json.String (Term.name v));
                             ])
                         bindings) );
                ] );
          ]
    | Unknown e ->
        Json.Obj
          [
            ("status", Json.String "unknown");
            ("resource", Json.String (Nca_obs.Exhausted.tag e));
            ("limit", Json.Int e.limit);
            ("used", Json.Int e.used);
          ]
  in
  Json.Obj
    [
      ("schema", Json.String "nocliques/classify/v1");
      ("rules", Json.Int (List.length t.rules));
      ( "classes",
        Json.Obj
          [
            ("linear", Json.Bool c.linear);
            ("guarded", Json.Bool c.guarded);
            ("frontier_guarded", Json.Bool c.frontier_guarded);
            ("sticky", Json.Bool c.sticky);
            ("datalog", Json.Bool c.datalog);
          ] );
      ( "hierarchy",
        Json.Obj
          [
            ("weakly_acyclic", Json.Bool c.weakly_acyclic);
            ("jointly_acyclic", Json.Bool t.jointly_acyclic);
            ("super_weakly_acyclic", Json.Bool t.super_weakly_acyclic);
            ( "mfa",
              match t.mfa with Some b -> Json.Bool b | None -> Json.Null );
          ] );
      ( "cyclic_term",
        match t.cyclic_term with
        | Some (k, z) ->
            Json.Obj
              [
                ("rule", Json.Int k);
                ("rule_name", Json.String (rule_name t.rules k));
                ("var", Json.String (Term.name z));
              ]
        | None -> Json.Null );
      ("verdict", verdict);
    ]
