let schema = "nocliques/stats/v6"

let rec span_json (s : Nca_obs.Telemetry.span_stats) =
  Json.Obj
    [
      ("name", Json.String s.span_name);
      ("calls", Json.Int s.calls);
      ("time_us", Json.Int s.time_us);
      ("children", Json.List (List.map span_json s.children));
    ]

let provenance_json () =
  let p = Nca_provenance.Provenance.stats () in
  Json.Obj
    [
      ("facts", Json.Int p.Nca_provenance.Provenance.facts);
      ("store_bytes", Json.Int p.Nca_provenance.Provenance.store_bytes);
      ("max_depth", Json.Int p.Nca_provenance.Provenance.max_depth);
    ]

let plan_json () =
  let plans, hits, misses = Nca_plan.Cache.stats () in
  Json.Obj
    [
      ("enabled", Json.Bool (Nca_plan.Exec.enabled ()));
      ("plans", Json.Int plans);
      ("cache_hits", Json.Int hits);
      ("cache_misses", Json.Int misses);
    ]

let sat_json () =
  let s = Nca_sat.Stats.snapshot () in
  Json.Obj
    [
      ("solves", Json.Int s.Nca_sat.Stats.solves);
      ("vars", Json.Int s.Nca_sat.Stats.vars);
      ("clauses", Json.Int s.Nca_sat.Stats.clauses);
      ("learnt", Json.Int s.Nca_sat.Stats.learnt);
      ("decisions", Json.Int s.Nca_sat.Stats.decisions);
      ("conflicts", Json.Int s.Nca_sat.Stats.conflicts);
      ("propagations", Json.Int s.Nca_sat.Stats.propagations);
    ]

(* Always present so consumers need no probe: a sequential run reports
   the one implicit domain with no batches. *)
let parallel_json = function
  | None ->
      Json.Obj
        [
          ("jobs", Json.Int 1);
          ("batches", Json.Int 0);
          ("domains", Json.List []);
        ]
  | Some (s : Nca_chase.Pool.stats) ->
      Json.Obj
        [
          ("jobs", Json.Int s.jobs);
          ("batches", Json.Int s.batches);
          ( "domains",
            Json.List
              (List.map
                 (fun (tasks, busy_us) ->
                   Json.Obj
                     [
                       ("tasks", Json.Int tasks);
                       ("busy_us", Json.Int busy_us);
                     ])
                 s.per_domain) );
        ]

let histo_json (s : Nca_obs.Metrics.snapshot) =
  Json.Obj
    (List.map
       (fun (name, h) ->
         let s = Nca_obs.Metrics.Histo.summary h in
         ( name,
           Json.Obj
             [
               ("count", Json.Int s.Nca_obs.Metrics.Histo.count);
               ("sum", Json.Int s.Nca_obs.Metrics.Histo.sum);
               ("max", Json.Int s.Nca_obs.Metrics.Histo.max);
               ("p50", Json.Int s.Nca_obs.Metrics.Histo.p50);
               ("p90", Json.Int s.Nca_obs.Metrics.Histo.p90);
               ("p99", Json.Int s.Nca_obs.Metrics.Histo.p99);
             ] ))
       s.Nca_obs.Metrics.histos)

let memory_json (s : Nca_obs.Metrics.snapshot) =
  Json.Obj
    (List.map
       (fun (name, (last, mx)) ->
         (name, Json.Obj [ ("last", Json.Int last); ("max", Json.Int mx) ]))
       s.Nca_obs.Metrics.gauges)

let of_snapshot ?metrics ?parallel (snap : Nca_obs.Telemetry.snapshot) =
  let metrics =
    match metrics with Some m -> m | None -> Nca_obs.Metrics.snapshot ()
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters) );
      ("plan", plan_json ());
      ("sat", sat_json ());
      ("parallel", parallel_json parallel);
      ("provenance", provenance_json ());
      ("histograms", histo_json metrics);
      ("memory", memory_json metrics);
      ("spans", Json.List (List.map span_json snap.spans));
    ]
