let schema = "nocliques/stats/v1"

let rec span_json (s : Nca_obs.Telemetry.span_stats) =
  Json.Obj
    [
      ("name", Json.String s.span_name);
      ("calls", Json.Int s.calls);
      ("time_us", Json.Int s.time_us);
      ("children", Json.List (List.map span_json s.children));
    ]

let of_snapshot (snap : Nca_obs.Telemetry.snapshot) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters) );
      ("spans", Json.List (List.map span_json snap.spans));
    ]
