open Nca_logic
module D = Diagnostic

type t = {
  code : string;
  slug : string;
  doc : string;
  run : Parser.program -> D.t list;
}

(* ------------------------------------------------------------------ *)
(* shared helpers *)

let indexed_rules (p : Parser.program) =
  List.mapi (fun i r -> (i, r)) p.rules

let rule_site i r = D.Rule_site { name = Rule.name r; index = i }

let program_signature (p : Parser.program) =
  let s = Symbol.Set.union (Rule.signature p.rules) (Instance.signature p.facts) in
  List.fold_left
    (fun acc q ->
      List.fold_left
        (fun acc a -> Symbol.Set.add (Atom.pred a) acc)
        acc (Cq.body q))
    s p.queries

let preds_of_atoms atoms =
  List.fold_left
    (fun acc a -> Symbol.Set.add (Atom.pred a) acc)
    Symbol.Set.empty atoms

let pp_vars = Fmt.(list ~sep:(any ", ") Term.pp)

(* ------------------------------------------------------------------ *)
(* NCA002 — arity drift *)

module SMap = Map.Make (String)

let arity_drift p =
  let by_name =
    Symbol.Set.fold
      (fun s acc ->
        SMap.update (Symbol.name s)
          (fun prev -> Some (Symbol.arity s :: Option.value prev ~default:[]))
          acc)
      (program_signature p) SMap.empty
  in
  SMap.fold
    (fun name arities acc ->
      match List.sort_uniq Int.compare arities with
      | [] | [ _ ] -> acc
      | many ->
          D.make ~code:"NCA002" ~severity:D.Error
            ~location:(D.Predicate { name; arity = List.hd many })
            ~certificate:
              (Fmt.str "arities: %a" Fmt.(list ~sep:(any ", ") int) many)
            ~hint:"rename one of the predicates — same-name symbols with \
                   different arities never unify"
            (Fmt.str
               "predicate %s is used with %d different arities — these are \
                distinct symbols that will never match each other"
               name (List.length many))
          :: acc)
    by_name []

(* ------------------------------------------------------------------ *)
(* NCA003 — unsafe (existential) head variables *)

let unsafe_head_vars p =
  List.filter_map
    (fun (i, r) ->
      let ev = Rule.exist_vars r in
      if Term.Set.is_empty ev then None
      else
        Some
          (D.make ~code:"NCA003" ~severity:D.Info ~location:(rule_site i r)
             ~certificate:
               (Fmt.str "existential variables: %a" pp_vars
                  (Term.sorted_elements ev))
             ~hint:
               "intended? every firing invents fresh nulls; a Datalog rule \
                must use only body variables in its head"
             (Fmt.str
                "head variable%s %a %s not occur in the body — existentially \
                 quantified (§2.1)"
                (if Term.Set.cardinal ev > 1 then "s" else "")
                pp_vars (Term.sorted_elements ev)
                (if Term.Set.cardinal ev > 1 then "do" else "does"))))
    (indexed_rules p)

(* ------------------------------------------------------------------ *)
(* NCA004 — underivable predicates / dead rules *)

(* Predicate-level reachability: facts and EDB predicates (occurring in no
   head) are given; a rule fires once all its body predicates are
   derivable, making its head predicates derivable. Rules outside the
   fixpoint can never fire on any database. *)
let derivable_predicates (p : Parser.program) =
  let head_preds =
    preds_of_atoms (List.concat_map Rule.head p.rules)
  in
  let base =
    Symbol.Set.union
      (Symbol.Set.add Symbol.top (Instance.signature p.facts))
      (Symbol.Set.diff (program_signature p) head_preds)
  in
  let fires derivable r =
    Symbol.Set.subset (preds_of_atoms (Rule.body r)) derivable
  in
  let step derivable =
    List.fold_left
      (fun acc r ->
        if fires acc r then
          Symbol.Set.union acc (preds_of_atoms (Rule.head r))
        else acc)
      derivable p.rules
  in
  let rec fix derivable =
    let next = step derivable in
    if Symbol.Set.equal next derivable then derivable else fix next
  in
  fix base

let dead_rules p =
  let derivable = derivable_predicates p in
  List.filter_map
    (fun (i, r) ->
      let missing =
        Symbol.Set.diff (preds_of_atoms (Rule.body r)) derivable
      in
      if Symbol.Set.is_empty missing then None
      else
        Some
          (D.make ~code:"NCA004" ~severity:D.Warning
             ~location:(rule_site i r)
             ~certificate:
               (Fmt.str "underivable body predicates: %a"
                  Fmt.(list ~sep:(any ", ") Symbol.pp)
                  (Symbol.sorted_elements missing))
             ~hint:
               "add a fact or rule deriving the predicate, or delete the \
                dead rule"
             (Fmt.str
                "rule can never fire: %a is derived by no rule and provided \
                 by no fact or input predicate"
                Fmt.(list ~sep:(any ", ") Symbol.pp)
                (Symbol.sorted_elements missing))))
    (indexed_rules p)

(* ------------------------------------------------------------------ *)
(* NCA005 — derived but never consumed *)

let unused_predicates (p : Parser.program) =
  if p.queries = [] then []
    (* without queries the consumer set is unknown — stay silent *)
  else
    let derived = preds_of_atoms (List.concat_map Rule.head p.rules) in
    let consumed =
      Symbol.Set.union
        (preds_of_atoms (List.concat_map Rule.body p.rules))
        (preds_of_atoms (List.concat_map Cq.body p.queries))
    in
    Symbol.Set.fold
      (fun s acc ->
        D.make ~code:"NCA005" ~severity:D.Info
          ~location:
            (D.Predicate { name = Symbol.name s; arity = Symbol.arity s })
          ~hint:"drop the deriving rules, or query the predicate"
          (Fmt.str
             "predicate %a is derived but consumed by no rule body and no \
              query"
             Symbol.pp s)
        :: acc)
      (Symbol.Set.diff derived consumed)
      []

(* ------------------------------------------------------------------ *)
(* NCA006 — rule subsumption / shadowing *)

(* A Datalog rule corresponds to the CQ whose answer tuple lists its head
   arguments (heads sorted to fix the order). [r'] shadows [r] when both
   derive over the same head-predicate multiset and q_r ⊑ q_r'
   (Chandra–Merlin, via Nca_rewriting.Containment): every trigger of [r]
   is then a trigger of [r'] producing the same head atoms. *)
let rule_as_cq r =
  if not (Rule.is_datalog r) then None
  else
    (* structural order: the comparison key (head predicate names) must
       canonicalize identically for rules built at different times *)
    let heads = List.sort Atom.compare_structural (Rule.head r) in
    let preds = List.map Atom.pred heads in
    let rec has_dup = function
      | [] -> false
      | p :: rest -> List.exists (Symbol.equal p) rest || has_dup rest
    in
    if has_dup preds then None
    else
      match Cq.make ~answer:(List.concat_map Atom.args heads) (Rule.body r) with
      | q -> Some (List.map Symbol.name preds, q)
      | exception Invalid_argument _ -> None

let shadowed_rules p =
  let cqs = List.map (fun (i, r) -> (i, r, rule_as_cq r)) (indexed_rules p) in
  List.filter_map
    (fun (j, rj, cqj) ->
      match cqj with
      | None -> None
      | Some (key_j, qj) ->
          let shadowing =
            List.find_opt
              (fun (i, _, cqi) ->
                i <> j
                &&
                match cqi with
                | Some (key_i, qi) when key_i = key_j ->
                    Nca_rewriting.Containment.contained qj qi
                    && (i < j
                       || not (Nca_rewriting.Containment.contained qi qj))
                | _ -> false)
              cqs
          in
          Option.map
            (fun (i, ri, _) ->
              D.make ~code:"NCA006" ~severity:D.Warning
                ~location:(rule_site j rj)
                ~certificate:
                  (Fmt.str "q(%s) ⊑ q(%s) (Chandra–Merlin)" (Rule.name rj)
                     (Rule.name ri))
                ~hint:"delete the shadowed rule — it derives nothing new"
                (Fmt.str
                   "rule is subsumed by rule %s (#%d): whenever it fires, %s \
                    already derives the same head atoms"
                   (Rule.name ri) i (Rule.name ri)))
            shadowing)
    cqs

(* ------------------------------------------------------------------ *)
(* NCA007 — weak acyclicity *)

let weak_acyclicity (p : Parser.program) =
  match Nca_chase.Acyclicity.offending_cycle p.rules with
  | None -> []
  | Some cycle ->
      (* a stronger criterion of the hierarchy may still certify
         termination — then the cycle is information, not a warning *)
      let severity =
        match (Termination.classify_cached p.rules).verdict with
        | Termination.Terminating _ -> D.Info
        | _ -> D.Warning
      in
      [
        D.make ~code:"NCA007" ~severity ~location:D.Program
          ~certificate:
            (Fmt.str "%a"
               Fmt.(list ~sep:(any " → ") Nca_chase.Acyclicity.pp_position)
               cycle)
          ~hint:
            "not fatal — bdd rule sets need not be weakly acyclic (the \
             paper's Example 1 is not) — but termination then needs \
             another argument"
          "not weakly acyclic: the position dependency graph has a cycle \
           through a special edge, so the oblivious chase may not terminate \
           [Fagin et al.]";
      ]

(* ------------------------------------------------------------------ *)
(* NCA008 — forward-existentiality violations (Def. 21) *)

let forward_existential p =
  List.filter_map
    (fun (i, r) ->
      if Rule.is_datalog r then None
      else
        let frontier = Rule.frontier r and exist = Rule.exist_vars r in
        let offending =
          List.concat
            (List.mapi
               (fun k a ->
                 match Atom.args a with
                 | [ x; y ] ->
                     (if Term.Set.mem x frontier then []
                      else
                        [
                          Fmt.str "head atom #%d %a: position 0 holds %a, \
                                   not a frontier variable" k Atom.pp a
                            Term.pp x;
                        ])
                     @
                     if Term.Set.mem y exist then []
                     else
                       [
                         Fmt.str "head atom #%d %a: position 1 holds %a, \
                                  not an existential variable" k Atom.pp a
                           Term.pp y;
                       ]
                 | _ -> [])
               (Rule.head r))
        in
        if offending = [] then None
        else
          Some
            (D.make ~code:"NCA008" ~severity:D.Warning
               ~location:(rule_site i r)
               ~certificate:(String.concat "; " offending)
               ~hint:"streamlining (§4.3) rewrites heads into ρ_init/ρ_∃/ρ_DL \
                      form, restoring the property"
               "existential rule is not forward-existential (Def. 21): some \
                binary head atom is not frontier-to-existential"))
    (indexed_rules p)

(* ------------------------------------------------------------------ *)
(* NCA009 — predicate-uniqueness violations (Def. 22) *)

let predicate_unique p =
  List.filter_map
    (fun (i, r) ->
      if Rule.is_datalog r then None
      else
        let dups =
          List.filteri
            (fun k a ->
              List.exists
                (fun b -> Symbol.equal (Atom.pred a) (Atom.pred b))
                (List.filteri (fun k' _ -> k' < k) (Rule.head r)))
            (Rule.head r)
        in
        if dups = [] then None
        else
          Some
            (D.make ~code:"NCA009" ~severity:D.Warning
               ~location:(rule_site i r)
               ~certificate:
                 (Fmt.str "repeated head atoms: %a" Atom.pp_list dups)
               ~hint:"streamlining (§4.3) gives each head atom a private \
                      predicate"
               "existential rule is not predicate-unique (Def. 22): a head \
                predicate occurs more than once"))
    (indexed_rules p)

(* ------------------------------------------------------------------ *)
(* NCA010 — existential cascade risk *)

module SG = Nca_graph.Digraph.Make (struct
  type t = Symbol.t

  let compare = Symbol.compare
  let pp = Symbol.pp
end)

let existential_cascade (p : Parser.program) =
  let certified_terminating () =
    match (Termination.classify_cached p.rules).verdict with
    | Termination.Terminating _ -> true
    | _ -> false
  in
  let g =
    List.fold_left
      (fun g r ->
        List.fold_left
          (fun g bp ->
            List.fold_left
              (fun g hp -> SG.add_edge bp hp g)
              g
              (Symbol.Set.elements (preds_of_atoms (Rule.head r))))
          g
          (Symbol.Set.elements (preds_of_atoms (Rule.body r))))
      SG.empty p.rules
  in
  let diags =
    List.filter_map
      (fun (i, r) ->
        if Rule.is_datalog r then None
        else
          (* name order: the first feedback pair found is printed in the
             certificate, so the scan order must be byte-stable *)
          let body = Symbol.sorted_elements (preds_of_atoms (Rule.body r)) in
          let head = Symbol.sorted_elements (preds_of_atoms (Rule.head r)) in
          let feedback =
            List.concat_map
              (fun hp ->
                List.filter_map
                  (fun bp ->
                    if Symbol.equal hp bp || SG.reaches hp bp g then
                      Some (hp, bp)
                    else None)
                  body)
              head
          in
          match feedback with
          | [] -> None
          | (hp, bp) :: _ ->
              Some
                (D.make ~code:"NCA010" ~severity:D.Warning
                   ~location:(rule_site i r)
                   ~certificate:
                     (Fmt.str "%a →* %a feeds the rule's own body" Symbol.pp
                        hp Symbol.pp bp)
                   ~hint:"each firing can enable another — see NCA007 for \
                          the position-level (finer) criterion"
                   "existential rule feeds its own body through the \
                    predicate dependency graph — unbounded null cascade \
                    risk"))
      (indexed_rules p)
  in
  (* predicate-level feedback is the coarsest signal in the hierarchy:
     when the classifier certifies termination outright, the cascade
     cannot be unbounded and the warning would be noise *)
  if diags <> [] && certified_terminating () then [] else diags

(* ------------------------------------------------------------------ *)
(* NCA011 — trivial loop *)

let is_loop_atom a =
  match Atom.args a with
  | [ s; t ] -> Term.equal s t
  | _ -> false

let trivial_loop (p : Parser.program) =
  let from_rules =
    List.filter_map
      (fun (i, r) ->
        match List.filter is_loop_atom (Rule.head r) with
        | [] -> None
        | loops ->
            Some
              (D.make ~code:"NCA011" ~severity:D.Warning
                 ~location:(rule_site i r)
                 ~certificate:(Fmt.str "head atoms: %a" Atom.pp_list loops)
                 ~hint:
                   "once a loop is derivable, Loop_E is entailed and the \
                    tournament question (Thm. 1) trivializes"
                 "rule head derives a loop P(x,x) syntactically (Def. 10)"))
      (indexed_rules p)
  in
  let from_facts =
    Instance.fold
      (fun a acc ->
        if is_loop_atom a then
          D.make ~code:"NCA011" ~severity:D.Warning ~location:D.Program
            ~certificate:(Fmt.str "fact: %a" Atom.pp a)
            ~hint:
              "once a loop is present, Loop_E holds and the tournament \
               question (Thm. 1) trivializes"
            (Fmt.str "the instance contains the loop fact %a (Def. 10)"
               Atom.pp a)
          :: acc
        else acc)
      p.facts []
  in
  from_rules @ from_facts

(* ------------------------------------------------------------------ *)
(* NCA012 — non-binary signature *)

let non_binary p =
  Symbol.Set.fold
    (fun s acc ->
      if Symbol.arity s <= 2 then acc
      else
        D.make ~code:"NCA012" ~severity:D.Info
          ~location:
            (D.Predicate { name = Symbol.name s; arity = Symbol.arity s })
          ~hint:"reification (§4.2) encodes it into binary position \
                 predicates; `nocliques surgery` does this automatically"
          (Fmt.str
             "predicate %a has arity %d > 2 — outside the paper's binary \
              signatures (§2.1)"
             Symbol.pp s (Symbol.arity s))
        :: acc)
    (program_signature p) []

(* ------------------------------------------------------------------ *)
(* NCA014–NCA018 — the acyclicity hierarchy (Termination classifier) *)

module T = Termination

(* The passes below all consult {!Termination.classify_cached}, which
   memoizes the classification (including the budgeted critical-instance
   chase) so the hierarchy runs once per lint invocation, not once per
   pass. Diagnostics print rule and variable names only — never null
   ids, which are not stable across in-process runs. *)

let hierarchy_severity (t : T.t) =
  (* a cycle in a weaker criterion's graph is only informational when a
     stronger criterion already certifies termination *)
  match t.T.verdict with T.Terminating _ -> D.Info | _ -> D.Warning

(* render [v0 … vk] (closing edge vk → v0) as v0 → … → vk → v0 *)
let pp_cycle pp_v ppf = function
  | [] -> ()
  | v0 :: _ as cycle ->
      Fmt.(list ~sep:(any " → ") pp_v) ppf (cycle @ [ v0 ])

let joint_acyclicity (p : Parser.program) =
  let t = T.classify_cached p.rules in
  match t.T.ja_cycle with
  | None -> []
  | Some cycle ->
      [
        D.make ~code:"NCA014" ~severity:(hierarchy_severity t)
          ~location:D.Program
          ~certificate:
            (Fmt.str "%a" (pp_cycle (T.pp_vertex p.rules)) cycle)
          ~hint:
            "not fatal — joint acyclicity is only sufficient; the \
             classifier falls through to super-weak acyclicity (NCA015) \
             and the critical-instance test (NCA016)"
          "not jointly acyclic: the existential-variable dependency graph \
           has a cycle, so a null invented for each variable on it can \
           trigger the next [Krötzsch & Rudolph]";
      ]

let super_weak_acyclicity (p : Parser.program) =
  let t = T.classify_cached p.rules in
  match t.T.swa_cycle with
  | None -> []
  | Some cycle ->
      let pp_rule ppf k =
        Fmt.pf ppf "%s#%d" (Rule.name (List.nth p.rules k)) k
      in
      [
        D.make ~code:"NCA015" ~severity:(hierarchy_severity t)
          ~location:D.Program
          ~certificate:(Fmt.str "%a" (pp_cycle pp_rule) cycle)
          ~hint:
            "place unification is approximated by predicate positions — \
             a cycle here still leaves the critical-instance test \
             (NCA016) to certify termination"
          "not super-weakly acyclic: the trigger graph over existential \
           rules has a cycle [Marnette]";
      ]

let mfa (p : Parser.program) =
  let t = T.classify_cached p.rules in
  match (t.T.cyclic_term, t.T.verdict) with
  | Some (k, z), _ ->
      let r = List.nth p.rules k in
      [
        D.make ~code:"NCA016" ~severity:D.Warning ~location:(rule_site k r)
          ~certificate:
            (Fmt.str "the nulls invented for %a of rule %s#%d nest"
               Term.pp z (Rule.name r) k)
          ~hint:
            "the classical MFA test fails exactly on cyclic terms — \
             NCA017 reports a divergence proof when one is found"
          "MFA fails: the critical-instance chase nests a null inside an \
           ancestor null invented by the same rule and variable \
           [Cuenca Grau et al.]";
      ]
  | None, T.Unknown e ->
      [
        D.make ~code:"NCA016" ~severity:D.Info ~location:D.Program
          ~certificate:(Fmt.str "%a" Nca_obs.Exhausted.pp e)
          ~hint:
            "raise the budget (nocliques classify --depth/--max-atoms) \
             or supply a manual termination argument"
          "MFA inconclusive: the critical-instance chase exhausted its \
           budget before saturating or finding a cyclic term";
      ]
  | None, _ -> []

let non_termination (p : Parser.program) =
  let t = T.classify_cached p.rules in
  match t.T.verdict with
  | T.Non_terminating w ->
      let r = List.nth p.rules w.T.w_rule in
      [
        D.make ~code:"NCA017" ~severity:D.Warning
          ~location:(rule_site w.T.w_rule r)
          ~certificate:(Fmt.str "%a" (T.pp_witness p.rules) w)
          ~hint:
            "every firing yields a new trigger whose frontier image holds \
             the null just invented — break the feedback, or chase only \
             under budgets"
          "the semi-oblivious chase provably diverges on the critical \
           instance: the rule pumps a frontier variable into its own \
           existential output";
      ]
  | _ -> []

let termination_certified (p : Parser.program) =
  (* Datalog-only programs terminate trivially — reporting that would be
     noise on every clean program, so the pass speaks only when an
     existential rule is present *)
  if List.for_all Rule.is_datalog p.rules then []
  else
    let t = T.classify_cached p.rules in
    match t.T.verdict with
    | T.Terminating (c, cert) ->
        [
          D.make ~code:"NCA018" ~severity:D.Info ~location:D.Program
            ~certificate:(Fmt.str "%a" (T.pp_certificate p.rules) cert)
            ~hint:
              "budgets can be relaxed — the semi-oblivious chase \
               saturates on every instance"
            (Fmt.str
               "chase termination statically certified (criterion: %a)"
               T.pp_criterion c);
        ]
    | _ -> []

(* ------------------------------------------------------------------ *)
(* registry *)

let registry =
  [
    {
      code = "NCA002";
      slug = "arity-drift";
      doc = "same predicate name used with different arities";
      run = arity_drift;
    };
    {
      code = "NCA003";
      slug = "unsafe-head-var";
      doc = "head variable missing from the body (existential, invents nulls)";
      run = unsafe_head_vars;
    };
    {
      code = "NCA004";
      slug = "dead-rule";
      doc = "rule whose body predicates can never all be derived";
      run = dead_rules;
    };
    {
      code = "NCA005";
      slug = "unused-predicate";
      doc = "predicate derived but consumed by no body and no query";
      run = unused_predicates;
    };
    {
      code = "NCA006";
      slug = "shadowed-rule";
      doc = "rule subsumed by a more general rule (CQ containment)";
      run = shadowed_rules;
    };
    {
      code = "NCA007";
      slug = "weak-acyclicity";
      doc = "position dependency cycle through a special edge";
      run = weak_acyclicity;
    };
    {
      code = "NCA008";
      slug = "forward-existential";
      doc = "existential rule violating Def. 21 (with offending positions)";
      run = forward_existential;
    };
    {
      code = "NCA009";
      slug = "predicate-unique";
      doc = "existential rule repeating a head predicate (Def. 22)";
      run = predicate_unique;
    };
    {
      code = "NCA010";
      slug = "existential-cascade";
      doc = "existential rule feeding its own body (predicate-level)";
      run = existential_cascade;
    };
    {
      code = "NCA011";
      slug = "trivial-loop";
      doc = "loop atom P(x,x) in a head or a fact (Def. 10)";
      run = trivial_loop;
    };
    {
      code = "NCA012";
      slug = "non-binary";
      doc = "predicate of arity > 2 (needs reification, §4.2)";
      run = non_binary;
    };
    {
      code = "NCA014";
      slug = "joint-acyclicity";
      doc = "existential-variable dependency cycle (joint acyclicity fails)";
      run = joint_acyclicity;
    };
    {
      code = "NCA015";
      slug = "super-weak-acyclicity";
      doc = "trigger-graph cycle over existential rules (SWA fails)";
      run = super_weak_acyclicity;
    };
    {
      code = "NCA016";
      slug = "mfa";
      doc = "critical-instance chase found a cyclic term or ran out of budget";
      run = mfa;
    };
    {
      code = "NCA017";
      slug = "nonterminating";
      doc = "pumping witness: the critical-instance chase provably diverges";
      run = non_termination;
    };
    {
      code = "NCA018";
      slug = "termination";
      doc = "strongest termination criterion certified, with certificate";
      run = termination_certified;
    };
  ]

let find code =
  List.find_opt (fun p -> String.equal p.code code) registry
