(** The lint pass registry.

    Each pass answers one class-membership or hygiene question about a
    parsed program and reports its findings as typed diagnostics. The
    passes deepen machinery that already exists across the layers:

    - [NCA002] arity drift (logic layer — same name, different arities)
    - [NCA003] unsafe/existential head variables (logic layer, §2.1)
    - [NCA004] dead rules via predicate-dependency reachability
    - [NCA005] derived-but-unused predicates
    - [NCA006] rule shadowing via {!Nca_rewriting.Containment}
    - [NCA007] weak acyclicity, with the
      {!Nca_chase.Acyclicity.offending_cycle} certificate
    - [NCA008] forward-existentiality with offending atom positions
      (Def. 21, surgery layer)
    - [NCA009] predicate-uniqueness (Def. 22, surgery layer)
    - [NCA010] existential-cascade / non-termination risk
    - [NCA011] trivial loops [P(x,x)] (Def. 10)
    - [NCA012] non-binary signature (needs reification, §4.2)
    - [NCA014] joint acyclicity, with the existential-variable cycle
    - [NCA015] super-weak acyclicity, with the trigger-graph cycle
    - [NCA016] MFA over the critical instance (cyclic term / exhausted)
    - [NCA017] provable non-termination, with a pumping witness
    - [NCA018] termination certified, naming the strongest criterion

    [NCA014]–[NCA018] all consult {!Termination.classify_cached}, so
    the budgeted critical-instance chase runs once per lint invocation.
    When the classifier certifies termination, [NCA007] and [NCA014]/
    [NCA015] downgrade to [Info] and [NCA010] stays silent.

    Codes [NCA001] (parse error) and [NCA013] (pipeline invariant) are
    emitted by {!Lint}, not by a registry pass. *)

open Nca_logic

type t = {
  code : string;  (** stable [NCA0xx] code *)
  slug : string;  (** kebab-case pass name *)
  doc : string;  (** one-line description *)
  run : Parser.program -> Diagnostic.t list;
}

val registry : t list
(** All passes, in code order. *)

val find : string -> t option
(** Lookup by code. *)
