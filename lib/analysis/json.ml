type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v =
  (* conventional 2-spaces-per-level indentation, stable across runs *)
  let pad n = String.make (2 * n) ' ' in
  let rec go depth = function
    | (Null | Bool _ | Int _ | String _) as v -> Fmt.string ppf (to_string v)
    | List [] -> Fmt.string ppf "[]"
    | List vs ->
        Fmt.string ppf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Fmt.string ppf ",\n";
            Fmt.string ppf (pad (depth + 1));
            go (depth + 1) v)
          vs;
        Fmt.pf ppf "\n%s]" (pad depth)
    | Obj [] -> Fmt.string ppf "{}"
    | Obj fields ->
        Fmt.string ppf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Fmt.string ppf ",\n";
            Fmt.pf ppf "%s%s: " (pad (depth + 1)) (to_string (String k));
            go (depth + 1) v)
          fields;
        Fmt.pf ppf "\n%s}" (pad depth)
  in
  go 0 v

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse of string

type cursor = { src : string; mutable at : int }

let fail cu msg = raise (Parse (Printf.sprintf "offset %d: %s" cu.at msg))
let peek cu = if cu.at < String.length cu.src then Some cu.src.[cu.at] else None

let rec skip cu =
  match peek cu with
  | Some (' ' | '\t' | '\n' | '\r') ->
      cu.at <- cu.at + 1;
      skip cu
  | _ -> ()

let eat cu c =
  match peek cu with
  | Some d when d = c -> cu.at <- cu.at + 1
  | _ -> fail cu (Printf.sprintf "expected %C" c)

let literal cu word value =
  let n = String.length word in
  if
    cu.at + n <= String.length cu.src
    && String.sub cu.src cu.at n = word
  then begin
    cu.at <- cu.at + n;
    value
  end
  else fail cu (Printf.sprintf "expected %s" word)

let utf8_of_code buf u =
  (* BMP codepoints only — sufficient for \uXXXX escapes we emit *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string cu =
  eat cu '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cu with
    | None -> fail cu "unterminated string"
    | Some '"' -> cu.at <- cu.at + 1
    | Some '\\' ->
        cu.at <- cu.at + 1;
        (match peek cu with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
            if cu.at + 4 >= String.length cu.src then
              fail cu "truncated \\u escape";
            let hex = String.sub cu.src (cu.at + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some u -> utf8_of_code buf u
            | None -> fail cu "invalid \\u escape");
            cu.at <- cu.at + 4
        | _ -> fail cu "invalid escape");
        cu.at <- cu.at + 1;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        cu.at <- cu.at + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_int cu =
  let start = cu.at in
  if peek cu = Some '-' then cu.at <- cu.at + 1;
  while
    match peek cu with Some ('0' .. '9') -> true | _ -> false
  do
    cu.at <- cu.at + 1
  done;
  (match peek cu with
  | Some ('.' | 'e' | 'E') -> fail cu "floats are not supported"
  | _ -> ());
  match int_of_string_opt (String.sub cu.src start (cu.at - start)) with
  | Some n -> n
  | None -> fail cu "expected a number"

let rec parse_value cu =
  skip cu;
  match peek cu with
  | None -> fail cu "unexpected end of input"
  | Some '"' -> String (parse_string cu)
  | Some 'n' -> literal cu "null" Null
  | Some 't' -> literal cu "true" (Bool true)
  | Some 'f' -> literal cu "false" (Bool false)
  | Some '[' ->
      cu.at <- cu.at + 1;
      skip cu;
      if peek cu = Some ']' then begin
        cu.at <- cu.at + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value cu in
          skip cu;
          match peek cu with
          | Some ',' ->
              cu.at <- cu.at + 1;
              elems (v :: acc)
          | Some ']' ->
              cu.at <- cu.at + 1;
              List.rev (v :: acc)
          | _ -> fail cu "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '{' ->
      cu.at <- cu.at + 1;
      skip cu;
      if peek cu = Some '}' then begin
        cu.at <- cu.at + 1;
        Obj []
      end
      else begin
        let field () =
          skip cu;
          let k = parse_string cu in
          skip cu;
          eat cu ':';
          (k, parse_value cu)
        in
        let rec fields acc =
          let f = field () in
          skip cu;
          match peek cu with
          | Some ',' ->
              cu.at <- cu.at + 1;
              fields (f :: acc)
          | Some '}' ->
              cu.at <- cu.at + 1;
              List.rev (f :: acc)
          | _ -> fail cu "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> Int (parse_int cu)

let parse s =
  let cu = { src = s; at = 0 } in
  match parse_value cu with
  | v ->
      skip cu;
      if cu.at <> String.length s then Error "trailing input"
      else Ok v
  | exception Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None
