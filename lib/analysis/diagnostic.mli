(** Typed lint diagnostics.

    Every class-membership question the paper's argument relies on — and
    every structural hazard the engines can run into — is reported as a
    diagnostic: a stable [NCA0xx] code, a severity, a location inside the
    program, a human message, and optionally a machine-checkable
    certificate (e.g. the offending position cycle of a weak-acyclicity
    violation) and a fix hint. PROOF_MAP.md maps each code to the paper
    statement it checks. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val pp_severity : severity Fmt.t

type location =
  | Program  (** the rule set / program as a whole *)
  | Rule_site of { name : string; index : int }
      (** a rule, by name and 0-based position in the program *)
  | Predicate of { name : string; arity : int }
  | Span of { line : int; column : int }  (** a source position (1-based) *)

val pp_location : location Fmt.t

type t = {
  code : string;  (** stable code, ["NCA001"] … *)
  severity : severity;
  location : location;
  message : string;
  certificate : string option;
      (** evidence, e.g. a position cycle or offending atom positions *)
  hint : string option;  (** a suggested fix *)
}

val make :
  ?certificate:string ->
  ?hint:string ->
  code:string ->
  severity:severity ->
  location:location ->
  string ->
  t

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then location. *)

val pp : t Fmt.t
(** The text renderer:
    [NCA007 warning  rule g (#0): not weakly acyclic …] with indented
    certificate/hint lines. *)

val to_json : t -> Json.t

val of_json : Json.t -> t option
(** Inverse of {!to_json}; [None] on malformed input. The golden tests
    assert the round-trip. *)
