(** A minimal JSON document type with printer and parser.

    The lint engine's machine-readable output must not pull in an external
    dependency, so this module implements the small JSON subset the
    diagnostics need: null, booleans, (exact) integers, strings, arrays
    and objects. Strings are UTF-8 and escaped per RFC 8259; the parser
    accepts everything {!to_string} emits, which is what the round-trip
    golden tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. *)

val pp : t Fmt.t
(** Indented rendering (2-space), stable across runs — the golden-test
    format. *)

val parse : string -> (t, string) result
(** Inverse of {!to_string} / {!pp}. Floats are rejected ([Error]):
    diagnostics only carry integers. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
