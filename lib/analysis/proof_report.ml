open Nca_logic
module Proof = Nca_provenance.Proof
module Certificate = Nca_core.Certificate

let schema = "nocliques/proof/v1"
let atom_str a = Fmt.str "%a" Atom.pp a
let term_str t = Fmt.str "%a" Term.pp t
let query_str q = Fmt.str "%a" Cq.pp q

let hom_json h =
  Json.List
    (List.map
       (fun (x, t) ->
         Json.List [ Json.String (term_str x); Json.String (term_str t) ])
       (Subst.bindings h))

let step_json (node : Proof.t) =
  Json.Obj
    [
      ("fact", Json.String (atom_str node.Proof.fact));
      ( "rule",
        match node.Proof.rule with
        | None -> Json.Null
        | Some r -> Json.String (Rule.name r) );
      ("round", Json.Int node.Proof.round);
      ("hom", hom_json node.Proof.hom);
      ( "premises",
        Json.List
          (List.map
             (fun (p : Proof.t) -> Json.String (atom_str p.Proof.fact))
             node.Proof.premises) );
    ]

(* premises-first, each distinct fact once: the list is its own
   topological order, so a consumer can replay it front to back *)
let proof_steps root =
  List.rev (Proof.fold_distinct (fun acc node -> step_json node :: acc) [] root)

let proof_body (root : Proof.t) =
  [
    ("root", Json.String (atom_str root.Proof.fact));
    ("steps", Json.List (proof_steps root));
  ]

let of_proof root =
  Json.Obj
    (("schema", Json.String schema) :: ("kind", Json.String "proof")
    :: proof_body root)

let witness_json = function
  | None -> Json.Null
  | Some (q, h) ->
      Json.Obj [ ("query", Json.String (query_str q)); ("hom", hom_json h) ]

let removal_step_json (st : Certificate.step) =
  Json.Obj
    [
      ("query", Json.String (query_str st.Certificate.query));
      ("hom", hom_json st.Certificate.hom);
      ( "timestamps",
        Json.List
          (List.map
             (fun n -> Json.Int n)
             (Certificate.MS.to_list st.Certificate.timestamps)) );
      ( "peak",
        match st.Certificate.peak with
        | None -> Json.Null
        | Some z -> Json.String (term_str z) );
    ]

let edge_json (ed : Certificate.edge) =
  Json.Obj
    [
      ("source", Json.String (term_str ed.Certificate.source));
      ("target", Json.String (term_str ed.Certificate.target));
      ("fact", Json.String (atom_str ed.Certificate.fact));
      ("witness", witness_json ed.Certificate.witness);
      ( "removal",
        Json.List (List.map removal_step_json ed.Certificate.removal) );
      ("valley", witness_json ed.Certificate.valley);
    ]

let of_certificate (c : Certificate.t) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("kind", Json.String "certificate");
      ("e", Json.String (Symbol.name c.Certificate.e));
      ( "rules",
        Json.List
          (List.map
             (fun r -> Json.String (Rule.name r))
             c.Certificate.rules) );
      ( "tournament",
        Json.List
          (List.map
             (fun t -> Json.String (term_str t))
             c.Certificate.tournament) );
      ("edges", Json.List (List.map edge_json c.Certificate.edges));
      ("loop", witness_json c.Certificate.loop);
      ( "support",
        Json.List
          (List.map
             (fun p -> Json.Obj (proof_body p))
             c.Certificate.support) );
    ]
