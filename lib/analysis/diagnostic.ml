type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let pp_severity ppf s = Fmt.string ppf (severity_to_string s)

type location =
  | Program
  | Rule_site of { name : string; index : int }
  | Predicate of { name : string; arity : int }
  | Span of { line : int; column : int }

let pp_location ppf = function
  | Program -> Fmt.string ppf "program"
  | Rule_site { name; index } -> Fmt.pf ppf "rule %s (#%d)" name index
  | Predicate { name; arity } -> Fmt.pf ppf "predicate %s/%d" name arity
  | Span { line; column } -> Fmt.pf ppf "line %d, column %d" line column

let location_rank = function
  | Program -> (0, 0, "")
  | Span { line; column } -> (1, line, string_of_int column)
  | Rule_site { index; name } -> (2, index, name)
  | Predicate { name; arity } -> (3, arity, name)

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  certificate : string option;
  hint : string option;
}

let make ?certificate ?hint ~code ~severity ~location message =
  { code; severity; location; message; certificate; hint }

let compare a b =
  let key d =
    (severity_rank d.severity, d.code, location_rank d.location, d.message)
  in
  Stdlib.compare (key a) (key b)

let pp ppf d =
  Fmt.pf ppf "@[<v>%s %a  %a: %s" d.code pp_severity d.severity pp_location
    d.location d.message;
  Option.iter (fun c -> Fmt.pf ppf "@,  ↳ certificate: %s" c) d.certificate;
  Option.iter (fun h -> Fmt.pf ppf "@,  ↳ hint: %s" h) d.hint;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON *)

let location_to_json = function
  | Program -> Json.Obj [ ("kind", Json.String "program") ]
  | Rule_site { name; index } ->
      Json.Obj
        [
          ("kind", Json.String "rule");
          ("name", Json.String name);
          ("index", Json.Int index);
        ]
  | Predicate { name; arity } ->
      Json.Obj
        [
          ("kind", Json.String "predicate");
          ("name", Json.String name);
          ("arity", Json.Int arity);
        ]
  | Span { line; column } ->
      Json.Obj
        [
          ("kind", Json.String "span");
          ("line", Json.Int line);
          ("column", Json.Int column);
        ]

let to_json d =
  let optional key v rest =
    match v with Some s -> (key, Json.String s) :: rest | None -> rest
  in
  Json.Obj
    (( ("code", Json.String d.code)
     :: ("severity", Json.String (severity_to_string d.severity))
     :: ("location", location_to_json d.location)
     :: ("message", Json.String d.message)
     :: optional "certificate" d.certificate
          (optional "hint" d.hint []) ))

let location_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match str "kind" with
  | Some "program" -> Some Program
  | Some "rule" -> (
      match (str "name", int "index") with
      | Some name, Some index -> Some (Rule_site { name; index })
      | _ -> None)
  | Some "predicate" -> (
      match (str "name", int "arity") with
      | Some name, Some arity -> Some (Predicate { name; arity })
      | _ -> None)
  | Some "span" -> (
      match (int "line", int "column") with
      | Some line, Some column -> Some (Span { line; column })
      | _ -> None)
  | _ -> None

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  match
    ( str "code",
      Option.bind (str "severity") severity_of_string,
      Option.bind (Json.member "location" j) location_of_json,
      str "message" )
  with
  | Some code, Some severity, Some location, Some message ->
      Some
        {
          code;
          severity;
          location;
          message;
          certificate = str "certificate";
          hint = str "hint";
        }
  | _ -> None
