open Nca_logic
module D = Diagnostic

type summary = { errors : int; warnings : int; infos : int }

let summarize ds =
  List.fold_left
    (fun s (d : D.t) ->
      match d.severity with
      | D.Error -> { s with errors = s.errors + 1 }
      | D.Warning -> { s with warnings = s.warnings + 1 }
      | D.Info -> { s with infos = s.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 }
    ds

let selected_passes select =
  match select with
  | None -> Passes.registry
  | Some codes ->
      List.filter
        (fun (p : Passes.t) -> List.mem p.code codes)
        Passes.registry

let run ?select program =
  let ds =
    List.concat_map
      (fun (p : Passes.t) -> p.run program)
      (selected_passes select)
  in
  List.sort D.compare ds

let wanted select code =
  match select with None -> true | Some codes -> List.mem code codes

let parse_error_diagnostic position message =
  let location =
    if position = Parser.whole_input then D.Program
    else D.Span { line = position.Parser.line; column = position.Parser.column }
  in
  D.make ~code:"NCA001" ~severity:D.Error ~location
    ~hint:"the grammar is documented in Parser's interface"
    (Fmt.str "parse error: %s" message)

let lint_source ?select source =
  match Parser.parse_program source with
  | program -> run ?select program
  | exception Parser.Error { position; message } ->
      if wanted select "NCA001" then [ parse_error_diagnostic position message ]
      else []

(* Failed pipeline stage invariants, as diagnostics: the surgery claims to
   establish regality (Def. 27); when a stage's post-condition does not
   hold we report it instead of silently continuing. A blown rewriting
   budget is a Warning (the result is still sound); any other violated
   invariant is a bug in the surgery or its input and is an Error. *)
let of_pipeline (p : Nca_surgery.Pipeline.t) =
  List.map
    (fun (stage, (c : Nca_surgery.Pipeline.check)) ->
      let severity =
        if c.property = "rewriting-complete" then D.Warning else D.Error
      in
      D.make ~code:"NCA013" ~severity ~location:D.Program
        ~certificate:(Fmt.str "stage %s, property %s" stage c.property)
        ~hint:"raise --rounds / disjunct budgets, or report a surgery bug"
        (Fmt.str "surgery stage %s violated its invariant %s: %s" stage
           c.property c.detail))
    (Nca_surgery.Pipeline.failed_checks p)
  |> List.sort D.compare

(* ------------------------------------------------------------------ *)
(* rendering *)

let pp_summary ppf s =
  Fmt.pf ppf "%d error%s, %d warning%s, %d info%s" s.errors
    (if s.errors = 1 then "" else "s")
    s.warnings
    (if s.warnings = 1 then "" else "s")
    s.infos
    (if s.infos = 1 then "" else "s")

let pp_report ppf ds =
  List.iter (fun d -> Fmt.pf ppf "%a@." D.pp d) ds;
  Fmt.pf ppf "%a@." pp_summary (summarize ds)

let report_to_json ds =
  let s = summarize ds in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("diagnostics", Json.List (List.map D.to_json ds));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int s.errors);
            ("warnings", Json.Int s.warnings);
            ("infos", Json.Int s.infos);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* exit policy *)

let exit_status ?max_warnings ds =
  let s = summarize ds in
  if s.errors > 0 then 1
  else
    match max_warnings with
    | Some n when s.warnings > n -> 1
    | _ -> 0
