(** The lint engine: run the pass registry over a program, render the
    findings, and decide a CI exit status.

    Drives the [nocliques lint] command. Severities gate the exit status:
    errors always fail, warnings only fail past [--max-warnings], infos
    never fail. *)

open Nca_logic

type summary = { errors : int; warnings : int; infos : int }

val summarize : Diagnostic.t list -> summary

val run : ?select:string list -> Parser.program -> Diagnostic.t list
(** Run every registry pass (or only those whose code appears in
    [select]) and return the findings sorted by severity, code and
    location. *)

val lint_source : ?select:string list -> string -> Diagnostic.t list
(** Parse and lint program text. A parse failure yields the single
    [NCA001] diagnostic carrying the error's source span rather than an
    exception. *)

val of_pipeline : Nca_surgery.Pipeline.t -> Diagnostic.t list
(** [NCA013] diagnostics for every failed stage invariant of a
    regalization pipeline — the surgery integration of the lint engine.
    An exhausted rewriting budget is a [Warning]; any other violated
    post-condition is an [Error]. *)

val pp_summary : summary Fmt.t
val pp_report : Diagnostic.t list Fmt.t
(** Diagnostics one per line (with certificate/hint continuation lines),
    then the summary. *)

val report_to_json : Diagnostic.t list -> Json.t
(** [{version; diagnostics; summary}] — the [--json] document. *)

val exit_status : ?max_warnings:int -> Diagnostic.t list -> int
(** [0] when clean, [1] when an error was reported or the warning count
    exceeds [max_warnings]. *)
