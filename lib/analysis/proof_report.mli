(** Machine-readable rendering of derivation proofs and certificates.

    Bridges {!Nca_provenance.Proof} and {!Nca_core.Certificate} to the
    toolkit's JSON document type — the payload behind
    [nocliques --proof-json]. The shape is versioned
    ([nocliques/proof/v1]) and covered by golden tests:

    {v
    { "schema": "nocliques/proof/v1",
      "kind": "proof",
      "root": "E(a, b)",
      "steps": [ { "fact": "E(a, b)", "rule": "r1", "round": 2,
                   "hom": [["x", "a"], ["y", "b"]],
                   "premises": ["R(a)", ...] }, ... ] }
    v}

    Steps are listed premises-first (topologically); [rule] is [null] and
    [round] is [0] for input facts; [premises] reference other steps by
    their printed fact. A certificate document ([kind = "certificate"])
    adds the tournament, per-edge evidence and the support proofs. *)

val schema : string
(** ["nocliques/proof/v1"]. *)

val of_proof : Nca_provenance.Proof.t -> Json.t
(** The whole derivation DAG as one enveloped document. *)

val of_certificate : Nca_core.Certificate.t -> Json.t
(** The certificate chain — tournament, edges (witness, removal trace,
    valley), loop, support proofs — as one enveloped document. *)
