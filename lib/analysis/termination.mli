(** Static chase-termination classification: the acyclicity hierarchy.

    The classifier runs the standard hierarchy of decidable sufficient
    conditions for termination of the semi-oblivious (Skolem) chase, in
    increasing generality:

    - {b Datalog}: no existential variables at all;
    - {b weak acyclicity} [Fagin et al.]: no cycle through a special
      edge of the position dependency graph ({!Nca_chase.Acyclicity});
    - {b joint acyclicity} [Krötzsch & Rudolph]: the dependency graph
      over existential {e variables} — [z → z'] when a null invented
      for [z] can reach every body position of a frontier variable of
      the rule of [z'] — is acyclic;
    - {b super-weak acyclicity} [Marnette]: the trigger graph over
      existential {e rules} (the same movement relation projected onto
      rules) is acyclic. Place unification is approximated by
      predicate–position equality, which only enlarges movement sets,
      so the implemented test is sound;
    - {b MFA} (model-faithful acyclicity, operational variant): the
      semi-oblivious chase of the {e critical instance}
      ({!Nca_logic.Instance.critical}) saturates within a
      {!Nca_obs.Budget.t}. Saturation on the critical instance proves
      termination on every instance; a {e cyclic term} (a null created
      by the same rule and existential variable as one of its
      ancestors) aborts the run early, since the classical MFA test
      fails exactly then.

    Each criterion implies the next (WA ⇒ JA ⇒ SWA ⇒ MFA). Every
    positive verdict carries a machine-checkable certificate, every
    negative one a concrete witness, and {!check} verifies either
    independently of the classifier — the same referee discipline as
    {!Nca_provenance.Proof}. *)

open Nca_logic

type criterion =
  | Datalog
  | Weak_acyclicity
  | Joint_acyclicity
  | Super_weak_acyclicity
  | Mfa

val criterion_name : criterion -> string
(** Short stable machine tag: ["datalog"], ["weak-acyclicity"], …. *)

val pp_criterion : criterion Fmt.t

(** {1 Certificates and witnesses} *)

type vertex = int * Term.t
(** A vertex of the joint-acyclicity graph: (rule index, existential
    variable). *)

type mfa_run = {
  mfa_depth : int;  (** depth at which the critical chase saturated *)
  mfa_atoms : int;  (** atoms of the saturated result *)
  mfa_proof : Nca_provenance.Proof.t option;
      (** derivation of a maximal-round fact of the chase, checkable by
          {!Nca_provenance.Proof.check} against the critical instance;
          [None] when the chase derived nothing (or fact-level
          provenance was already on for another engine run) *)
}

type certificate =
  | Datalog_cert  (** every rule is Datalog *)
  | Ranking of (Nca_chase.Acyclicity.position * int) list
      (** WA: a ranking [ρ] with [ρ(s) ≤ ρ(t)] on regular and
          [ρ(s) < ρ(t)] on special edges — such a ranking exists iff
          the rule set is weakly acyclic *)
  | Ja_order of vertex list
      (** topological order of the existential-variable graph *)
  | Swa_order of int list
      (** topological order of the trigger graph (existential rule
          indices) *)
  | Critical_chase of mfa_run
      (** the saturated critical-instance chase *)

type witness = {
  w_rule : int;  (** rule index *)
  w_var : Term.t;  (** a frontier variable of the rule *)
  w_hom : Subst.t;
      (** a homomorphism from the rule's body into body ∪ head sending
          [w_var] to an existential variable *)
}
(** A pumping witness. Composing [w_hom] with any firing of the rule
    yields a new semi-oblivious trigger whose frontier image contains
    the null just invented, so on the critical instance the rule fires
    infinitely often, inventing a fresh null each round: the
    semi-oblivious (and oblivious) chase provably diverges. *)

type verdict =
  | Terminating of criterion * certificate
  | Non_terminating of witness
  | Unknown of Nca_obs.Exhausted.t
      (** every static test failed and the budgeted critical chase ran
          out of the given resource before saturating *)

type t = {
  rules : Rule.t list;
  classes : Nca_surgery.Classes.t;  (** cheap syntactic classes *)
  jointly_acyclic : bool;
  ja_cycle : vertex list option;  (** a cycle when not jointly acyclic *)
  super_weakly_acyclic : bool;
  swa_cycle : int list option;  (** rule-index cycle when not SWA *)
  mfa : bool option;
      (** [Some true] critical chase saturated; [Some false] a cyclic
          term appeared (the classical MFA test fails); [None] budget
          exhausted before either *)
  cyclic_term : (int * Term.t) option;
      (** the (rule index, existential variable) whose nulls nest,
          when a cyclic term was detected *)
  verdict : verdict;
}

val classify :
  ?budget:Nca_obs.Budget.t -> ?pool:Nca_chase.Pool.t -> Rule.t list -> t
(** Run the hierarchy cheapest-first and return the strongest verdict.
    [budget] bounds only the critical-instance chase (default: depth
    16, 10\,000 atoms); the static criteria are polynomial and always
    run. [pool] parallelizes the critical-instance chases (probe and
    full MFA run); verification re-runs ({!check}) stay sequential. The emitted certificate or witness is already verified by
    {!check} — classification [assert]s it. *)

val classify_cached : Rule.t list -> t
(** {!classify} under the default budget, memoizing the last result —
    the lint passes all consult the classifier over the same rule set,
    and the critical-instance chase must run once, not once per
    pass. *)

val check : Rule.t list -> verdict -> (unit, string) result
(** Independent verification: recompute the relevant graph (or re-run
    the critical chase deterministically with the recorded bounds and
    replay the proof) and verify the certificate or witness against
    it, without trusting anything else recorded in {!t}. [Unknown] has
    nothing to verify and always passes. *)

(** {1 Graphs for rendering} *)

val ja_edges : Rule.t list -> (vertex * vertex) list
(** Edges of the existential-variable dependency graph, in
    deterministic (rule index, variable name) order. *)

val swa_edges : Rule.t list -> (int * int) list
(** Edges of the trigger graph over existential rule indices. *)

(** {1 Output} *)

val pp_vertex : Rule.t list -> vertex Fmt.t
(** Prints as [name#idx.z]. *)

val pp_certificate : Rule.t list -> certificate Fmt.t
val pp_witness : Rule.t list -> witness Fmt.t
val pp_verdict : Rule.t list -> verdict Fmt.t

val pp : t Fmt.t
(** The human report of [nocliques classify]. *)

val to_json : t -> Json.t
(** The ["nocliques/classify/v1"] document. *)
