(** Machine-readable rendering of telemetry snapshots.

    Bridges [Nca_obs.Telemetry] to the toolkit's JSON document type —
    the payload behind [nocliques --stats-json]. The shape is versioned
    ([nocliques/stats/v2]) and covered by a golden test, so consumers
    can rely on it:

    {v
    { "schema": "nocliques/stats/v2",
      "counters": { "chase.rounds": 3, ... },
      "provenance": { "facts": 0, "store_bytes": 0, "max_depth": 0 },
      "spans": [ { "name": "chase", "calls": 1, "time_us": 42,
                   "children": [...] }, ... ] }
    v}

    [v2] adds the [provenance] object — the ambient
    {!Nca_provenance.Provenance} store's counters (all zero when
    recording is off). [store_bytes] is the store's deterministic
    structural size estimate, not a heap measurement. *)

val schema : string
(** ["nocliques/stats/v2"]. *)

val of_snapshot : Nca_obs.Telemetry.snapshot -> Json.t
(** Counters as one object (sorted by name, as in the snapshot), the
    provenance counters read off the ambient store, spans as a recursive
    array in first-seen order. *)
