(** Machine-readable rendering of telemetry snapshots.

    Bridges [Nca_obs.Telemetry] to the toolkit's JSON document type —
    the payload behind [nocliques --stats-json]. The shape is versioned
    ([nocliques/stats/v6]) and covered by a golden test, so consumers
    can rely on it:

    {v
    { "schema": "nocliques/stats/v6",
      "counters": { "chase.rounds": 3, ... },
      "plan": { "enabled": true, "plans": 4, ... },
      "sat": { "solves": 0, "vars": 0, ... },
      "parallel": { "jobs": 1, "batches": 0, "domains": [] },
      "provenance": { "facts": 0, "store_bytes": 0, "max_depth": 0 },
      "histograms": { "chase.round_us": { "count": 3, "sum": 812,
                      "max": 402, "p50": 255, "p90": 511, "p99": 511 },
                      ... },
      "memory": { "gc.major_words": { "last": 211084, "max": 211084 },
                  ... },
      "spans": [ { "name": "chase", "calls": 1, "time_us": 42,
                   "children": [...] }, ... ] }
    v}

    [v2] added the [provenance] object — the ambient
    {!Nca_provenance.Provenance} store's counters (all zero when
    recording is off); [store_bytes] is the store's deterministic
    structural size estimate, not a heap measurement. [v3] added the
    [plan] object. [v4] added the [parallel] object: the worker-pool
    accounting of a [--jobs N] run — crew size, batches executed, and
    per-domain (tasks, busy_us) — or the deterministic
    [{jobs: 1, batches: 0, domains: []}] when the run was sequential.
    [v5] adds the [sat] object: the {!Nca_sat.Stats} process-wide
    solver totals of the SAT-backed finite-model engine (all zero when
    the engine did not run). [v6] adds the [histograms] object (one
    entry per {!Nca_obs.Metrics.Histo} — log₂-bucketed, so [p50]/
    [p90]/[p99] are bucket upper bounds clamped to the observed max)
    and the [memory] object (gauges sampled at span exits:
    [Gc.quick_stat] words plus whatever probes the CLI registered —
    interned-name bytes, hash-cons occupancy). Both are [{}] when
    metrics recording was off. *)

val schema : string
(** ["nocliques/stats/v6"]. *)

val of_snapshot :
  ?metrics:Nca_obs.Metrics.snapshot ->
  ?parallel:Nca_chase.Pool.stats ->
  Nca_obs.Telemetry.snapshot ->
  Json.t
(** Counters as one object (sorted by name, as in the snapshot), the
    plan-cache and provenance counters read off the ambient stores, the
    pool accounting when a pool ran, spans as a recursive array in
    first-seen order. [?metrics] defaults to the calling domain's
    ambient {!Nca_obs.Metrics} snapshot; pass one explicitly to render
    a frozen (or scrubbed) store. *)
