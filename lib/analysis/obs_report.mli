(** Machine-readable rendering of telemetry snapshots.

    Bridges [Nca_obs.Telemetry] to the toolkit's JSON document type —
    the payload behind [nocliques --stats-json]. The shape is versioned
    ([nocliques/stats/v1]) and covered by a golden test, so consumers
    can rely on it:

    {v
    { "schema": "nocliques/stats/v1",
      "counters": { "chase.rounds": 3, ... },
      "spans": [ { "name": "chase", "calls": 1, "time_us": 42,
                   "children": [...] }, ... ] }
    v} *)

val schema : string
(** ["nocliques/stats/v1"]. *)

val of_snapshot : Nca_obs.Telemetry.snapshot -> Json.t
(** Counters as one object (sorted by name, as in the snapshot), spans as
    a recursive array in first-seen order. *)
