(** Conjunctive queries.

    A CQ [q(x̄)] is a conjunction of atoms together with a tuple of answer
    variables; every other variable is implicitly existentially quantified
    (Section 2.1). The answer tuple may repeat variables (it is then a
    specialization of a more general tuple). *)

type t = private { answer : Term.t list; body : Atom.t list }

val make : answer:Term.t list -> Atom.t list -> t
(** Raises [Invalid_argument] when the body is empty, an answer term is not
    a variable, or an answer variable does not occur in the body. *)

val boolean : Atom.t list -> t
(** A Boolean CQ: no answer variables. *)

val answer : t -> Term.t list
val body : t -> Atom.t list

val vars : t -> Term.Set.t
val answer_vars : t -> Term.Set.t
val exist_vars : t -> Term.Set.t

val size : t -> int
(** Number of atoms. *)

val apply : Subst.t -> t -> t
(** Applies a substitution to both body and answer tuple. Answer variables
    must be mapped to variables. *)

val rename_apart : ?avoid:Term.Set.t -> t -> t
(** Fresh-rename every variable (answer variables included); the fresh
    variables avoid [avoid]. *)

val holds : ?tuple:Term.t list -> Instance.t -> t -> bool
(** [holds ~tuple i q] is [i ⊨ q(tuple)]: a homomorphism from the body to
    [i] mapping the answer tuple to [tuple]. Without [tuple], plain
    (Boolean-style) satisfaction. *)

val holds_inj : ?tuple:Term.t list -> Instance.t -> t -> bool
(** Injective entailment [⊨_inj]. *)

val answers : Instance.t -> t -> Term.t list list
(** All answer tuples over the instance. *)

val subsumes : t -> t -> bool
(** [subsumes q q'] holds when [q] is more general than [q']: there is a
    homomorphism from [q]'s body to [q']'s body mapping [q]'s answer tuple
    pointwise onto [q']'s. A subsumed disjunct is redundant in a UCQ. *)

val equivalent : t -> t -> bool

val loop_query : Symbol.t -> t
(** [Loop_E]: the Boolean query [∃x E(x, x)] (Definition 10). *)

val atom_query : Symbol.t -> t
(** The identity query [P(x̄)] with distinct answer variables [x̄] — the
    starting point of UCQ rewriting for a predicate. *)

val compare : t -> t -> int
val pp : t Fmt.t
