(** Text format for rules, facts and queries.

    Grammar (comments start with [#] or [//] and run to end of line):
    {v
      program   ::= statement*
      statement ::= fact | rule | query
      fact      ::= atoms "."              (identifiers are constants)
      rule      ::= [name ":"] atoms "->" atoms "."
                                           (identifiers are variables)
      query     ::= "?" atoms "."          (Boolean)
                  | "?(" terms ")" atoms "."
      atoms     ::= atom ("," atom)*
      atom      ::= PRED [ "(" terms ")" ]
      terms     ::= term ("," term)*
    v}
    Predicate names start with an uppercase letter, terms with a lowercase
    letter, a digit or [_]. The arity of a predicate is inferred from its
    first use and must stay consistent. *)

type program = {
  facts : Instance.t;
  rules : Rule.t list;
  queries : Cq.t list;
}

type position = { line : int; column : int }
(** 1-based source position. The sentinel {!whole_input} (line 0) marks
    errors about the input as a whole rather than a specific span. *)

val whole_input : position

val pp_position : position Fmt.t
(** Prints ["line L, column C"], or ["input"] for {!whole_input}. *)

exception Error of { position : position; message : string }
(** Raised on lexical, syntactic or arity errors. [position] is the start
    of the offending token, so downstream diagnostics can carry spans. *)

val error_message : position -> string -> string
(** ["line L, column C: message"] — the rendering used by the CLI. *)

val parse_program : string -> program
val parse_rules : string -> Rule.t list
val parse_instance : string -> Instance.t
val parse_query : string -> Cq.t
val parse_rule : string -> Rule.t

val rule : string -> Rule.t
(** Inline single-rule parser (no trailing dot required) — convenient for
    building rule sets in code and tests. *)

val instance : string -> Instance.t
(** Inline facts parser: comma-separated atoms, identifiers as constants. *)

val query : string -> Cq.t
(** Inline query parser. *)
