exception Found of Subst.t

(* State of the backtracking search: current bindings plus, for injective
   search, the set of target terms already used as images. *)
type state = { sub : Subst.t; used : Term.Set.t }

(* Try to extend [st] so that the source atom [a] matches the target atom
   [b]; both have the same predicate. *)
let match_atom ~inj st a b =
  let rec go st ss ts =
    match (ss, ts) with
    | [], [] -> Some st
    | s :: ss, t :: ts -> (
        if not (Term.is_mappable s) then
          if Term.equal s t then go st ss ts else None
        else
          match Subst.find_opt s st.sub with
          | Some u -> if Term.equal u t then go st ss ts else None
          | None ->
              if inj && Term.Set.mem t st.used then None
              else
                go
                  {
                    sub = Subst.add s t st.sub;
                    used = (if inj then Term.Set.add t st.used else st.used);
                  }
                  ss ts)
    | _ -> None
  in
  go st (Atom.args a) (Atom.args b)

(* Pick the remaining goal with the fewest candidate atoms under the
   current bindings — a fail-first heuristic driven by the positional
   index of the target, strictly sharper than counting bound positions:
   a goal whose bound positions select a small (or empty) indexed set is
   expanded before a goal ranging over a large relation. Each goal
   carries its own target instance, so delta-driven enumeration can pin
   different body atoms to different strata of the same instance. *)
(* Only ever called on a non-empty goal list ([solve] handles the empty
   conjunction — a valid query with exactly the identity match — before
   calling this), so no "empty" failure case exists at all. *)
let pick_ne st g rest =
  let score (a, tgt) = Instance.candidate_count a st.sub tgt in
  let rec go best best_score acc = function
    | [] -> (best, List.rev acc)
    | g :: rest ->
        if best_score = 0 then (best, List.rev_append acc (g :: rest))
        else
          let s = score g in
          if s < best_score then go g s (best :: acc) rest
          else go best best_score (g :: acc) rest
  in
  go g (score g) [] rest

let solve ~inj ~init goals f =
  let used = if inj then Subst.range init else Term.Set.empty in
  let rec go st = function
    | [] -> f st.sub
    | g :: gs ->
        let (a, tgt), rest = pick_ne st g gs in
        List.iter
          (fun b ->
            match match_atom ~inj st a b with
            | Some st' -> go st' rest
            | None -> ())
          (Instance.candidates a st.sub tgt)
  in
  go { sub = init; used } goals

let iter ?(inj = false) ?(init = Subst.empty) src tgt f =
  solve ~inj ~init (List.map (fun a -> (a, tgt)) src) f

let iter_targets ?(init = Subst.empty) goals f = solve ~inj:false ~init goals f

let find ?inj ?init src tgt =
  try
    iter ?inj ?init src tgt (fun s -> raise (Found s));
    None
  with Found s -> Some s

let exists ?inj ?init src tgt = Option.is_some (find ?inj ?init src tgt)

let all ?inj ?init src tgt =
  let acc = ref [] in
  iter ?inj ?init src tgt (fun s -> acc := s :: !acc);
  List.rev !acc

let count ?inj ?init src tgt =
  let n = ref 0 in
  iter ?inj ?init src tgt (fun _ -> incr n);
  !n

let maps_into a b = exists (Instance.atoms a) b
let hom_equiv a b = maps_into a b && maps_into b a

let isomorphic a b =
  Instance.cardinal a = Instance.cardinal b
  && exists ~inj:true (Instance.atoms a) b
