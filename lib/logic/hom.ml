exception Found of Subst.t

(* State of the backtracking search: current bindings plus, for injective
   search, the set of target terms already used as images. *)
type state = { sub : Subst.t; used : Term.Set.t }

(* Try to extend [st] so that the source atom [a] matches the target atom
   [b]; both have the same predicate. *)
let match_atom ~inj st a b =
  let rec go st ss ts =
    match (ss, ts) with
    | [], [] -> Some st
    | s :: ss, t :: ts -> (
        if not (Term.is_mappable s) then
          if Term.equal s t then go st ss ts else None
        else
          match Subst.find_opt s st.sub with
          | Some u -> if Term.equal u t then go st ss ts else None
          | None ->
              if inj && Term.Set.mem t st.used then None
              else
                go
                  {
                    sub = Subst.add s t st.sub;
                    used = (if inj then Term.Set.add t st.used else st.used);
                  }
                  ss ts)
    | _ -> None
  in
  go st (Atom.args a) (Atom.args b)

let bound_terms st a =
  List.fold_left
    (fun n t ->
      if (not (Term.is_mappable t)) || Subst.mem t st.sub then n + 1 else n)
    0 (Atom.args a)

(* Pick the most-constrained remaining atom (most already-bound positions),
   a cheap forward-checking heuristic. *)
let pick st atoms =
  let rec go best best_score acc = function
    | [] -> (best, List.rev acc)
    | a :: rest ->
        let score = bound_terms st a in
        if score > best_score then go a score (best :: acc) rest
        else go best best_score (a :: acc) rest
  in
  match atoms with
  | [] -> invalid_arg "Hom.pick: empty"
  | a :: rest -> go a (bound_terms st a) [] rest

let iter ?(inj = false) ?(init = Subst.empty) src tgt f =
  let used =
    if inj then Subst.range init else Term.Set.empty
  in
  let rec solve st = function
    | [] -> f st.sub
    | atoms ->
        let a, rest = pick st atoms in
        List.iter
          (fun b ->
            match match_atom ~inj st a b with
            | Some st' -> solve st' rest
            | None -> ())
          (Instance.with_pred (Atom.pred a) tgt)
  in
  solve { sub = init; used } src

let find ?inj ?init src tgt =
  try
    iter ?inj ?init src tgt (fun s -> raise (Found s));
    None
  with Found s -> Some s

let exists ?inj ?init src tgt = Option.is_some (find ?inj ?init src tgt)

let all ?inj ?init src tgt =
  let acc = ref [] in
  iter ?inj ?init src tgt (fun s -> acc := s :: !acc);
  List.rev !acc

let count ?inj ?init src tgt =
  let n = ref 0 in
  iter ?inj ?init src tgt (fun _ -> incr n);
  !n

let maps_into a b = exists (Instance.atoms a) b
let hom_equiv a b = maps_into a b && maps_into b a

let isomorphic a b =
  Instance.cardinal a = Instance.cardinal b
  && exists ~inj:true (Instance.atoms a) b
