(** Global string intern table.

    Maps names to dense integer ids ([0 .. count () - 1]) so that terms
    and symbols can compare, hash and index by id in O(1). Interning is
    idempotent ([intern (name id) = id]) and ids are never recycled.

    The table is deliberately global and append-only: names are created
    once (at parse time or by the fresh-name generator) and compared
    millions of times in the chase and rewriting inner loops, so the
    string itself is only resolved again at pretty-printing time.

    The table is domain-safe. Id → string resolution ({!name},
    {!compare_names}) is lock-free: ids index an append-only store of
    immutable-once-published segments, published by a release write of
    the atomic id counter. String → id operations ({!intern}, {!known},
    {!fresh}) serialise behind a writer mutex — they happen at parse
    time or at round barriers, never in a worker's inner loop. *)

val intern : string -> int
(** [intern s] returns the id of [s], allocating a fresh one on first
    sight. *)

val name : int -> string
(** [name id] resolves an id back to its string.
    Raises [Invalid_argument] on ids never returned by {!intern}. *)

val known : string -> bool
(** [known s] is true iff [s] has been interned already. *)

val count : unit -> int
(** Number of distinct names interned so far. *)

val live_bytes : unit -> int
(** Total bytes of the distinct interned strings (payload only). *)

val segment_stats : unit -> (int * int * int) list
(** Per-segment [(capacity, entries, payload_bytes)] of the populated
    prefix of the append-only store, first segment first — the layout
    behind [nocliques debug intern-stats]. *)

val compare_names : int -> int -> int
(** [compare_names a b] orders ids by their underlying strings — the
    pre-interning structural order, used at output boundaries where
    byte-stable ordering matters. O(1) on equal ids. *)

val fresh : ?prefix:string -> unit -> int
(** [fresh ~prefix ()] interns a fresh name [_<prefix><n>] with a
    globally increasing [n] shared across prefixes. Names already
    interned (e.g. by a hostile user program) are skipped, so the
    result is always a name never seen before. *)

val fresh_null_id : unit -> int
(** A globally fresh labelled-null id (independent counter). *)

val is_reserved : string -> bool
(** [is_reserved s] is true when [s] starts with ['_'] — the namespace
    reserved for generated names. The parser rejects such identifiers
    in source programs. *)
