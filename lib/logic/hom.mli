(** Homomorphism search.

    A homomorphism from a set of atoms [A] to an instance [B] is a
    substitution [π] with [π(A) ⊆ B] (Section 2.1). Constants are rigid;
    variables and nulls may be mapped. The search is a backtracking
    constraint solver over the per-predicate index of the target.

    When [inj] is set, the homomorphism is additionally required to be
    injective on the mappable terms of the source (used for the paper's
    [⊨_inj], Section 2.1).

    The solver expands sub-goals fewest-candidates-first, where candidate
    sets come from the target's positional index
    ({!Instance.candidates}): once any position of a body atom is bound,
    only the atoms agreeing with that binding are scanned. *)

val iter :
  ?inj:bool ->
  ?init:Subst.t ->
  Atom.t list ->
  Instance.t ->
  (Subst.t -> unit) ->
  unit
(** [iter ~inj ~init src tgt f] calls [f] on every homomorphism from [src]
    to [tgt] extending [init]. Each reported substitution binds exactly the
    mappable terms of [src] (plus the bindings of [init]). *)

val iter_targets :
  ?init:Subst.t -> (Atom.t * Instance.t) list -> (Subst.t -> unit) -> unit
(** Like {!iter}, but each source atom matches into its own target
    instance. This is the primitive behind semi-naive (delta-driven)
    enumeration: stratifying the body of a rule over (old, delta, total)
    enumerates exactly the homomorphisms that use at least one delta
    atom, each exactly once. *)

val find : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> Subst.t option
val exists : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> bool
val all : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> Subst.t list

val count : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> int

val maps_into : Instance.t -> Instance.t -> bool
(** [maps_into a b] holds when there is a homomorphism from [a] to [b]. *)

val hom_equiv : Instance.t -> Instance.t -> bool
(** Homomorphic equivalence [a ↔ b]: homomorphisms both ways. *)

val isomorphic : Instance.t -> Instance.t -> bool
(** Existence of a bijective homomorphism whose inverse is a homomorphism.
    On instances of equal cardinality an injective surjective atom-level
    embedding suffices. *)
