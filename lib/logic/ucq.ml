type t = { arity : int; disjuncts : Cq.t list }

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: _ as disjuncts ->
      let arity = List.length (Cq.answer q) in
      List.iter
        (fun q' ->
          if List.length (Cq.answer q') <> arity then
            invalid_arg "Ucq.make: mismatched answer arities")
        disjuncts;
      { arity; disjuncts }

let of_cq q = make [ q ]
let disjuncts u = u.disjuncts
let arity u = u.arity
let size u = List.length u.disjuncts
let union a b =
  if a.arity <> b.arity then invalid_arg "Ucq.union: mismatched arities";
  { a with disjuncts = a.disjuncts @ b.disjuncts }

let holds ?tuple i u = List.exists (fun q -> Cq.holds ?tuple i q) u.disjuncts

let holds_inj ?tuple i u =
  List.exists (fun q -> Cq.holds_inj ?tuple i q) u.disjuncts

let witness ?tuple ~inj i u =
  let init_of q =
    match tuple with
    | None -> Some Subst.empty
    | Some tuple ->
        if List.length tuple <> List.length (Cq.answer q) then None
        else
          List.fold_left2
            (fun acc x t ->
              match acc with
              | None -> None
              | Some s -> (
                  match Subst.find_opt x s with
                  | Some u' -> if Term.equal u' t then acc else None
                  | None -> Some (Subst.add x t s)))
            (Some Subst.empty) (Cq.answer q) tuple
  in
  List.find_map
    (fun q ->
      match init_of q with
      | None -> None
      | Some init ->
          Option.map (fun h -> (q, h)) (Hom.find ~inj ~init (Cq.body q) i))
    u.disjuncts

let cover u =
  (* Keep a disjunct only if no *other kept or later* disjunct strictly
     subsumes it; among equivalent disjuncts keep the first. *)
  let rec keep acc = function
    | [] -> List.rev acc
    | q :: rest ->
        let subsumed_by q' = Cq.subsumes q' q && not (Cq.compare q q' = 0) in
        if List.exists subsumed_by acc || List.exists subsumed_by rest then
          keep acc rest
        else keep (q :: acc) rest
  in
  let rec dedup acc = function
    | [] -> List.rev acc
    | q :: rest ->
        if List.exists (fun q' -> Cq.equivalent q q') acc then dedup acc rest
        else dedup (q :: acc) rest
  in
  { u with disjuncts = keep [] (dedup [] u.disjuncts) }

let mem_equiv q u = List.exists (fun q' -> Cq.equivalent q q') u.disjuncts

let equivalent a b =
  let covered x y =
    List.for_all
      (fun q -> List.exists (fun q' -> Cq.subsumes q' q) y.disjuncts)
      x.disjuncts
  in
  a.arity = b.arity && covered a b && covered b a

let pp ppf u =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any "@ ∨ ") Cq.pp)
    u.disjuncts
