type t = { answer : Term.t list; body : Atom.t list }

let make ~answer body =
  if body = [] then invalid_arg "Cq.make: empty body";
  let body_vars = Atom.vars_of_list body in
  List.iter
    (fun x ->
      if not (Term.is_var x) then
        invalid_arg (Fmt.str "Cq.make: non-variable answer %a" Term.pp x);
      if not (Term.Set.mem x body_vars) then
        invalid_arg (Fmt.str "Cq.make: unsafe answer variable %a" Term.pp x))
    answer;
  { answer; body }

let boolean body = make ~answer:[] body
let answer q = q.answer
let body q = q.body
let vars q = Atom.vars_of_list q.body

let answer_vars q =
  List.fold_left (fun acc x -> Term.Set.add x acc) Term.Set.empty q.answer

let exist_vars q = Term.Set.diff (vars q) (answer_vars q)
let size q = List.length q.body

let apply s q =
  make ~answer:(List.map (Subst.apply s) q.answer)
    (Subst.apply_atoms s q.body)

let rename_apart ?(avoid = Term.Set.empty) q =
  let rec fresh_avoiding () =
    let v = Term.fresh_var () in
    if Term.Set.mem v avoid then fresh_avoiding () else v
  in
  let renaming =
    (* name order: fresh names are assigned deterministically *)
    List.fold_left
      (fun acc x -> Subst.add x (fresh_avoiding ()) acc)
      Subst.empty
      (Term.sorted_elements (vars q))
  in
  apply renaming q

let init_of_tuple q tuple =
  match tuple with
  | None -> Some Subst.empty
  | Some tuple ->
      if List.length tuple <> List.length q.answer then None
      else
        List.fold_left2
          (fun acc x t ->
            match acc with
            | None -> None
            | Some s -> (
                match Subst.find_opt x s with
                | Some u -> if Term.equal u t then acc else None
                | None -> Some (Subst.add x t s)))
          (Some Subst.empty) q.answer tuple

let holds ?tuple i q =
  match init_of_tuple q tuple with
  | None -> false
  | Some init -> Hom.exists ~init q.body i

let holds_inj ?tuple i q =
  match init_of_tuple q tuple with
  | None -> false
  | Some init -> Hom.exists ~inj:true ~init q.body i

let answers i q =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Hom.iter q.body i (fun s ->
      let tuple = List.map (Subst.apply s) q.answer in
      if not (Hashtbl.mem seen tuple) then begin
        Hashtbl.add seen tuple ();
        acc := tuple :: !acc
      end);
  List.rev !acc

let subsumes q q' =
  List.length q.answer = List.length q'.answer
  &&
  match
    List.fold_left2
      (fun acc x t ->
        match acc with
        | None -> None
        | Some s -> (
            match Subst.find_opt x s with
            | Some u -> if Term.equal u t then acc else None
            | None -> Some (Subst.add x t s)))
      (Some Subst.empty) q.answer q'.answer
  with
  | None -> None |> Option.is_some
  | Some init -> Hom.exists ~init q.body (Instance.of_list q'.body)

let equivalent q q' = subsumes q q' && subsumes q' q

let loop_query e =
  let x = Term.var "x" in
  boolean [ Atom.make e [ x; x ] ]

let atom_query p =
  let xs = List.init (Symbol.arity p) (fun i -> Term.var (Fmt.str "x%d" i)) in
  make ~answer:xs [ Atom.make p xs ]

let compare q q' =
  match List.compare Term.compare q.answer q'.answer with
  | 0 -> List.compare Atom.compare q.body q'.body
  | c -> c

let pp ppf q =
  Fmt.pf ppf "@[<h>?(%a) :- %a@]"
    Fmt.(list ~sep:(any ", ") Term.pp)
    q.answer
    Fmt.(list ~sep:(any ", ") Atom.pp)
    q.body
