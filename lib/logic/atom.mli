(** Atoms: a predicate applied to a tuple of terms. *)

type t = private { pred : Symbol.t; args : Term.t list }

val make : Symbol.t -> Term.t list -> t
(** [make p args] builds [p(args)]. Raises [Invalid_argument] when
    [List.length args <> Symbol.arity p]. *)

val app : string -> Term.t list -> t
(** [app name args] is [make (Symbol.make name (List.length args)) args]:
    a convenience constructor that infers the arity. *)

val top : t
(** The nullary fact [⊤]. *)

val pred : t -> Symbol.t
val args : t -> Term.t list
val arity : t -> int

val terms : t -> Term.Set.t
val vars : t -> Term.Set.t
(** Mappable terms (variables and nulls) occurring in the atom. *)

val map : (Term.t -> Term.t) -> t -> t

val is_binary : t -> bool
val as_edge : t -> (Term.t * Term.t) option
(** [as_edge a] is [Some (s, t)] when [a = P(s, t)] for a binary [P]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val terms_of_list : t list -> Term.Set.t
val vars_of_list : t list -> Term.Set.t
val pp_list : t list Fmt.t
