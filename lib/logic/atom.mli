(** Atoms: a predicate applied to a tuple of terms.

    Atoms are hash-consed: building the same predicate/argument tuple
    twice returns the same (physically equal) value, so [equal] is
    pointer equality, [compare] orders dense ids, and [hash] is
    precomputed — all O(1) regardless of arity. *)

type t

val make : Symbol.t -> Term.t list -> t
(** [make p args] builds (or retrieves) [p(args)]. Raises
    [Invalid_argument] when [List.length args <> Symbol.arity p]. *)

val app : string -> Term.t list -> t
(** [app name args] is [make (Symbol.make name (List.length args)) args]:
    a convenience constructor that infers the arity. *)

val top : t
(** The nullary fact [⊤]. *)

val pred : t -> Symbol.t
val args : t -> Term.t list
val arity : t -> int

val id : t -> int
(** The dense hash-cons id ([0 .. count () - 1]). *)

val count : unit -> int
(** Number of distinct atoms hash-consed so far. *)

val shard_stats : unit -> (int * int) list
(** Per-shard [(entries, max_bucket_depth)] of the sharded hash-cons
    table (construction is sharded by hash for domain safety), behind
    [nocliques debug intern-stats]. *)

val terms : t -> Term.Set.t
val vars : t -> Term.Set.t
(** Mappable terms (variables and nulls) occurring in the atom. *)

val map : (Term.t -> Term.t) -> t -> t

val is_binary : t -> bool
val as_edge : t -> (Term.t * Term.t) option
(** [as_edge a] is [Some (s, t)] when [a = P(s, t)] for a binary [P]. *)

val compare : t -> t -> int
(** Total order on hash-cons ids — O(1), but unrelated to the printed
    form. Use {!compare_structural} where output byte-stability
    matters. *)

val equal : t -> t -> bool
val hash : t -> int

val compare_structural : t -> t -> int
(** The historical structural order: predicate by name/arity, then
    arguments by {!Term.compare_names}. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val sorted_elements : Set.t -> t list
(** Elements in {!compare_structural} order, for deterministic output. *)

val terms_of_list : t list -> Term.Set.t
val vars_of_list : t list -> Term.Set.t
val pp_list : t list Fmt.t
