type t = { name : string; arity : int }

let make name arity =
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  if String.equal name "" then invalid_arg "Symbol.make: empty name";
  { name; arity }

let name s = s.name
let arity s = s.arity
let top = { name = "TOP"; arity = 0 }

let compare a b =
  match String.compare a.name b.name with
  | 0 -> Int.compare a.arity b.arity
  | c -> c

let equal a b = compare a b = 0
let hash s = Hashtbl.hash (s.name, s.arity)
let pp ppf s = Fmt.pf ppf "%s/%d" s.name s.arity
let pp_name ppf s = Fmt.string ppf s.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let is_binary_signature s = Set.for_all (fun p -> p.arity <= 2) s
