type t = { id : int; name : int; arity : int }

(* Symbols are interned: one record per (name, arity) pair, identified
   by a dense id. [equal]/[compare]/[hash] are single int operations.
   The table sits behind a mutex — symbol creation happens at parse
   time, never in an engine inner loop, so one lock suffices. *)
let table : (int * int, t) Hashtbl.t = Hashtbl.create 256
let next = Atomic.make 0
let lock = Mutex.create ()

let make name arity =
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  if String.equal name "" then invalid_arg "Symbol.make: empty name";
  let nid = Names.intern name in
  Mutex.lock lock;
  match Hashtbl.find_opt table (nid, arity) with
  | Some s ->
      Mutex.unlock lock;
      s
  | None ->
      let s = { id = Atomic.fetch_and_add next 1; name = nid; arity } in
      Hashtbl.add table (nid, arity) s;
      Mutex.unlock lock;
      s
  | exception e ->
      Mutex.unlock lock;
      raise e

let name s = Names.name s.name
let name_id s = s.name
let id s = s.id
let arity s = s.arity
let count () = Atomic.get next
let top = make "TOP" 0
let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id
let hash s = s.id

let compare_names a b =
  match Names.compare_names a.name b.name with
  | 0 -> Int.compare a.arity b.arity
  | c -> c

let pp ppf s = Fmt.pf ppf "%s/%d" (name s) s.arity
let pp_name ppf s = Fmt.string ppf (name s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let sorted_elements s = List.sort compare_names (Set.elements s)
let is_binary_signature s = Set.for_all (fun p -> p.arity <= 2) s
