(* Atoms are held in a set plus two derived indexes: by predicate, and by
   (predicate, argument position, term). The positional index is the basis
   of the candidate intersection used by the homomorphism search: an atom
   pattern with k bound positions restricts the search to the intersection
   of k indexed sets instead of every atom of the predicate. *)

module Pos = struct
  (* (symbol id, argument position, term code): a pure int triple, so
     the positional map never touches a string. *)
  type t = int * int * int

  let compare (p1, i1, t1) (p2, i2, t2) =
    match Int.compare p1 p2 with
    | 0 -> ( match Int.compare i1 i2 with 0 -> Int.compare t1 t2 | c -> c)
    | c -> c

  let key p i t = (Symbol.id p, i, Term.code t)
end

module Pos_map = Map.Make (Pos)

type t = {
  atoms : Atom.Set.t;
  size : int;
  index : Atom.Set.t Symbol.Map.t;
  pos : Atom.Set.t Pos_map.t;
  (* Frozen posting arrays, filled on demand by {!posting} and
     {!pred_array}. Each array is derived from the immutable [pos]/[index]
     maps of this very record, so memoizing it here never changes the
     observable value of the instance — [add]/[remove] build records with
     fresh empty caches. Atoms are stored in ascending [Atom.id] order
     ([Atom.Set.elements]), the order the leapfrog executor merges on.
     The caches are atomics so concurrent domains probing the same frozen
     instance are safe: a freshly built array is published by a CAS of
     the map (release), and readers go through [Atomic.get] (acquire), so
     the array contents are fully visible. A lost CAS race merely means
     one domain rebuilds an array the other already published. *)
  acache : Atom.t array Pos_map.t Atomic.t;
  pcache : Atom.t array Symbol.Map.t Atomic.t;
}

let empty =
  {
    atoms = Atom.Set.empty;
    size = 0;
    index = Symbol.Map.empty;
    pos = Pos_map.empty;
    acache = Atomic.make Pos_map.empty;
    pcache = Atomic.make Symbol.Map.empty;
  }

let update_pos f a pos =
  let p = Atom.pred a in
  snd
    (List.fold_left
       (fun (i, pos) t -> (i + 1, f (Pos.key p i t) pos))
       (0, pos) (Atom.args a))

let add a i =
  if Atom.Set.mem a i.atoms then i
  else
    {
      atoms = Atom.Set.add a i.atoms;
      size = i.size + 1;
      index =
        Symbol.Map.update (Atom.pred a)
          (function
            | None -> Some (Atom.Set.singleton a)
            | Some s -> Some (Atom.Set.add a s))
          i.index;
      pos =
        update_pos
          (fun key pos ->
            Pos_map.update key
              (function
                | None -> Some (Atom.Set.singleton a)
                | Some s -> Some (Atom.Set.add a s))
              pos)
          a i.pos;
      acache = Atomic.make Pos_map.empty;
      pcache = Atomic.make Symbol.Map.empty;
    }

let remove a i =
  if not (Atom.Set.mem a i.atoms) then i
  else
    {
      atoms = Atom.Set.remove a i.atoms;
      size = i.size - 1;
      index =
        Symbol.Map.update (Atom.pred a)
          (function
            | None -> None
            | Some s ->
                let s = Atom.Set.remove a s in
                if Atom.Set.is_empty s then None else Some s)
          i.index;
      pos =
        update_pos
          (fun key pos ->
            Pos_map.update key
              (function
                | None -> None
                | Some s ->
                    let s = Atom.Set.remove a s in
                    if Atom.Set.is_empty s then None else Some s)
              pos)
          a i.pos;
      acache = Atomic.make Pos_map.empty;
      pcache = Atomic.make Symbol.Map.empty;
    }

let of_list l = List.fold_left (fun i a -> add a i) empty l
let top = of_list [ Atom.top ]
let atoms i = Atom.Set.elements i.atoms
let to_set i = i.atoms
let mem a i = Atom.Set.mem a i.atoms
let cardinal i = i.size
let is_empty i = i.size = 0
let fold f i acc = Atom.Set.fold f i.atoms acc
let iter f i = Atom.Set.iter f i.atoms
let union a b = fold add b a
let diff a b = fold remove b a
let inter a b = fold (fun x acc -> if mem x b then acc else remove x acc) a a
let subset a b = Atom.Set.subset a.atoms b.atoms
let equal a b = Atom.Set.equal a.atoms b.atoms
let compare a b = Atom.Set.compare a.atoms b.atoms
let filter p i = fold (fun a acc -> if p a then acc else remove a acc) i i
let for_all p i = Atom.Set.for_all p i.atoms
let exists p i = Atom.Set.exists p i.atoms

let adom i =
  fold (fun a acc -> Term.Set.union acc (Atom.terms a)) i Term.Set.empty

let with_pred p i =
  match Symbol.Map.find_opt p i.index with
  | None -> []
  | Some s -> Atom.Set.elements s

let pred_cardinal p i =
  match Symbol.Map.find_opt p i.index with
  | None -> 0
  | Some s -> Atom.Set.cardinal s

(* The positions of [a] that are fixed under [sub]: constants are rigid,
   and a mappable term already bound by [sub] is fixed to its image. *)
let bound_positions a sub =
  let _, acc =
    List.fold_left
      (fun (i, acc) t ->
        let fixed =
          if Term.is_mappable t then Subst.find_opt t sub else Some t
        in
        match fixed with
        | Some u -> (i + 1, (i, u) :: acc)
        | None -> (i + 1, acc))
      (0, []) (Atom.args a)
  in
  acc

let pos_find key i =
  match Pos_map.find_opt key i.pos with
  | None -> Atom.Set.empty
  | Some s -> s

let candidate_count a sub i =
  let p = Atom.pred a in
  List.fold_left
    (fun best (pos, t) ->
      min best (Atom.Set.cardinal (pos_find (Pos.key p pos t) i)))
    (pred_cardinal p i) (bound_positions a sub)

(* Publish a freshly built array under [key]: retry the CAS on a lost
   race so concurrently added entries are never dropped. *)
let rec cache_add cache add key arr =
  let old = Atomic.get cache in
  if not (Atomic.compare_and_set cache old (add key arr old)) then
    cache_add cache add key arr

let posting p pos t i =
  let key = Pos.key p pos t in
  match Pos_map.find_opt key (Atomic.get i.acache) with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list (Atom.Set.elements (pos_find key i)) in
      cache_add i.acache Pos_map.add key arr;
      arr

let pred_array p i =
  match Symbol.Map.find_opt p (Atomic.get i.pcache) with
  | Some arr -> arr
  | None ->
      let arr =
        match Symbol.Map.find_opt p i.index with
        | None -> [||]
        | Some s -> Array.of_list (Atom.Set.elements s)
      in
      cache_add i.pcache Symbol.Map.add p arr;
      arr

let pos_cardinal p pos t i = Atom.Set.cardinal (pos_find (Pos.key p pos t) i)

let candidates a sub i =
  let p = Atom.pred a in
  match bound_positions a sub with
  | [] -> with_pred p i
  | (pos0, t0) :: rest ->
      (* intersect the indexed sets, seeded from the first bound position;
         the intersection stays a superset of the true matches (repeated
         variables are only checked by the matcher), but every bound
         position cuts the scan down to atoms agreeing with it. *)
      let start = pos_find (Pos.key p pos0 t0) i in
      let set =
        List.fold_left
          (fun acc (pos, t) ->
            if Atom.Set.is_empty acc then acc
            else Atom.Set.inter acc (pos_find (Pos.key p pos t) i))
          start rest
      in
      Atom.Set.elements set

let signature i =
  Symbol.Map.fold (fun p _ acc -> Symbol.Set.add p acc) i.index
    Symbol.Set.empty

let restrict sign i =
  filter (fun a -> Symbol.Set.mem (Atom.pred a) sign) i

let map_terms f i = fold (fun a acc -> add (Atom.map f a) acc) i empty
let apply s i = map_terms (Subst.apply s) i

let rename_apart ~avoid i =
  let rec fresh_avoiding () =
    let v = Term.fresh_var () in
    if Term.Set.mem v avoid then fresh_avoiding () else v
  in
  let renaming =
    (* iterate in name order so generated names are assigned
       deterministically, independent of intern-id order *)
    List.fold_left
      (fun acc t ->
        if Term.is_mappable t then Subst.add t (fresh_avoiding ()) acc
        else acc)
      Subst.empty
      (Term.sorted_elements (adom i))
  in
  (apply renaming i, renaming)

let critical sign =
  let star = Term.cst "*" in
  Symbol.Set.fold
    (fun p acc ->
      add (Atom.make p (List.init (Symbol.arity p) (fun _ -> star))) acc)
    sign empty

let generalize i =
  map_terms
    (fun t ->
      match t with
      | Term.Cst c -> Term.var ("g!" ^ Names.name c)
      | Term.Var _ | Term.Null _ -> t)
    i

let disjoint_union a b =
  let b', _ = rename_apart ~avoid:(adom a) b in
  union a b'

let edges p i =
  List.filter_map Atom.as_edge (with_pred p i)

let sorted_atoms i = Atom.sorted_elements i.atoms

let pp ppf i =
  Fmt.pf ppf "{@[<hov>%a@]}" Fmt.(list ~sep:comma Atom.pp) (sorted_atoms i)
