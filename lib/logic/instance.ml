type t = { atoms : Atom.Set.t; index : Atom.Set.t Symbol.Map.t }

let empty = { atoms = Atom.Set.empty; index = Symbol.Map.empty }

let add a i =
  if Atom.Set.mem a i.atoms then i
  else
    {
      atoms = Atom.Set.add a i.atoms;
      index =
        Symbol.Map.update (Atom.pred a)
          (function
            | None -> Some (Atom.Set.singleton a)
            | Some s -> Some (Atom.Set.add a s))
          i.index;
    }

let remove a i =
  if not (Atom.Set.mem a i.atoms) then i
  else
    {
      atoms = Atom.Set.remove a i.atoms;
      index =
        Symbol.Map.update (Atom.pred a)
          (function
            | None -> None
            | Some s ->
                let s = Atom.Set.remove a s in
                if Atom.Set.is_empty s then None else Some s)
          i.index;
    }

let of_list l = List.fold_left (fun i a -> add a i) empty l
let top = of_list [ Atom.top ]
let atoms i = Atom.Set.elements i.atoms
let to_set i = i.atoms
let mem a i = Atom.Set.mem a i.atoms
let cardinal i = Atom.Set.cardinal i.atoms
let is_empty i = Atom.Set.is_empty i.atoms
let fold f i acc = Atom.Set.fold f i.atoms acc
let iter f i = Atom.Set.iter f i.atoms
let union a b = fold add b a
let diff a b = fold remove b a
let inter a b = fold (fun x acc -> if mem x b then acc else remove x acc) a a
let subset a b = Atom.Set.subset a.atoms b.atoms
let equal a b = Atom.Set.equal a.atoms b.atoms
let compare a b = Atom.Set.compare a.atoms b.atoms
let filter p i = fold (fun a acc -> if p a then acc else remove a acc) i i
let for_all p i = Atom.Set.for_all p i.atoms
let exists p i = Atom.Set.exists p i.atoms

let adom i =
  fold (fun a acc -> Term.Set.union acc (Atom.terms a)) i Term.Set.empty

let with_pred p i =
  match Symbol.Map.find_opt p i.index with
  | None -> []
  | Some s -> Atom.Set.elements s

let signature i =
  Symbol.Map.fold (fun p _ acc -> Symbol.Set.add p acc) i.index
    Symbol.Set.empty

let restrict sign i =
  filter (fun a -> Symbol.Set.mem (Atom.pred a) sign) i

let map_terms f i = fold (fun a acc -> add (Atom.map f a) acc) i empty
let apply s i = map_terms (Subst.apply s) i

let rename_apart ~avoid i =
  ignore avoid;
  let renaming =
    Term.Set.fold
      (fun t acc ->
        if Term.is_mappable t then Subst.add t (Term.fresh_var ()) acc
        else acc)
      (adom i) Subst.empty
  in
  (apply renaming i, renaming)

let critical sign =
  let star = Term.Cst "*" in
  Symbol.Set.fold
    (fun p acc ->
      add (Atom.make p (List.init (Symbol.arity p) (fun _ -> star))) acc)
    sign empty

let generalize i =
  map_terms
    (fun t ->
      match t with Term.Cst c -> Term.var ("g!" ^ c) | Term.Var _ | Term.Null _ -> t)
    i

let disjoint_union a b =
  let b', _ = rename_apart ~avoid:(adom a) b in
  union a b'

let edges p i =
  List.filter_map Atom.as_edge (with_pred p i)

let pp ppf i =
  Fmt.pf ppf "{@[<hov>%a@]}" Fmt.(list ~sep:comma Atom.pp) (atoms i)
