(** Terms: variables, constants and labelled nulls.

    The paper works purely with variables; for engineering purposes we
    distinguish three kinds of terms:
    - {!Var}: universally/existentially quantified variables of rules and
      queries, and the frontier placeholders of surgeries;
    - {!Cst}: named elements of databases (rigid under homomorphisms);
    - {!Null}: fresh labelled nulls invented by the chase.

    Homomorphisms may move [Var] and [Null] terms but fix every [Cst]. *)

type t =
  | Var of string
  | Cst of string
  | Null of int

val var : string -> t
val cst : string -> t
val null : int -> t

val is_var : t -> bool
val is_cst : t -> bool
val is_null : t -> bool

val is_mappable : t -> bool
(** [is_mappable t] holds for variables and nulls: the terms a homomorphism
    is allowed to rename. *)

val fresh_var : ?prefix:string -> unit -> t
(** A globally fresh variable (gensym). The optional [prefix] is kept in the
    generated name for readability. *)

val fresh_null : unit -> t
(** A globally fresh labelled null. *)

val refresh : unit -> unit
(** Reset both gensym counters. Only for use in test set-up, where
    reproducible names matter. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Set.t Fmt.t
