(** Terms: variables, constants and labelled nulls.

    The paper works purely with variables; for engineering purposes we
    distinguish three kinds of terms:
    - {!Var}: universally/existentially quantified variables of rules and
      queries, and the frontier placeholders of surgeries;
    - {!Cst}: named elements of databases (rigid under homomorphisms);
    - {!Null}: fresh labelled nulls invented by the chase.

    Homomorphisms may move [Var] and [Null] terms but fix every [Cst].

    Variables and constants carry a dense {!Names} id rather than the
    string itself, so [equal]/[compare]/[hash] are integer operations;
    the name is resolved from the intern table only at [pp] time. *)

type t =
  | Var of int  (** {!Names} id of the variable name *)
  | Cst of int  (** {!Names} id of the constant name *)
  | Null of int  (** labelled-null number (not a name id) *)

val var : string -> t
val cst : string -> t
val null : int -> t

val is_var : t -> bool
val is_cst : t -> bool
val is_null : t -> bool

val is_mappable : t -> bool
(** [is_mappable t] holds for variables and nulls: the terms a homomorphism
    is allowed to rename. *)

val fresh_var : ?prefix:string -> unit -> t
(** A globally fresh variable (gensym). The optional [prefix] is kept in the
    generated name for readability. Fresh names live in the reserved
    [_]-prefix namespace and skip names already interned, so they cannot
    collide with user identifiers. *)

val fresh_null : unit -> t
(** A globally fresh labelled null. *)

val code : t -> int
(** Injective encoding of a term as a single int (id and kind); doubles
    as the hash and as the positional-index key. *)

val compare : t -> t -> int
(** Total order on the int {!code} — O(1), but unrelated to name order.
    Use {!compare_names} where output byte-stability matters. *)

val equal : t -> t -> bool
val hash : t -> int

val compare_names : t -> t -> int
(** The historical structural order: by kind (Var < Cst < Null), then by
    name string (or null number). Used at output and name-generation
    boundaries so printed artefacts stay byte-identical. *)

val name : t -> string
(** The printed form: the interned name, or ["_:n<k>"] for nulls. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val sorted_elements : Set.t -> t list
(** Elements in {!compare_names} order, for deterministic output. *)

val pp_set : Set.t Fmt.t
