(** Existential rules.

    A rule [∀x̄,ȳ B(x̄, ȳ) → ∃z̄ H(ȳ, z̄)] with non-empty body and head
    (Section 2.1). The frontier [ȳ] is the set of variables shared by body
    and head; head variables outside the body are existential. *)

type t = private { name : string; body : Atom.t list; head : Atom.t list }

val make : ?name:string -> Atom.t list -> Atom.t list -> t
(** [make body head] builds a rule. Raises [Invalid_argument] when body or head is empty, or when a
    non-variable mappable term occurs. *)

val name : t -> string
val body : t -> Atom.t list
val head : t -> Atom.t list

val body_vars : t -> Term.Set.t
val head_vars : t -> Term.Set.t

val frontier : t -> Term.Set.t
(** Variables occurring in both body and head. *)

val exist_vars : t -> Term.Set.t
(** Head variables that are not in the body. *)

val is_datalog : t -> bool
(** No existential variables (Section 2.1). *)

val rename_apart : t -> t
(** Fresh-rename all variables of the rule. *)

val rename : ?name:string -> t -> t
(** Like {!rename_apart} but also allows renaming the rule itself. *)

val signature : t list -> Symbol.Set.t
(** All predicates occurring in a rule set. *)

val split_datalog : t list -> t list * t list
(** [(datalog, existential)] partition of a rule set — the paper's
    [S^DL] and [S^∃] (Section 4.4.1). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val pp_set : t list Fmt.t
