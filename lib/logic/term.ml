type t =
  | Var of string
  | Cst of string
  | Null of int

let var v = Var v
let cst c = Cst c
let null n = Null n

let is_var = function Var _ -> true | Cst _ | Null _ -> false
let is_cst = function Cst _ -> true | Var _ | Null _ -> false
let is_null = function Null _ -> true | Var _ | Cst _ -> false
let is_mappable = function Var _ | Null _ -> true | Cst _ -> false

let var_counter = ref 0
let null_counter = ref 0

let fresh_var ?(prefix = "v") () =
  incr var_counter;
  Var (Printf.sprintf "_%s%d" prefix !var_counter)

let fresh_null () =
  incr null_counter;
  Null !null_counter

let refresh () =
  var_counter := 0;
  null_counter := 0

let kind_rank = function Var _ -> 0 | Cst _ -> 1 | Null _ -> 2

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> String.compare x y
  | Null x, Null y -> Int.compare x y
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let pp ppf = function
  | Var v -> Fmt.string ppf v
  | Cst c -> Fmt.string ppf c
  | Null n -> Fmt.pf ppf "_:n%d" n

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (Set.elements s)
