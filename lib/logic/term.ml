type t =
  | Var of int
  | Cst of int
  | Null of int

let var v = Var (Names.intern v)
let cst c = Cst (Names.intern c)
let null n = Null n

let is_var = function Var _ -> true | Cst _ | Null _ -> false
let is_cst = function Cst _ -> true | Var _ | Null _ -> false
let is_null = function Null _ -> true | Var _ | Cst _ -> false
let is_mappable = function Var _ | Null _ -> true | Cst _ -> false

let fresh_var ?(prefix = "v") () = Var (Names.fresh ~prefix ())
let fresh_null () = Null (Names.fresh_null_id ())

let kind_rank = function Var _ -> 0 | Cst _ -> 1 | Null _ -> 2

(* Injective int encoding of a term: id in the high bits, kind in the
   low two. Used as hash, comparison key and positional-index key. *)
let code = function
  | Var id -> id lsl 2
  | Cst id -> (id lsl 2) lor 1
  | Null n -> (n lsl 2) lor 2

let compare a b = Int.compare (code a) (code b)

let equal a b =
  match (a, b) with
  | Var x, Var y | Cst x, Cst y | Null x, Null y -> Int.equal x y
  | (Var _ | Cst _ | Null _), _ -> false

let hash = code

let compare_names a b =
  match (a, b) with
  | Var x, Var y | Cst x, Cst y -> Names.compare_names x y
  | Null x, Null y -> Int.compare x y
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let name = function
  | Var id | Cst id -> Names.name id
  | Null n -> Printf.sprintf "_:n%d" n

let pp ppf = function
  | Var id | Cst id -> Fmt.string ppf (Names.name id)
  | Null n -> Fmt.pf ppf "_:n%d" n

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let sorted_elements s = List.sort compare_names (Set.elements s)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (sorted_elements s)
