type t = { name : string; body : Atom.t list; head : Atom.t list }

let counter = ref 0

let make ?name body head =
  if body = [] then invalid_arg "Rule.make: empty body";
  if head = [] then invalid_arg "Rule.make: empty head";
  let check atoms =
    List.iter
      (fun a ->
        List.iter
          (fun t ->
            if Term.is_null t then
              invalid_arg
                (Fmt.str "Rule.make: null %a in rule" Term.pp t))
          (Atom.args a))
      atoms
  in
  check body;
  check head;
  let name =
    match name with
    | Some n -> n
    | None ->
        incr counter;
        Fmt.str "r%d" !counter
  in
  { name; body; head }

let name r = r.name
let body r = r.body
let head r = r.head
let body_vars r = Atom.vars_of_list r.body
let head_vars r = Atom.vars_of_list r.head
let frontier r = Term.Set.inter (body_vars r) (head_vars r)
let exist_vars r = Term.Set.diff (head_vars r) (body_vars r)
let is_datalog r = Term.Set.is_empty (exist_vars r)

let rename ?name r =
  let renaming =
    (* name order: fresh names are assigned in a deterministic order,
       independent of intern-id order *)
    List.fold_left
      (fun acc x -> Subst.add x (Term.fresh_var ()) acc)
      Subst.empty
      (Term.sorted_elements (Term.Set.union (body_vars r) (head_vars r)))
  in
  {
    name = Option.value name ~default:r.name;
    body = Subst.apply_atoms renaming r.body;
    head = Subst.apply_atoms renaming r.head;
  }

let rename_apart r = rename r

let signature rules =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc a -> Symbol.Set.add (Atom.pred a) acc)
        acc (r.body @ r.head))
    Symbol.Set.empty rules

let split_datalog rules = List.partition is_datalog rules

let compare r r' =
  match String.compare r.name r'.name with
  | 0 -> (
      match List.compare Atom.compare r.body r'.body with
      | 0 -> List.compare Atom.compare r.head r'.head
      | c -> c)
  | c -> c

let equal r r' = compare r r' = 0

let pp ppf r =
  let ev = exist_vars r in
  if Term.Set.is_empty ev then
    Fmt.pf ppf "@[<hov 2>%s: %a ->@ %a@]" r.name Atom.pp_list r.body
      Atom.pp_list r.head
  else
    Fmt.pf ppf "@[<hov 2>%s: %a ->@ ∃%a. %a@]" r.name Atom.pp_list r.body
      Fmt.(list ~sep:comma Term.pp)
      (Term.sorted_elements ev) Atom.pp_list r.head

let pp_set ppf rules = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) rules
