(* A retraction is an endomorphism whose image is a proper sub-instance.
   We look for a homomorphism from the instance to itself that merges at
   least two terms: its image then has fewer atoms or at least fewer
   terms, and iterating reaches the core. To guarantee progress we only
   accept endomorphisms whose atom image is a proper subset. *)

let proper_image i h =
  let img = Instance.apply h i in
  if Instance.cardinal img < Instance.cardinal i then Some img else None

exception Found of Instance.t

let retract i =
  try
    Hom.iter (Instance.atoms i) i (fun h ->
        match proper_image i h with
        | Some img -> raise (Found img)
        | None -> ());
    None
  with Found img -> Some img

let rec core i = match retract i with None -> i | Some smaller -> core smaller
let is_core i = Option.is_none (retract i)

let equivalent_via_cores a b = Hom.isomorphic (core a) (core b)
