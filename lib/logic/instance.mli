(** Instances: finite sets of atoms, indexed by predicate.

    An instance over a signature [S] is a set of atoms over predicates of
    [S] (Section 2.1). The index by predicate makes homomorphism search and
    trigger enumeration efficient. *)

type t

val empty : t

val top : t
(** The instance [{⊤}] used as the canonical start of the chase after the
    instance-encoding surgery (Section 4.1). *)

val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val of_list : Atom.t list -> t

val atoms : t -> Atom.t list
(** Atoms in id order (fast, arbitrary). Use {!sorted_atoms} where the
    order reaches output. *)

val sorted_atoms : t -> Atom.t list
(** Atoms in {!Atom.compare_structural} order, for deterministic
    output. *)

val to_set : t -> Atom.Set.t

val mem : Atom.t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Atom.t -> unit) -> t -> unit
val filter : (Atom.t -> bool) -> t -> t
val for_all : (Atom.t -> bool) -> t -> bool
val exists : (Atom.t -> bool) -> t -> bool

val adom : t -> Term.Set.t
(** The active domain: all terms occurring in the instance. *)

val with_pred : Symbol.t -> t -> Atom.t list
(** All atoms over the given predicate. *)

val pred_cardinal : Symbol.t -> t -> int
(** Number of atoms over the given predicate, without materializing them. *)

val posting : Symbol.t -> int -> Term.t -> t -> Atom.t array
(** [posting p pos t i]: the atoms of [i] over predicate [p] carrying term
    [t] at argument position [pos], as an array sorted by ascending
    {!Atom.id}. The array is frozen on first use and memoized on the
    instance value, so repeated probes (the compiled executor's hot path)
    cost one map lookup; callers must not mutate it. *)

val pred_array : Symbol.t -> t -> Atom.t array
(** All atoms over the given predicate as a frozen array sorted by
    ascending {!Atom.id}; memoized like {!posting}. Callers must not
    mutate it. *)

val pos_cardinal : Symbol.t -> int -> Term.t -> t -> int
(** [pos_cardinal p pos t i = Array.length (posting p pos t i)], without
    freezing the array. *)

val candidates : Atom.t -> Subst.t -> t -> Atom.t list
(** [candidates a sub i]: the atoms of [i] that can possibly match the
    pattern [a] under the partial binding [sub], computed by intersecting
    the positional index [(pred, position, term)] over the positions of
    [a] that [sub] (or a constant) already fixes. A superset of the true
    matches — repeated unbound variables are left to the matcher — but
    never larger than {!with_pred}, and usually far smaller once one
    position is bound. *)

val candidate_count : Atom.t -> Subst.t -> t -> int
(** Cheap upper bound on [List.length (candidates a sub i)]: the smallest
    indexed set over the bound positions (no intersection is computed).
    Used by the search to order sub-goals most-constrained-first. *)

val signature : t -> Symbol.Set.t
val restrict : Symbol.Set.t -> t -> t
(** Keep only atoms whose predicate belongs to the given signature. *)

val map_terms : (Term.t -> Term.t) -> t -> t
val apply : Subst.t -> t -> t

val rename_apart : avoid:Term.Set.t -> t -> t * Subst.t
(** [rename_apart ~avoid i] renames every mappable term of [i] to a fresh
    variable, returning the renamed instance and the renaming used. The
    fresh variables are guaranteed to avoid [avoid], so the result shares
    no mappable term with it. *)

val critical : Symbol.Set.t -> t
(** The {e critical instance} of a signature: one constant [*] and every
    possible atom over it. Chase-termination and quickness phenomena on
    arbitrary instances are often already visible on the critical
    instance, which makes it a canonical stress sample. *)

val generalize : t -> t
(** Replace every constant by a variable named after it (consistently).
    The paper's development is constant-free: instance elements are
    variables, and the encoding surgery (Definition 12) renames even the
    database terms. Generalizing makes a chase over named constants
    comparable, up to homomorphism, with a chase grown from [{⊤}]. *)

val disjoint_union : t -> t -> t
(** The paper's [I₁ ∪̇ I₂]: union after renaming the mappable terms of the
    second instance away from the first. *)

val edges : Symbol.t -> t -> (Term.t * Term.t) list
(** Pairs [(s, t)] such that [P(s, t)] is in the instance, for binary [P]. *)

val pp : t Fmt.t
