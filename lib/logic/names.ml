(* Global intern table mapping strings to dense integer ids.

   Every name that enters the system — parsed identifiers, generated
   fresh variables, predicate names — is registered here exactly once;
   [Term.t] and [Symbol.t] then carry the dense id instead of the
   string, so equality, comparison and hashing downstream are integer
   operations. The table only grows: ids are never recycled, which is
   what makes them safe to use as array indices and hash keys across
   the whole lifetime of the process. *)

let initial = 1024
let table : (string, int) Hashtbl.t = Hashtbl.create initial
let store = ref (Array.make initial "")
let next = ref 0

let ensure n =
  let cap = Array.length !store in
  if n > cap then begin
    let grown = Array.make (max (2 * cap) n) "" in
    Array.blit !store 0 grown 0 !next;
    store := grown
  end

let intern s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
      let id = !next in
      ensure (id + 1);
      !store.(id) <- s;
      Hashtbl.add table s id;
      incr next;
      id

let name id =
  if id < 0 || id >= !next then
    invalid_arg (Printf.sprintf "Names.name: unknown id %d" id);
  !store.(id)

let known s = Hashtbl.mem table s
let count () = !next
let live_bytes () = Hashtbl.fold (fun s _ acc -> acc + String.length s) table 0

let compare_names a b =
  if Int.equal a b then 0 else String.compare (name a) (name b)

(* Fresh-name generation.

   A single counter shared by all prefixes replicates the historical
   [Term.fresh_var] numbering (e.g. [_enc1], [_enc2], then [_v3]), which
   downstream golden tests depend on. Unlike the historical scheme the
   generated name is checked against the intern table and skipped if a
   user program already claimed it, so freshness holds by construction
   rather than by the [_]-prefix convention alone. *)
let gen = ref 0

let fresh ?(prefix = "v") () =
  let rec attempt () =
    incr gen;
    let s = Printf.sprintf "_%s%d" prefix !gen in
    if Hashtbl.mem table s then attempt () else intern s
  in
  attempt ()

(* Labelled nulls are numbered, not named; they share the "only ever
   incremented" discipline so chase runs never reuse a null. *)
let null_gen = ref 0

let fresh_null_id () =
  incr null_gen;
  !null_gen

let is_reserved s = String.length s > 0 && s.[0] = '_'
