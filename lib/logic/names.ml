(* Global intern table mapping strings to dense integer ids.

   Every name that enters the system — parsed identifiers, generated
   fresh variables, predicate names — is registered here exactly once;
   [Term.t] and [Symbol.t] then carry the dense id instead of the
   string, so equality, comparison and hashing downstream are integer
   operations. The table only grows: ids are never recycled, which is
   what makes them safe to use as array indices and hash keys across
   the whole lifetime of the process.

   Domain safety. The id → string direction is a lock-free append-only
   segmented store: segment [k] is an immutable-once-published array of
   [base lsl k] slots, so the store never reallocates and a reader
   never observes a slot being moved. Writers fill the slot for a fresh
   id, then publish the id by bumping the atomic [next] counter with a
   release write; a reader that obtained an id (directly or through any
   synchronising edge — and every id below [Atomic.get next] is such)
   reads the slot with plain loads. The string → id direction (a
   [Hashtbl], which is not safe under concurrent mutation) and the
   fresh-name counter are serialised behind one writer mutex: interning
   is a rare, parse-time or round-barrier operation, while [name] and
   the id comparisons are the hot path and stay lock-free. *)

let base = 1024
let max_segments = 40

(* segment k holds ids [base*(2^k - 1), base*(2^(k+1) - 1)) *)
let segment_of id =
  let k =
    (* position of the highest set bit of (id / base + 1) *)
    let rec msb n acc = if n <= 1 then acc else msb (n lsr 1) (acc + 1) in
    msb ((id / base) + 1) 0
  in
  (k, id - (base * ((1 lsl k) - 1)))

let segments : string array array = Array.make max_segments [||]
let () = segments.(0) <- Array.make base ""
let next = Atomic.make 0
let table : (string, int) Hashtbl.t = Hashtbl.create base
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Called under [lock] only. *)
let intern_unlocked s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
      let id = Atomic.get next in
      let k, off = segment_of id in
      if k >= max_segments then failwith "Names: intern table full";
      if Array.length segments.(k) = 0 then
        segments.(k) <- Array.make (base lsl k) "";
      segments.(k).(off) <- s;
      Hashtbl.add table s id;
      (* release: the slot write above happens-before any reader that
         sees this id as allocated *)
      Atomic.set next (id + 1);
      id

let intern s = with_lock (fun () -> intern_unlocked s)

let name id =
  if id < 0 || id >= Atomic.get next then
    invalid_arg (Printf.sprintf "Names.name: unknown id %d" id);
  let k, off = segment_of id in
  segments.(k).(off)

let known s = with_lock (fun () -> Hashtbl.mem table s)
let count () = Atomic.get next

let live_bytes () =
  let n = Atomic.get next in
  let acc = ref 0 in
  for id = 0 to n - 1 do
    let k, off = segment_of id in
    acc := !acc + String.length segments.(k).(off)
  done;
  !acc

(* Per-segment (entries, payload bytes) for the populated prefix of the
   store — the inspection behind [nocliques debug intern-stats]. *)
let segment_stats () =
  let n = Atomic.get next in
  let rec go k acc =
    let start = base * ((1 lsl k) - 1) in
    if start >= n || k >= max_segments then List.rev acc
    else begin
      let cap = base lsl k in
      let entries = min cap (n - start) in
      let bytes = ref 0 in
      for off = 0 to entries - 1 do
        bytes := !bytes + String.length segments.(k).(off)
      done;
      go (k + 1) ((cap, entries, !bytes) :: acc)
    end
  in
  go 0 []

let compare_names a b =
  if Int.equal a b then 0 else String.compare (name a) (name b)

(* Fresh-name generation.

   A single counter shared by all prefixes replicates the historical
   [Term.fresh_var] numbering (e.g. [_enc1], [_enc2], then [_v3]), which
   downstream golden tests depend on. Unlike the historical scheme the
   generated name is checked against the intern table and skipped if a
   user program already claimed it, so freshness holds by construction
   rather than by the [_]-prefix convention alone. The counter lives
   under the writer mutex with the table it consults. *)
let gen = ref 0

let fresh ?(prefix = "v") () =
  with_lock @@ fun () ->
  let rec attempt () =
    incr gen;
    let s = Printf.sprintf "_%s%d" prefix !gen in
    if Hashtbl.mem table s then attempt () else intern_unlocked s
  in
  attempt ()

(* Labelled nulls are numbered, not named; they share the "only ever
   incremented" discipline so chase runs never reuse a null. The counter
   is atomic so null invention is safe from any domain, though the
   engines only invent nulls on the coordinating domain (at the round
   barrier) so that numbering stays deterministic. *)
let null_gen = Atomic.make 0

let fresh_null_id () = Atomic.fetch_and_add null_gen 1 + 1

let is_reserved s = String.length s > 0 && s.[0] = '_'
