type position = { line : int; column : int }

let whole_input = { line = 0; column = 0 }

let pp_position ppf p =
  if p.line = 0 then Fmt.pf ppf "input"
  else Fmt.pf ppf "line %d, column %d" p.line p.column

exception Error of { position : position; message : string }

let error_message position message = Fmt.str "%a: %s" pp_position position message

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Arrow
  | Question
  | Colon
  | Eof

type lexer = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the start of the current line *)
  mutable tok : token;
  mutable tok_pos : position;  (* where the current token starts *)
}

let scan_position lx = { line = lx.line; column = lx.pos - lx.bol + 1 }
let error_at position message = raise (Error { position; message })
let error lx msg = error_at lx.tok_pos msg

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let rec skip_ws lx =
  if lx.pos >= String.length lx.input then ()
  else
    match lx.input.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        lx.bol <- lx.pos;
        skip_ws lx
    | '#' ->
        skip_line lx;
        skip_ws lx
    | '/'
      when lx.pos + 1 < String.length lx.input
           && lx.input.[lx.pos + 1] = '/' ->
        skip_line lx;
        skip_ws lx
    | _ -> ()

and skip_line lx =
  while
    lx.pos < String.length lx.input && lx.input.[lx.pos] <> '\n'
  do
    lx.pos <- lx.pos + 1
  done

let lex_token lx =
  skip_ws lx;
  lx.tok_pos <- scan_position lx;
  if lx.pos >= String.length lx.input then Eof
  else
    let c = lx.input.[lx.pos] in
    if is_ident_start c then begin
      let start = lx.pos in
      while
        lx.pos < String.length lx.input && is_ident_char lx.input.[lx.pos]
      do
        lx.pos <- lx.pos + 1
      done;
      Ident (String.sub lx.input start (lx.pos - start))
    end
    else begin
      lx.pos <- lx.pos + 1;
      match c with
      | '(' -> Lparen
      | ')' -> Rparen
      | ',' -> Comma
      | '.' -> Dot
      | '?' -> Question
      | ':' -> Colon
      | '-' ->
          if
            lx.pos < String.length lx.input && lx.input.[lx.pos] = '>'
          then begin
            lx.pos <- lx.pos + 1;
            Arrow
          end
          else error lx "expected '->'"
      | c -> error lx (Fmt.str "unexpected character %C" c)
    end

let advance lx = lx.tok <- lex_token lx

let make_lexer input =
  let lx =
    { input; pos = 0; line = 1; bol = 0; tok = Eof;
      tok_pos = { line = 1; column = 1 } }
  in
  advance lx;
  lx

let expect lx tok what =
  if lx.tok = tok then advance lx else error lx (Fmt.str "expected %s" what)

(* Arity bookkeeping: a predicate's arity is fixed by its first use.
   Keyed on the interned name id, so the lookup is a pure int-map read. *)
module Name_map = Map.Make (Int)

type env = { mutable arities : Symbol.t Name_map.t }

let symbol ~at env name arity =
  let nid = Names.intern name in
  match Name_map.find_opt nid env.arities with
  | Some p when Symbol.arity p = arity -> p
  | Some p ->
      error_at at
        (Fmt.str "predicate %s used with arities %d and %d" name
           (Symbol.arity p) arity)
  | None ->
      let p = Symbol.make name arity in
      env.arities <- Name_map.add nid p env.arities;
      p

let is_pred_name name = name.[0] >= 'A' && name.[0] <= 'Z'

(* The [_] prefix is reserved for generated names (fresh variables,
   encoding artefacts): a user identifier there could alias a generated
   one mid-pipeline, so source programs must stay out of it. *)
let check_not_reserved lx name =
  if Names.is_reserved name then
    error lx
      (Fmt.str
         "identifier %s is in the reserved '_' namespace (generated names)"
         name)

let parse_term lx ~const =
  match lx.tok with
  | Ident name when not (is_pred_name name) ->
      check_not_reserved lx name;
      advance lx;
      if const then Term.cst name else Term.var name
  | Ident name -> error lx (Fmt.str "expected a term, got predicate %s" name)
  | _ -> error lx "expected a term"

let parse_term_list lx ~const =
  let rec go acc =
    let t = parse_term lx ~const in
    match lx.tok with
    | Comma ->
        advance lx;
        go (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  go []

let parse_atom lx env ~const =
  match lx.tok with
  | Ident name when is_pred_name name ->
      let at = lx.tok_pos in
      advance lx;
      if lx.tok = Lparen then begin
        advance lx;
        let args = parse_term_list lx ~const in
        expect lx Rparen "')'";
        Atom.make (symbol ~at env name (List.length args)) args
      end
      else Atom.make (symbol ~at env name 0) []
  | _ -> error lx "expected an atom"

let parse_atom_list lx env ~const =
  let rec go acc =
    let a = parse_atom lx env ~const in
    match lx.tok with
    | Comma ->
        advance lx;
        go (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  go []

type program = {
  facts : Instance.t;
  rules : Rule.t list;
  queries : Cq.t list;
}

let parse_query_body lx env =
  advance lx (* '?' *);
  let answer =
    if lx.tok = Lparen then begin
      advance lx;
      if lx.tok = Rparen then begin
        advance lx;
        []
      end
      else begin
        let ts = parse_term_list lx ~const:false in
        expect lx Rparen "')'";
        ts
      end
    end
    else []
  in
  let body = parse_atom_list lx env ~const:false in
  Cq.make ~answer body

(* A statement starting with an identifier: either "name: rule", or a rule /
   fact starting with an atom list. *)
let parse_statement lx env =
  match lx.tok with
  | Question ->
      let q = parse_query_body lx env in
      expect lx Dot "'.'";
      `Query q
  | Ident name when not (is_pred_name name) ->
      (* rule label *)
      check_not_reserved lx name;
      advance lx;
      expect lx Colon "':'";
      let body = parse_atom_list lx env ~const:false in
      expect lx Arrow "'->'";
      let head = parse_atom_list lx env ~const:false in
      expect lx Dot "'.'";
      `Rule (Rule.make ~name body head)
  | Ident _ ->
      (* Could be facts or an unnamed rule; parse atoms as variables first
         and reinterpret as constants if a '.' follows directly. *)
      let start = (lx.pos, lx.line, lx.bol, lx.tok, lx.tok_pos) in
      let atoms = parse_atom_list lx env ~const:false in
      if lx.tok = Arrow then begin
        advance lx;
        let head = parse_atom_list lx env ~const:false in
        expect lx Dot "'.'";
        `Rule (Rule.make atoms head)
      end
      else begin
        (* facts: re-lex from the saved position with constants *)
        let pos, line, bol, tok, tok_pos = start in
        lx.pos <- pos;
        lx.line <- line;
        lx.bol <- bol;
        lx.tok <- tok;
        lx.tok_pos <- tok_pos;
        let atoms = parse_atom_list lx env ~const:true in
        expect lx Dot "'.'";
        `Facts atoms
      end
  | _ -> error lx "expected a statement"

let parse_program input =
  let lx = make_lexer input in
  let env = { arities = Name_map.empty } in
  let rec go facts rules queries =
    match lx.tok with
    | Eof ->
        {
          facts = Instance.of_list (List.rev facts);
          rules = List.rev rules;
          queries = List.rev queries;
        }
    | _ -> (
        match parse_statement lx env with
        | `Facts fs -> go (List.rev_append fs facts) rules queries
        | `Rule r -> go facts (r :: rules) queries
        | `Query q -> go facts rules (q :: queries))
  in
  go [] [] []

let parse_rules input = (parse_program input).rules
let parse_instance input = (parse_program input).facts

let parse_query input =
  match (parse_program input).queries with
  | [ q ] -> q
  | qs ->
      error_at whole_input
        (Fmt.str "expected one query, got %d" (List.length qs))

let parse_rule input =
  match parse_rules input with
  | [ r ] -> r
  | rs ->
      error_at whole_input
        (Fmt.str "expected one rule, got %d" (List.length rs))

let rule input =
  let input = String.trim input in
  let input =
    if String.length input > 0 && input.[String.length input - 1] = '.' then
      input
    else input ^ "."
  in
  parse_rule input

let instance input =
  let lx = make_lexer input in
  let env = { arities = Name_map.empty } in
  let atoms = parse_atom_list lx env ~const:true in
  if lx.tok = Dot then advance lx;
  if lx.tok <> Eof then error lx "trailing input";
  Instance.of_list atoms

let query input =
  let lx = make_lexer input in
  let env = { arities = Name_map.empty } in
  if lx.tok <> Question then error lx "expected '?'";
  let q = parse_query_body lx env in
  if lx.tok = Dot then advance lx;
  if lx.tok <> Eof then error lx "trailing input";
  q
