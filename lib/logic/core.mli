(** Cores of instances.

    The {e core} of an instance is a minimal sub-instance it retracts
    onto — the canonical representative of its homomorphic-equivalence
    class, unique up to isomorphism. Cores are the standard canonical
    form in chase theory: two instances are homomorphically equivalent
    iff their cores are isomorphic, which turns the paper's pervasive
    "↔" comparisons (Cor. 15, Lemmas 19/24/30) into decidable
    isomorphism checks on small inputs.

    Computation is by iterated proper retraction (exponential in the
    worst case — meant for chase-prefix-sized inputs). *)

val retract : Instance.t -> Instance.t option
(** One step: the image of a proper endomorphism (strictly fewer atoms),
    if any. Constants are fixed, as always. *)

val core : Instance.t -> Instance.t
(** The core, by retracting to a fixpoint. *)

val is_core : Instance.t -> bool
(** No proper retraction exists. *)

val equivalent_via_cores : Instance.t -> Instance.t -> bool
(** Homomorphic equivalence decided as isomorphism of cores. *)
