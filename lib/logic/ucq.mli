(** Unions of conjunctive queries.

    A UCQ [Q(x̄)] is a finite disjunction of CQs whose answer tuples are
    specializations of a common tuple [x̄] (Section 2.1). *)

type t = private { arity : int; disjuncts : Cq.t list }

val make : Cq.t list -> t
(** Raises [Invalid_argument] on an empty list or on disjuncts with
    different answer arities. *)

val of_cq : Cq.t -> t
val disjuncts : t -> Cq.t list
val arity : t -> int
val size : t -> int

val union : t -> t -> t

val holds : ?tuple:Term.t list -> Instance.t -> t -> bool
(** [i ⊨ Q(tuple)]: some disjunct holds. *)

val holds_inj : ?tuple:Term.t list -> Instance.t -> t -> bool
(** Some disjunct holds injectively. *)

val witness : ?tuple:Term.t list -> inj:bool -> Instance.t -> t -> (Cq.t * Subst.t) option
(** The first disjunct (with its homomorphism) that holds. *)

val cover : t -> t
(** Remove disjuncts subsumed by another disjunct (keeping the more general
    one); the result is equivalent as a query. This is the minimization
    underlying "the minimal rewriting is unique" [König et al.]. *)

val mem_equiv : Cq.t -> t -> bool
(** Whether an equivalent disjunct is already present. *)

val equivalent : t -> t -> bool
(** Equivalence as queries: mutual disjunct-wise subsumption. *)

val pp : t Fmt.t
