type t = Term.t Term.Map.t

let empty = Term.Map.empty
let is_empty = Term.Map.is_empty

let add x t s =
  if not (Term.is_mappable x) then
    invalid_arg (Fmt.str "Subst.add: constant %a in domain" Term.pp x);
  Term.Map.add x t s

let singleton x t = add x t empty
let of_list l = List.fold_left (fun s (x, t) -> add x t s) empty l
let bindings = Term.Map.bindings
let find_opt = Term.Map.find_opt
let mem = Term.Map.mem

let domain s =
  Term.Map.fold (fun x _ acc -> Term.Set.add x acc) s Term.Set.empty

let range s =
  Term.Map.fold (fun _ t acc -> Term.Set.add t acc) s Term.Set.empty

let apply s t = match Term.Map.find_opt t s with Some u -> u | None -> t
let apply_atom s a = Atom.map (apply s) a
let apply_atoms s atoms = List.map (apply_atom s) atoms

let compose s1 s2 =
  let first = Term.Map.map (apply s2) s1 in
  Term.Map.union (fun _ fst _ -> Some fst) first s2

let restrict dom s = Term.Map.filter (fun x _ -> Term.Set.mem x dom) s

let is_injective_on dom s =
  let images = Hashtbl.create 16 in
  Term.Set.for_all
    (fun x ->
      let y = apply s x in
      match Hashtbl.find_opt images y with
      | Some x' -> Term.equal x x'
      | None ->
          Hashtbl.add images y x;
          true)
    dom

let equal = Term.Map.equal Term.equal

let pp ppf s =
  let pp_binding ppf (x, t) = Fmt.pf ppf "%a↦%a" Term.pp x Term.pp t in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:comma pp_binding) (bindings s)
