type t = { id : int; hash : int; pred : Symbol.t; args : Term.t list }

(* Atoms are hash-consed: [make] returns the unique (physically shared)
   atom for a given predicate and argument tuple, keyed on the int codes
   of its parts. Equality is physical, comparison is on the dense id,
   and the hash is precomputed at construction.

   The table is sharded for domain safety: the precomputed hash selects
   one of [n_shards] buckets, each a [Hashtbl] behind its own mutex, so
   concurrent construction of distinct atoms contends only on hash
   collisions and construction of the same atom serialises on one shard
   and returns the one shared value. Ids come from an atomic counter —
   dense, never recycled, and allocation-ordered (on a single domain the
   numbering is exactly the sequential one). *)
let n_shards = 16

type shard = { tbl : (int list, t) Hashtbl.t; lock : Mutex.t }

let shards =
  Array.init n_shards (fun _ ->
      { tbl = Hashtbl.create 256; lock = Mutex.create () })

let next = Atomic.make 0

let make pred args =
  if List.length args <> Symbol.arity pred then
    invalid_arg
      (Fmt.str "Atom.make: %a applied to %d arguments" Symbol.pp pred
         (List.length args));
  let key = Symbol.id pred :: List.map Term.code args in
  let hash = List.fold_left (fun h c -> (h * 31) + c) 17 key in
  let s = shards.((hash land max_int) mod n_shards) in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.tbl key with
  | Some a ->
      Mutex.unlock s.lock;
      a
  | None ->
      let a = { id = Atomic.fetch_and_add next 1; hash; pred; args } in
      Hashtbl.add s.tbl key a;
      Mutex.unlock s.lock;
      a
  | exception e ->
      Mutex.unlock s.lock;
      raise e

(* Per-shard (entries, max bucket depth): the collision picture behind
   [nocliques debug intern-stats]. *)
let shard_stats () =
  Array.to_list
    (Array.map
       (fun s ->
         let st = Hashtbl.stats s.tbl in
         (st.Hashtbl.num_bindings, st.Hashtbl.max_bucket_length))
       shards)

let app name args = make (Symbol.make name (List.length args)) args
let top = make Symbol.top []
let pred a = a.pred
let args a = a.args
let arity a = Symbol.arity a.pred
let id a = a.id
let count () = Atomic.get next

let terms a =
  List.fold_left (fun acc t -> Term.Set.add t acc) Term.Set.empty a.args

let vars a =
  List.fold_left
    (fun acc t -> if Term.is_mappable t then Term.Set.add t acc else acc)
    Term.Set.empty a.args

let map f a = make a.pred (List.map f a.args)
let is_binary a = arity a = 2

let as_edge a =
  match a.args with [ s; t ] -> Some (s, t) | _ -> None

let compare a b = Int.compare a.id b.id
let equal a b = a == b
let hash a = a.hash

let compare_structural a b =
  match Symbol.compare_names a.pred b.pred with
  | 0 -> List.compare Term.compare_names a.args b.args
  | c -> c

let pp ppf a =
  if Symbol.arity a.pred = 0 then Symbol.pp_name ppf a.pred
  else
    Fmt.pf ppf "@[<h>%a(%a)@]" Symbol.pp_name a.pred
      Fmt.(list ~sep:(any ",") Term.pp)
      a.args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let sorted_elements s = List.sort compare_structural (Set.elements s)

let terms_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (terms a)) Term.Set.empty
    atoms

let vars_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (vars a)) Term.Set.empty
    atoms

let pp_list ppf atoms = Fmt.(list ~sep:comma pp) ppf atoms
