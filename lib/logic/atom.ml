type t = { pred : Symbol.t; args : Term.t list }

let make pred args =
  if List.length args <> Symbol.arity pred then
    invalid_arg
      (Fmt.str "Atom.make: %a applied to %d arguments" Symbol.pp pred
         (List.length args));
  { pred; args }

let app name args = make (Symbol.make name (List.length args)) args
let top = { pred = Symbol.top; args = [] }
let pred a = a.pred
let args a = a.args
let arity a = Symbol.arity a.pred

let terms a =
  List.fold_left (fun acc t -> Term.Set.add t acc) Term.Set.empty a.args

let vars a =
  List.fold_left
    (fun acc t -> if Term.is_mappable t then Term.Set.add t acc else acc)
    Term.Set.empty a.args

let map f a = { a with args = List.map f a.args }
let is_binary a = arity a = 2

let as_edge a =
  match a.args with [ s; t ] -> Some (s, t) | _ -> None

let compare a b =
  match Symbol.compare a.pred b.pred with
  | 0 -> List.compare Term.compare a.args b.args
  | c -> c

let equal a b = compare a b = 0

let pp ppf a =
  if Symbol.arity a.pred = 0 then Symbol.pp_name ppf a.pred
  else
    Fmt.pf ppf "@[<h>%a(%a)@]" Symbol.pp_name a.pred
      Fmt.(list ~sep:(any ",") Term.pp)
      a.args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let terms_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (terms a)) Term.Set.empty
    atoms

let vars_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (vars a)) Term.Set.empty
    atoms

let pp_list ppf atoms = Fmt.(list ~sep:comma pp) ppf atoms
