type t = { id : int; hash : int; pred : Symbol.t; args : Term.t list }

(* Atoms are hash-consed: [make] returns the unique (physically shared)
   atom for a given predicate and argument tuple, keyed on the int codes
   of its parts. Equality is physical, comparison is on the dense id,
   and the hash is precomputed at construction. *)
let table : (int list, t) Hashtbl.t = Hashtbl.create 4096
let next = ref 0

let make pred args =
  if List.length args <> Symbol.arity pred then
    invalid_arg
      (Fmt.str "Atom.make: %a applied to %d arguments" Symbol.pp pred
         (List.length args));
  let key = Symbol.id pred :: List.map Term.code args in
  match Hashtbl.find_opt table key with
  | Some a -> a
  | None ->
      let hash = List.fold_left (fun h c -> (h * 31) + c) 17 key in
      let a = { id = !next; hash; pred; args } in
      incr next;
      Hashtbl.add table key a;
      a

let app name args = make (Symbol.make name (List.length args)) args
let top = make Symbol.top []
let pred a = a.pred
let args a = a.args
let arity a = Symbol.arity a.pred
let id a = a.id
let count () = !next

let terms a =
  List.fold_left (fun acc t -> Term.Set.add t acc) Term.Set.empty a.args

let vars a =
  List.fold_left
    (fun acc t -> if Term.is_mappable t then Term.Set.add t acc else acc)
    Term.Set.empty a.args

let map f a = make a.pred (List.map f a.args)
let is_binary a = arity a = 2

let as_edge a =
  match a.args with [ s; t ] -> Some (s, t) | _ -> None

let compare a b = Int.compare a.id b.id
let equal a b = a == b
let hash a = a.hash

let compare_structural a b =
  match Symbol.compare_names a.pred b.pred with
  | 0 -> List.compare Term.compare_names a.args b.args
  | c -> c

let pp ppf a =
  if Symbol.arity a.pred = 0 then Symbol.pp_name ppf a.pred
  else
    Fmt.pf ppf "@[<h>%a(%a)@]" Symbol.pp_name a.pred
      Fmt.(list ~sep:(any ",") Term.pp)
      a.args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let sorted_elements s = List.sort compare_structural (Set.elements s)

let terms_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (terms a)) Term.Set.empty
    atoms

let vars_of_list atoms =
  List.fold_left (fun acc a -> Term.Set.union acc (vars a)) Term.Set.empty
    atoms

let pp_list ppf atoms = Fmt.(list ~sep:comma pp) ppf atoms
