(** Predicate symbols.

    A symbol is a predicate name together with its arity. Following the
    paper's preliminaries, every predicate [P] comes with a fixed arity
    [ar(P) >= 0]; a {e signature} is a set of predicates
    (see {!module:Signature} helpers below). *)

type t = private { name : string; arity : int }

val make : string -> int -> t
(** [make name arity] builds a predicate symbol. Raises [Invalid_argument]
    if [arity < 0] or [name] is empty. *)

val name : t -> string
val arity : t -> int

val top : t
(** The nullary predicate [⊤] that, by convention (Section 2.1), belongs to
    every instance. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : t Fmt.t
(** Prints as [name/arity]. *)

val pp_name : t Fmt.t
(** Prints just the name. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val is_binary_signature : Set.t -> bool
(** [is_binary_signature s] holds when every predicate in [s] has arity at
    most 2 (the paper's notion of a binary signature). *)
