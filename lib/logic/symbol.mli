(** Predicate symbols.

    A symbol is a predicate name together with its arity. Following the
    paper's preliminaries, every predicate [P] comes with a fixed arity
    [ar(P) >= 0]; a {e signature} is a set of predicates
    (see {!module:Signature} helpers below).

    Symbols are interned: [make] returns the unique symbol for a given
    (name, arity) pair, and [equal]/[compare]/[hash] are O(1) integer
    operations on its dense id. *)

type t

val make : string -> int -> t
(** [make name arity] builds (or retrieves) a predicate symbol. Raises
    [Invalid_argument] if [arity < 0] or [name] is empty. *)

val name : t -> string
val arity : t -> int

val name_id : t -> int
(** The {!Names} id of the symbol's name. *)

val id : t -> int
(** The dense symbol id ([0 .. count () - 1]); doubles as the hash. *)

val count : unit -> int
(** Number of distinct symbols interned so far. *)

val top : t
(** The nullary predicate [⊤] that, by convention (Section 2.1), belongs to
    every instance. *)

val compare : t -> t -> int
(** Total order on ids — O(1), but unrelated to name order. Use
    {!compare_names} where output byte-stability matters. *)

val equal : t -> t -> bool
val hash : t -> int

val compare_names : t -> t -> int
(** The historical structural order: by name string, then arity. *)

val pp : t Fmt.t
(** Prints as [name/arity]. *)

val pp_name : t Fmt.t
(** Prints just the name. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val sorted_elements : Set.t -> t list
(** Elements in {!compare_names} order, for deterministic output. *)

val is_binary_signature : Set.t -> bool
(** [is_binary_signature s] holds when every predicate in [s] has arity at
    most 2 (the paper's notion of a binary signature). *)
