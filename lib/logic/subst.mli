(** Substitutions: finite maps from mappable terms to terms.

    A substitution is the paper's notion of a function from variables to
    variables (extended here to labelled nulls). Applying a substitution
    leaves terms outside its domain — and all constants — unchanged. *)

type t

val empty : t
val is_empty : t -> bool

val add : Term.t -> Term.t -> t -> t
(** [add x t s] binds [x] to [t]. Raises [Invalid_argument] when [x] is a
    constant (constants are rigid). Rebinding an already-bound term
    overwrites the previous binding. *)

val singleton : Term.t -> Term.t -> t
val of_list : (Term.t * Term.t) list -> t
val bindings : t -> (Term.t * Term.t) list

val find_opt : Term.t -> t -> Term.t option
val mem : Term.t -> t -> bool
val domain : t -> Term.Set.t
val range : t -> Term.Set.t

val apply : t -> Term.t -> Term.t
(** [apply s t] is [s(t)]: the binding of [t] if any, otherwise [t]. Not
    iterated: bindings are applied once. *)

val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list

val compose : t -> t -> t
(** [compose s1 s2] is the substitution [t ↦ s2(s1(t))], with domain
    [domain s1 ∪ domain s2]. *)

val restrict : Term.Set.t -> t -> t
(** Keep only bindings whose key belongs to the given set. *)

val is_injective_on : Term.Set.t -> t -> bool
(** [is_injective_on dom s] holds when [s] maps distinct elements of [dom]
    to distinct images. *)

val equal : t -> t -> bool
val pp : t Fmt.t
