(** Compiled join plans for homomorphism search.

    A plan is the once-per-body compilation of a rule body / CQ body: the
    mappable terms are numbered into dense {e slots}, every argument
    position is classified as a constant or a slot, and for every possible
    root atom a static step order (a {e variant}) is precomputed. The
    executor ({!Exec}) then runs a variant as a tight register machine
    over the sorted posting arrays of the target instance — no
    re-consulting of atom structure mid-search.

    The root variant is chosen {e at call time} with exactly the
    fewest-candidates scoring of the interpreted engine
    ({!Nca_logic.Instance.candidate_count} over the goals in original
    order, first strict minimum), so for bodies of at most two atoms the
    compiled enumeration order is identical to [Hom]'s — the property the
    byte-identity goldens rely on. For larger bodies the interpreted
    engine re-picks dynamically per search node while a variant's
    continuation is static, so match {e order} may deviate (the match
    {e set} never does); see DESIGN.md. *)

open Nca_logic

type arg =
  | Const of Term.t  (** rigid: must equal the target argument *)
  | Slot of int  (** mappable: read/write register [k] *)

type t = private {
  body : Atom.t array;  (** the source atoms, in original order *)
  preds : Symbol.t array;  (** [preds.(g) = Atom.pred body.(g)] *)
  args : arg array array;  (** per goal, its argument classification *)
  slot_terms : Term.t array;  (** slot [k] holds the image of this term *)
  variants : int array array;
      (** [variants.(r)] is a permutation of the goal indices with
          [variants.(r).(0) = r]: the static step order used when goal
          [r] is selected as root. *)
}

val compile : ?stats:Instance.t -> Atom.t list -> t
(** [compile ?stats body] builds the plan. [stats] (typically the
    instance the first execution targets) is only read for per-predicate
    cardinalities when ordering the continuation of each variant —
    greedy: most statically-bound positions first, then smaller relation,
    then original body position. It never affects correctness, only the
    step order of variants for bodies of three or more atoms. *)

val nslots : t -> int

val pp : t Fmt.t
(** Human-readable plan: slot table, then every variant with its step
    order and the per-position actions (const / probe / bind / check).
    Pinned by the [debug plan] goldens. *)

val pp_dot : t Fmt.t
(** The plan's join graph in DOT: one node per body atom (variant-0 root
    in bold), one edge per pair of goals sharing a slot, labelled with
    the shared terms. *)
