(** The compiled-plan executor.

    Drop-in replacement for the interpreted {!Nca_logic.Hom} search: the
    same API, the same match sets, and — for bodies of at most two atoms —
    the same enumeration order (root chosen at call time with [Hom]'s
    fewest-candidates scoring, candidates merged in ascending atom-id
    order by leapfrog intersection of the target's sorted posting
    arrays). Plans come from {!Cache}, so each body is compiled once per
    process.

    The interpreted engine stays available as a differential oracle: when
    the executor is disabled ([NOCLIQUES_NO_PLANNER] set to a non-empty
    value, [--no-planner], or {!set_enabled}[ false]) every entry point
    delegates to [Hom] verbatim. *)

open Nca_logic

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Flip the engine at runtime ([--no-planner], bench A/B runs). *)

val iter :
  ?inj:bool ->
  ?init:Subst.t ->
  Atom.t list ->
  Instance.t ->
  (Subst.t -> unit) ->
  unit
(** Same contract as {!Nca_logic.Hom.iter}. *)

val iter_targets :
  ?init:Subst.t -> (Atom.t * Instance.t) list -> (Subst.t -> unit) -> unit
(** Same contract as {!Nca_logic.Hom.iter_targets}: per-goal targets, the
    primitive behind semi-naive (delta-driven) enumeration. *)

val find :
  ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> Subst.t option

val exists : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> bool
val all : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> Subst.t list
val count : ?inj:bool -> ?init:Subst.t -> Atom.t list -> Instance.t -> int

val subsumes : Cq.t -> Cq.t -> bool
(** [subsumes q q']: same contract as {!Nca_logic.Cq.subsumes} — [q]
    subsumes [q'] when a homomorphism from [q]'s body to [q']'s body maps
    [q]'s answer tuple to [q']'s — with the hom search routed through the
    compiled executor. *)
