open Nca_logic
module Telemetry = Nca_obs.Telemetry

(* Escape hatch: a non-empty NOCLIQUES_NO_PLANNER falls back to the
   interpreted engine for every call (the CLI's --no-planner flips the
   same switch). *)
let state =
  ref
    (match Sys.getenv_opt "NOCLIQUES_NO_PLANNER" with
    | None | Some "" -> true
    | Some _ -> false)

let enabled () = !state
let set_enabled b = state := b

(* ------------------------------------------------------------------ *)
(* Leapfrog intersection of id-sorted atom arrays *)

(* Smallest [j >= lo] with [Atom.id arr.(j) >= key], by galloping: double
   the step while still below, then binary-search the bracketed range. *)
let seek (arr : Atom.t array) lo key =
  let n = Array.length arr in
  if lo >= n || Atom.id arr.(lo) >= key then lo
  else begin
    let rec probe prev step =
      let j = lo + step in
      if j < n && Atom.id arr.(j) < key then probe j (step * 2)
      else (prev, min j n)
    in
    let l, r = probe lo 1 in
    let l = ref l and r = ref r in
    (* arr.(!l) < key; !r = n or arr.(!r) >= key *)
    while !r - !l > 1 do
      let m = (!l + !r) / 2 in
      if Atom.id arr.(m) < key then l := m else r := m
    done;
    !r
  end

exception Empty

(* Emit, in ascending id order, every atom present in all of [arrs]
   (each sorted by ascending id). [k >= 2]. *)
let leapfrog (arrs : Atom.t array array) emit =
  let k = Array.length arrs in
  let idx = Array.make k 0 in
  try
    Array.iter (fun a -> if Array.length a = 0 then raise Empty) arrs;
    let key = ref (Atom.id arrs.(0).(0)) in
    let agree = ref 1 in
    let i = ref 1 in
    while true do
      let ii = !i mod k in
      let a = arrs.(ii) in
      let j = seek a idx.(ii) !key in
      if j >= Array.length a then raise Empty;
      idx.(ii) <- j;
      let id = Atom.id a.(j) in
      if id = !key then begin
        incr agree;
        if !agree = k then begin
          emit a.(j);
          if j + 1 >= Array.length a then raise Empty;
          idx.(ii) <- j + 1;
          key := Atom.id a.(j + 1);
          agree := 1
        end
      end
      else begin
        key := id;
        agree := 1
      end;
      incr i
    done
  with Empty -> ()

(* ------------------------------------------------------------------ *)
(* The register machine *)

type counters = {
  mutable probes : int;  (* candidate atoms reaching the matcher *)
  mutable inters : int;  (* k-way (k >= 2) leapfrog intersections *)
  mutable matched : int;  (* full matches reported *)
}

let flush c =
  if Telemetry.enabled () then begin
    Telemetry.incr "plan.exec";
    Telemetry.count "plan.probes" c.probes;
    Telemetry.count "plan.intersections" c.inters;
    Telemetry.count "plan.matches" c.matched
  end;
  (* per-execution probe fan-out distribution, not just the total *)
  Nca_obs.Metrics.observe "plan.probe_fanout" c.probes

(* shared by every non-injective run; never written in that mode *)
let no_used : (int, unit) Hashtbl.t = Hashtbl.create 1

(* Run [plan] against per-goal [targets], extending [init], calling [f] on
   every full match. Replicates the interpreted engine exactly where the
   goldens can see it: the root goal is picked by Hom.pick_ne's scoring
   (Instance.candidate_count, first strict minimum in body order, early
   exit at 0) against the runtime registers, candidates are enumerated in
   ascending atom-id order, and argument positions are checked/bound left
   to right (the inj used-set grows in the same order). Positions that fed
   the posting intersection are already known to agree and are skipped. *)
let run ~inj ~init (plan : Plan.t) (targets : Instance.t array) f =
  let n = Array.length plan.body in
  if n = 0 then f init
  else begin
    let c = { probes = 0; inters = 0; matched = 0 } in
    let ns = Array.length plan.slot_terms in
    let vals = Array.copy plan.slot_terms in
    let set = Array.make ns false in
    Array.iteri
      (fun k t ->
        match Subst.find_opt t init with
        | Some v ->
            vals.(k) <- v;
            set.(k) <- true
        | None -> ())
      plan.slot_terms;
    let used = if inj then Hashtbl.create 16 else no_used in
    if inj then
      Term.Set.iter
        (fun t -> Hashtbl.replace used (Term.code t) ())
        (Subst.range init);
    (* The substitution under construction is maintained incrementally —
       one [Subst.add] per bind, shared across every match below it, and
       handing it to [f] costs nothing. The trail records, per bind, the
       slot and the map as it was, so backtracking is a pointer restore. *)
    let cur = ref init in
    let trail = Array.make (max 1 ns) 0 in
    let strail = Array.make (max 1 ns) init in
    let tn = ref 0 in
    let bind k v =
      vals.(k) <- v;
      set.(k) <- true;
      trail.(!tn) <- k;
      strail.(!tn) <- !cur;
      cur := Subst.add plan.slot_terms.(k) v !cur;
      incr tn;
      if inj then Hashtbl.replace used (Term.code v) ()
    in
    let undo mark =
      if !tn > mark then begin
        while !tn > mark do
          decr tn;
          let k = trail.(!tn) in
          set.(k) <- false;
          if inj then Hashtbl.remove used (Term.code vals.(k))
        done;
        cur := strail.(mark)
      end
    in
    (* Root scoring = Instance.candidate_count against the registers: the
       smallest posting over the fixed positions, defaulting to the
       predicate cardinal. *)
    let score g =
      let tgt = targets.(g) in
      let p = plan.preds.(g) in
      let best = ref (Instance.pred_cardinal p tgt) in
      Array.iteri
        (fun i a ->
          match a with
          | Plan.Const t -> best := min !best (Instance.pos_cardinal p i t tgt)
          | Plan.Slot k ->
              if set.(k) then
                best := min !best (Instance.pos_cardinal p i vals.(k) tgt))
        plan.args.(g);
      !best
    in
    let root = ref 0 in
    if n > 1 then begin
      (* single-goal bodies have one variant and nothing to score — the
         scoring cardinals are O(set size), so skip them entirely *)
      let best = ref (score 0) in
      let g = ref 1 in
      while !best > 0 && !g < n do
        let s = score !g in
        if s < !best then begin
          root := !g;
          best := s
        end;
        incr g
      done
    end;
    let order = plan.variants.(!root) in
    (* Which positions of each step's goal are fixed when the step starts
       (Const, init-bound, or bound by an earlier step of this variant) is
       a function of the order alone, so classify once per call; the
       per-node work is then just the posting lookups themselves. *)
    let inter_mask = Array.make n [||] in
    let inter_pos = Array.make n [||] in
    (let bound = Array.copy set in
     for d = 0 to n - 1 do
       let ga = plan.args.(order.(d)) in
       let m = Array.make (Array.length ga) false in
       let acc = ref [] in
       Array.iteri
         (fun i a ->
           match a with
           | Plan.Const _ ->
               m.(i) <- true;
               acc := i :: !acc
           | Plan.Slot k ->
               if bound.(k) then begin
                 m.(i) <- true;
                 acc := i :: !acc
               end)
         ga;
       inter_mask.(d) <- m;
       inter_pos.(d) <- Array.of_list (List.rev !acc);
       Array.iter
         (function Plan.Slot k -> bound.(k) <- true | Plan.Const _ -> ())
         ga
     done);
    let rec step d =
      let g = order.(d) in
      let p = plan.preds.(g) in
      let tgt = targets.(g) in
      let ga = plan.args.(g) in
      let in_inter = inter_mask.(d) in
      let fixed_term i =
        match ga.(i) with Plan.Const t -> t | Plan.Slot k -> vals.(k)
      in
      let try_atom b =
        c.probes <- c.probes + 1;
        let mark = !tn in
        let rec go i bl =
          match bl with
          | [] -> true
          | bt :: rest ->
              (in_inter.(i)
              ||
              match ga.(i) with
              | Plan.Const t -> Term.equal t bt
              | Plan.Slot k ->
                  if set.(k) then Term.equal vals.(k) bt
                  else if inj && Hashtbl.mem used (Term.code bt) then false
                  else begin
                    bind k bt;
                    true
                  end)
              && go (i + 1) rest
        in
        if go 0 (Atom.args b) then
          if d + 1 = n then begin
            c.matched <- c.matched + 1;
            f !cur
          end
          else step (d + 1);
        undo mark
      in
      let pos = inter_pos.(d) in
      match Array.length pos with
      | 0 -> Array.iter try_atom (Instance.pred_array p tgt)
      | 1 ->
          let i = pos.(0) in
          Array.iter try_atom (Instance.posting p i (fixed_term i) tgt)
      | _ ->
          c.inters <- c.inters + 1;
          leapfrog
            (Array.map (fun i -> Instance.posting p i (fixed_term i) tgt) pos)
            try_atom
    in
    Fun.protect ~finally:(fun () -> flush c) (fun () -> step 0)
  end

(* ------------------------------------------------------------------ *)
(* Hom-shaped API *)

let iter ?(inj = false) ?(init = Subst.empty) src tgt f =
  if not !state then Hom.iter ~inj ~init src tgt f
  else
    let plan = Cache.find_or_compile ~stats:tgt src in
    run ~inj ~init plan (Array.make (Array.length plan.body) tgt) f

let iter_targets ?(init = Subst.empty) goals f =
  if not !state then Hom.iter_targets ~init goals f
  else
    match goals with
    | [] -> f init
    | (_, tgt0) :: _ ->
        let plan = Cache.find_or_compile ~stats:tgt0 (List.map fst goals) in
        run ~inj:false ~init plan (Array.of_list (List.map snd goals)) f

exception Found of Subst.t

let find ?inj ?init src tgt =
  try
    iter ?inj ?init src tgt (fun s -> raise (Found s));
    None
  with Found s -> Some s

let exists ?inj ?init src tgt = Option.is_some (find ?inj ?init src tgt)

let all ?inj ?init src tgt =
  let acc = ref [] in
  iter ?inj ?init src tgt (fun s -> acc := s :: !acc);
  List.rev !acc

let count ?inj ?init src tgt =
  let m = ref 0 in
  iter ?inj ?init src tgt (fun _ -> incr m);
  !m

(* Cq.subsumes with the hom search routed through the executor: align the
   answer tuples into an initial binding, then ask for any extension. *)
let subsumes q q' =
  List.length (Cq.answer q) = List.length (Cq.answer q')
  &&
  match
    List.fold_left2
      (fun acc x t ->
        match acc with
        | None -> None
        | Some s -> (
            match Subst.find_opt x s with
            | Some u -> if Term.equal u t then acc else None
            | None -> Some (Subst.add x t s)))
      (Some Subst.empty) (Cq.answer q) (Cq.answer q')
  with
  | None -> false
  | Some init -> exists ~init (Cq.body q) (Instance.of_list (Cq.body q'))
