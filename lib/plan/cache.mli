(** Memoized plans.

    Plans are compiled once per body and reused across every chase round,
    saturation stratum and containment check of the process — the cache
    seam a future serve mode reuses. The key is the list of hash-consed
    atom ids of the body: atom ids are globally unique and stable for the
    lifetime of the process, so two physically different rule values with
    the same interned body share one plan (this subsumes keying on
    interned rule ids — the body ids {e are} the interned identity of the
    join). *)

open Nca_logic

val find_or_compile : ?stats:Instance.t -> Atom.t list -> Plan.t
(** Look the body up, compiling (under a [plan.compile] telemetry span)
    on a miss. Hits and misses are counted as [plan.cache.hit] /
    [plan.cache.miss]. *)

val stats : unit -> int * int * int
(** [(plans, hits, misses)] since the last {!clear}. *)

val clear : unit -> unit
(** Drop every memoized plan and zero the hit/miss counters (tests). *)
