open Nca_logic
module Telemetry = Nca_obs.Telemetry

let tbl : (int list, Plan.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0

let find_or_compile ?stats body =
  let key = List.map Atom.id body in
  match Hashtbl.find_opt tbl key with
  | Some plan ->
      incr hits;
      Telemetry.incr "plan.cache.hit";
      plan
  | None ->
      incr misses;
      Telemetry.incr "plan.cache.miss";
      let plan = Telemetry.span "plan.compile" (fun () -> Plan.compile ?stats body) in
      Hashtbl.add tbl key plan;
      plan

let stats () = (Hashtbl.length tbl, !hits, !misses)

let clear () =
  Hashtbl.reset tbl;
  hits := 0;
  misses := 0
