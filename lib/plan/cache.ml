open Nca_logic
module Telemetry = Nca_obs.Telemetry

let ev_miss = Nca_obs.Events.label "plan.cache.miss"

(* The memo table is global (plans are pure functions of the body's
   hash-consed atom ids) and shared by every domain, so lookups and
   insertions serialise on one mutex. The critical section includes the
   compile itself: concurrent first requests for the same body get one
   plan (the second waits), and since the table is hit once per body per
   round — the engines pass the same physically-shared bodies every
   time — the lock is far off the hot path. *)
let tbl : (int list, Plan.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_compile ?stats body =
  let key = List.map Atom.id body in
  with_lock @@ fun () ->
  match Hashtbl.find_opt tbl key with
  | Some plan ->
      incr hits;
      Telemetry.incr "plan.cache.hit";
      plan
  | None ->
      incr misses;
      Telemetry.incr "plan.cache.miss";
      Nca_obs.Events.instant ev_miss;
      let plan =
        Telemetry.span "plan.compile" (fun () -> Plan.compile ?stats body)
      in
      Hashtbl.add tbl key plan;
      plan

let stats () = with_lock (fun () -> (Hashtbl.length tbl, !hits, !misses))

let clear () =
  with_lock (fun () ->
      Hashtbl.reset tbl;
      hits := 0;
      misses := 0)
