open Nca_logic

type arg = Const of Term.t | Slot of int

type t = {
  body : Atom.t array;
  preds : Symbol.t array;
  args : arg array array;
  slot_terms : Term.t array;
  variants : int array array;
}

let nslots p = Array.length p.slot_terms

(* Number of positions of goal [g] that are fixed once the slots in
   [bound] are: constants are always fixed, a slot position iff bound. *)
let bound_count args bound g =
  Array.fold_left
    (fun n a ->
      match a with
      | Const _ -> n + 1
      | Slot k -> if bound.(k) then n + 1 else n)
    0 args.(g)

let compile ?stats body =
  let body = Array.of_list body in
  let n = Array.length body in
  let preds = Array.map Atom.pred body in
  let slot_tbl = Hashtbl.create 16 in
  let rev_slots = ref [] in
  let count = ref 0 in
  let slot_of t =
    match Hashtbl.find_opt slot_tbl (Term.code t) with
    | Some k -> k
    | None ->
        let k = !count in
        incr count;
        Hashtbl.add slot_tbl (Term.code t) k;
        rev_slots := t :: !rev_slots;
        k
  in
  let args =
    Array.map
      (fun a ->
        Array.of_list
          (List.map
             (fun u -> if Term.is_mappable u then Slot (slot_of u) else Const u)
             (Atom.args a)))
      body
  in
  let slot_terms = Array.of_list (List.rev !rev_slots) in
  let card g =
    match stats with None -> 0 | Some i -> Instance.pred_cardinal preds.(g) i
  in
  let variant r =
    let bound = Array.make (Array.length slot_terms) false in
    let taken = Array.make n false in
    let mark g =
      Array.iter
        (function Slot k -> bound.(k) <- true | Const _ -> ())
        args.(g)
    in
    let order = Array.make n r in
    taken.(r) <- true;
    mark r;
    for d = 1 to n - 1 do
      (* greedy: most bound positions, then smaller relation, then first
         in the body — ascending scan with strict comparisons keeps the
         earliest goal on ties, so the order is deterministic. *)
      let bestg = ref (-1) and bestb = ref (-1) and bestc = ref max_int in
      for g = 0 to n - 1 do
        if not taken.(g) then begin
          let b = bound_count args bound g in
          let c = card g in
          if b > !bestb || (b = !bestb && c < !bestc) then begin
            bestg := g;
            bestb := b;
            bestc := c
          end
        end
      done;
      order.(d) <- !bestg;
      taken.(!bestg) <- true;
      mark !bestg
    done;
    order
  in
  { body; preds; args; slot_terms; variants = Array.init n variant }

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let pp_step ppf plan bound g =
  let actions = ref [] in
  let local = Hashtbl.create 4 in
  Array.iteri
    (fun i a ->
      let act =
        match a with
        | Const u -> Fmt.str "const %a@@%d" Term.pp u i
        | Slot k ->
            if bound.(k) then Fmt.str "probe %a@@%d" Term.pp plan.slot_terms.(k) i
            else if Hashtbl.mem local k then
              Fmt.str "check %a@@%d" Term.pp plan.slot_terms.(k) i
            else begin
              Hashtbl.add local k ();
              Fmt.str "bind %a@@%d" Term.pp plan.slot_terms.(k) i
            end
      in
      actions := act :: !actions)
    plan.args.(g);
  let scan =
    Array.for_all
      (function Const _ -> false | Slot k -> not bound.(k))
      plan.args.(g)
  in
  Fmt.pf ppf "%a via %s%s" Atom.pp plan.body.(g)
    (if scan then Fmt.str "scan %s; " (Symbol.name plan.preds.(g)) else "")
    (String.concat "; " (List.rev !actions))

let pp ppf plan =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "plan: @[<h>%a@]@," Fmt.(array ~sep:comma Atom.pp) plan.body;
  Fmt.pf ppf "  slots:";
  Array.iteri
    (fun k u -> Fmt.pf ppf " %d=%a" k Term.pp u)
    plan.slot_terms;
  Fmt.pf ppf "@,";
  Array.iteri
    (fun r order ->
      Fmt.pf ppf "  variant %d: root %a@," r Atom.pp plan.body.(r);
      let bound = Array.make (Array.length plan.slot_terms) false in
      Array.iteri
        (fun d g ->
          Fmt.pf ppf "    step %d: " d;
          pp_step ppf plan bound g;
          Fmt.pf ppf "@,";
          Array.iter
            (function Slot k -> bound.(k) <- true | Const _ -> ())
            plan.args.(g))
        order)
    plan.variants;
  Fmt.pf ppf "@]"

let shared_slots plan i j =
  let slots_of g =
    Array.to_list plan.args.(g)
    |> List.filter_map (function Slot k -> Some k | Const _ -> None)
    |> List.sort_uniq Int.compare
  in
  let sj = slots_of j in
  List.filter (fun k -> List.mem k sj) (slots_of i)

let pp_dot ppf plan =
  Fmt.pf ppf "digraph plan {@.";
  Fmt.pf ppf "  rankdir=LR;@.";
  Fmt.pf ppf "  node [shape=box,fontname=\"monospace\"];@.";
  let root0 = if Array.length plan.variants > 0 then plan.variants.(0).(0) else -1 in
  Array.iteri
    (fun g a ->
      Fmt.pf ppf "  g%d [label=\"%d: %a\"%s];@." g g Atom.pp a
        (if g = root0 then ",style=bold" else ""))
    plan.body;
  let n = Array.length plan.body in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match shared_slots plan i j with
      | [] -> ()
      | ks ->
          Fmt.pf ppf "  g%d -> g%d [label=\"%s\",dir=none];@." i j
            (String.concat ","
               (List.map
                  (fun k -> Fmt.str "%a" Term.pp plan.slot_terms.(k))
                  ks))
    done
  done;
  Fmt.pf ppf "}@."
