open Nca_logic

type audit = {
  name : string;
  bdd : bool;
  loop : bool;
  max_tournament : int;
  rewriting_disjuncts : int;
  bound : int;
  within_bound : bool;
}

(* R(4,…,4) grows as a tower; past a few colors only "huge" matters. *)
let capped_bound colors =
  if colors > 6 then max_int / 2
  else Nca_graph.Ramsey.four_clique_bound ~colors:(max 1 colors)

let audit ?(depth = 4) ?max_rounds (entry : Rulesets.entry) =
  let bdd =
    Nca_rewriting.Bdd.certified
      (Nca_rewriting.Bdd.for_signature ?max_rounds entry.rules
         (Rule.signature entry.rules))
  in
  let pipeline =
    Nca_surgery.Pipeline.regalize ?max_rounds entry.instance entry.rules
  in
  let analysis =
    Witness.analyze ~depth ?max_rounds ~e:entry.e pipeline.final
  in
  let g = Nca_graph.Digraph.of_instance entry.e analysis.full in
  let loop = Cq.holds analysis.full (Cq.loop_query entry.e) in
  let max_tournament = Nca_graph.Tournament.max_tournament_size g in
  let disjuncts = Ucq.size analysis.rewriting in
  let bound = capped_bound disjuncts in
  {
    name = entry.name;
    bdd;
    loop;
    max_tournament;
    rewriting_disjuncts = disjuncts;
    bound;
    within_bound = loop || max_tournament <= bound;
  }

let pp ppf a =
  Fmt.pf ppf "%s: bdd=%b loop=%b tournament=%d |Q_⊠|=%d bound=%s within=%b"
    a.name a.bdd a.loop a.max_tournament a.rewriting_disjuncts
    (if a.bound >= max_int / 2 then "huge" else string_of_int a.bound)
    a.within_bound
