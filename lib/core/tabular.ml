type t = { header : string list; rows : string list list }

(* Visual width: count UTF-8 code points rather than bytes so box lines
   stay aligned in the presence of the symbols we print (∃, ⊤, …). *)
let width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let make ~header rows =
  let cols = List.length header in
  let pad r =
    let len = List.length r in
    if len >= cols then r else r @ List.init (cols - len) (fun _ -> "")
  in
  { header; rows = List.map pad rows }

let pp ppf t =
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let feed row =
    List.iteri
      (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (width cell))
      row
  in
  feed t.header;
  List.iter feed t.rows;
  let pad cell w =
    cell ^ String.make (max 0 (w - width cell)) ' '
  in
  let pp_row ppf row =
    Fmt.pf ppf "| %s |"
      (String.concat " | " (List.mapi (fun i c -> pad c widths.(i)) row))
  in
  let rule =
    "|-"
    ^ String.concat "-|-"
        (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    ^ "-|"
  in
  Fmt.pf ppf "%a@.%s@.%a" pp_row t.header rule
    Fmt.(list ~sep:(any "@.") pp_row)
    t.rows;
  Fmt.pf ppf "@."

let print ?title ~header rows =
  (match title with
  | Some title ->
      Fmt.pr "@.%s@.%s@." title (String.make (width title) '=')
  | None -> ());
  Fmt.pr "%a" pp (make ~header rows)

let row projections x = List.map (fun f -> f x) projections
