(** Tournaments over UCQ-definable relations (Section 6, "Tournament
    Definition").

    Theorem 1 is stated for a fixed binary predicate [E], but extends to
    any relation definable by a binary UCQ [Q(x,y) = ⋁ qᵢ(x,y)]: add one
    Datalog rule [qᵢ(x,y) → E(x,y)] per disjunct, for a fresh [E]. The
    paper notes this does not affect UCQ-rewritability when [E] is fresh.
    This module performs that extension and provides the freshness and
    preservation checks the remark relies on. *)

open Nca_logic

val definition_rules : e:Symbol.t -> Ucq.t -> Rule.t list
(** One rule [qᵢ(x, y) → E(x, y)] per disjunct. Raises [Invalid_argument]
    unless the UCQ is binary and [e] is a fresh binary predicate for it. *)

val extend : e:Symbol.t -> Ucq.t -> Rule.t list -> Rule.t list
(** [extend ~e q rules]: the rule set with the defining rules added.
    Raises [Invalid_argument] when [e] already occurs in [rules] — the
    freshness hypothesis of the remark. *)

val preserves_bdd :
  ?max_rounds:int -> e:Symbol.t -> Ucq.t -> Rule.t list -> bool
(** Empirical check of the Section-6 remark: the atomic queries of the
    extended signature still certify within budget whenever the base set
    does. *)
