(** The Question 46 audit: loop-free tournament sizes vs the paper's bound.

    Question 46 asks for the maximal tournament size a UCQ-rewritable rule
    set can define without entailing [Loop_E]. The paper extracts the
    upper bound [N(4, …, 4)] with one argument per disjunct of [Q_⊠] —
    the injective rewriting of [E] against the regalized rule set. This
    module measures both sides on concrete rule sets: the largest
    tournament actually found in a chase prefix, and the Ramsey bound
    derived from the rewriting the pipeline computes. *)

type audit = {
  name : string;
  bdd : bool;  (** engine certificate on the atomic queries *)
  loop : bool;  (** loop in the chase prefix *)
  max_tournament : int;  (** largest tournament found (depth budget) *)
  rewriting_disjuncts : int;  (** [|Q_⊠|] for the regalized set *)
  bound : int;  (** [R(4, …, 4)] with that many colors (capped) *)
  within_bound : bool;  (** loop-free ⟹ tournament ≤ bound *)
}

val audit :
  ?depth:int -> ?max_rounds:int -> Rulesets.entry -> audit
(** Regalize, rewrite, chase, measure. The Ramsey bound is astronomically
    large for more than a few disjuncts; it is capped at [max_int / 2]
    and [within_bound] is then trivially true — which is precisely the
    point: the interesting observations are the measured tournament
    sizes, tiny against the bound. *)

val pp : audit Fmt.t
