(** The Theorem 1 empirical validator.

    Theorem 1: for every bdd rule set [R] and instance [I],
    [(I, R) ⊨ Tournaments_E ⟹ (I, R) ⊨ Loop_E]. The validator chases the
    input to a depth budget, measures the largest E-tournament
    (Definition 9) and the first level entailing [Loop_E]
    (Definition 10), and checks the implication at a finite threshold:
    a bdd rule set whose chase prefix already contains a tournament of
    the given size must entail the loop. *)

open Nca_logic

type verdict = {
  depth : int;  (** chase levels actually computed *)
  saturated : bool;
  stopped : Nca_obs.Exhausted.t option;
      (** why the chase stopped before saturation (the seed's [truncated]
          flag, now carrying the resource); [None] iff [saturated] *)
  atoms : int;
  max_tournament : int;
  tournament : Term.t list;  (** a maximum tournament *)
  loop : bool;
  loop_level : int option;  (** first chase level entailing [Loop_E] *)
}

val validate :
  ?max_depth:int -> ?max_atoms:int -> ?budget:Nca_obs.Budget.t ->
  ?pool:Nca_chase.Pool.t -> e:Symbol.t -> Instance.t -> Rule.t list -> verdict

val validate_full :
  ?max_depth:int -> ?max_atoms:int -> ?budget:Nca_obs.Budget.t ->
  ?pool:Nca_chase.Pool.t -> e:Symbol.t -> Instance.t -> Rule.t list ->
  verdict * Nca_chase.Chase.t
(** {!validate}, also returning the underlying chase — the certificate
    builders ({!Certificate.of_verdict}) need it to read off edge facts
    and the loop witness. *)

val implication_holds : threshold:int -> verdict -> bool
(** [max_tournament ≥ threshold → loop]: the finite shadow of
    Theorem 1's implication. Vacuously true below the threshold. *)

val tournament_size_bound : rewriting_disjuncts:int -> int
(** The paper's extractable bound on loop-free tournament size
    (Question 46): the Ramsey bound [R(4, …, 4)] with one argument per
    disjunct of [Q_⊠]. *)

type point = {
  level : int;
  level_atoms : int;
  level_tournament : int;
  level_loop : bool;
}

val series :
  ?max_depth:int -> ?max_atoms:int -> ?budget:Nca_obs.Budget.t ->
  e:Symbol.t -> Instance.t -> Rule.t list -> point list
(** Per-level evolution of the chase: atoms, max tournament, loop — the
    data behind the growth figures. *)

val pp_verdict : verdict Fmt.t
