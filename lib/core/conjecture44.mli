(** The Conjecture 44 explorer (Section 6, "Arbitrary Colorability").

    Conjecture 44: for every UCQ-rewritable rule set and instance, if
    [Ch(I,R)|_E] cannot be colored with finitely many colors, then
    [Ch(I,R) ⊨ Loop_E]. The finite shadow measured here: the chromatic
    number of the E-graph of chase prefixes, level by level, against loop
    entailment. A bdd rule set whose per-level chromatic numbers keep
    growing while the loop stays absent would be evidence against the
    conjecture (none of the zoo behaves that way); Erdős' theorem
    (Thm. 45) is the reason the measurement is interesting beyond
    Theorem 1 — chromatic number can grow without any 4-tournament. *)

open Nca_logic

type point = {
  level : int;
  atoms : int;
  tournament : int;  (** the Theorem-1 measure, for comparison *)
  chromatic : int option;  (** [None] once a loop exists *)
  loop : bool;
}

val series :
  ?max_depth:int -> ?max_atoms:int -> e:Symbol.t -> Instance.t ->
  Rule.t list -> point list
(** Per-level chromatic profile of the chase. *)

val verdict : point list -> [ `Consistent | `Suspicious of point ]
(** [`Suspicious p] flags a level whose chromatic number exceeds the
    final tournament size with no loop — the shape a counterexample to
    Conjecture 44 (but not to Theorem 1) would have to take. A
    [`Suspicious] outcome on a bounded prefix is only a hint, never a
    refutation. *)
