(** Witness sets and the peak-removing argument (Section 5.1).

    Fix a regal rule set [R_⊠] with Datalog part [R^DL] and existential
    part [R^∃]. The analysis computes:
    - [Ch(R^∃)] — a DAG (Observation 35) with timestamps and provenance;
    - [Ch(Ch(R^∃), R^DL)] — where E-edges and tournaments live (Lemma 33);
    - [Q_⊠] — the injective rewriting of [E(x, y)] against [R_⊠];
    - for an edge [E(s,t)], the witness set
      [W(s,t) = {q ∈ Q_⊠ | Ch(R^∃) ⊨_inj q(s,t)}] (Definition 36);
    - the peak-removing iteration of Lemma 40, which converts any witness
      into a valley-query witness while strictly decreasing the
      [TSₘ]-multiset (asserted at each step). *)

open Nca_logic

type t = {
  rules : Rule.t list;
  datalog : Rule.t list;
  existential : Rule.t list;
  chase_ex : Nca_chase.Chase.t;  (** [Ch(R^∃)] from [{⊤}] *)
  full : Instance.t;  (** [Ch(Ch(R^∃), R^DL)] *)
  closure_stopped : Nca_obs.Exhausted.t option;
      (** the Datalog closure's exhaustion verdict; when [Some _], [full]
          is a sound under-approximation and absence of an edge in it is
          not evidence *)
  e : Symbol.t;
  rewriting : Ucq.t;  (** [Q_⊠], the injective rewriting of [E(x,y)] *)
  rewriting_complete : bool;
}

val analyze :
  ?depth:int ->
  ?max_rounds:int ->
  ?max_disjuncts:int ->
  ?budget:Nca_obs.Budget.t ->
  ?pool:Nca_chase.Pool.t ->
  e:Symbol.t ->
  Rule.t list ->
  t
(** Build the Section-5 data for a (regal) rule set. [depth] bounds both
    chases (default 6); [budget] governs the existential chase, the
    Datalog closure and the injective rewriting alike; [pool] runs the
    chase and closure rounds across its domains (the rewriting stays
    sequential). *)

val edges : t -> (Term.t * Term.t) list
(** The E-edges of the full chase. *)

val witnesses : t -> Term.t -> Term.t -> (Cq.t * Subst.t) list
(** [W(s, t)] together with one injective homomorphism per disjunct.
    Observation 37: non-empty for every edge, provided the rewriting is
    complete and the chase deep enough. *)

type removal_step = {
  query : Cq.t;
  hom : Subst.t;
  timestamp_multiset : Nca_graph.Multiset.Int_multiset.t;
  peak : Term.t option;  (** the maximal existential variable removed *)
}

type removal_outcome = {
  steps : removal_step list;  (** first = initial witness, last = final *)
  valley : (Cq.t * Subst.t) option;  (** the valley witness, when reached *)
}

val remove_peaks : t -> Term.t -> Term.t -> Cq.t * Subst.t -> removal_outcome
(** Run Lemma 40 from the given witness of [E(s, t)]. Every step asserts
    the strict [<_lex] decrease of the timestamp multiset; the iteration
    therefore terminates (Lemma 8). [valley = None] only when the witness
    search fails, which signals an incomplete rewriting or a truncated
    chase. *)

val valley_witness : t -> Term.t -> Term.t -> (Cq.t * Subst.t) option
(** Lemma 40 end-to-end: a valley query of [W(s, t)], found either
    directly or through peak removal. *)

val color_edges : t -> Term.t list -> ((Term.t * Term.t) * Cq.t) list option
(** Color every tournament edge by a valley query of its witness set, as in
    Proposition 41's Ramsey argument. [None] if some edge lacks one. *)

val monochromatic_subtournament :
  t -> Term.t list -> (Cq.t * Term.t list) option
(** Greedy extraction of the largest single-colored sub-tournament from the
    coloring of {!color_edges} (the role Ramsey's theorem plays in
    Proposition 41 — existence on large inputs, search here). *)
