open Nca_logic
module MS = Nca_graph.Multiset.Int_multiset

type t = {
  rules : Rule.t list;
  datalog : Rule.t list;
  existential : Rule.t list;
  chase_ex : Nca_chase.Chase.t;
  full : Instance.t;
  closure_stopped : Nca_obs.Exhausted.t option;
  e : Symbol.t;
  rewriting : Ucq.t;
  rewriting_complete : bool;
}

let analyze ?(depth = 6) ?max_rounds ?max_disjuncts
    ?(budget = Nca_obs.Budget.unlimited) ?pool ~e rules =
  Nca_obs.Telemetry.span "witness.analyze" @@ fun () ->
  let datalog, existential = Rule.split_datalog rules in
  let chase_ex =
    Nca_chase.Chase.run ~max_depth:depth ~budget ?pool Instance.top existential
  in
  (* the Datalog closure is finite: use the semi-naive engine (equivalence
     with the generic chase is part of the test suite). On exhaustion the
     partial closure is still a sound under-approximation — downstream
     verdicts must consult [closure_stopped] before reading absence of an
     edge as a fact. *)
  let full_closure, closure_stopped =
    match
      Nca_chase.Datalog.saturate ~max_atoms:200000 ~budget ?pool
        chase_ex.Nca_chase.Chase.instance datalog
    with
    | Ok total -> (total, None)
    | Error { Nca_chase.Datalog.err; partial; _ } -> (partial, Some err)
  in
  let outcome =
    Nca_rewriting.Injective.injective_rewriting ?max_rounds ?max_disjuncts
      ~budget rules (Cq.atom_query e)
  in
  {
    rules;
    datalog;
    existential;
    chase_ex;
    full = full_closure;
    closure_stopped;
    e;
    rewriting = outcome.Nca_rewriting.Rewrite.ucq;
    rewriting_complete = outcome.Nca_rewriting.Rewrite.complete;
  }

let edges t = Instance.edges t.e t.full

let init_for q s tt =
  match Cq.answer q with
  | [ x; y ] ->
      if Term.equal x y then
        if Term.equal s tt then Some (Subst.singleton x s) else None
      else Some (Subst.add y tt (Subst.singleton x s))
  | _ -> None

let witnesses t s tt =
  List.filter_map
    (fun q ->
      match init_for q s tt with
      | None -> None
      | Some init ->
          Option.map
            (fun h -> (q, h))
            (Hom.find ~inj:true ~init (Cq.body q)
               t.chase_ex.Nca_chase.Chase.instance))
    (Ucq.disjuncts t.rewriting)

type removal_step = {
  query : Cq.t;
  hom : Subst.t;
  timestamp_multiset : MS.t;
  peak : Term.t option;
}

type removal_outcome = {
  steps : removal_step list;
  valley : (Cq.t * Subst.t) option;
}

let image_instance q h = Instance.of_list (Subst.apply_atoms h (Cq.body q))

let ts_multiset t inst =
  Nca_chase.Chase.timestamp_multiset t.chase_ex (Instance.adom inst)

(* A ≤q-maximal existential variable of a non-valley query. *)
let peak_of q =
  let maxima = Valley.maximal_vars q in
  let answers = Cq.answer_vars q in
  (* first in name order, so the reported peak is byte-stable *)
  match Term.sorted_elements (Term.Set.diff maxima answers) with
  | [] -> None
  | t :: _ -> Some t

let remove_peaks t s tt (q0, h0) =
  let find_witness inst =
    List.find_map
      (fun q ->
        match init_for q s tt with
        | None -> None
        | Some init ->
            Option.map (fun h -> (q, h)) (Hom.find ~inj:true ~init (Cq.body q) inst))
      (Ucq.disjuncts t.rewriting)
  in
  let rec go (q, h) acc =
    let img = image_instance q h in
    let ts = ts_multiset t img in
    if Valley.is_valley q then
      {
        steps = List.rev ({ query = q; hom = h; timestamp_multiset = ts; peak = None } :: acc);
        valley = Some (q, h);
      }
    else
      match peak_of q with
      | None ->
          (* not a valley yet without an existential peak: cyclic query —
             cannot happen over a DAG chase with an injective hom *)
          { steps = List.rev acc; valley = None }
      | Some z -> (
          let step =
            { query = q; hom = h; timestamp_multiset = ts; peak = Some z }
          in
          let hz = Subst.apply h z in
          match Term.Map.find_opt hz t.chase_ex.Nca_chase.Chase.provenance with
          | None -> { steps = List.rev (step :: acc); valley = None }
          | Some prov ->
              let z_atoms =
                List.filter
                  (fun a -> Term.Set.mem z (Atom.vars a))
                  (Cq.body q)
              in
              let removed =
                Instance.of_list (Subst.apply_atoms h z_atoms)
              in
              let body_image =
                Instance.of_list
                  (Subst.apply_atoms prov.Nca_chase.Chase.hom
                     (Rule.body prov.Nca_chase.Chase.rule))
              in
              let smaller =
                Instance.union (Instance.diff img removed) body_image
              in
              (match find_witness smaller with
              | None -> { steps = List.rev (step :: acc); valley = None }
              | Some (q', h') ->
                  let ts' = ts_multiset t (image_instance q' h') in
                  (* Lemma 40: the timestamp multiset strictly decreases. *)
                  assert (MS.compare_lex ts' ts < 0);
                  go (q', h') (step :: acc)))
  in
  go (q0, h0) []

let valley_witness t s tt =
  let ws = witnesses t s tt in
  match List.find_opt (fun (q, _) -> Valley.is_valley q) ws with
  | Some w -> Some w
  | None -> (
      (* start from the TS-minimal witness, as in the proof of Lemma 40 *)
      let with_ts =
        List.map (fun (q, h) -> (ts_multiset t (image_instance q h), (q, h))) ws
      in
      let sorted =
        List.sort (fun (a, _) (b, _) -> MS.compare_lex a b) with_ts
      in
      match sorted with
      | [] -> None
      | (_, w) :: _ -> (remove_peaks t s tt w).valley)

let color_edges t k =
  let rec pairs acc = function
    | [] -> Some acc
    | v :: rest ->
        let rec each acc = function
          | [] -> Some acc
          | w :: more -> (
              let edge =
                if Instance.mem (Atom.make t.e [ v; w ]) t.full then
                  Some (v, w)
                else if Instance.mem (Atom.make t.e [ w; v ]) t.full then
                  Some (w, v)
                else None
              in
              match edge with
              | None -> None
              | Some (s, tt) -> (
                  match valley_witness t s tt with
                  | None -> None
                  | Some (q, _) -> each (((s, tt), q) :: acc) more))
        in
        Option.bind (each acc rest) (fun acc -> pairs acc rest)
  in
  Option.map List.rev (pairs [] k)

let monochromatic_subtournament t k =
  match color_edges t k with
  | None -> None
  | Some colored ->
      let colors =
        List.sort_uniq Cq.compare (List.map snd colored)
      in
      let best =
        List.fold_left
          (fun best q ->
            let g =
              Nca_graph.Digraph.Term_graph.of_edges
                (List.filter_map
                   (fun (e, q') ->
                     if Cq.compare q q' = 0 then Some e else None)
                   colored)
            in
            let clique = Nca_graph.Tournament.max_tournament g in
            match best with
            | Some (_, c) when List.length c >= List.length clique -> best
            | _ -> Some (q, clique))
          None colors
      in
      best
