open Nca_logic

let definition_rules ~e ucq =
  if Symbol.arity e <> 2 then
    invalid_arg "Definable.definition_rules: E must be binary";
  if Ucq.arity ucq <> 2 then
    invalid_arg "Definable.definition_rules: the UCQ must be binary";
  List.mapi
    (fun i q ->
      match Cq.answer q with
      | [ x; y ] ->
          if
            List.exists
              (fun a -> Symbol.equal (Atom.pred a) e)
              (Cq.body q)
          then
            invalid_arg
              "Definable.definition_rules: E occurs in the defining UCQ";
          Rule.make
            ~name:(Fmt.str "def_%a_%d" Symbol.pp_name e i)
            (Cq.body q)
            [ Atom.make e [ x; y ] ]
      | _ -> invalid_arg "Definable.definition_rules: non-binary disjunct")
    (Ucq.disjuncts ucq)

let extend ~e ucq rules =
  if Symbol.Set.mem e (Rule.signature rules) then
    invalid_arg "Definable.extend: E is not fresh for the rule set";
  rules @ definition_rules ~e ucq

let preserves_bdd ?(max_rounds = 8) ~e ucq rules =
  let base =
    Nca_rewriting.Bdd.certified
      (Nca_rewriting.Bdd.for_signature ~max_rounds rules
         (Rule.signature rules))
  in
  (not base)
  ||
  let extended = extend ~e ucq rules in
  Nca_rewriting.Bdd.certified
    (Nca_rewriting.Bdd.for_signature ~max_rounds extended
       (Rule.signature extended))
