open Nca_logic

type entry = {
  name : string;
  description : string;
  rules : Rule.t list;
  instance : Instance.t;
  e : Symbol.t;
  bdd_expected : bool option;
}

let e2 = Symbol.make "E" 2
let rules = Parser.parse_rules
let inst = Parser.instance

let example1 =
  {
    name = "example1";
    description = "Example 1: successor + transitivity (not bdd)";
    rules =
      rules {| succ: E(x,y) -> E(y,z).
               trans: E(x,y), E(y,z) -> E(x,z). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some false;
  }

let example1_bdd =
  {
    name = "example1_bdd";
    description =
      "Example 1 repaired: transitivity weakened to the bdd two-hop rule";
    rules =
      rules {| succ: E(x,y) -> E(y,z).
               short: E(x,x1), E(y,y1) -> E(x,y1). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let short_only =
  {
    name = "short_only";
    description = "only the two-hop rule E(x,x') ∧ E(y,y') → E(x,y')";
    rules = rules {| short: E(x,x1), E(y,y1) -> E(x,y1). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let succ_only =
  {
    name = "succ_only";
    description = "infinite path: E(x,y) → ∃z E(y,z)";
    rules = rules {| succ: E(x,y) -> E(y,z). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let dense =
  {
    name = "dense";
    description = "dense order: E(x,y) → ∃z E(x,z) ∧ E(z,y)";
    rules = rules {| dense: E(x,y) -> E(x,z), E(z,y). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let inclusion =
  {
    name = "inclusion";
    description = "alternating inclusion dependencies R ⇒ S ⇒ R";
    rules =
      rules {| rs: R(x,y) -> S(y,z).
               sr: S(x,y) -> R(y,z). |};
    instance = inst "R(a,b)";
    e = Symbol.make "R" 2;
    bdd_expected = Some true;
  }

let person_knows =
  {
    name = "person_knows";
    description = "every person knows someone; known ones are persons";
    rules =
      rules {| k: Person(x) -> Knows(x,y).
               p: Knows(x,y) -> Person(y). |};
    instance = inst "Person(alice)";
    e = Symbol.make "Knows" 2;
    bdd_expected = Some true;
  }

let symmetric =
  {
    name = "symmetric";
    description = "symmetric closure (Datalog): E(x,y) → E(y,x)";
    rules = rules {| sym: E(x,y) -> E(y,x). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let fork =
  {
    name = "fork";
    description =
      "the paper's predicate-unique forward-existential example: \
       A(x) ∧ B(y) → ∃z D(x,z) ∧ E(y,z)";
    rules = rules {| fork: A(x), B(y) -> D(x,z), E(y,z). |};
    instance = inst "A(a), B(b)";
    e = e2;
    bdd_expected = Some true;
  }

let backward =
  {
    name = "backward";
    description = "backward edges: E(x,y) → ∃z E(z,y) (not fwd-existential)";
    rules = rules {| back: E(x,y) -> E(z,y). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let tangle =
  {
    name = "tangle";
    description =
      "two-cycle heads: E(x,y) → ∃z E(y,z) ∧ E(z,y) (streamlining stress)";
    rules = rules {| tangle: E(x,y) -> E(y,z), E(z,y). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let ternary =
  {
    name = "ternary";
    description = "ternary rotation: T(x,y,z) → ∃w T(y,z,w) (reify stress)";
    rules = rules {| rot: T(x,y,z) -> T(y,z,w). |};
    instance = inst "T(a,b,c)";
    e = e2;
    bdd_expected = Some true;
  }

let all_pairs =
  {
    name = "all_pairs";
    description =
      "H-elements pairwise E-connected (loops included) with H growing";
    rules =
      rules {| grow: H(x) -> H(y).
               pair: H(x), H(y) -> E(x,y). |};
    instance = inst "H(a)";
    e = e2;
    bdd_expected = Some true;
  }

let guarded =
  {
    name = "guarded";
    description = "guarded-style propagation along a guard atom";
    rules =
      rules {| g: G(x,y), A(x) -> G(y,z), A(y). |};
    instance = inst "G(a,b), A(a)";
    e = Symbol.make "G" 2;
    bdd_expected = None;
  }

let sticky =
  {
    name = "sticky";
    description =
      "sticky join (the join variable survives into the head): \
       R(x,y) ∧ R(y,z) → ∃w S(y,w)";
    rules = rules {| st: R(x,y), R(y,z) -> S(y,w). |};
    instance = inst "R(a,b), R(b,c)";
    e = Symbol.make "R" 2;
    bdd_expected = Some true;
  }

let ucq_defined =
  {
    name = "ucq_defined";
    description =
      "Section 6: E defined by the UCQ R(x,y) ∨ S(y,x) over generated R/S";
    rules =
      rules
        {| gr: R(x,y) -> R(y,z).
           gs: R(x,y) -> S(x,w).
           d1: R(x,y) -> E(x,y).
           d2: S(y,x) -> E(x,y). |};
    instance = inst "R(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let bidirectional =
  {
    name = "bidirectional";
    description = "two-way successors: E(x,y) → ∃z E(y,z) ∧ ∃w E(w,y)";
    rules =
      rules {| fwd: E(x,y) -> E(y,z).
               bwd: E(x,y) -> E(w,y). |};
    instance = inst "E(a,b)";
    e = e2;
    bdd_expected = Some true;
  }

let two_cycles =
  {
    name = "two_cycles";
    description = "loop seed: the instance already has E(a,a) (degenerate)";
    rules = rules {| succ: E(x,y) -> E(y,z). |};
    instance = inst "E(a,a)";
    e = e2;
    bdd_expected = Some true;
  }

let datalog_star =
  {
    name = "datalog_star";
    description = "non-recursive Datalog: hub H broadcast to E-edges";
    rules =
      rules {| b1: H(x), N(y) -> E(x,y).
               b2: H(x), N(y) -> E(y,x). |};
    instance = inst "H(hub), N(n1), N(n2), N(n3)";
    e = e2;
    bdd_expected = Some true;
  }

let zoo =
  [
    example1;
    example1_bdd;
    short_only;
    succ_only;
    dense;
    inclusion;
    person_knows;
    symmetric;
    fork;
    backward;
    tangle;
    ternary;
    all_pairs;
    guarded;
    sticky;
    ucq_defined;
    bidirectional;
    two_cycles;
    datalog_star;
  ]

let find name = List.find (fun e -> String.equal e.name name) zoo

let random_instance ~seed ~constants ~atoms sign =
  let st = Random.State.make [| seed |] in
  let consts =
    Array.init (max 1 constants) (fun i -> Term.cst (Fmt.str "c%d" i))
  in
  let preds =
    (* name order: [List.nth] over this list consumes the seeded random
       stream, so the order must not depend on intern-id order *)
    Symbol.sorted_elements
      (Symbol.Set.filter (fun p -> not (Symbol.equal p Symbol.top)) sign)
  in
  match preds with
  | [] -> Instance.top
  | _ ->
      let pick_pred () = List.nth preds (Random.State.int st (List.length preds)) in
      let pick_const () = consts.(Random.State.int st (Array.length consts)) in
      let rec go n acc =
        if n = 0 then acc
        else
          let p = pick_pred () in
          let args = List.init (Symbol.arity p) (fun _ -> pick_const ()) in
          go (n - 1) (Instance.add (Atom.make p args) acc)
      in
      go atoms Instance.empty

let random_forward_existential_rules ~seed ~rules:n =
  let st = Random.State.make [| seed |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let e xy = Atom.make e2 xy in
  let a t = Atom.app "A" [ t ] and b t = Atom.app "B" [ t ] in
  (* Linear templates: single-atom bodies, forward-existential heads. *)
  let templates =
    [|
      (fun () -> ([ e [ x; y ] ], [ e [ y; z ] ]));
      (fun () -> ([ e [ x; y ] ], [ e [ x; z ] ]));
      (fun () -> ([ e [ x; y ] ], [ e [ y; x ] ]));
      (fun () -> ([ e [ x; y ] ], [ a x ]));
      (fun () -> ([ e [ x; y ] ], [ a y ]));
      (fun () -> ([ e [ x; y ] ], [ b y ]));
      (fun () -> ([ a x ], [ e [ x; z ] ]));
      (fun () -> ([ b x ], [ e [ x; z ] ]));
      (fun () -> ([ a x ], [ b x ]));
      (fun () -> ([ b x ], [ a x ]));
    |]
  in
  List.init n (fun i ->
      let body, head =
        templates.(Random.State.int st (Array.length templates)) ()
      in
      Rule.make ~name:(Fmt.str "rnd%d" i) body head)
  |> List.sort_uniq (fun r1 r2 ->
         compare
           (List.sort Atom.compare (Rule.body r1),
            List.sort Atom.compare (Rule.head r1))
           (List.sort Atom.compare (Rule.body r2),
            List.sort Atom.compare (Rule.head r2)))

let sample_instances sign =
  [
    Instance.top;
    Instance.critical sign;
    random_instance ~seed:1 ~constants:2 ~atoms:2 sign;
    random_instance ~seed:2 ~constants:3 ~atoms:4 sign;
    random_instance ~seed:3 ~constants:4 ~atoms:6 sign;
  ]
