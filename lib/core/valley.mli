(** Valley queries (Definition 39) and the Proposition 43 case analysis.

    A binary CQ [q(x, y)] over a binary signature is a {e valley query}
    when its body is a DAG and its only [<_q]-maximal variables are among
    [{x, y}]. Proposition 43: a single valley query cannot define an
    E-tournament of size 4 over [Ch(R^∃_⊠)] without also defining an
    E-loop. *)

open Nca_logic

val order_graph : Cq.t -> Nca_graph.Digraph.Term_graph.t
(** The query's body as a directed graph ([<_q] is its reachability,
    Definition 38). Unary atoms contribute isolated vertices. *)

val is_dag : Cq.t -> bool
val maximal_vars : Cq.t -> Term.Set.t
(** The [≤_q]-maximal variables. *)

val is_valley : Cq.t -> bool
(** Definition 39, with maximality allowed to degenerate to one of the two
    answer variables (the case [y <_q x] of Proposition 43). Requires the
    answer tuple to have length 2. *)

type shape =
  | Disconnected
      (** [q = q₁(x) ∧ q₂(y) ∧ q₃] with variable-disjoint parts *)
  | Single_max of [ `X | `Y ]
      (** one answer variable reaches the other: the defined relation is a
          function (Lemma 42) and out-degrees are at most 1 *)
  | Two_max
      (** both [x] and [y] maximal in a weakly-connected body *)

val shape : Cq.t -> shape
(** The Proposition 43 case of a valley query. Raises [Invalid_argument]
    on a non-valley query. *)

val pp_shape : shape Fmt.t

val functional_on : Instance.t -> Cq.t -> bool
(** Lemma 42 checked empirically: over the given (DAG) instance, the
    relation [{(s, t) | I ⊨ q(s, t)}] is a partial function from its
    first component, for a query whose [y]-side reaches [x]. *)

val loop_witness_in_tournament :
  Instance.t -> Cq.t -> Term.t list -> Term.t option
(** Given a valley query [q] and vertices [K] forming a q-defined
    tournament over the instance (every distinct pair satisfies [q] in one
    direction or the other), search for [u ∈ K] with [I ⊨ q(u, u)] — the
    loop that Proposition 43 guarantees when [|K| ≥ 4]. *)

val defines_tournament : Instance.t -> Cq.t -> Term.t list -> bool
(** Every pair of distinct vertices satisfies [q] in some direction. *)
