open Nca_logic
module G = Nca_graph.Digraph.Term_graph

let order_graph q = Nca_graph.Digraph.of_atoms (Cq.body q)
let is_dag q = G.is_dag (order_graph q)

let maximal_vars q =
  let g = order_graph q in
  List.fold_left
    (fun acc v -> if Term.is_mappable v then Term.Set.add v acc else acc)
    Term.Set.empty (G.maximal_vertices g)

let is_valley q =
  match Cq.answer q with
  | [ x; y ] ->
      is_dag q
      && Term.Set.subset (maximal_vars q)
           (Term.Set.add x (Term.Set.singleton y))
  | _ -> false

type shape =
  | Disconnected
  | Single_max of [ `X | `Y ]
  | Two_max

let shape q =
  if not (is_valley q) then invalid_arg "Valley.shape: not a valley query";
  let x, y =
    match Cq.answer q with
    | [ x; y ] -> (x, y)
    | _ -> assert false
  in
  let g = order_graph q in
  let components = G.weakly_connected_components g in
  let connected_xy =
    List.exists (fun c -> G.VSet.mem x c && G.VSet.mem y c) components
  in
  if not connected_xy then Disconnected
  else
    let maxima = maximal_vars q in
    match (Term.Set.mem x maxima, Term.Set.mem y maxima) with
    | true, false -> Single_max `X
    | false, true -> Single_max `Y
    | true, true ->
        if Term.equal x y then Single_max `X
        else if G.reaches y x g then Single_max `X
        else if G.reaches x y g then Single_max `Y
        else Two_max
    | false, false ->
        (* both below some variable — impossible in a valley query *)
        assert false

let pp_shape ppf = function
  | Disconnected -> Fmt.string ppf "disconnected"
  | Single_max `X -> Fmt.string ppf "single-max(x)"
  | Single_max `Y -> Fmt.string ppf "single-max(y)"
  | Two_max -> Fmt.string ppf "two-max"

let functional_on i q =
  let pairs = Cq.answers i q in
  let tbl = Hashtbl.create 16 in
  List.for_all
    (fun tuple ->
      match tuple with
      | [ s; t ] -> (
          match Hashtbl.find_opt tbl s with
          | Some t' -> Term.equal t t'
          | None ->
              Hashtbl.add tbl s t;
              true)
      | _ -> false)
    pairs

let defines_tournament i q k =
  let rec pairs = function
    | [] -> true
    | v :: rest ->
        List.for_all
          (fun w ->
            Cq.holds ~tuple:[ v; w ] i q || Cq.holds ~tuple:[ w; v ] i q)
          rest
        && pairs rest
  in
  pairs k

let loop_witness_in_tournament i q k =
  List.find_opt (fun u -> Cq.holds ~tuple:[ u; u ] i q) k
