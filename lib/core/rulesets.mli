(** A zoo of named rule sets and random generators.

    The zoo covers the rule sets the paper discusses (Example 1 and its
    bdd repair, the immediate-loop discussion of Property (△)) plus
    representatives of the classical UCQ-rewritable families the
    introduction cites (inclusion dependencies, linear, sticky-like,
    guarded-like) and stress inputs for each surgery (higher-arity
    predicates for reification, tangled heads for streamlining). Every
    entry fixes a canonical instance and the E-predicate its tournament
    experiments use. *)

open Nca_logic

type entry = {
  name : string;
  description : string;
  rules : Rule.t list;
  instance : Instance.t;
  e : Symbol.t;  (** the edge predicate for Tournaments/Loop queries *)
  bdd_expected : bool option;
      (** known classification; [None] when left to the engine *)
}

val e2 : Symbol.t
(** The binary predicate [E]. *)

val example1 : entry
(** Example 1: successor + transitivity. Not bdd; its chase grows
    arbitrarily large tournaments without a loop — and it is {e not} a
    counterexample to (bdd ⇒ fc) precisely because it is not bdd. *)

val example1_bdd : entry
(** The introduction's repair: transitivity replaced with the bdd rule
    [E(x,x') ∧ E(y,y') → E(x,y')]. The chase entails Tournaments_E and,
    as Theorem 1 demands, Loop_E. *)

val short_only : entry
val succ_only : entry
val dense : entry
val inclusion : entry
val person_knows : entry
val symmetric : entry
val fork : entry
val backward : entry
val tangle : entry
val ternary : entry
val all_pairs : entry
val guarded : entry
val sticky : entry

val ucq_defined : entry
(** Section 6's "Tournament Definition": the edge relation is defined by
    the binary UCQ [R(x,y) ∨ S(y,x)] through added Datalog rules. *)

val bidirectional : entry
val two_cycles : entry
val datalog_star : entry

val zoo : entry list
(** All named entries, in presentation order. *)

val find : string -> entry
(** Lookup by name. Raises [Not_found]. *)

val random_instance :
  seed:int -> constants:int -> atoms:int -> Symbol.Set.t -> Instance.t
(** Random instance over a signature: [atoms] random facts over
    [constants] named constants. Deterministic in [seed]. *)

val random_forward_existential_rules :
  seed:int -> rules:int -> Rule.t list
(** Random {e linear} rule sets (single-atom bodies) over the signature
    [{E/2, A/1, B/1}], forward-existential and predicate-unique. Linear
    theories are UCQ-rewritable (the paper's introduction, citing Calì,
    Gottlob, Kifer), so every generated set is bdd — the property tests
    cross-check this with the rewriting engine. Deterministic in
    [seed]. *)

val sample_instances : Symbol.Set.t -> Instance.t list
(** A small deterministic family of instances over a signature, used by
    empirical checkers (quickness, chase equivalences). *)
