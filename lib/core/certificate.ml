open Nca_logic
module MS = Nca_graph.Multiset.Int_multiset
module Proof = Nca_provenance.Proof

type step = {
  query : Cq.t;
  hom : Subst.t;
  timestamps : MS.t;
  peak : Term.t option;
}

type edge = {
  source : Term.t;
  target : Term.t;
  fact : Atom.t;
  witness : (Cq.t * Subst.t) option;
  removal : step list;
  valley : (Cq.t * Subst.t) option;
}

type t = {
  rules : Rule.t list;
  e : Symbol.t;
  input : Instance.t;
  support : Proof.t list;
  tournament : Term.t list;
  edges : edge list;
  loop : (Cq.t * Subst.t) option;
}

module Atom_tbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* One proof per distinct derived fact; input facts need no proof. *)
let support_of ~input facts =
  let seen = Atom_tbl.create 64 in
  List.filter_map
    (fun a ->
      if Instance.mem a input || Atom_tbl.mem seen a then None
      else begin
        Atom_tbl.add seen a ();
        Some (Proof.of_fact a)
      end)
    facts

(* All unordered pairs of the tournament, oriented as in the instance. *)
let oriented_pairs e inst vertices =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        let acc =
          List.fold_left
            (fun acc w ->
              if Instance.mem (Atom.make e [ v; w ]) inst then (v, w) :: acc
              else if Instance.mem (Atom.make e [ w; v ]) inst then
                (w, v) :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] vertices

let loop_witness e inst =
  let q = Cq.loop_query e in
  Option.map (fun h -> (q, h)) (Hom.find (Cq.body q) inst)

let image q h = Subst.apply_atoms h (Cq.body q)

let of_verdict ~input ~e ~rules (v : Theorem1.verdict) chase =
  let inst = chase.Nca_chase.Chase.instance in
  let edges =
    List.map
      (fun (s, t) ->
        {
          source = s;
          target = t;
          fact = Atom.make e [ s; t ];
          witness = None;
          removal = [];
          valley = None;
        })
      (oriented_pairs e inst v.Theorem1.tournament)
  in
  let loop = if v.Theorem1.loop then loop_witness e inst else None in
  let referenced =
    List.map (fun ed -> ed.fact) edges
    @ (match loop with None -> [] | Some (q, h) -> image q h)
  in
  {
    rules;
    e;
    input;
    support = support_of ~input referenced;
    tournament = v.Theorem1.tournament;
    edges;
    loop;
  }

let of_analysis (w : Witness.t) tournament =
  let e = w.Witness.e in
  let chase = w.Witness.chase_ex in
  let ts q h =
    Nca_chase.Chase.timestamp_multiset chase
      (Instance.adom (Instance.of_list (image q h)))
  in
  let edge_of (s, t) =
    let fact = Atom.make e [ s; t ] in
    let ws = Witness.witnesses w s t in
    match List.find_opt (fun (q, _) -> Valley.is_valley q) ws with
    | Some (q, h) ->
        (* already a valley: a one-step trace *)
        {
          source = s;
          target = t;
          fact;
          witness = Some (q, h);
          removal = [ { query = q; hom = h; timestamps = ts q h; peak = None } ];
          valley = Some (q, h);
        }
    | None -> (
        (* start from the TS-minimal witness, as in the proof of Lemma 40 *)
        let sorted =
          List.sort
            (fun (a, _) (b, _) -> MS.compare_lex a b)
            (List.map (fun (q, h) -> (ts q h, (q, h))) ws)
        in
        match sorted with
        | [] ->
            {
              source = s;
              target = t;
              fact;
              witness = None;
              removal = [];
              valley = None;
            }
        | (_, w0) :: _ ->
            let outcome = Witness.remove_peaks w s t w0 in
            let removal =
              List.map
                (fun st ->
                  {
                    query = st.Witness.query;
                    hom = st.Witness.hom;
                    timestamps = st.Witness.timestamp_multiset;
                    peak = st.Witness.peak;
                  })
                outcome.Witness.steps
            in
            {
              source = s;
              target = t;
              fact;
              witness = Some w0;
              removal;
              valley = outcome.Witness.valley;
            })
  in
  let edges = List.map edge_of (oriented_pairs e w.Witness.full tournament) in
  let loop = loop_witness e w.Witness.full in
  let referenced =
    List.concat_map
      (fun ed ->
        (ed.fact :: (match ed.witness with None -> [] | Some (q, h) -> image q h))
        @ List.concat_map (fun st -> image st.query st.hom) ed.removal
        @ (match ed.valley with None -> [] | Some (q, h) -> image q h))
      edges
    @ (match loop with None -> [] | Some (q, h) -> image q h)
  in
  {
    rules = w.Witness.rules;
    e;
    input = Instance.top;
    support = support_of ~input:Instance.top referenced;
    tournament;
    edges;
    loop;
  }

type error = { where : string; reason : string }

let pp_error ppf e =
  Fmt.pf ppf "certificate rejected at %s: %s" e.where e.reason

let fail where reason = Error { where; reason }
let ( let* ) = Result.bind

let check (c : t) =
  (* 1. support proofs replay against the rule set and the input *)
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        match Proof.check ~rules:c.rules ~input:c.input p with
        | Ok () -> Ok ()
        | Error e -> fail "support" (Fmt.str "%a" Proof.pp_error e))
      (Ok ()) c.support
  in
  let certified =
    List.fold_left
      (fun acc p ->
        List.fold_left (fun acc a -> Instance.add a acc) acc (Proof.facts p))
      c.input c.support
  in
  let cert a = Instance.mem a certified in
  let check_hom ~where ~answer_to q h =
    if not (List.for_all cert (image q h)) then
      fail where "homomorphism image contains an uncertified fact"
    else if not (Subst.is_injective_on (Cq.vars q) h) then
      fail where "homomorphism is not injective on the query variables"
    else
      match answer_to with
      | None -> Ok ()
      | Some tuple ->
          if
            List.equal Term.equal
              (List.map (Subst.apply h) (Cq.answer q))
              tuple
          then Ok ()
          else fail where "answer tuple does not map to the edge endpoints"
  in
  (* 2. the tournament is complete over the certified facts *)
  let* () =
    if
      List.length (List.sort_uniq Term.compare c.tournament)
      <> List.length c.tournament
    then fail "tournament" "repeated vertex"
    else Ok ()
  in
  let* () =
    let rec pairs = function
      | [] -> Ok ()
      | v :: rest ->
          let rec each = function
            | [] -> pairs rest
            | w :: more ->
                if
                  cert (Atom.make c.e [ v; w ])
                  || cert (Atom.make c.e [ w; v ])
                then each more
                else
                  fail "tournament"
                    (Fmt.str "no certified E-edge between %a and %a" Term.pp
                       v Term.pp w)
          in
          each rest
    in
    pairs c.tournament
  in
  (* 3.–4. per-edge evidence *)
  let check_edge (ed : edge) =
    let where = Fmt.str "edge %a" Atom.pp ed.fact in
    if not (Atom.equal ed.fact (Atom.make c.e [ ed.source; ed.target ])) then
      fail where "edge fact does not match its endpoints"
    else if not (cert ed.fact) then fail where "edge fact is not certified"
    else
      let tuple = [ ed.source; ed.target ] in
      let* () =
        match ed.witness with
        | None -> Ok ()
        | Some (q, h) ->
            check_hom ~where:(where ^ " witness") ~answer_to:(Some tuple) q h
      in
      let* () =
        let rec steps prev = function
          | [] -> Ok ()
          | st :: rest ->
              let* () =
                check_hom
                  ~where:(where ^ " removal step")
                  ~answer_to:(Some tuple) st.query st.hom
              in
              let* () =
                match prev with
                | Some ts when not (MS.compare_lex st.timestamps ts < 0) ->
                    fail
                      (where ^ " removal step")
                      "timestamp multiset does not strictly decrease"
                | _ -> Ok ()
              in
              steps (Some st.timestamps) rest
        in
        steps None ed.removal
      in
      match ed.valley with
      | None -> Ok ()
      | Some (q, h) ->
          if not (Valley.is_valley q) then
            fail (where ^ " valley") "terminal query is not a valley"
          else
            check_hom ~where:(where ^ " valley") ~answer_to:(Some tuple) q h
  in
  let* () =
    List.fold_left
      (fun acc ed ->
        let* () = acc in
        check_edge ed)
      (Ok ()) c.edges
  in
  (* 5. the loop witness *)
  match c.loop with
  | None -> Ok ()
  | Some (q, h) ->
      if not (Cq.equivalent q (Cq.loop_query c.e)) then
        fail "loop" "query is not Loop_E"
      else check_hom ~where:"loop" ~answer_to:None q h

let pp_summary ppf c =
  Fmt.pf ppf "tournament=%d edges=%d support=%d loop=%b"
    (List.length c.tournament) (List.length c.edges) (List.length c.support)
    (Option.is_some c.loop)
