open Nca_logic

type point = {
  level : int;
  atoms : int;
  tournament : int;
  chromatic : int option;
  loop : bool;
}

let series ?(max_depth = 5) ?(max_atoms = 10000) ~e i rules =
  let chase = Nca_chase.Chase.run ~max_depth ~max_atoms i rules in
  let loop_q = Cq.loop_query e in
  List.mapi
    (fun level inst ->
      let g = Nca_graph.Digraph.of_instance e inst in
      {
        level;
        atoms = Instance.cardinal inst;
        tournament = Nca_graph.Tournament.max_tournament_size g;
        chromatic = Nca_graph.Coloring.chromatic_number ~max_k:12 g;
        loop = Cq.holds inst loop_q;
      })
    chase.Nca_chase.Chase.levels

let verdict points =
  let final_tournament =
    List.fold_left (fun acc p -> max acc p.tournament) 0 points
  in
  match
    List.find_opt
      (fun p ->
        (not p.loop)
        &&
        match p.chromatic with
        | Some chi -> chi > final_tournament
        | None -> false)
      points
  with
  | Some p -> `Suspicious p
  | None -> `Consistent
