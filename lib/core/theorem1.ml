open Nca_logic

type verdict = {
  depth : int;
  saturated : bool;
  stopped : Nca_obs.Exhausted.t option;
  atoms : int;
  max_tournament : int;
  tournament : Term.t list;
  loop : bool;
  loop_level : int option;
}

let validate_full ?(max_depth = 6) ?(max_atoms = 20000) ?budget ?pool ~e i
    rules =
  Nca_obs.Telemetry.span "theorem1.validate" @@ fun () ->
  let chase = Nca_chase.Chase.run ~max_depth ~max_atoms ?budget ?pool i rules in
  let graph = Nca_chase.Chase.e_graph e chase in
  let tournament = Nca_graph.Tournament.max_tournament graph in
  let loop_level = Nca_chase.Chase.holds_at chase (Cq.loop_query e) in
  ( {
      depth = chase.Nca_chase.Chase.depth;
      saturated = chase.Nca_chase.Chase.saturated;
      stopped = chase.Nca_chase.Chase.stopped;
      atoms = Instance.cardinal chase.Nca_chase.Chase.instance;
      max_tournament = List.length tournament;
      tournament;
      loop = Option.is_some loop_level;
      loop_level;
    },
    chase )

let validate ?max_depth ?max_atoms ?budget ?pool ~e i rules =
  fst (validate_full ?max_depth ?max_atoms ?budget ?pool ~e i rules)

let implication_holds ~threshold v =
  v.max_tournament < threshold || v.loop

let tournament_size_bound ~rewriting_disjuncts =
  Nca_graph.Ramsey.four_clique_bound ~colors:(max 1 rewriting_disjuncts)

type point = {
  level : int;
  level_atoms : int;
  level_tournament : int;
  level_loop : bool;
}

let series ?(max_depth = 6) ?(max_atoms = 20000) ?budget ~e i rules =
  let chase = Nca_chase.Chase.run ~max_depth ~max_atoms ?budget i rules in
  let loop = Cq.loop_query e in
  List.mapi
    (fun level inst ->
      let g = Nca_graph.Digraph.of_instance e inst in
      {
        level;
        level_atoms = Instance.cardinal inst;
        level_tournament = Nca_graph.Tournament.max_tournament_size g;
        level_loop = Cq.holds inst loop;
      })
    chase.Nca_chase.Chase.levels

(* The structural bounds print " truncated" exactly as the seed did (they
   are the requested exploration depth); a wall-clock or cancellation stop
   is an anomaly and names its resource. *)
let pp_stopped ppf = function
  | None -> ()
  | Some e -> (
      match e.Nca_obs.Exhausted.resource with
      | Nca_obs.Exhausted.Depth | Nca_obs.Exhausted.Atoms ->
          Fmt.string ppf " truncated"
      | _ -> Fmt.pf ppf " stopped:%s" (Nca_obs.Exhausted.tag e))

let pp_verdict ppf v =
  Fmt.pf ppf
    "depth=%d atoms=%d max-tournament=%d loop=%b%a%s%a" v.depth v.atoms
    v.max_tournament v.loop
    Fmt.(option (fmt "@%d"))
    v.loop_level
    (if v.saturated then " saturated" else "")
    pp_stopped v.stopped
