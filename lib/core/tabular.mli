(** Plain-text table rendering for the experiment harness. *)

type t

val make : header:string list -> string list list -> t
(** Rows shorter than the header are right-padded with empty cells. *)

val pp : t Fmt.t
(** Aligned columns with a separator line below the header. *)

val print : ?title:string -> header:string list -> string list list -> unit
(** Render to stdout, with an optional underlined title. *)

val row : ('a -> string) list -> 'a -> string list
(** [row projections x] applies each projection to [x]. *)
