(** Machine-checkable proof certificates for Theorem-1 verdicts.

    A certificate packages everything an independent referee needs to
    re-establish a verdict without re-running any engine: the input, the
    rule set, the tournament, per-edge evidence — an injective-UCQ
    witness (Observation 37), the peak-removal trace (Lemma 40) and its
    terminal valley query (Proposition 43) — a loop witness, and a
    {e support} list of fact-level derivation proofs
    ({!Nca_provenance.Proof}) certifying every derived fact the evidence
    touches. {!check} replays the whole chain bottom-up; the builders
    ({!of_verdict}, {!of_analysis}) read the evidence off a recorded run,
    but the checker trusts none of it. *)

open Nca_logic
module MS = Nca_graph.Multiset.Int_multiset

type step = {
  query : Cq.t;
  hom : Subst.t;  (** injective homomorphism of the query into the chase *)
  timestamps : MS.t;  (** [TSₘ] of the image, Definition 34 *)
  peak : Term.t option;
      (** the maximal existential variable removed next; [None] on the
          terminal (valley) step *)
}

type edge = {
  source : Term.t;
  target : Term.t;
  fact : Atom.t;  (** [E(source, target)] *)
  witness : (Cq.t * Subst.t) option;
      (** initial injective-UCQ witness of the edge (Observation 37) *)
  removal : step list;
      (** the Lemma-40 trace: first = initial witness, last = valley;
          empty when only the edge fact itself is certified *)
  valley : (Cq.t * Subst.t) option;  (** the terminal valley witness *)
}

type t = {
  rules : Rule.t list;
  e : Symbol.t;
  input : Instance.t;
  support : Nca_provenance.Proof.t list;
      (** derivation proofs for every derived fact the evidence below
          references; facts outside [input] are certified exactly by
          these *)
  tournament : Term.t list;
  edges : edge list;  (** one per unordered tournament pair, oriented *)
  loop : (Cq.t * Subst.t) option;  (** [Loop_E] and a witnessing hom *)
}

val of_verdict :
  input:Instance.t ->
  e:Symbol.t ->
  rules:Rule.t list ->
  Theorem1.verdict ->
  Nca_chase.Chase.t ->
  t
(** Certificate of a {!Theorem1.validate} verdict: the tournament's edge
    facts and the loop witness, each backed by a derivation proof read
    off the ambient {!Nca_provenance} store (which must have been enabled
    during the run). No per-edge UCQ evidence — the validator does not
    compute rewritings. *)

val of_analysis : Witness.t -> Term.t list -> t
(** Certificate of a Section-5 analysis over the given tournament: every
    edge carries its injective witness, peak-removal trace and valley
    query ({!Witness.remove_peaks}); support proofs certify every fact
    the homomorphism images touch, in both [Ch(R^∃)] and the full
    closure. *)

type error = { where : string; reason : string }
(** The first link of the chain that failed to replay. *)

val check : t -> (unit, error) result
(** Replay the certificate bottom-up:

    {ol
     {- every support proof passes {!Nca_provenance.Proof.check} against
        [rules] and [input]; the {e certified} facts are [input] plus the
        facts of these proofs;}
     {- the tournament is complete: every pair of distinct vertices has
        an [E]-edge in some direction among the certified facts, and
        every listed edge fact is certified;}
     {- every witness, removal step and valley hom maps its query body
        into certified facts, injectively on the query's variables, with
        the answer tuple mapped to [(source, target)];}
     {- along each removal trace the [TSₘ] multisets strictly decrease in
        [<_lex] (Lemma 40), and the terminal valley query satisfies
        {!Valley.is_valley};}
     {- the loop hom, when present, maps [Loop_E] into certified facts.}}

    Purely structural — no engine runs, no store reads. *)

val pp_error : error Fmt.t

val pp_summary : t Fmt.t
(** One line: tournament size, certified edges, support size, loop. *)
