module Telemetry = Nca_obs.Telemetry
module Events = Nca_obs.Events
module Metrics = Nca_obs.Metrics

(* A fixed crew of worker domains executing indexed task batches.

   The coordinator publishes a batch (a task count and a closure) under
   the mutex and bumps a generation counter; workers woken by the
   condition variable claim task indices from a shared atomic counter
   until it runs dry, so load balances at task granularity with no
   per-task locking. The caller participates as slot 0 — a pool with
   [jobs = n] runs n-way on n domains total, and [jobs = 1] degenerates
   to a plain loop on the calling domain with no handoff at all.

   The barrier is exact: the coordinator waits until every participant
   has left the batch, so task effects (writes to distinct result
   cells) happen-before the coordinator reads them — ordinary mutex
   ordering, no racy publication.

   Determinism is the callers' job and the pool's shape makes it easy:
   results land in an array indexed by task, so merging "in task order"
   is just reading the array left to right, whatever interleaving
   actually executed the tasks.

   Observability: when the coordinator's telemetry store is live, each
   worker enables a private store for the batch (stores are
   domain-local), snapshots it at the barrier, and the coordinator
   absorbs the snapshots in slot order — counters and spans aggregate
   per-domain, then merge deterministically. *)

type slot = { mutable tasks : int; mutable busy_us : int }

type batch = {
  count : int;
  next : int Atomic.t;
  run : int -> unit;
  telemetry : bool;
  events : bool;
  metrics : bool;
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable domains : unit Domain.t array;
  mutable batch : batch option;
  mutable gen : int;
  mutable active : int;
  mutable stop : bool;
  mutable batches : int;
  per_domain : slot array; (* slot 0 = the calling domain *)
  snaps : Telemetry.snapshot option array;
  ev_snaps : Events.snapshot option array;
  mt_snaps : Metrics.snapshot option array;
}

let jobs t = t.jobs

let now_us () = int_of_float (Unix.gettimeofday () *. 1_000_000.)
let ev_batch = Events.label "pool.batch"
let ev_participate = Events.label "pool.participate"

(* Claim and run tasks until the batch counter runs dry. Only the
   owning participant touches its [per_domain] slot, so the accounting
   needs no lock. Workers get modest private event rings per batch:
   enumeration tasks emit few events, and the coordinator absorbs the
   ring at the barrier anyway. *)
let participate t slot b =
  let t0 = now_us () in
  if slot > 0 then begin
    if b.telemetry then Telemetry.enable ();
    if b.events then Events.enable ~capacity:8192 ();
    if b.metrics then Metrics.enable ()
  end;
  let rec drain n =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.count then begin
      b.run i;
      drain (n + 1)
    end
    else n
  in
  let n = drain 0 in
  (* one instant per participant per batch, arg = tasks claimed: the
     trace shows how the batch actually split across domains *)
  Events.instant ev_participate ~arg:n;
  if slot > 0 then begin
    if b.telemetry then begin
      t.snaps.(slot) <- Some (Telemetry.snapshot ());
      Telemetry.disable ()
    end;
    if b.events then begin
      t.ev_snaps.(slot) <- Some (Events.snapshot ());
      Events.disable ()
    end;
    if b.metrics then begin
      t.mt_snaps.(slot) <- Some (Metrics.snapshot ());
      Metrics.disable ()
    end
  end;
  let s = t.per_domain.(slot) in
  s.tasks <- s.tasks + n;
  s.busy_us <- s.busy_us + (now_us () - t0)

let worker t slot () =
  let rec loop seen =
    Mutex.lock t.lock;
    while t.gen = seen && not t.stop do
      Condition.wait t.work t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let gen = t.gen in
      let b = Option.get t.batch in
      Mutex.unlock t.lock;
      participate t slot b;
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      loop gen
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      domains = [||];
      batch = None;
      gen = 0;
      active = 0;
      stop = false;
      batches = 0;
      per_domain = Array.init jobs (fun _ -> { tasks = 0; busy_us = 0 });
      snaps = Array.make jobs None;
      ev_snaps = Array.make jobs None;
      mt_snaps = Array.make jobs None;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let map t n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    (* The failure of the lowest task index wins (the exception the
       sequential loop would have raised); once any failure is recorded,
       unclaimed tasks are skipped so the batch drains fast. *)
    let failure : (int * exn) option Atomic.t = Atomic.make None in
    let rec record_failure i e =
      match Atomic.get failure with
      | Some (j, _) when j <= i -> ()
      | old ->
          if not (Atomic.compare_and_set failure old (Some (i, e))) then
            record_failure i e
    in
    let run i =
      if Option.is_none (Atomic.get failure) then
        match f i with
        | v -> results.(i) <- Some v
        | exception e -> record_failure i e
    in
    let b =
      {
        count = n;
        next = Atomic.make 0;
        run;
        telemetry = Telemetry.enabled ();
        events = Events.enabled ();
        metrics = Metrics.enabled ();
      }
    in
    Events.instant ev_batch ~arg:n;
    if t.jobs = 1 then begin
      t.batches <- t.batches + 1;
      participate t 0 b
    end
    else begin
      Mutex.lock t.lock;
      t.batch <- Some b;
      t.gen <- t.gen + 1;
      t.active <- t.jobs;
      t.batches <- t.batches + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      participate t 0 b;
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      while t.active > 0 do
        Condition.wait t.finished t.lock
      done;
      t.batch <- None;
      Mutex.unlock t.lock;
      if b.telemetry then
        Array.iteri
          (fun i s ->
            match s with
            | Some snap when i > 0 ->
                Telemetry.absorb snap;
                t.snaps.(i) <- None
            | _ -> ())
          t.snaps;
      (* worker events land on track [slot]: slot indices are stable
         run-to-run, unlike raw Domain ids *)
      if b.events then
        Array.iteri
          (fun i s ->
            match s with
            | Some snap when i > 0 ->
                Events.absorb ~tid:i snap;
                t.ev_snaps.(i) <- None
            | _ -> ())
          t.ev_snaps;
      if b.metrics then
        Array.iteri
          (fun i s ->
            match s with
            | Some snap when i > 0 ->
                Metrics.absorb snap;
                t.mt_snaps.(i) <- None
            | _ -> ())
          t.mt_snaps
    end;
    (match Atomic.get failure with
    | Some (_, e) -> raise e
    | None -> ());
    Array.map Option.get results
  end

type stats = { jobs : int; batches : int; per_domain : (int * int) list }

let stats (t : t) =
  {
    jobs = t.jobs;
    batches = t.batches;
    per_domain =
      Array.to_list
        (Array.map (fun (s : slot) -> (s.tasks, s.busy_us)) t.per_domain);
  }

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end
