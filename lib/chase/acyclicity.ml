open Nca_logic

type position = Symbol.t * int

type edge = { source : position; target : position; special : bool }

let positions_of_var atoms x =
  List.concat_map
    (fun a ->
      List.mapi
        (fun i t -> if Term.equal t x then Some (Atom.pred a, i) else None)
        (Atom.args a)
      |> List.filter_map Fun.id)
    atoms

let dependency_graph rules =
  List.concat_map
    (fun r ->
      let body = Rule.body r and head = Rule.head r in
      (* name order: the edge list order decides which special cycle is
         reported first, so keep it independent of intern-id order *)
      let frontier = Term.sorted_elements (Rule.frontier r) in
      let exist = Term.sorted_elements (Rule.exist_vars r) in
      List.fold_left
        (fun acc x ->
          let body_positions = positions_of_var body x in
          let head_positions = positions_of_var head x in
          let regular =
            List.concat_map
              (fun source ->
                List.map
                  (fun target -> { source; target; special = false })
                  head_positions)
              body_positions
          in
          let special =
            List.fold_left
              (fun acc z ->
                List.concat_map
                  (fun source ->
                    List.map
                      (fun target -> { source; target; special = true })
                      (positions_of_var head z))
                  body_positions
                @ acc)
              [] exist
          in
          regular @ special @ acc)
        [] frontier)
    rules

let compare_positions (p, i) (q, j) =
  match Symbol.compare_names p q with 0 -> Int.compare i j | c -> c

(* Positions interned to dense ids: position (p, i) becomes
   [offset p + i], with offsets laid out over the rule signature in
   intern-id order. The adjacency lives in an id-keyed {!Intgraph}
   (edges deduplicated on insertion) instead of a structural map; ids
   never reach output — every printing boundary below sorts by
   {!compare_positions} (name order) first. *)
type interned = {
  id : position -> int;
  pos : position array;  (** inverse of [id] *)
  graph : Nca_graph.Intgraph.t;
}

let intern_graph rules edges =
  let syms =
    (* include the full signature, not just positions touched by edges,
       so [pos] inverts [id] on every printable position *)
    Rule.signature rules
  in
  let offsets, total =
    Symbol.Set.fold
      (fun p (m, n) -> (Symbol.Map.add p n m, n + Symbol.arity p))
      syms (Symbol.Map.empty, 0)
  in
  let pos = Array.make (max total 1) (Symbol.top, 0) in
  Symbol.Set.iter
    (fun p ->
      let base = Symbol.Map.find p offsets in
      for i = 0 to Symbol.arity p - 1 do
        pos.(base + i) <- (p, i)
      done)
    syms;
  let id (p, i) = Symbol.Map.find p offsets + i in
  let graph = Nca_graph.Intgraph.create total in
  List.iter (fun e -> Nca_graph.Intgraph.add_edge graph (id e.source) (id e.target)) edges;
  { id; pos; graph }

(* A cycle through a special edge (s, t) exists iff t reaches s. *)
let find_special_cycle rules =
  let edges = dependency_graph rules in
  let g = intern_graph rules edges in
  List.find_map
    (fun e ->
      if not e.special then None
      else if
        e.source = e.target
        || Nca_graph.Intgraph.reaches g.graph (g.id e.target) (g.id e.source)
      then Some (e.source, e.target, g)
      else None)
    edges

let is_weakly_acyclic rules = Option.is_none (find_special_cycle rules)

let offending_cycle rules =
  Option.map
    (fun (s, t, g) ->
      (* reconstruct a path t →* s by DFS; successors are visited in
         name order (not id order) so the reconstructed path — printed
         in lint certificates — stays byte-stable across runs *)
      let succs v =
        Nca_graph.Intgraph.succs g.graph (g.id v)
        |> List.map (fun w -> g.pos.(w))
        |> List.sort compare_positions
      in
      let rec path visited v =
        if v = s then Some [ v ]
        else if List.mem v visited then None
        else
          List.fold_left
            (fun acc w ->
              match acc with
              | Some _ -> acc
              | None -> Option.map (fun p -> v :: p) (path (v :: visited) w))
            None (succs v)
      in
      match if s = t then Some [ t ] else path [] t with
      | Some p -> s :: p
      | None -> [ s; t ])
    (find_special_cycle rules)

let pp_position ppf (p, i) = Fmt.pf ppf "%a.%d" Symbol.pp_name p i
