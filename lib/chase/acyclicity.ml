open Nca_logic

type position = Symbol.t * int

type edge = { source : position; target : position; special : bool }

let positions_of_var atoms x =
  List.concat_map
    (fun a ->
      List.mapi
        (fun i t -> if Term.equal t x then Some (Atom.pred a, i) else None)
        (Atom.args a)
      |> List.filter_map Fun.id)
    atoms

let dependency_graph rules =
  List.concat_map
    (fun r ->
      let body = Rule.body r and head = Rule.head r in
      (* name order: the edge list order decides which special cycle is
         reported first, so keep it independent of intern-id order *)
      let frontier = Term.sorted_elements (Rule.frontier r) in
      let exist = Term.sorted_elements (Rule.exist_vars r) in
      List.fold_left
        (fun acc x ->
          let body_positions = positions_of_var body x in
          let head_positions = positions_of_var head x in
          let regular =
            List.concat_map
              (fun source ->
                List.map
                  (fun target -> { source; target; special = false })
                  head_positions)
              body_positions
          in
          let special =
            List.fold_left
              (fun acc z ->
                List.concat_map
                  (fun source ->
                    List.map
                      (fun target -> { source; target; special = true })
                      (positions_of_var head z))
                  body_positions
                @ acc)
              [] exist
          in
          regular @ special @ acc)
        [] frontier)
    rules

module PG = Nca_graph.Digraph.Make (struct
  type t = position

  (* name order (not id order): the DFS of [offending_cycle] visits
     successors in this order, and the reconstructed path is printed in
     lint certificates, so it must be byte-stable across runs *)
  let compare (p, i) (q, j) =
    match Symbol.compare_names p q with 0 -> Int.compare i j | c -> c

  let pp ppf (p, i) = Fmt.pf ppf "%a.%d" Symbol.pp_name p i
end)

(* A cycle through a special edge (s, t) exists iff t reaches s. *)
let find_special_cycle rules =
  let edges = dependency_graph rules in
  let g =
    List.fold_left
      (fun g e -> PG.add_edge e.source e.target g)
      PG.empty edges
  in
  List.find_map
    (fun e ->
      if not e.special then None
      else if e.source = e.target || PG.reaches e.target e.source g then
        Some (e.source, e.target, g)
      else None)
    edges

let is_weakly_acyclic rules = Option.is_none (find_special_cycle rules)

let offending_cycle rules =
  Option.map
    (fun (s, t, g) ->
      (* reconstruct a path t →* s by DFS *)
      let rec path visited v =
        if v = s then Some [ v ]
        else if List.mem v visited then None
        else
          PG.VSet.fold
            (fun w acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  Option.map (fun p -> v :: p) (path (v :: visited) w))
            (PG.succs v g) None
      in
      match if s = t then Some [ t ] else path [] t with
      | Some p -> s :: p
      | None -> [ s; t ])
    (find_special_cycle rules)

let pp_position ppf (p, i) = Fmt.pf ppf "%a.%d" Symbol.pp_name p i
