(** Weak acyclicity — the classical chase-termination criterion.

    The paper's introduction points to acyclicity-based conditions
    [Fagin et al., "Data exchange: semantics and query answering"] as the
    standard way to ensure a finite chase. A rule set is {e weakly
    acyclic} when its position dependency graph — positions [(P, i)] with
    a {e regular} edge when a frontier variable is copied from a body
    position to a head position, and a {e special} edge from each
    frontier-variable body position to each position holding an
    existential variable of the same rule — has no cycle through a
    special edge. The semi-oblivious (and the restricted) chase of a
    weakly acyclic rule set terminates on every instance; see
    {!Nca_analysis.Termination} for the rest of the acyclicity
    hierarchy built on top of this graph. *)

open Nca_logic

type position = Symbol.t * int
(** A predicate position, 0-based. *)

type edge = { source : position; target : position; special : bool }

val compare_positions : position -> position -> int
(** Structural order: predicate by name, then position index. Use this
    (not the polymorphic compare) wherever position order reaches
    printed output. *)

val dependency_graph : Rule.t list -> edge list
(** All edges of the position dependency graph. *)

val is_weakly_acyclic : Rule.t list -> bool

val offending_cycle : Rule.t list -> position list option
(** A cycle through a special edge (as its vertex list), when one
    exists — a certificate of potential non-termination. *)

val pp_position : position Fmt.t
