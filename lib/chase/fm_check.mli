(** Independent re-verification of finite-model witnesses.

    A model emitted by any {!Finite_model.engine} — in particular one
    decoded from a SAT assignment — is only as trustworthy as the
    encoder and solver that produced it. This checker replays the
    claim with the interpreted machinery only (trigger enumeration over
    {!Nca_logic.Hom} and query satisfaction over {!Nca_logic.Cq}),
    sharing no code with the grounding or the solver: the PR-5
    certificate discipline applied to model witnesses. The CLI runs it
    on every model before printing. *)

open Nca_logic

val check :
  ?forbid:Cq.t ->
  start:Instance.t ->
  rules:Rule.t list ->
  Instance.t ->
  (unit, string) result
(** [check ~start ~rules m] verifies that [m] contains [start], that
    every trigger of [rules] over [m] is satisfied, and that [m] does
    not satisfy [forbid]. [Error reason] pinpoints the first failure. *)
