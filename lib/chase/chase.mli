(** The (oblivious) chase, Section 2.2.

    [Ch_0(I,R) = I] and [Ch_{n+1}(I,R) = Ch_n(I,R) ∪ ⋃_{τ ∈ T_n} output(τ)]
    where [T_n] are the triggers over [Ch_n] that were not triggers over
    [Ch_{n-1}]. Every trigger fires exactly once (obliviously: even when
    its output is already entailed). The result records, per term, the
    {e timestamp} (Definition 34: the first level at which the term
    occurs) and, per invented null, the {e provenance} — the trigger that
    created it — which the peak-removing argument (Lemma 40) consumes. *)

open Nca_logic

type provenance = {
  rule : Rule.t;  (** the rule of the creating trigger *)
  hom : Subst.t;  (** its body homomorphism *)
  extension : Subst.t;  (** the extension mapping existential variables *)
  level : int;  (** the chase level at which the trigger fired *)
}

type t = {
  instance : Instance.t;  (** the union of all computed levels *)
  levels : Instance.t list;  (** [Ch_0; Ch_1; …; Ch_depth], cumulative *)
  depth : int;  (** number of levels computed *)
  saturated : bool;  (** no trigger was left to fire at the end *)
  stopped : Nca_obs.Exhausted.t option;
      (** the budget verdict when the run stopped before saturation: which
          resource (depth, atoms, wall clock, cancellation) ran out.
          [None] iff [saturated]. The computed prefix is always valid —
          identical to the corresponding prefix of an unbudgeted run. *)
  timestamps : int Term.Map.t;  (** Definition 34, for every term *)
  provenance : provenance Term.Map.t;  (** for every invented null *)
}

type variant =
  | Oblivious  (** every trigger fires exactly once (Section 2.2) *)
  | Semi_oblivious
      (** triggers agreeing on the rule and the frontier image are
          identified (the Skolem chase): body homomorphisms that differ
          only on non-frontier variables fire once. *)
  | Restricted
      (** a trigger is skipped when its head is already satisfiable by an
          extension of the frontier image — the standard chase. Sound and
          universal like the oblivious chase, but often much smaller; used
          as an ablation in the benchmarks. *)

val run :
  ?variant:variant -> ?max_depth:int -> ?max_atoms:int ->
  ?budget:Nca_obs.Budget.t -> ?pool:Pool.t -> Instance.t -> Rule.t list -> t
(** Run the chase level-synchronously until saturation, [max_depth] levels
    (default 8), more than [max_atoms] atoms (default 20000), or any bound
    of [budget] — the legacy arguments and the budget intersect to the
    tighter value, so a wall-clock or cancellation budget composes with
    the structural defaults. A stop before saturation is reported in
    {!t.stopped} as a typed verdict, never an exception.

    Governor checkpoints sit at round granularity: deadline/cancellation
    and the depth bound before each round, the atom bound after it.

    Evaluation is delta-driven (semi-naive): each round enumerates only
    the triggers that use an atom created in the previous round
    ({!Trigger.all_delta}) instead of re-running every rule body over the
    whole instance, which leaves the computed levels, timestamps and
    provenance identical to the naive level-by-level definition.

    With [pool], each round's trigger enumeration runs across the pool's
    domains. Workers only {e enumerate} (no atoms, no nulls); the
    per-task trigger lists merge in task order — the exact sequential
    order — and trigger outputs are applied sequentially at the barrier,
    so the result (levels, null numbering, timestamps, provenance) is
    {e byte-identical} at any [jobs] count. The budget is shared across
    domains through a {!Nca_obs.Budget.Gate}: deadline/cancellation can
    abort a round mid-enumeration, the partial round is discarded, and
    the reported prefix is a valid round boundary. *)

val level : t -> int -> Instance.t
(** [level c k] is [Ch_k]; clamped to the last computed level. *)

val timestamp : t -> Term.t -> int option
(** Definition 34; [None] for terms outside the chase (total — the seed's
    bare [Not_found] is gone). *)

val timestamp_multiset :
  t -> Term.Set.t -> Nca_graph.Multiset.Int_multiset.t
(** [TSₘ(T)]: the multiset of timestamps of a set of terms. Terms outside
    the chase contribute nothing. *)

val terms : t -> Term.Set.t
val invented : t -> Term.Set.t
(** The chase terms: [adom(Ch(I,R)) ∖ adom(I)]. *)

val entails : ?tuple:Term.t list -> t -> Cq.t -> bool
(** Entailment over the computed (finite) prefix of the chase. *)

val holds_at : t -> Cq.t -> int option
(** The first level at which the (Boolean) query holds, if any. *)

val e_graph : Symbol.t -> t -> Nca_graph.Digraph.Term_graph.t
(** The E-graph of the chase result. *)

val pp_stats : t Fmt.t
