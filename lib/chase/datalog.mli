(** Semi-naive bottom-up evaluation for Datalog rule sets.

    The Section-5 decomposition (Lemma 33) computes [Ch(Ch(S^∃), S^DL)]:
    a Datalog closure on top of an existential chase. Evaluation is
    semi-naive — each round joins every rule body against the {e delta}
    of the previous round through the pivot stratification of
    {!Hom.iter_targets}, so no derivation is recomputed — with a mutable
    fact store inside a round and a persistent {!Instance} only at round
    boundaries. Used by the benchmarks as the optimized engine for
    Datalog closures; equivalence with {!Chase.run} is part of the test
    suite. *)

open Nca_logic

exception Not_datalog of Rule.t

type exhausted = {
  err : Nca_obs.Exhausted.t;  (** which resource ran out *)
  partial : Instance.t;
      (** the closure computed so far — a valid under-approximation (a
          prefix of the semi-naive iteration) *)
  rounds : int;  (** semi-naive rounds completed *)
}
(** Budget exhaustion is a value, not an exception: the seed's
    [Datalog.Budget] exception (which only one CLI path caught) is gone. *)

val seed_with : Atom.t -> Atom.t -> Subst.t option
(** [seed_with atom fact] unifies a body atom against a concrete fact:
    [Some sub] with [sub atom = fact], [None] when the predicates differ,
    the arities mismatch, or the atom's repeated variables / constants
    disagree with the fact. Total — malformed input yields [None], never
    an exception. *)

val saturate :
  ?max_rounds:int -> ?max_atoms:int -> ?budget:Nca_obs.Budget.t ->
  ?pool:Pool.t -> Instance.t -> Rule.t list -> (Instance.t, exhausted) result
(** Least fixpoint of the Datalog rules over the instance, or a typed
    exhaustion verdict with the partial closure. Raises {!Not_datalog} on
    a rule with existential variables. The legacy [max_rounds]/[max_atoms]
    arguments (defaults 10000 rounds, 1_000_000 atoms — Datalog closures
    are finite, so these are safety valves) intersect with [budget];
    deadline and cancellation are checked once per round.

    With [pool], each round's (rule, pivot) join units run across the
    pool's domains and the per-task derivation lists merge in task order
    on the coordinator — the computed closure is the same set at any
    [jobs] count, and first-writer-wins provenance picks the same entry
    per fact the sequential loop picks. The budget is shared across
    domains through a {!Nca_obs.Budget.Gate}, so deadline/cancellation
    can abort a round from any worker (the aborted round is discarded;
    the reported partial closure is a round-boundary prefix, as ever). *)

val closure : ?pool:Pool.t -> Instance.t -> Rule.t list -> Instance.t
(** Unbudgeted least fixpoint — total, since Datalog closures are finite.
    The convenience entry point for callers that want the full closure
    and no budget story (tests, benchmarks, examples). *)

val rounds_to_fixpoint : Instance.t -> Rule.t list -> int
(** Number of semi-naive rounds until saturation (a recursion-depth
    measure); unbudgeted. *)
