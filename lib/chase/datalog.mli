(** Semi-naive bottom-up evaluation for Datalog rule sets.

    The Section-5 decomposition (Lemma 33) computes [Ch(Ch(S^∃), S^DL)]:
    a Datalog closure on top of an existential chase. The generic chase
    recomputes every trigger at every level; for the Datalog part a
    semi-naive evaluation — joining each rule against the {e delta} of
    the previous round — produces the same closure substantially faster.
    Used by the benchmarks as the optimized engine for Datalog closures;
    equivalence with {!Chase.run} is part of the test suite. *)

open Nca_logic

exception Not_datalog of Rule.t

exception Budget of { resource : [ `Rounds | `Atoms ]; limit : int }
(** A saturation budget was exhausted — typed so callers (the lint CLI in
    particular) can render it as a diagnostic instead of crashing. *)

val saturate : ?max_rounds:int -> ?max_atoms:int -> Instance.t -> Rule.t list -> Instance.t
(** Least fixpoint of the Datalog rules over the instance. Raises
    {!Not_datalog} on a rule with existential variables; budget overruns
    raise {!Budget} (Datalog closures are finite, so the default budgets
    are generous: 10000 rounds, 1_000_000 atoms). *)

val rounds_to_fixpoint : Instance.t -> Rule.t list -> int
(** Number of semi-naive rounds until saturation (a recursion-depth
    measure). *)
