(** Semi-naive bottom-up evaluation for Datalog rule sets.

    The Section-5 decomposition (Lemma 33) computes [Ch(Ch(S^∃), S^DL)]:
    a Datalog closure on top of an existential chase. Evaluation is
    semi-naive — each round joins every rule body against the {e delta}
    of the previous round through the pivot stratification of
    {!Hom.iter_targets}, so no derivation is recomputed — with a mutable
    fact store inside a round and a persistent {!Instance} only at round
    boundaries. Used by the benchmarks as the optimized engine for
    Datalog closures; equivalence with {!Chase.run} is part of the test
    suite. *)

open Nca_logic

exception Not_datalog of Rule.t

exception Budget of { resource : [ `Rounds | `Atoms ]; limit : int }
(** A saturation budget was exhausted — typed so callers (the lint CLI in
    particular) can render it as a diagnostic instead of crashing. *)

val seed_with : Atom.t -> Atom.t -> Subst.t option
(** [seed_with atom fact] unifies a body atom against a concrete fact:
    [Some sub] with [sub atom = fact], [None] when the predicates differ,
    the arities mismatch, or the atom's repeated variables / constants
    disagree with the fact. Total — malformed input yields [None], never
    an exception. *)

val saturate : ?max_rounds:int -> ?max_atoms:int -> Instance.t -> Rule.t list -> Instance.t
(** Least fixpoint of the Datalog rules over the instance. Raises
    {!Not_datalog} on a rule with existential variables; budget overruns
    raise {!Budget} (Datalog closures are finite, so the default budgets
    are generous: 10000 rounds, 1_000_000 atoms). *)

val rounds_to_fixpoint : Instance.t -> Rule.t list -> int
(** Number of semi-naive rounds until saturation (a recursion-depth
    measure). *)
