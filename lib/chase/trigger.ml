open Nca_logic

type t = { rule : Rule.t; hom : Subst.t }

module Key = struct
  (* [rule] is the interned name id, [bindings] compare by int code:
     key equality, comparison and hashing never touch a string. *)
  type t = { rule : int; bindings : Term.t list }

  let equal a b =
    Int.equal a.rule b.rule && List.equal Term.equal a.bindings b.bindings

  let compare a b =
    match Int.compare a.rule b.rule with
    | 0 -> List.compare Term.compare a.bindings b.bindings
    | c -> c

  (* [Hashtbl.hash] stops after a few nodes, which collides badly on long
     binding lists differing only in their tail; fold the whole list. *)
  let hash k =
    List.fold_left (fun h t -> (h * 31) + Term.hash t) k.rule k.bindings

  let pp ppf k =
    Fmt.pf ppf "%s|%a" (Names.name k.rule)
      Fmt.(list ~sep:(any "|") Term.pp)
      k.bindings
end

let make_key rule vars hom =
  {
    Key.rule = Names.intern (Rule.name rule);
    bindings = List.map (Subst.apply hom) (Term.Set.elements vars);
  }

let key tr = make_key tr.rule (Rule.body_vars tr.rule) tr.hom
let frontier_key tr = make_key tr.rule (Rule.frontier tr.rule) tr.hom

let all rules i =
  List.concat_map
    (fun rule ->
      List.map (fun hom -> { rule; hom }) (Nca_plan.Exec.all (Rule.body rule) i))
    rules

(* Semi-naive enumeration: a homomorphism into [total] uses a delta atom
   iff some body position maps into [delta]; pinning the {e first} such
   position [p] — positions before [p] map into [total ∖ delta], position
   [p] into [delta], positions after [p] anywhere in [total] — partitions
   the delta-using homomorphisms, so each is produced exactly once.

   The (rule, pivot) pairs are independent joins over frozen instances,
   so they are the parallel task unit: with a pool, workers enumerate
   tasks concurrently and the per-task trigger lists are concatenated in
   task order — exactly the order the sequential loop produces, so the
   result is identical at any [jobs] count (workers create no atoms and
   no nulls; enumeration only reads). The optional gate gives budgeted
   parallel rounds a cooperative mid-round abort: once it trips, every
   task unwinds and the caller must discard the round. *)

exception Gate_tripped

let delta_tasks rules ~total ~delta =
  let old = Instance.diff total delta in
  List.concat_map
    (fun rule ->
      let body = Rule.body rule in
      List.mapi
        (fun pivot _ ->
          ( rule,
            List.mapi
              (fun j a ->
                ( a,
                  if j < pivot then old
                  else if j = pivot then delta
                  else total ))
              body ))
        body)
    rules

let all_delta ?pool ?gate rules ~total ~delta =
  let tasks = delta_tasks rules ~total ~delta in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      let tasks = Array.of_list tasks in
      let step =
        match gate with
        | None -> fun () -> ()
        | Some g ->
            fun () ->
              if Nca_obs.Budget.Gate.step g then raise_notrace Gate_tripped
      in
      let chunks =
        Pool.map p (Array.length tasks) (fun i ->
            let rule, goals = tasks.(i) in
            let acc = ref [] in
            (try
               Nca_plan.Exec.iter_targets goals (fun hom ->
                   step ();
                   acc := { rule; hom } :: !acc)
             with Gate_tripped -> ());
            List.rev !acc)
      in
      List.concat (Array.to_list chunks)
  | _ ->
      let acc = ref [] in
      List.iter
        (fun (rule, goals) ->
          Nca_plan.Exec.iter_targets goals (fun hom ->
              acc := { rule; hom } :: !acc))
        tasks;
      List.rev !acc

let output tr =
  let ext =
    (* name order: null numbering is assigned deterministically *)
    List.fold_left
      (fun acc z -> Subst.add z (Term.fresh_null ()) acc)
      tr.hom
      (Term.sorted_elements (Rule.exist_vars tr.rule))
  in
  (Instance.of_list (Subst.apply_atoms ext (Rule.head tr.rule)), ext)

let frontier_image tr =
  Term.Set.map (Subst.apply tr.hom) (Rule.frontier tr.rule)

let pp ppf tr =
  Fmt.pf ppf "⟨%s, %a⟩" (Rule.name tr.rule) Subst.pp tr.hom
