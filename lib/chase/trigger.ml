open Nca_logic

type t = { rule : Rule.t; hom : Subst.t }

let all rules i =
  List.concat_map
    (fun rule ->
      List.map (fun hom -> { rule; hom }) (Hom.all (Rule.body rule) i))
    rules

let output tr =
  let ext =
    Term.Set.fold
      (fun z acc -> Subst.add z (Term.fresh_null ()) acc)
      (Rule.exist_vars tr.rule) tr.hom
  in
  (Instance.of_list (Subst.apply_atoms ext (Rule.head tr.rule)), ext)

let key tr =
  let bindings =
    Term.Set.elements (Rule.body_vars tr.rule)
    |> List.map (fun x -> Fmt.str "%a=%a" Term.pp x Term.pp (Subst.apply tr.hom x))
  in
  String.concat "|" (Rule.name tr.rule :: bindings)

let frontier_image tr =
  Term.Set.map (Subst.apply tr.hom) (Rule.frontier tr.rule)

let pp ppf tr =
  Fmt.pf ppf "⟨%s, %a⟩" (Rule.name tr.rule) Subst.pp tr.hom
