open Nca_logic

type t = { rule : Rule.t; hom : Subst.t }

module Key = struct
  (* [rule] is the interned name id, [bindings] compare by int code:
     key equality, comparison and hashing never touch a string. *)
  type t = { rule : int; bindings : Term.t list }

  let equal a b =
    Int.equal a.rule b.rule && List.equal Term.equal a.bindings b.bindings

  let compare a b =
    match Int.compare a.rule b.rule with
    | 0 -> List.compare Term.compare a.bindings b.bindings
    | c -> c

  (* [Hashtbl.hash] stops after a few nodes, which collides badly on long
     binding lists differing only in their tail; fold the whole list. *)
  let hash k =
    List.fold_left (fun h t -> (h * 31) + Term.hash t) k.rule k.bindings

  let pp ppf k =
    Fmt.pf ppf "%s|%a" (Names.name k.rule)
      Fmt.(list ~sep:(any "|") Term.pp)
      k.bindings
end

let make_key rule vars hom =
  {
    Key.rule = Names.intern (Rule.name rule);
    bindings = List.map (Subst.apply hom) (Term.Set.elements vars);
  }

let key tr = make_key tr.rule (Rule.body_vars tr.rule) tr.hom
let frontier_key tr = make_key tr.rule (Rule.frontier tr.rule) tr.hom

let all rules i =
  List.concat_map
    (fun rule ->
      List.map (fun hom -> { rule; hom }) (Nca_plan.Exec.all (Rule.body rule) i))
    rules

(* Semi-naive enumeration: a homomorphism into [total] uses a delta atom
   iff some body position maps into [delta]; pinning the {e first} such
   position [p] — positions before [p] map into [total ∖ delta], position
   [p] into [delta], positions after [p] anywhere in [total] — partitions
   the delta-using homomorphisms, so each is produced exactly once. *)
let all_delta rules ~total ~delta =
  let old = Instance.diff total delta in
  let acc = ref [] in
  List.iter
    (fun rule ->
      let body = Rule.body rule in
      List.iteri
        (fun pivot _ ->
          let goals =
            List.mapi
              (fun j a ->
                (a, if j < pivot then old else if j = pivot then delta else total))
              body
          in
          Nca_plan.Exec.iter_targets goals (fun hom -> acc := { rule; hom } :: !acc))
        body)
    rules;
  List.rev !acc

let output tr =
  let ext =
    (* name order: null numbering is assigned deterministically *)
    List.fold_left
      (fun acc z -> Subst.add z (Term.fresh_null ()) acc)
      tr.hom
      (Term.sorted_elements (Rule.exist_vars tr.rule))
  in
  (Instance.of_list (Subst.apply_atoms ext (Rule.head tr.rule)), ext)

let frontier_image tr =
  Term.Set.map (Subst.apply tr.hom) (Rule.frontier tr.rule)

let pp ppf tr =
  Fmt.pf ppf "⟨%s, %a⟩" (Rule.name tr.rule) Subst.pp tr.hom
