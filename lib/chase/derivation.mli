(** Derivation traces: how the chase justified a term or an atom.

    The provenance recorded by {!Chase} is per invented null; this module
    lifts it to readable derivation trees: the trigger that created a
    null, recursively explained through the terms its body homomorphism
    used. This is the data one reads off when following the
    peak-removing argument by hand, and the CLI's [--explain] output. *)

open Nca_logic

type t = {
  term : Term.t;
  rule : Rule.t option;  (** [None] for database terms *)
  level : int;
  body_image : Atom.t list;  (** the instantiated body of the trigger *)
  premises : t list;  (** derivations of the invented terms in the body *)
}

val of_term : Chase.t -> Term.t -> t
(** Raises [Not_found] for terms outside the chase. *)

val depth : t -> int
(** Length of the longest chain of rule applications in the trace. *)

val rules_used : t -> string list
(** Rule names along the trace, deduplicated, in first-use order. *)

val pp : t Fmt.t
(** An indented tree. *)
