(** A fixed crew of worker domains executing indexed task batches.

    The parallel substrate of the chase and Datalog engines: the
    coordinator hands the pool a task count and a task function, worker
    domains claim indices from a shared atomic counter (task-granular
    load balancing, no per-task locks), and results land in an array
    indexed by task. Merging results "in task order" — the engines'
    determinism recipe — is then just reading that array left to right,
    whatever interleaving actually ran.

    The calling domain participates as slot 0, so [create ~jobs:n] runs
    [n]-way on [n] domains total ([n - 1] spawned). [jobs = 1] spawns
    nothing and {!map} degenerates to a plain loop.

    Telemetry-aware: when the caller's telemetry store is live, each
    worker records into a private domain-local store for the batch and
    the coordinator {!Telemetry.absorb}s the per-worker snapshots at
    the barrier, in slot order. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. Raises
    [Invalid_argument] when [jobs < 1]. Callers must {!shutdown}. *)

val jobs : t -> int
(** The crew size, including the calling domain. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [[| f 0; ...; f (n-1) |]], the calls
    distributed over the crew. [f] must be safe to call from any
    domain. If some call raises, the whole batch raises the exception
    of the lowest failing index after the barrier (remaining unclaimed
    tasks are skipped). *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must not be used
    afterwards; idempotent. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f (Some pool)] with a fresh pool and
    shuts it down afterwards (also on exceptions) — or [f None] when
    [jobs <= 1], the sequential path. *)

(** {1 Accounting} *)

type stats = {
  jobs : int;
  batches : int;  (** batches executed *)
  per_domain : (int * int) list;
      (** per-domain [(tasks, busy_us)], slot 0 first (the caller) *)
}

val stats : t -> stats
