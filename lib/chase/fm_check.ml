open Nca_logic

let check ?forbid ~start ~rules m =
  if not (Instance.subset start m) then
    Error "the claimed model does not contain every start atom"
  else
    match Finite_model.violations m rules with
    | tr :: _ ->
        Error
          (Fmt.str "unsatisfied trigger: rule %s under %a"
             (Rule.name tr.Trigger.rule) Subst.pp tr.Trigger.hom)
    | [] -> (
        match forbid with
        | Some q when Cq.holds m q ->
            Error
              (Fmt.str "the claimed model satisfies the forbidden query %a"
                 Cq.pp q)
        | _ -> Ok ())
