open Nca_logic

type t = {
  term : Term.t;
  rule : Rule.t option;
  level : int;
  body_image : Atom.t list;
  premises : t list;
}

let rec of_term chase term =
  match Term.Map.find_opt term chase.Chase.provenance with
  | None ->
      {
        term;
        rule = None;
        level = Option.value ~default:0 (Chase.timestamp chase term);
        body_image = [];
        premises = [];
      }
  | Some prov ->
      let body_image =
        Subst.apply_atoms prov.Chase.hom (Rule.body prov.Chase.rule)
      in
      let invented_in_body =
        Term.Set.filter
          (fun t -> Term.Map.mem t chase.Chase.provenance)
          (Atom.terms_of_list body_image)
      in
      {
        term;
        rule = Some prov.Chase.rule;
        level = prov.Chase.level;
        body_image;
        premises =
          List.map (of_term chase) (Term.Set.elements invented_in_body);
      }

let rec depth d =
  match d.rule with
  | None -> 0
  | Some _ -> 1 + List.fold_left (fun acc p -> max acc (depth p)) 0 d.premises

let rules_used d =
  let rec collect acc d =
    let acc =
      match d.rule with
      | Some r when not (List.mem (Rule.name r) acc) -> Rule.name r :: acc
      | _ -> acc
    in
    List.fold_left collect acc d.premises
  in
  List.rev (collect [] d)

let rec pp ppf d =
  match d.rule with
  | None -> Fmt.pf ppf "%a (given, level %d)" Term.pp d.term d.level
  | Some r ->
      Fmt.pf ppf "@[<v 2>%a by %s at level %d from %a%a@]" Term.pp d.term
        (Rule.name r) d.level Atom.pp_list d.body_image
        (fun ppf premises ->
          List.iter (fun p -> Fmt.pf ppf "@,%a" pp p) premises)
        d.premises
