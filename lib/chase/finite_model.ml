open Nca_logic

let unsatisfied_trigger rules inst =
  List.find_map
    (fun rule ->
      let frontier = Rule.frontier rule in
      List.find_map
        (fun hom ->
          let init = Subst.restrict frontier hom in
          if Hom.exists ~init (Rule.head rule) inst then None
          else Some { Trigger.rule; hom })
        (Hom.all (Rule.body rule) inst))
    rules

let violations inst rules =
  List.filter
    (fun tr ->
      let init =
        Subst.restrict (Rule.frontier tr.Trigger.rule) tr.Trigger.hom
      in
      not (Hom.exists ~init (Rule.head tr.Trigger.rule) inst))
    (Trigger.all rules inst)

let is_model inst rules = Option.is_none (unsatisfied_trigger rules inst)

type outcome =
  | Model of Instance.t
  | No_model
  | Budget

exception Out_of_budget

(* All assignments of [vars] to [domain], as substitutions. *)
let assignments vars domain =
  List.fold_left
    (fun partial x ->
      List.concat_map
        (fun s -> List.map (fun d -> Subst.add x d s) domain)
        partial)
    [ Subst.empty ] vars

let search ?(fresh = 2) ?(max_steps = 200000) ?forbid start rules =
  let domain =
    (* name order: the DFS tries domain elements in list order, so the
       model found must not depend on intern-id order *)
    Term.sorted_elements (Instance.adom start)
    @ List.init fresh (fun i -> Term.cst (Fmt.str "_m%d" i))
  in
  let steps = ref 0 in
  let allowed inst =
    match forbid with None -> true | Some q -> not (Cq.holds inst q)
  in
  let rec dfs inst =
    incr steps;
    if !steps > max_steps then raise Out_of_budget;
    match unsatisfied_trigger rules inst with
    | None -> Some inst
    | Some tr ->
        let rule = tr.Trigger.rule in
        let exist = Term.sorted_elements (Rule.exist_vars rule) in
        let candidates = assignments exist domain in
        List.find_map
          (fun assignment ->
            (* body variables through the trigger's homomorphism,
               existential variables through the chosen assignment *)
            let ext = Subst.compose tr.Trigger.hom assignment in
            let inst' =
              List.fold_left
                (fun acc a -> Instance.add (Subst.apply_atom ext a) acc)
                inst (Rule.head rule)
            in
            if allowed inst' then dfs inst' else None)
          candidates
  in
  if not (allowed start) then No_model
  else
    match dfs start with
    | Some m -> Model m
    | None -> No_model
    | exception Out_of_budget -> Budget

let loop_free_model_exists ?fresh ?max_steps ~e start rules =
  match search ?fresh ?max_steps ~forbid:(Cq.loop_query e) start rules with
  | Model _ -> Some true
  | No_model -> Some false
  | Budget -> None
