open Nca_logic

exception Found_trigger of Trigger.t

(* First-match: [Hom.iter] reports homomorphisms during its backtracking
   search, so raising from the callback stops the enumeration at the
   first unsatisfied trigger instead of materializing every body
   homomorphism first (the callback order is the order [Hom.all] would
   have listed them in, so the trigger found is unchanged). *)
let unsatisfied_trigger rules inst =
  match
    List.iter
      (fun rule ->
        let frontier = Rule.frontier rule in
        Hom.iter (Rule.body rule) inst (fun hom ->
            let init = Subst.restrict frontier hom in
            if not (Hom.exists ~init (Rule.head rule) inst) then
              raise (Found_trigger { Trigger.rule; hom })))
      rules
  with
  | () -> None
  | exception Found_trigger tr -> Some tr

let violations inst rules =
  List.filter
    (fun tr ->
      let init =
        Subst.restrict (Rule.frontier tr.Trigger.rule) tr.Trigger.hom
      in
      not (Hom.exists ~init (Rule.head tr.Trigger.rule) inst))
    (Trigger.all rules inst)

let is_model inst rules = Option.is_none (unsatisfied_trigger rules inst)

type outcome =
  | Model of Instance.t
  | No_model
  | Exhausted of Nca_obs.Exhausted.t

type engine = Dfs | Sat

exception Stop of Nca_obs.Exhausted.t

(* All assignments of [vars] to [domain], as a lazy stream: with [k]
   existential variables the full |domain|^k product is never
   materialized — candidates are produced one at a time under the
   governor's eye. *)
let assignments vars domain =
  List.fold_left
    (fun partial x ->
      Seq.concat_map
        (fun s -> Seq.map (fun d -> Subst.add x d s) (List.to_seq domain))
        partial)
    (Seq.return Subst.empty) vars

(* Genuinely fresh domain constants. [Names.fresh] skips every interned
   name, so these can never collide with [start]'s active domain — not
   even when a model from a prior in-process search is fed back in. *)
let fresh_constants n =
  let rec go i =
    if i = n then []
    else
      let c = Term.cst (Names.name (Names.fresh ~prefix:"m" ())) in
      c :: go (i + 1)
  in
  go 0

let ev_dfs = Nca_obs.Events.label "fm.dfs"

let effective_budget ?max_steps budget =
  Nca_obs.Budget.intersect budget
    (Nca_obs.Budget.v ~max_steps:(Option.value ~default:200000 max_steps) ())

let search_dfs ~budget ~domain ?forbid start rules =
  let steps = ref 0 in
  let check_budget () =
    (match Nca_obs.Budget.steps budget ~used:!steps with
    | Some e -> raise (Stop e)
    | None -> ());
    (* deadline/cancellation checkpoints amortized over the steps *)
    if !steps land 255 = 0 then
      match Nca_obs.Budget.interrupted budget with
      | Some e -> raise (Stop e)
      | None -> ()
  in
  let allowed inst =
    match forbid with None -> true | Some q -> not (Cq.holds inst q)
  in
  let rec dfs inst =
    incr steps;
    check_budget ();
    match unsatisfied_trigger rules inst with
    | None -> Some inst
    | Some tr ->
        let rule = tr.Trigger.rule in
        let exist = Term.sorted_elements (Rule.exist_vars rule) in
        (* lazy stream with a budget check per candidate: a step is a
           candidate considered, not just a node recursed into, so
           disallowed candidates can no longer escape the governor *)
        let rec try_candidates seq =
          match seq () with
          | Seq.Nil -> None
          | Seq.Cons (assignment, rest) -> (
              incr steps;
              check_budget ();
              (* body variables through the trigger's homomorphism,
                 existential variables through the chosen assignment *)
              let ext = Subst.compose tr.Trigger.hom assignment in
              let inst' =
                List.fold_left
                  (fun acc a -> Instance.add (Subst.apply_atom ext a) acc)
                  inst (Rule.head rule)
              in
              match if allowed inst' then dfs inst' else None with
              | Some m -> Some m
              | None -> try_candidates rest)
        in
        try_candidates (assignments exist domain)
  in
  let outcome =
    if not (allowed start) then No_model
    else
      match dfs start with
      | Some m -> Model m
      | None -> No_model
      | exception Stop e -> Exhausted e
  in
  Nca_obs.Telemetry.count "finite_model.nodes" !steps;
  Nca_obs.Events.instant ev_dfs ~arg:!steps;
  outcome

module Sat_engine = Nca_sat.Fm_inst.Make (Nca_sat.Dpll)

let verified ?forbid start rules m =
  Instance.subset start m
  && is_model m rules
  && match forbid with None -> true | Some q -> not (Cq.holds m q)

let search_sat ~budget ~base ~fresh ?forbid start rules =
  match Sat_engine.search ?forbid ~budget ~base ~fresh start rules with
  | Nca_sat.Fm_inst.Model m ->
      (* belt-and-braces: never let an encoding bug ship a non-model *)
      if not (verified ?forbid start rules m) then
        failwith
          "Finite_model.search: SAT model failed independent re-verification";
      Model m
  | Nca_sat.Fm_inst.No_model -> No_model
  | Nca_sat.Fm_inst.Exhausted e -> Exhausted e

let search ?(engine = Dfs) ?(fresh = 2) ?max_steps ?forbid
    ?(budget = Nca_obs.Budget.unlimited) start rules =
  let budget = effective_budget ?max_steps budget in
  let base =
    (* name order: both engines try domain elements in list order, so
       the model found must not depend on intern-id order *)
    Term.sorted_elements (Instance.adom start)
  in
  let fresh_elts = fresh_constants fresh in
  Nca_obs.Telemetry.span "finite_model.search" @@ fun () ->
  match engine with
  | Dfs -> search_dfs ~budget ~domain:(base @ fresh_elts) ?forbid start rules
  | Sat -> search_sat ~budget ~base ~fresh:fresh_elts ?forbid start rules

type verdict =
  | Exists
  | Absent
  | Unknown of Nca_obs.Exhausted.t

let loop_free_model_exists ?engine ?fresh ?max_steps ?budget ~e start rules =
  match
    search ?engine ?fresh ?max_steps ?budget ~forbid:(Cq.loop_query e) start
      rules
  with
  | Model _ -> Exists
  | No_model -> Absent
  | Exhausted e -> Unknown e
