open Nca_logic

let unsatisfied_trigger rules inst =
  List.find_map
    (fun rule ->
      let frontier = Rule.frontier rule in
      List.find_map
        (fun hom ->
          let init = Subst.restrict frontier hom in
          if Hom.exists ~init (Rule.head rule) inst then None
          else Some { Trigger.rule; hom })
        (Hom.all (Rule.body rule) inst))
    rules

let violations inst rules =
  List.filter
    (fun tr ->
      let init =
        Subst.restrict (Rule.frontier tr.Trigger.rule) tr.Trigger.hom
      in
      not (Hom.exists ~init (Rule.head tr.Trigger.rule) inst))
    (Trigger.all rules inst)

let is_model inst rules = Option.is_none (unsatisfied_trigger rules inst)

type outcome =
  | Model of Instance.t
  | No_model
  | Exhausted of Nca_obs.Exhausted.t

exception Stop of Nca_obs.Exhausted.t

(* All assignments of [vars] to [domain], as substitutions. *)
let assignments vars domain =
  List.fold_left
    (fun partial x ->
      List.concat_map
        (fun s -> List.map (fun d -> Subst.add x d s) domain)
        partial)
    [ Subst.empty ] vars

let search ?(fresh = 2) ?max_steps ?forbid
    ?(budget = Nca_obs.Budget.unlimited) start rules =
  let budget =
    Nca_obs.Budget.intersect budget
      (Nca_obs.Budget.v
         ~max_steps:(Option.value ~default:200000 max_steps)
         ())
  in
  let domain =
    (* name order: the DFS tries domain elements in list order, so the
       model found must not depend on intern-id order *)
    Term.sorted_elements (Instance.adom start)
    @ List.init fresh (fun i -> Term.cst (Fmt.str "_m%d" i))
  in
  let steps = ref 0 in
  let allowed inst =
    match forbid with None -> true | Some q -> not (Cq.holds inst q)
  in
  let rec dfs inst =
    incr steps;
    (match Nca_obs.Budget.steps budget ~used:!steps with
    | Some e -> raise (Stop e)
    | None -> ());
    (* deadline/cancellation checkpoints amortized over the DFS nodes *)
    if !steps land 255 = 0 then (
      match Nca_obs.Budget.interrupted budget with
      | Some e -> raise (Stop e)
      | None -> ());
    match unsatisfied_trigger rules inst with
    | None -> Some inst
    | Some tr ->
        let rule = tr.Trigger.rule in
        let exist = Term.sorted_elements (Rule.exist_vars rule) in
        let candidates = assignments exist domain in
        List.find_map
          (fun assignment ->
            (* body variables through the trigger's homomorphism,
               existential variables through the chosen assignment *)
            let ext = Subst.compose tr.Trigger.hom assignment in
            let inst' =
              List.fold_left
                (fun acc a -> Instance.add (Subst.apply_atom ext a) acc)
                inst (Rule.head rule)
            in
            if allowed inst' then dfs inst' else None)
          candidates
  in
  Nca_obs.Telemetry.span "finite_model.search" @@ fun () ->
  let outcome =
    if not (allowed start) then No_model
    else
      match dfs start with
      | Some m -> Model m
      | None -> No_model
      | exception Stop e -> Exhausted e
  in
  Nca_obs.Telemetry.count "finite_model.nodes" !steps;
  outcome

type verdict =
  | Exists
  | Absent
  | Unknown of Nca_obs.Exhausted.t

let loop_free_model_exists ?fresh ?max_steps ?budget ~e start rules =
  match
    search ?fresh ?max_steps ?budget ~forbid:(Cq.loop_query e) start rules
  with
  | Model _ -> Exists
  | No_model -> Absent
  | Exhausted e -> Unknown e
