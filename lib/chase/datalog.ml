open Nca_logic

exception Not_datalog of Rule.t

type exhausted = {
  err : Nca_obs.Exhausted.t;
  partial : Instance.t;
  rounds : int;
}

let check_datalog rules =
  List.iter
    (fun r -> if not (Rule.is_datalog r) then raise (Not_datalog r))
    rules

(* Unify one body atom against a concrete delta atom, seeding the
   substitution for the search over the remaining atoms. *)
let seed_with atom fact =
  if not (Symbol.equal (Atom.pred atom) (Atom.pred fact)) then None
  else if List.compare_lengths (Atom.args atom) (Atom.args fact) <> 0 then
    (* unreachable for well-formed atoms (the arity is part of the
       predicate), but malformed input must not escape as a bare
       [Invalid_argument] from [fold_left2] *)
    None
  else
    List.fold_left2
      (fun acc s t ->
        match acc with
        | None -> None
        | Some sub ->
            if not (Term.is_mappable s) then
              if Term.equal s t then acc else None
            else begin
              match Subst.find_opt s sub with
              | Some u -> if Term.equal u t then acc else None
              | None -> Some (Subst.add s t sub)
            end)
      (Some Subst.empty) (Atom.args atom) (Atom.args fact)

(* In-round store of freshly derived atoms: hash-consed atoms hash and
   compare in O(1), so use them directly instead of polymorphic hashing. *)
module Atom_tbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

exception Gate_tripped

let ev_round = Nca_obs.Events.label "datalog.round.boundary"
let ev_stop = Nca_obs.Events.label "budget.stop"

(* One semi-naive round: every homomorphism of a rule body into [total]
   that uses at least one [delta] atom, via the same pivot stratification
   as [Trigger.all_delta] — body positions before the pivot range over
   [total ∖ delta], the pivot over [delta], the rest over [total] — so
   each join result is produced exactly once. Derivations accumulate in a
   mutable store; a persistent [Instance] is rebuilt only at the round
   boundary.

   With a pool, the (rule, pivot) units run across domains. Workers do
   create atoms (hash-consing handles cross-domain identity), so atom
   ids are not reproducible run-to-run — but the round's result is a
   set, and the merge walks the per-task derivation lists in task order,
   which is exactly the sequential derivation order. First-writer-wins
   provenance is therefore decided at the merge, on the coordinator, and
   picks the same entry per fact the sequential loop picks. *)
let round ?(round_no = 0) ?pool ?gate rules ~total ~delta =
  let old = Instance.diff total delta in
  let fresh : unit Atom_tbl.t = Atom_tbl.create 64 in
  (* one flag read per round, not per derivation *)
  let tracking = Nca_provenance.Provenance.enabled () in
  let tasks =
    List.concat_map
      (fun rule ->
        let body = Rule.body rule in
        List.mapi
          (fun pivot _ ->
            ( rule,
              List.mapi
                (fun j a ->
                  ( a,
                    if j < pivot then old
                    else if j = pivot then delta
                    else total ))
                body ))
          body)
      rules
  in
  (match pool with
  | Some p when Pool.jobs p > 1 ->
      let tasks = Array.of_list tasks in
      let step =
        match gate with
        | None -> fun () -> ()
        | Some g ->
            fun () ->
              if Nca_obs.Budget.Gate.step g then raise_notrace Gate_tripped
      in
      let chunks =
        Pool.map p (Array.length tasks) (fun i ->
            let rule, goals = tasks.(i) in
            let head = Rule.head rule in
            let local : unit Atom_tbl.t = Atom_tbl.create 16 in
            let acc = ref [] in
            (try
               Nca_plan.Exec.iter_targets goals (fun h ->
                   step ();
                   List.iter
                     (fun head_atom ->
                       let derived = Subst.apply_atom h head_atom in
                       if
                         (not (Instance.mem derived total))
                         && not (Atom_tbl.mem local derived)
                       then begin
                         Atom_tbl.add local derived ();
                         acc := (derived, h) :: !acc
                       end)
                     head)
             with Gate_tripped -> ());
            (rule, List.rev !acc))
      in
      Array.iter
        (fun (rule, derivs) ->
          let body = Rule.body rule in
          List.iter
            (fun (derived, h) ->
              if not (Atom_tbl.mem fresh derived) then begin
                if tracking then
                  Nca_provenance.Provenance.record derived ~rule ~hom:h
                    ~round:round_no
                    ~parents:(Subst.apply_atoms h body);
                Atom_tbl.add fresh derived ()
              end)
            derivs)
        chunks
  | _ ->
      List.iter
        (fun (rule, goals) ->
          let body = Rule.body rule in
          let head = Rule.head rule in
          Nca_plan.Exec.iter_targets goals (fun h ->
              List.iter
                (fun head_atom ->
                  let derived = Subst.apply_atom h head_atom in
                  if
                    (not (Instance.mem derived total))
                    && not (Atom_tbl.mem fresh derived)
                  then begin
                    if tracking then
                      Nca_provenance.Provenance.record derived ~rule ~hom:h
                        ~round:round_no
                        ~parents:(Subst.apply_atoms h body);
                    Atom_tbl.add fresh derived ()
                  end)
                head))
        tasks);
  Atom_tbl.fold (fun a () acc -> Instance.add a acc) fresh Instance.empty

let saturate_steps ?pool ~budget start rules =
  check_datalog rules;
  (* With a pool, the budget is shared across domains through a gate so
     deadline/cancellation can abort a round from any worker; the round
     is then discarded and the prefix so far reported, the same shape a
     between-round stop produces. *)
  let gate =
    match pool with
    | Some _ -> Some (Nca_obs.Budget.Gate.make budget)
    | None -> None
  in
  let rec go total delta n =
    if Instance.is_empty delta then Ok (total, n)
    else
      let stop =
        match Nca_obs.Budget.interrupted budget with
        | Some _ as e -> e
        | None -> (
            match Nca_obs.Budget.rounds budget ~used:n with
            | Some _ as e -> e
            | None ->
                Nca_obs.Budget.atoms budget ~used:(Instance.cardinal total))
      in
      match stop with
      | Some err ->
          Nca_obs.Events.instant ev_stop;
          Error { err; partial = total; rounds = n }
      | None -> (
          Nca_obs.Events.instant ev_round ~arg:n;
          let mt = Nca_obs.Metrics.enabled () in
          let t0 = if mt then Nca_obs.Events.now_us () else 0 in
          let fresh =
            Nca_obs.Telemetry.span "datalog.round" (fun () ->
                round ~round_no:(n + 1) ?pool ?gate rules ~total ~delta)
          in
          if mt then
            Nca_obs.Metrics.observe "datalog.round_us"
              (Nca_obs.Events.now_us () - t0);
          match Option.bind gate Nca_obs.Budget.Gate.tripped with
          | Some err -> Error { err; partial = total; rounds = n }
          | None ->
              Nca_obs.Telemetry.count "datalog.atoms"
                (Instance.cardinal fresh);
              go (Instance.union total fresh) fresh (n + 1))
  in
  Nca_obs.Telemetry.span "datalog.saturate" @@ fun () ->
  let result = go start start 0 in
  (match result with
  | Ok (_, n) -> Nca_obs.Telemetry.count "datalog.rounds" n
  | Error { rounds; _ } -> Nca_obs.Telemetry.count "datalog.rounds" rounds);
  result

let saturate ?max_rounds ?max_atoms ?(budget = Nca_obs.Budget.unlimited)
    ?pool start rules =
  (* Datalog closures are finite, so the structural defaults are generous
     safety valves rather than exploration bounds. *)
  let budget =
    Nca_obs.Budget.intersect budget
      (Nca_obs.Budget.v
         ~max_rounds:(Option.value ~default:10000 max_rounds)
         ~max_atoms:(Option.value ~default:1_000_000 max_atoms)
         ())
  in
  Result.map fst (saturate_steps ?pool ~budget start rules)

let closure ?pool start rules =
  match saturate_steps ?pool ~budget:Nca_obs.Budget.unlimited start rules with
  | Ok (total, _) -> total
  | Error _ -> assert false (* no bound to exhaust *)

let rounds_to_fixpoint start rules =
  match saturate_steps ~budget:Nca_obs.Budget.unlimited start rules with
  (* the final round derives nothing new *)
  | Ok (_, n) -> max 0 (n - 1)
  | Error _ -> assert false
