open Nca_logic

exception Not_datalog of Rule.t
exception Budget of { resource : [ `Rounds | `Atoms ]; limit : int }

let check_datalog rules =
  List.iter
    (fun r -> if not (Rule.is_datalog r) then raise (Not_datalog r))
    rules

(* Unify one body atom against a concrete delta atom, seeding the
   substitution for the search over the remaining atoms. *)
let seed_with atom fact =
  if not (Symbol.equal (Atom.pred atom) (Atom.pred fact)) then None
  else
    List.fold_left2
      (fun acc s t ->
        match acc with
        | None -> None
        | Some sub ->
            if not (Term.is_mappable s) then
              if Term.equal s t then acc else None
            else begin
              match Subst.find_opt s sub with
              | Some u -> if Term.equal u t then acc else None
              | None -> Some (Subst.add s t sub)
            end)
      (Some Subst.empty) (Atom.args atom) (Atom.args fact)

let rec split_nth i acc = function
  | [] -> invalid_arg "split_nth"
  | x :: rest -> if i = 0 then (x, List.rev_append acc rest) else split_nth (i - 1) (x :: acc) rest

let saturate_steps ?(max_rounds = 10000) ?(max_atoms = 1_000_000) start rules
    =
  check_datalog rules;
  let rec go total delta round =
    if Instance.is_empty delta then (total, round)
    else if round > max_rounds then
      raise (Budget { resource = `Rounds; limit = max_rounds })
    else if Instance.cardinal total > max_atoms then
      raise (Budget { resource = `Atoms; limit = max_atoms })
    else begin
      let fresh = ref Instance.empty in
      List.iter
        (fun rule ->
          let body = Rule.body rule in
          List.iteri
            (fun i _ ->
              let pivot, rest = split_nth i [] body in
              Instance.iter
                (fun fact ->
                  match seed_with pivot fact with
                  | None -> ()
                  | Some seed ->
                      Hom.iter ~init:seed rest total (fun h ->
                          List.iter
                            (fun head_atom ->
                              let derived = Subst.apply_atom h head_atom in
                              if not (Instance.mem derived total) then
                                fresh := Instance.add derived !fresh)
                            (Rule.head rule)))
                delta)
            body)
        rules;
      let fresh = Instance.diff !fresh total in
      go (Instance.union total fresh) fresh (round + 1)
    end
  in
  go start start 0

let saturate ?max_rounds ?max_atoms start rules =
  fst (saturate_steps ?max_rounds ?max_atoms start rules)

let rounds_to_fixpoint start rules =
  (* the final round derives nothing new *)
  max 0 (snd (saturate_steps start rules) - 1)
