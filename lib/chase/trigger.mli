(** Triggers: a rule together with a homomorphism from its body.

    An [R]-trigger over an instance [I] is a pair [⟨ρ, h⟩] of a rule
    [ρ ∈ R] and a homomorphism [h] from [body(ρ)] to [I] (Section 2.2). *)

open Nca_logic

type t = { rule : Rule.t; hom : Subst.t }

(** Structural trigger identity: the rule's name (as an interned
    {!Names} id) together with the ordered images of a variable set.
    Hashable — the chase stores fired triggers in a
    [Hashtbl.Make (Trigger.Key)] — with equality, comparison and
    hashing all pure int arithmetic. *)
module Key : sig
  type t = { rule : int; bindings : Term.t list }

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : t Fmt.t
end

val all : Rule.t list -> Instance.t -> t list
(** [triggers(I, R)]: every trigger of every rule over the instance. Each
    reported homomorphism binds exactly the body variables. *)

val all_delta :
  ?pool:Pool.t ->
  ?gate:Nca_obs.Budget.Gate.t ->
  Rule.t list ->
  total:Instance.t ->
  delta:Instance.t ->
  t list
(** The triggers over [total] whose homomorphism uses at least one atom
    of [delta] (which must be a subset of [total]) — the per-round work
    of a semi-naive chase. Each such trigger is enumerated exactly once:
    the classic pivot decomposition stratifies the rule body over
    [(total ∖ delta, delta, total)]. With [delta = total] this is exactly
    {!all}, and [all total = all_delta ~total ~delta ∪ all (total ∖ delta)]
    disjointly — property-tested in the suite.

    With [pool], the (rule, pivot) units of the decomposition are
    enumerated across the pool's domains and merged in task order —
    enumeration is read-only (no atoms, no nulls), so the returned list
    is {e identical} to the sequential one at any [jobs] count. With
    [gate] (parallel runs only), workers consult the shared budget gate
    per reported homomorphism; once it trips, every task unwinds — the
    caller must check {!Nca_obs.Budget.Gate.tripped} and discard the
    partial round. *)

val output : t -> Instance.t * Subst.t
(** The output of the trigger: [h'(head ρ)] where [h'] extends [h] by
    mapping each existential variable to a globally fresh null. Also
    returns [h'] (the extension), whose restriction to the existential
    variables identifies the created nulls. *)

val key : t -> Key.t
(** A canonical identity for the trigger (rule name + the ordered
    bindings of all body variables), used to fire each trigger exactly
    once across chase levels, as the oblivious chase requires. *)

val frontier_key : t -> Key.t
(** Semi-oblivious (Skolem) identity: rule name + the ordered bindings of
    the frontier variables only. *)

val frontier_image : t -> Term.Set.t
(** The image of the rule's frontier under the trigger's homomorphism —
    the frontier of the chase terms the trigger creates (Section 2.2). *)

val pp : t Fmt.t
