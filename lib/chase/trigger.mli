(** Triggers: a rule together with a homomorphism from its body.

    An [R]-trigger over an instance [I] is a pair [⟨ρ, h⟩] of a rule
    [ρ ∈ R] and a homomorphism [h] from [body(ρ)] to [I] (Section 2.2). *)

open Nca_logic

type t = { rule : Rule.t; hom : Subst.t }

val all : Rule.t list -> Instance.t -> t list
(** [triggers(I, R)]: every trigger of every rule over the instance. Each
    reported homomorphism binds exactly the body variables. *)

val output : t -> Instance.t * Subst.t
(** The output of the trigger: [h'(head ρ)] where [h'] extends [h] by
    mapping each existential variable to a globally fresh null. Also
    returns [h'] (the extension), whose restriction to the existential
    variables identifies the created nulls. *)

val key : t -> string
(** A canonical identity for the trigger (rule name + the ordered
    bindings of all body variables), used to fire each trigger exactly
    once across chase levels, as the oblivious chase requires. *)

val frontier_image : t -> Term.Set.t
(** The image of the rule's frontier under the trigger's homomorphism —
    the frontier of the chase terms the trigger creates (Section 2.2). *)

val pp : t Fmt.t
