(** Bounded finite-model search — the finite side of (bdd ⇒ fc).

    Finite controllability compares entailment over all models with
    entailment over {e finite} models (Section 1). This module makes the
    finite side executable at small scale: given an instance [I], a rule
    set [R] and a budget of extra domain elements, it searches for a
    finite model of [I ∧ R] by depth-first completion — every unsatisfied
    trigger is repaired by mapping the head's existential variables to
    {e existing} domain elements, in all possible ways.

    With [forbid] set to a (monotone) Boolean query, the search only
    returns models that do not satisfy it. Example 1's gap becomes a
    computation: [search ~forbid:Loop_E] fails on the transitive successor
    rules for every domain budget — every finite model has a loop — while
    the chase (an infinite model) has none. *)

open Nca_logic

val is_model : Instance.t -> Rule.t list -> bool
(** No unsatisfied trigger: every body homomorphism extends to a head
    homomorphism. *)

val violations : Instance.t -> Rule.t list -> Trigger.t list
(** The unsatisfied triggers. *)

type outcome =
  | Model of Instance.t
  | No_model  (** search space exhausted: no such model within the budget *)
  | Exhausted of Nca_obs.Exhausted.t
      (** a resource ran out before a verdict — which one, and where *)

val search :
  ?fresh:int ->
  ?max_steps:int ->
  ?forbid:Cq.t ->
  ?budget:Nca_obs.Budget.t ->
  Instance.t ->
  Rule.t list ->
  outcome
(** [search ~fresh ~forbid i rules] looks for a finite model of [i] and
    [rules] over [adom i] plus [fresh] extra elements (default 2) that
    does not satisfy [forbid]. [max_steps] (default 200000) bounds the
    number of search nodes and intersects with [budget]; the step bound
    is checked at every DFS node, deadline/cancellation every 256 nodes. *)

type verdict =
  | Exists  (** the bounded search found such a model *)
  | Absent  (** the bounded search space holds no such model *)
  | Unknown of Nca_obs.Exhausted.t
      (** a resource ran out — {e not} a proof-relevant negative: an
          exhausted search says nothing about the (bdd ⇒ fc) gap *)

val loop_free_model_exists :
  ?fresh:int -> ?max_steps:int -> ?budget:Nca_obs.Budget.t ->
  e:Symbol.t -> Instance.t -> Rule.t list -> verdict
(** Three-valued so budget exhaustion can never be read as a conclusive
    answer (the seed's [bool option] invited [<> Some true] checks that
    conflated [Absent] with [Unknown]). *)
