(** Bounded finite-model search — the finite side of (bdd ⇒ fc).

    Finite controllability compares entailment over all models with
    entailment over {e finite} models (Section 1). This module makes the
    finite side executable at small scale: given an instance [I], a rule
    set [R] and a budget of extra domain elements, it searches for a
    finite model of [I ∧ R] by depth-first completion — every unsatisfied
    trigger is repaired by mapping the head's existential variables to
    {e existing} domain elements, in all possible ways.

    With [forbid] set to a (monotone) Boolean query, the search only
    returns models that do not satisfy it. Example 1's gap becomes a
    computation: [search ~forbid:Loop_E] fails on the transitive successor
    rules for every domain budget — every finite model has a loop — while
    the chase (an infinite model) has none. *)

open Nca_logic

val is_model : Instance.t -> Rule.t list -> bool
(** No unsatisfied trigger: every body homomorphism extends to a head
    homomorphism. *)

val violations : Instance.t -> Rule.t list -> Trigger.t list
(** The unsatisfied triggers. *)

type outcome =
  | Model of Instance.t
  | No_model
      (** search space covered completely: the bounded domain holds no
          such model — a definitive negative, not an exhaustion *)
  | Exhausted of Nca_obs.Exhausted.t
      (** a resource ran out before a verdict — which one, and where *)

type engine =
  | Dfs
      (** the hand-rolled depth-first completion — the differential
          oracle *)
  | Sat
      (** MACE-style grounding into the {!Nca_sat} solver seam, with
          iterative deepening over the number of fresh elements and
          symmetry breaking between them; every model is re-verified
          independently of the solver before being returned *)

val search :
  ?engine:engine ->
  ?fresh:int ->
  ?max_steps:int ->
  ?forbid:Cq.t ->
  ?budget:Nca_obs.Budget.t ->
  Instance.t ->
  Rule.t list ->
  outcome
(** [search ~fresh ~forbid i rules] looks for a finite model of [i] and
    [rules] over [adom i] plus [fresh] extra elements (default 2) that
    does not satisfy [forbid]. The fresh elements are genuinely fresh
    names (never interned before), so they cannot collide with [adom i].

    [max_steps] (default 200000) intersects with [budget] and bounds the
    search steps — DFS candidates considered, or SAT solver decisions
    summed across the deepening rounds. Both engines check the step
    bound at every step and deadline/cancellation every 256 steps
    ([engine] defaults to [Dfs]; both return the same verdicts on
    constant-free rule sets, see DESIGN.md for the rule-constant
    caveat). *)

type verdict =
  | Exists  (** the bounded search found such a model *)
  | Absent  (** the bounded search space holds no such model *)
  | Unknown of Nca_obs.Exhausted.t
      (** a resource ran out — {e not} a proof-relevant negative: an
          exhausted search says nothing about the (bdd ⇒ fc) gap *)

val loop_free_model_exists :
  ?engine:engine -> ?fresh:int -> ?max_steps:int ->
  ?budget:Nca_obs.Budget.t ->
  e:Symbol.t -> Instance.t -> Rule.t list -> verdict
(** Three-valued so budget exhaustion can never be read as a conclusive
    answer (the seed's [bool option] invited [<> Some true] checks that
    conflated [Absent] with [Unknown]). *)
