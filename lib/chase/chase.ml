open Nca_logic

type provenance = {
  rule : Rule.t;
  hom : Subst.t;
  extension : Subst.t;
  level : int;
}

type t = {
  instance : Instance.t;
  levels : Instance.t list;
  depth : int;
  saturated : bool;
  stopped : Nca_obs.Exhausted.t option;
  timestamps : int Term.Map.t;
  provenance : provenance Term.Map.t;
}

let stamp_terms level terms stamps =
  Term.Set.fold
    (fun t acc ->
      if Term.Map.mem t acc then acc else Term.Map.add t level acc)
    terms stamps

type variant = Oblivious | Semi_oblivious | Restricted

let satisfied tr inst =
  let rule = tr.Trigger.rule in
  let init = Subst.restrict (Rule.frontier rule) tr.Trigger.hom in
  Nca_plan.Exec.exists ~init (Rule.head rule) inst

module Keytbl = Hashtbl.Make (Trigger.Key)

(* timeline labels, interned once at load so tracing never re-hashes *)
let ev_round = Nca_obs.Events.label "chase.round.boundary"
let ev_stop = Nca_obs.Events.label "budget.stop"

(* Delta-driven: each round only enumerates the triggers whose body uses
   an atom created in the previous round ([Trigger.all_delta]); triggers
   entirely over older levels were enumerated — and recorded in [fired] —
   when their last atom appeared. The first round runs with
   [delta = start], i.e. every trigger over the input. *)
let run ?(variant = Oblivious) ?max_depth ?max_atoms
    ?(budget = Nca_obs.Budget.unlimited) ?pool start rules =
  (* one governor for every bound: the legacy [max_depth]/[max_atoms]
     arguments and the caller's budget intersect to the tighter value *)
  let budget =
    Nca_obs.Budget.intersect budget
      (Nca_obs.Budget.v
         ~max_depth:(Option.value ~default:8 max_depth)
         ~max_atoms:(Option.value ~default:20000 max_atoms)
         ())
  in
  (* parallel runs share the budget across domains through a gate:
     deadline/cancellation can then abort a round mid-enumeration from
     any worker; the partial round is discarded (before it touches
     [fired]), so the reported prefix is a valid round boundary *)
  let gate =
    match pool with
    | Some _ -> Some (Nca_obs.Budget.Gate.make budget)
    | None -> None
  in
  let fired = Keytbl.create 256 in
  let rec go current delta levels_rev level stamps prov =
    let stop =
      match Nca_obs.Budget.interrupted budget with
      | Some _ as e -> e
      | None -> Nca_obs.Budget.depth budget ~used:level
    in
    match stop with
    | Some _ ->
        Nca_obs.Events.instant ev_stop;
        finish current levels_rev stamps prov ~saturated:false ~stopped:stop
    | None -> (
        Nca_obs.Events.instant ev_round ~arg:level;
        let mt = Nca_obs.Metrics.enabled () in
        let t0 = if mt then Nca_obs.Events.now_us () else 0 in
        let round =
          Nca_obs.Telemetry.span "chase.round" @@ fun () ->
          let raw = Trigger.all_delta ?pool ?gate rules ~total:current ~delta in
          match Option.bind gate Nca_obs.Budget.Gate.tripped with
          | Some err -> `Stopped err
          | None ->
          let triggers =
            List.filter
              (fun tr ->
                let k =
                  match variant with
                  | Semi_oblivious -> Trigger.frontier_key tr
                  | Oblivious | Restricted -> Trigger.key tr
                in
                if Keytbl.mem fired k then false
                else if variant = Restricted && satisfied tr current then begin
                  (* its head stays satisfied forever: never reconsider *)
                  Keytbl.add fired k ();
                  false
                end
                else begin
                  Keytbl.add fired k ();
                  true
                end)
              raw
          in
          if triggers = [] then `Saturated
          else begin
            (* the next delta is accumulated from the trigger outputs, so a
               round costs O(new atoms), not a sweep of the whole instance *)
            let (next, delta'), stamps, prov =
              List.fold_left
                (fun ((inst, d), stamps, prov) tr ->
                  let out, ext = Trigger.output tr in
                  let prov =
                    Term.Set.fold
                      (fun z acc ->
                        let created = Subst.apply ext z in
                        Term.Map.add created
                          {
                            rule = tr.Trigger.rule;
                            hom = tr.Trigger.hom;
                            extension = ext;
                            level = level + 1;
                          }
                          acc)
                      (Rule.exist_vars tr.Trigger.rule)
                      prov
                  in
                  (* fact-level provenance: the stored hom is the full
                     extension, so one substitution instantiates both the
                     body (→ parents) and the head (→ the fact) *)
                  let record =
                    if Nca_provenance.Provenance.enabled () then begin
                      let rule = tr.Trigger.rule in
                      let parents =
                        Subst.apply_atoms tr.Trigger.hom (Rule.body rule)
                      in
                      fun a ->
                        Nca_provenance.Provenance.record a ~rule ~hom:ext
                          ~round:(level + 1) ~parents
                    end
                    else fun _ -> ()
                  in
                  let inst, d =
                    Instance.fold
                      (fun a (inst, d) ->
                        if Instance.mem a inst then (inst, d)
                        else begin
                          record a;
                          (Instance.add a inst, Instance.add a d)
                        end)
                      out (inst, d)
                  in
                  ( (inst, d),
                    stamp_terms (level + 1) (Instance.adom out) stamps,
                    prov ))
                ((current, Instance.empty), stamps, prov) triggers
            in
            (* the [List.length] walk is only worth paying when recording *)
            if Nca_obs.Telemetry.enabled () || Nca_obs.Metrics.enabled ()
            then begin
              let ntr = List.length triggers in
              Nca_obs.Telemetry.count "chase.triggers" ntr;
              Nca_obs.Telemetry.count "chase.atoms" (Instance.cardinal delta');
              Nca_obs.Metrics.observe "chase.trigger_batch" ntr
            end;
            `Round (next, delta', stamps, prov)
          end
        in
        if mt then
          Nca_obs.Metrics.observe "chase.round_us"
            (Nca_obs.Events.now_us () - t0);
        match round with
        | `Stopped err ->
            finish current levels_rev stamps prov ~saturated:false
              ~stopped:(Some err)
        | `Saturated ->
            finish current levels_rev stamps prov ~saturated:true
              ~stopped:None
        | `Round (next, delta', stamps, prov) -> (
            match
              Nca_obs.Budget.atoms budget ~used:(Instance.cardinal next)
            with
            | Some _ as stop ->
                finish next (next :: levels_rev) stamps prov ~saturated:false
                  ~stopped:stop
            | None ->
                go next delta' (next :: levels_rev) (level + 1) stamps prov))
  and finish instance levels_rev stamps prov ~saturated ~stopped =
    let levels = List.rev levels_rev in
    Nca_obs.Telemetry.count "chase.rounds" (List.length levels - 1);
    {
      instance;
      levels;
      depth = List.length levels - 1;
      saturated;
      stopped;
      timestamps = stamps;
      provenance = prov;
    }
  in
  let stamps = stamp_terms 0 (Instance.adom start) Term.Map.empty in
  Nca_obs.Telemetry.span "chase" @@ fun () ->
  go start start [ start ] 0 stamps Term.Map.empty

let level c k =
  let k = max 0 k in
  let rec nth i = function
    | [] -> c.instance
    | [ last ] -> last
    | x :: rest -> if i = k then x else nth (i + 1) rest
  in
  nth 0 c.levels

let timestamp c t = Term.Map.find_opt t c.timestamps

let timestamp_multiset c terms =
  Nca_graph.Multiset.Int_multiset.of_list
    (List.filter_map (timestamp c) (Term.Set.elements terms))

let terms c = Instance.adom c.instance

let invented c =
  match c.levels with
  | [] -> Term.Set.empty
  | start :: _ -> Term.Set.diff (terms c) (Instance.adom start)

let entails ?tuple c q = Cq.holds ?tuple c.instance q

let holds_at c q =
  let rec go k = function
    | [] -> None
    | l :: rest -> if Cq.holds l q then Some k else go (k + 1) rest
  in
  go 0 c.levels

let e_graph e c = Nca_graph.Digraph.of_instance e c.instance

(* A depth-stop is the requested exploration bound, not an anomaly, so it
   stays silent as in the seed; an atoms-stop keeps the seed's
   " truncated" byte-for-byte; only the new (wall-clock/cancel) verdicts
   print their resource. *)
let pp_stop ppf = function
  | None -> ()
  | Some e -> (
      match e.Nca_obs.Exhausted.resource with
      | Nca_obs.Exhausted.Depth -> ()
      | Nca_obs.Exhausted.Atoms -> Fmt.string ppf " truncated"
      | _ -> Fmt.pf ppf " stopped:%s" (Nca_obs.Exhausted.tag e))

let pp_stats ppf c =
  Fmt.pf ppf "depth=%d atoms=%d terms=%d%s%a" c.depth
    (Instance.cardinal c.instance)
    (Term.Set.cardinal (terms c))
    (if c.saturated then " saturated" else "")
    pp_stop c.stopped
