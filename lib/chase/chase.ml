open Nca_logic

type provenance = {
  rule : Rule.t;
  hom : Subst.t;
  extension : Subst.t;
  level : int;
}

type t = {
  instance : Instance.t;
  levels : Instance.t list;
  depth : int;
  saturated : bool;
  truncated : bool;
  timestamps : int Term.Map.t;
  provenance : provenance Term.Map.t;
}

let stamp_terms level terms stamps =
  Term.Set.fold
    (fun t acc ->
      if Term.Map.mem t acc then acc else Term.Map.add t level acc)
    terms stamps

type variant = Oblivious | Semi_oblivious | Restricted

(* Semi-oblivious identity: rule + ordered frontier bindings. *)
let frontier_key tr =
  let rule = tr.Trigger.rule in
  let bindings =
    Term.Set.elements (Rule.frontier rule)
    |> List.map (fun x ->
           Fmt.str "%a=%a" Term.pp x Term.pp (Subst.apply tr.Trigger.hom x))
  in
  String.concat "|" (Rule.name rule :: bindings)

let satisfied tr inst =
  let rule = tr.Trigger.rule in
  let init = Subst.restrict (Rule.frontier rule) tr.Trigger.hom in
  Hom.exists ~init (Rule.head rule) inst

let run ?(variant = Oblivious) ?(max_depth = 8) ?(max_atoms = 20000) start
    rules =
  let fired = Hashtbl.create 256 in
  let rec go current levels_rev level stamps prov =
    if level >= max_depth then finish current levels_rev stamps prov ~saturated:false ~truncated:false
    else begin
      let triggers =
        List.filter
          (fun tr ->
            let k =
              match variant with
              | Semi_oblivious -> frontier_key tr
              | Oblivious | Restricted -> Trigger.key tr
            in
            if Hashtbl.mem fired k then false
            else if variant = Restricted && satisfied tr current then begin
              (* its head stays satisfied forever: never reconsider *)
              Hashtbl.add fired k ();
              false
            end
            else begin
              Hashtbl.add fired k ();
              true
            end)
          (Trigger.all rules current)
      in
      if triggers = [] then
        finish current levels_rev stamps prov ~saturated:true ~truncated:false
      else begin
        let next, stamps, prov =
          List.fold_left
            (fun (inst, stamps, prov) tr ->
              let out, ext = Trigger.output tr in
              let prov =
                Term.Set.fold
                  (fun z acc ->
                    let created = Subst.apply ext z in
                    Term.Map.add created
                      {
                        rule = tr.Trigger.rule;
                        hom = tr.Trigger.hom;
                        extension = ext;
                        level = level + 1;
                      }
                      acc)
                  (Rule.exist_vars tr.Trigger.rule)
                  prov
              in
              ( Instance.union inst out,
                stamp_terms (level + 1) (Instance.adom out) stamps,
                prov ))
            (current, stamps, prov) triggers
        in
        if Instance.cardinal next > max_atoms then
          finish next (next :: levels_rev) stamps prov ~saturated:false
            ~truncated:true
        else go next (next :: levels_rev) (level + 1) stamps prov
      end
    end
  and finish instance levels_rev stamps prov ~saturated ~truncated =
    let levels = List.rev levels_rev in
    {
      instance;
      levels;
      depth = List.length levels - 1;
      saturated;
      truncated;
      timestamps = stamps;
      provenance = prov;
    }
  in
  let stamps = stamp_terms 0 (Instance.adom start) Term.Map.empty in
  go start [ start ] 0 stamps Term.Map.empty

let level c k =
  let k = max 0 k in
  let rec nth i = function
    | [] -> c.instance
    | [ last ] -> last
    | x :: rest -> if i = k then x else nth (i + 1) rest
  in
  nth 0 c.levels

let timestamp c t = Term.Map.find t c.timestamps

let timestamp_multiset c terms =
  Nca_graph.Multiset.Int_multiset.of_list
    (List.map (timestamp c) (Term.Set.elements terms))

let terms c = Instance.adom c.instance

let invented c =
  match c.levels with
  | [] -> Term.Set.empty
  | start :: _ -> Term.Set.diff (terms c) (Instance.adom start)

let entails ?tuple c q = Cq.holds ?tuple c.instance q

let holds_at c q =
  let rec go k = function
    | [] -> None
    | l :: rest -> if Cq.holds l q then Some k else go (k + 1) rest
  in
  go 0 c.levels

let e_graph e c = Nca_graph.Digraph.of_instance e c.instance

let pp_stats ppf c =
  Fmt.pf ppf "depth=%d atoms=%d terms=%d%s%s" c.depth
    (Instance.cardinal c.instance)
    (Term.Set.cardinal (terms c))
    (if c.saturated then " saturated" else "")
    (if c.truncated then " truncated" else "")
