open Nca_logic

let position_symbol a i =
  Symbol.make (Fmt.str "%s#%d" (Symbol.name a) i) 2

let signature s =
  Symbol.Set.fold
    (fun p acc ->
      if Symbol.arity p <= 2 then Symbol.Set.add p acc
      else
        List.fold_left
          (fun acc i -> Symbol.Set.add (position_symbol p i) acc)
          acc
          (List.init (Symbol.arity p) (fun i -> i + 1)))
    s Symbol.Set.empty

let atom ~fresh a =
  if Atom.arity a <= 2 then [ a ]
  else
    let name = fresh () in
    List.mapi
      (fun i t -> Atom.make (position_symbol (Atom.pred a) (i + 1)) [ t; name ])
      (Atom.args a)

let instance i =
  Instance.fold
    (fun a acc ->
      List.fold_left
        (fun acc b -> Instance.add b acc)
        acc
        (atom ~fresh:Term.fresh_null a))
    i Instance.empty

let rules rs =
  List.map
    (fun r ->
      let body =
        List.concat_map
          (atom ~fresh:(fun () -> Term.fresh_var ~prefix:"rb" ()))
          (Rule.body r)
      in
      let head =
        List.concat_map
          (atom ~fresh:(fun () -> Term.fresh_var ~prefix:"rh" ()))
          (Rule.head r)
      in
      Rule.make ~name:(Rule.name r) body head)
    rs

let cq q =
  let body =
    List.concat_map
      (atom ~fresh:(fun () -> Term.fresh_var ~prefix:"rq" ()))
      (Cq.body q)
  in
  Cq.make ~answer:(Cq.answer q) body

let needed rs =
  Symbol.Set.exists (fun p -> Symbol.arity p > 2) (Rule.signature rs)
