(** Syntactic and empirical properties of rule sets.

    The regality ingredients (Definition 27): UCQ-rewritability is checked
    by {!Nca_rewriting.Bdd}; forward-existentiality and
    predicate-uniqueness are syntactic and checked here; quickness
    (Definition 26) is semantic, so this module provides a falsification
    harness over sample instances (the [rew] surgery guarantees quickness
    by Lemma 32 — the harness cross-checks it). *)

open Nca_logic

val is_forward_existential_rule : Rule.t -> bool
(** Definition 21 on a single rule: every binary head atom [A(x, y)] has
    [x] in the frontier and [y] existential. Unary and nullary head atoms
    are unconstrained (they create no edges; cf. the head [A₀^ρ(w)] that
    [∇] itself produces). Datalog rules are always accepted. *)

val is_forward_existential : Rule.t list -> bool

val is_predicate_unique_rule : Rule.t -> bool
(** Definition 22 on a single rule: in a non-Datalog rule every predicate
    occurs at most once in the head. *)

val is_predicate_unique : Rule.t list -> bool

val is_binary : Rule.t list -> bool
(** All predicates of the rule set have arity at most 2. *)

val quickness_counterexample :
  ?depth:int -> Rule.t list -> Instance.t list -> (Instance.t * Atom.t) option
(** Definition 26 falsifier: searches the samples for an instance [I] and
    an atom [β ∈ Ch(I, R) ∖ Ch₁(I, R)] all of whose terms lie in
    [adom(I)]. [None] means quickness was not refuted on the samples. *)

val is_quick_on : ?depth:int -> Rule.t list -> Instance.t list -> bool

type report = {
  binary : bool;
  forward_existential : bool;
  predicate_unique : bool;
  datalog_count : int;
  existential_count : int;
}

val describe : Rule.t list -> report
val pp_report : report Fmt.t
