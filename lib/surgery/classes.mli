(** Syntactic membership tests for the classical decidable classes the
    paper's introduction surveys.

    - {e linear}: at most one body atom [Calì, Gottlob, Kifer] — always
      UCQ-rewritable;
    - {e guarded}: some body atom contains all body variables — bounded
      treewidth chases, finitely controllable [Bárány, Gottlob, Otto];
    - {e frontier-guarded}: some body atom contains all frontier
      variables;
    - {e sticky}: the marking procedure of [Calì, Gottlob, Pieris] — also
      UCQ-rewritable and finitely controllable [Gogacz, Marcinkowski];
    - {e weakly acyclic}: see {!Nca_chase.Acyclicity} — terminating chase.

    These are sufficient conditions only; the rewriting engine
    ({!Nca_rewriting.Bdd}) gives per-query semantic certificates. *)

open Nca_logic

val is_linear : Rule.t list -> bool
val is_guarded : Rule.t list -> bool
val is_frontier_guarded : Rule.t list -> bool
val is_datalog : Rule.t list -> bool

val is_sticky : Rule.t list -> bool
(** The marking procedure: mark every body occurrence of a variable that
    does not appear in the rule's head; propagate backwards (a variable
    occurring in a head at a marked position becomes marked in the body);
    sticky iff no marked variable occurs more than once in a body. *)

val marked_positions : Rule.t list -> (Symbol.t * int) list
(** The fixpoint of the sticky marking, exposed for inspection. *)

type t = {
  linear : bool;
  guarded : bool;
  frontier_guarded : bool;
  sticky : bool;
  datalog : bool;
  weakly_acyclic : bool;
}

val classify : Rule.t list -> t
val pp : t Fmt.t
