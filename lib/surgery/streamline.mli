(** Head streamlining [∇] (Section 4.3).

    Over a binary signature, each non-Datalog rule
    [ρ = B(x̄, ȳ) → ∃z̄ H(ȳ, z̄)] is replaced by three rules over fresh
    predicates [A₀^ρ], [A_{y,w}^ρ], [B_{y',z}^ρ]:
    - [ρ_init : B → ∃w A₀^ρ(w) ∧ ⋀_{y∈ȳ} A^ρ_{y,w}(y, w)]
    - [ρ_∃ : A₀^ρ(w) ∧ ⋀ A^ρ_{y,w}(y, w) → ∃z̄ ⋀_{y'∈ȳ∪{w}, z∈z̄} B^ρ_{y',z}(y', z)]
    - [ρ_DL : ⋀ B^ρ_{y',z}(y', z) → H(ȳ, z̄)]

    Datalog rules are kept unchanged (the regality conditions only
    constrain non-Datalog rules, Definitions 21–22, and [ρ_∃] would have
    an empty head on a Datalog rule).

    Lemma 24: the chase is preserved up to homomorphic equivalence when
    restricted to the original signature. Lemma 25: [∇(S)] is
    forward-existential and predicate-unique, and UCQ-rewritable whenever
    [S] is. *)

open Nca_logic

type names = {
  a0 : Symbol.t;
  a_of : Term.t -> Symbol.t;  (** [A^ρ_{y,w}] for frontier variable [y] *)
  b_of : Term.t -> Term.t -> Symbol.t;  (** [B^ρ_{y',z}] *)
}

val names_for : Rule.t -> names
(** The fresh predicate family of a rule (deterministic in the rule name). *)

val of_rule : Rule.t -> Rule.t list
(** [[ρ_init; ρ_∃; ρ_DL]] for a non-Datalog rule; [[ρ]] for a Datalog
    rule. *)

val apply : Rule.t list -> Rule.t list
(** [∇(S)]. *)

val original_signature : Rule.t list -> Symbol.Set.t
(** The signature of the input rule set — what the chase must be
    restricted to when checking Lemma 24. *)
