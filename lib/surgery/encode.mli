(** Instance encoding: the surgery of Section 4.1.

    [⊤ → J] (Definition 12) is the rule
    [⊤ → ∃ f(adom(J)) ⋀_{A(t̄) ∈ J} A(f(t̄))] with [f] a bijective renaming
    of the instance's terms to fresh variables. Corollary 15:
    [Ch(J, S) ↔ Ch({⊤}, S ∪ {⊤ → J})]; Observation 16: the surgery
    preserves UCQ-rewritability. *)

open Nca_logic

val freeze : Instance.t -> Rule.t
(** The rule [⊤ → J]. *)

val encode : Instance.t -> Rule.t list -> Rule.t list
(** [S ∪ {⊤ → J}]: the rule set whose chase from [{⊤}] is homomorphically
    equivalent to [Ch(J, S)]. *)
