open Nca_logic

type result = {
  rules : Rule.t list;
  added : int;
  complete : bool;
  stopped : Nca_obs.Exhausted.t option;
}

(* A rule equals another up to renaming when their bodies and heads are
   isomorphic as a pair; a cheap sufficient check keeps duplicates out. *)
let same_rule r1 r2 =
  let as_cq r =
    (* answer tuple = sorted frontier; body = body @ head tagged apart is
       overkill — compare body and head separately through Injective.iso_cq
       style checks would need nca_rewriting; use syntactic equality after
       canonical renaming instead. *)
    let vars =
      (* name order: the canonical c0..cn renaming must be assigned in a
         stable order for the duplicate check to be deterministic *)
      Term.sorted_elements
        (Term.Set.union (Rule.body_vars r) (Rule.head_vars r))
    in
    let renaming =
      List.mapi (fun i v -> (v, Term.var (Fmt.str "c%d" i))) vars
      |> List.fold_left (fun acc (v, c) -> Subst.add v c acc) Subst.empty
    in
    ( List.sort Atom.compare_structural (Subst.apply_atoms renaming (Rule.body r)),
      List.sort Atom.compare_structural (Subst.apply_atoms renaming (Rule.head r)) )
  in
  let b1, h1 = as_cq r1 and b2, h2 = as_cq r2 in
  List.equal Atom.equal b1 b2 && List.equal Atom.equal h1 h2

let rewrite_rule ?max_rounds ?max_disjuncts ?budget all_rules rho =
  let frontier = Term.sorted_elements (Rule.frontier rho) in
  let body_query = Cq.make ~answer:frontier (Rule.body rho) in
  let outcome =
    Nca_rewriting.Rewrite.rewrite ?max_rounds ?max_disjuncts ?budget
      all_rules body_query
  in
  let rules =
    List.mapi
      (fun i q ->
        (* The disjunct's answer tuple is a specialization of the frontier:
           apply the same identifications to the head. *)
        let head_subst =
          List.fold_left2
            (fun acc y y' ->
              if Term.equal y y' then acc else Subst.add y y' acc)
            Subst.empty frontier (Cq.answer q)
        in
        Rule.make
          ~name:(Fmt.str "%s_rw%d" (Rule.name rho) i)
          (Cq.body q)
          (Subst.apply_atoms head_subst (Rule.head rho)))
      (Ucq.disjuncts outcome.ucq)
  in
  (rules, outcome.complete, outcome.stopped)

let apply ?max_rounds ?max_disjuncts ?budget rules =
  (* Definition 29 states the surgery for existential rules; quickness
     (Lemma 32) additionally needs Datalog heads derivable in one step, so
     we rewrite every rule body — Lemma 30 is unaffected, as each added
     rule is sound and subsumed by a derivation in the original set. *)
  let added, complete, stopped =
    List.fold_left
      (fun (acc, complete, stopped) rho ->
        let rw, c, s =
          rewrite_rule ?max_rounds ?max_disjuncts ?budget rules rho
        in
        let fresh =
          List.filter
            (fun r -> not (List.exists (same_rule r) (rules @ acc)))
            rw
        in
        ( acc @ fresh,
          complete && c,
          (* first rule whose body rewriting ran out of a resource *)
          match stopped with Some _ -> stopped | None -> s ))
      ([], true, None) rules
  in
  { rules = rules @ added; added = List.length added; complete; stopped }
