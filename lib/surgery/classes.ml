open Nca_logic

let is_linear rules =
  List.for_all (fun r -> List.length (Rule.body r) <= 1) rules

let has_guard vars atoms =
  List.exists (fun a -> Term.Set.subset vars (Atom.vars a)) atoms

let is_guarded rules =
  List.for_all (fun r -> has_guard (Rule.body_vars r) (Rule.body r)) rules

let is_frontier_guarded rules =
  List.for_all (fun r -> has_guard (Rule.frontier r) (Rule.body r)) rules

let is_datalog rules = List.for_all Rule.is_datalog rules

module PosSet = Set.Make (struct
  type t = Symbol.t * int

  let compare (p, i) (q, j) =
    match Symbol.compare p q with 0 -> Int.compare i j | c -> c
end)

let positions_of_var atoms x =
  List.concat_map
    (fun a ->
      List.mapi
        (fun i t -> if Term.equal t x then Some (Atom.pred a, i) else None)
        (Atom.args a)
      |> List.filter_map Fun.id)
    atoms

(* The sticky marking: a variable of a rule is marked when it misses the
   head, or occurs in the head at an already-marked position; marking a
   variable marks all its body positions. Iterate to fixpoint over the
   global set of marked positions. *)
let marking rules =
  let marked_vars_of marked r =
    let head_vars = Rule.head_vars r in
    Term.Set.filter
      (fun x ->
        (not (Term.Set.mem x head_vars))
        || List.exists
             (fun pos -> PosSet.mem pos marked)
             (positions_of_var (Rule.head r) x))
      (Rule.body_vars r)
  in
  let step marked =
    List.fold_left
      (fun acc r ->
        Term.Set.fold
          (fun x acc ->
            List.fold_left
              (fun acc pos -> PosSet.add pos acc)
              acc
              (positions_of_var (Rule.body r) x))
          (marked_vars_of marked r) acc)
      marked rules
  in
  let rec fix marked =
    let next = step marked in
    if PosSet.equal next marked then marked else fix next
  in
  fix PosSet.empty

let marked_positions rules = PosSet.elements (marking rules)

let is_sticky rules =
  let marked = marking rules in
  List.for_all
    (fun r ->
      let head_vars = Rule.head_vars r in
      Term.Set.for_all
        (fun x ->
          let occurrences =
            List.fold_left
              (fun n a ->
                List.fold_left
                  (fun n t -> if Term.equal t x then n + 1 else n)
                  n (Atom.args a))
              0 (Rule.body r)
          in
          let x_marked =
            (not (Term.Set.mem x head_vars))
            || List.exists
                 (fun pos -> PosSet.mem pos marked)
                 (positions_of_var (Rule.head r) x)
          in
          occurrences <= 1 || not x_marked)
        (Rule.body_vars r))
    rules

type t = {
  linear : bool;
  guarded : bool;
  frontier_guarded : bool;
  sticky : bool;
  datalog : bool;
  weakly_acyclic : bool;
}

let classify rules =
  {
    linear = is_linear rules;
    guarded = is_guarded rules;
    frontier_guarded = is_frontier_guarded rules;
    sticky = is_sticky rules;
    datalog = is_datalog rules;
    weakly_acyclic = Nca_chase.Acyclicity.is_weakly_acyclic rules;
  }

let pp ppf c =
  Fmt.pf ppf "linear=%b guarded=%b frontier-guarded=%b sticky=%b datalog=%b \
              weakly-acyclic=%b"
    c.linear c.guarded c.frontier_guarded c.sticky c.datalog c.weakly_acyclic
