(** Reification to binary signatures (Section 4.2).

    For a predicate [A] of arity [n ≥ 3], [reify(A)] is a set of fresh
    binary predicates [A₁, …, A_n]; an atom [α = A(x₁, …, x_n)] becomes
    [{Aᵢ(xᵢ, x_α) | 1 ≤ i ≤ n}] with [x_α] a fresh term naming the atom
    itself. (The paper's Section 4.2 writes the index set as [1 < i ≤ n];
    we follow Feller et al., from which the construction is taken, and
    keep all positions — dropping position 1 would lose information and
    break Lemma 19.) At-most-binary atoms are untouched.

    Lemma 19: [Ch(reify(J), reify(S)) ↔ reify(Ch(J, S))].
    Lemma 20: reification preserves UCQ-rewritability. *)

open Nca_logic

val position_symbol : Symbol.t -> int -> Symbol.t
(** [position_symbol a i] is the fresh binary predicate [Aᵢ] (1-based). *)

val signature : Symbol.Set.t -> Symbol.Set.t
(** [reify(S)]: at-most-binary predicates kept, each higher-arity [A]
    replaced by [A₁ … A_n]. *)

val atom : fresh:(unit -> Term.t) -> Atom.t -> Atom.t list
(** Reify one atom, drawing the atom-name term from [fresh]. *)

val instance : Instance.t -> Instance.t
(** Atom names are fresh nulls. *)

val rules : Rule.t list -> Rule.t list
(** Reify a rule set: body-atom names become fresh universal variables,
    head-atom names fresh existential variables. *)

val cq : Cq.t -> Cq.t
(** Reify a query: atom names become fresh existential variables. *)

val needed : Rule.t list -> bool
(** Whether the rule set mentions any predicate of arity [≥ 3]. *)
