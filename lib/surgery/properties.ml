open Nca_logic

let is_forward_existential_rule r =
  Rule.is_datalog r
  ||
  let frontier = Rule.frontier r and exist = Rule.exist_vars r in
  List.for_all
    (fun a ->
      match Atom.args a with
      | [ x; y ] -> Term.Set.mem x frontier && Term.Set.mem y exist
      | _ -> true)
    (Rule.head r)

let is_forward_existential rules =
  List.for_all is_forward_existential_rule rules

let is_predicate_unique_rule r =
  Rule.is_datalog r
  ||
  let rec distinct = function
    | [] -> true
    | a :: rest ->
        (not (List.exists (fun b -> Symbol.equal (Atom.pred a) (Atom.pred b)) rest))
        && distinct rest
  in
  distinct (Rule.head r)

let is_predicate_unique rules = List.for_all is_predicate_unique_rule rules

let is_binary rules =
  Symbol.Set.for_all (fun p -> Symbol.arity p <= 2) (Rule.signature rules)

let quickness_counterexample ?(depth = 5) rules samples =
  List.find_map
    (fun i ->
      let adom = Instance.adom i in
      let full = Nca_chase.Chase.run ~max_depth:depth i rules in
      let one = Nca_chase.Chase.level full 1 in
      Instance.fold
        (fun beta acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                Term.Set.subset (Atom.terms beta) adom
                && not (Instance.mem beta one)
              then Some (i, beta)
              else None)
        full.Nca_chase.Chase.instance None)
    samples

let is_quick_on ?depth rules samples =
  Option.is_none (quickness_counterexample ?depth rules samples)

type report = {
  binary : bool;
  forward_existential : bool;
  predicate_unique : bool;
  datalog_count : int;
  existential_count : int;
}

let describe rules =
  let dl, ex = Rule.split_datalog rules in
  {
    binary = is_binary rules;
    forward_existential = is_forward_existential rules;
    predicate_unique = is_predicate_unique rules;
    datalog_count = List.length dl;
    existential_count = List.length ex;
  }

let pp_report ppf r =
  Fmt.pf ppf "binary=%b fwd∃=%b pred-uniq=%b #DL=%d #∃=%d" r.binary
    r.forward_existential r.predicate_unique r.datalog_count
    r.existential_count
