(** Body rewriting [rew] (Definition 29, Section 4.4).

    For each rule [ρ = B(x̄, ȳ) → ∃z̄ H(ȳ, z̄)] of a rule set
    [S], [rew(ρ, S)] contains one rule [q(x̄', ȳ') → ∃z̄ H(ȳ', z̄)] per
    disjunct [∃x̄' q(x̄', ȳ')] of the UCQ rewriting of [∃x̄ B(x̄, ȳ)]
    against [S] (the frontier plays the role of the answer variables, and
    may be specialized). [rew(S) = S ∪ ⋃_ρ rew(ρ, S)].

    Definition 29 states the surgery for existential rules only; we apply
    it to Datalog rules as well, which quickness of Datalog-derived atoms
    requires and which none of the preservation lemmas is harmed by.

    Lemma 30: the chase is preserved up to homomorphic equivalence.
    Lemma 31: UCQ-rewritability, predicate-uniqueness and
    forward-existentiality are preserved. Lemma 32: [rew(S)] is quick. *)

open Nca_logic

type result = {
  rules : Rule.t list;  (** [rew(S)] *)
  added : int;  (** how many rules were added *)
  complete : bool;  (** all body rewritings reached their fixpoint *)
  stopped : Nca_obs.Exhausted.t option;
      (** the first resource verdict from an incomplete body rewriting;
          [None] iff [complete] *)
}

val apply :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Rule.t list -> result
(** Compute [rew(S)]. [complete = false] signals that some body rewriting
    exhausted a resource ([stopped] says which): the result is then sound
    (a subset of the full [rew(S)] containing [S]) but quickness is not
    guaranteed. *)
