open Nca_logic

type names = {
  a0 : Symbol.t;
  a_of : Term.t -> Symbol.t;
  b_of : Term.t -> Term.t -> Symbol.t;
}

let term_label t =
  match t with
  | Term.Var v | Term.Cst v -> Names.name v
  | Term.Null n -> Fmt.str "n%d" n

let names_for r =
  let base = Rule.name r in
  {
    a0 = Symbol.make (Fmt.str "NA0#%s" base) 1;
    a_of = (fun y -> Symbol.make (Fmt.str "NA#%s#%s" base (term_label y)) 2);
    b_of =
      (fun y' z ->
        Symbol.make
          (Fmt.str "NB#%s#%s#%s" base (term_label y') (term_label z))
          2);
  }

let fresh_w r =
  let used = Term.Set.union (Rule.body_vars r) (Rule.head_vars r) in
  let rec pick i =
    let candidate = Term.var (if i = 0 then "w" else Fmt.str "w%d" i) in
    if Term.Set.mem candidate used then pick (i + 1) else candidate
  in
  pick 0

let of_rule r =
  if Rule.is_datalog r then [ r ]
  else begin
    let names = names_for r in
    let w = fresh_w r in
    (* name order: the generated NA#/NB# symbol names and the atom order
       of the produced rules must not depend on intern-id order *)
    let frontier = Term.sorted_elements (Rule.frontier r) in
    let exist = Term.sorted_elements (Rule.exist_vars r) in
    let a_atoms =
      Atom.make names.a0 [ w ]
      :: List.map (fun y -> Atom.make (names.a_of y) [ y; w ]) frontier
    in
    let b_atoms =
      List.concat_map
        (fun y' -> List.map (fun z -> Atom.make (names.b_of y' z) [ y'; z ]) exist)
        (frontier @ [ w ])
    in
    [
      Rule.make ~name:(Rule.name r ^ "_init") (Rule.body r) a_atoms;
      Rule.make ~name:(Rule.name r ^ "_ex") a_atoms b_atoms;
      Rule.make ~name:(Rule.name r ^ "_dl") b_atoms (Rule.head r);
    ]
  end

let apply rules = List.concat_map of_rule rules
let original_signature rules = Rule.signature rules
