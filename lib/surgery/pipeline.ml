open Nca_logic

type step = {
  label : string;
  rules : Rule.t list;
  note : string;
}

type t = {
  steps : step list;
  final : Rule.t list;
  complete : bool;
}

let regalize ?max_rounds ?max_disjuncts i rules =
  let encoded = Encode.encode i rules in
  let step1 =
    {
      label = "encode";
      rules = encoded;
      note = "instance folded into ⊤ → I (Def. 12)";
    }
  in
  let reified = if Reify.needed encoded then Reify.rules encoded else encoded in
  let step2 =
    {
      label = "reify";
      rules = reified;
      note =
        (if Reify.needed encoded then "higher-arity predicates reified (4.2)"
         else "already binary — identity");
    }
  in
  let streamlined = Streamline.apply reified in
  let step3 =
    {
      label = "streamline";
      rules = streamlined;
      note = "heads split into ρ_init/ρ_∃/ρ_DL (4.3)";
    }
  in
  let rw = Body_rewrite.apply ?max_rounds ?max_disjuncts streamlined in
  let step4 =
    {
      label = "body-rewrite";
      rules = rw.rules;
      note = Fmt.str "rew(S): %d rules added (4.4)" rw.added;
    }
  in
  {
    steps = [ step1; step2; step3; step4 ];
    final = rw.rules;
    complete = rw.complete;
  }

let restrict_binary sign inst =
  let binary_part =
    Symbol.Set.filter (fun p -> Symbol.arity p <= 2) sign
  in
  Instance.restrict binary_part inst

let verify_chase_preservation ?(depth = 4) i rules t =
  let original_sign = Rule.signature rules in
  (* The restricted chase is homomorphically equivalent to the oblivious
     one and keeps the comparison instances small; streamlining stretches
     each original step into three, hence the 3k+3 slack. *)
  let run d j rs =
    Nca_chase.Chase.run ~variant:Nca_chase.Chase.Restricted ~max_depth:d j rs
  in
  let reference = run depth i rules in
  let reference_far = run ((3 * depth) + 3) i rules in
  let check step =
    let transformed = run ((3 * depth) + 3) Instance.top step.rules in
    let transformed_near = run depth Instance.top step.rules in
    let restr c = restrict_binary original_sign c.Nca_chase.Chase.instance in
    let forward =
      Hom.exists
        (Instance.atoms
           (Instance.generalize
              (restrict_binary original_sign reference.instance)))
        (restr transformed)
    in
    let backward =
      Hom.exists
        (Instance.atoms (restr transformed_near))
        (restrict_binary original_sign reference_far.instance)
    in
    (step.label, forward && backward)
  in
  List.map check t.steps

let final_report t = Properties.describe t.final
