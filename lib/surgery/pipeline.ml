open Nca_logic

exception Stage_error of { stage : string; reason : string }

type check = { property : string; ok : bool; detail : string }

type step = {
  label : string;
  rules : Rule.t list;
  note : string;
  checks : check list;
}

type t = {
  steps : step list;
  final : Rule.t list;
  complete : bool;
  stopped : Nca_obs.Exhausted.t option;
}

let guard stage f =
  try f ()
  with Invalid_argument reason -> raise (Stage_error { stage; reason })

(* Each stage asserts the properties it is supposed to establish
   (Defs. 12/21/22/27); a violated post-condition becomes a failed check
   that the lint engine renders as a diagnostic, not a silent mismatch. *)

let check_encode i encoded =
  let freeze_rules =
    List.filter (fun r -> Rule.body r = [ Atom.top ]) encoded
  in
  let covered =
    match freeze_rules with
    | [ f ] ->
        Hom.exists
          (Instance.atoms (Instance.generalize i))
          (Instance.of_list (Rule.head f))
    | _ -> false
  in
  [
    {
      property = "instance-encoded";
      ok = covered;
      detail =
        (if covered then "⊤ → I covers the input instance (Def. 12)"
         else "no single ⊤ → I rule covering the input instance");
    };
  ]

let check_binary stage rules =
  let offenders =
    Symbol.Set.filter (fun p -> Symbol.arity p > 2) (Rule.signature rules)
  in
  [
    {
      property = "binary-signature";
      ok = Symbol.Set.is_empty offenders;
      detail =
        (if Symbol.Set.is_empty offenders then
           Fmt.str "all predicates of %s have arity ≤ 2" stage
         else
           Fmt.str "arity > 2 after %s: %a" stage
             Fmt.(list ~sep:comma Symbol.pp)
             (Symbol.sorted_elements offenders));
    };
  ]

let check_streamline rules =
  let fwd = Properties.is_forward_existential rules in
  let uniq = Properties.is_predicate_unique rules in
  [
    {
      property = "forward-existential";
      ok = fwd;
      detail =
        (if fwd then "every head atom is frontier-to-existential (Def. 21)"
         else "a streamlined head atom is not frontier-to-existential");
    };
    {
      property = "predicate-unique";
      ok = uniq;
      detail =
        (if uniq then "no repeated head predicate (Def. 22)"
         else "a streamlined existential rule repeats a head predicate");
    };
  ]

let check_rew (rw : Body_rewrite.result) =
  [
    {
      property = "rewriting-complete";
      ok = rw.complete;
      detail =
        (if rw.complete then "every body rewriting reached its fixpoint"
         else "a body rewriting exhausted its budget — rew(S) is partial");
    };
  ]

let regalize ?max_rounds ?max_disjuncts ?budget i rules =
  Nca_obs.Telemetry.span "pipeline" @@ fun () ->
  let staged name f = Nca_obs.Telemetry.span ("pipeline." ^ name) f in
  let encoded =
    staged "encode" @@ fun () ->
    guard "encode" (fun () -> Encode.encode i rules)
  in
  let step1 =
    {
      label = "encode";
      rules = encoded;
      note = "instance folded into ⊤ → I (Def. 12)";
      checks = check_encode i encoded;
    }
  in
  let reified =
    staged "reify" @@ fun () ->
    guard "reify" (fun () ->
        if Reify.needed encoded then Reify.rules encoded else encoded)
  in
  let step2 =
    {
      label = "reify";
      rules = reified;
      note =
        (if Reify.needed encoded then "higher-arity predicates reified (4.2)"
         else "already binary — identity");
      checks = check_binary "reify" reified;
    }
  in
  let streamlined =
    staged "streamline" @@ fun () ->
    guard "streamline" (fun () -> Streamline.apply reified)
  in
  let step3 =
    {
      label = "streamline";
      rules = streamlined;
      note = "heads split into ρ_init/ρ_∃/ρ_DL (4.3)";
      checks = check_streamline streamlined;
    }
  in
  let rw =
    staged "body-rewrite" @@ fun () ->
    guard "body-rewrite" (fun () ->
        Body_rewrite.apply ?max_rounds ?max_disjuncts ?budget streamlined)
  in
  let step4 =
    {
      label = "body-rewrite";
      rules = rw.rules;
      note = Fmt.str "rew(S): %d rules added (4.4)" rw.added;
      checks =
        check_rew rw
        @ check_binary "body-rewrite" rw.rules
        @ check_streamline rw.rules;
    }
  in
  {
    steps = [ step1; step2; step3; step4 ];
    final = rw.rules;
    complete = rw.complete;
    stopped = rw.stopped;
  }

let failed_checks t =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun c -> if c.ok then None else Some (s.label, c))
        s.checks)
    t.steps

let restrict_binary sign inst =
  let binary_part =
    Symbol.Set.filter (fun p -> Symbol.arity p <= 2) sign
  in
  Instance.restrict binary_part inst

let verify_chase_preservation ?(depth = 4) i rules t =
  let original_sign = Rule.signature rules in
  (* The restricted chase is homomorphically equivalent to the oblivious
     one and keeps the comparison instances small; streamlining stretches
     each original step into three, hence the 3k+3 slack. *)
  let run d j rs =
    Nca_chase.Chase.run ~variant:Nca_chase.Chase.Restricted ~max_depth:d j rs
  in
  let reference = run depth i rules in
  let reference_far = run ((3 * depth) + 3) i rules in
  let check step =
    let transformed = run ((3 * depth) + 3) Instance.top step.rules in
    let transformed_near = run depth Instance.top step.rules in
    let restr c = restrict_binary original_sign c.Nca_chase.Chase.instance in
    let forward =
      Hom.exists
        (Instance.atoms
           (Instance.generalize
              (restrict_binary original_sign reference.instance)))
        (restr transformed)
    in
    let backward =
      Hom.exists
        (Instance.atoms (restr transformed_near))
        (restrict_binary original_sign reference_far.instance)
    in
    (step.label, forward && backward)
  in
  List.map check t.steps

let final_report t = Properties.describe t.final
