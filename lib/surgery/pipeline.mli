(** The full Section-4 regalization pipeline.

    Starting from an instance [I] and a UCQ-rewritable rule set [R], apply
    in order: instance encoding (4.1), reification (4.2), streamlining
    (4.3) and body rewriting (4.4). The final rule set is {e regal}
    (Definition 27): UCQ-rewritable, quick, forward-existential and
    predicate-unique, over a binary signature — and its chase from [{⊤}]
    is homomorphically equivalent (restricted to the original signature,
    and up to reification) to [Ch(I, R)]. *)

open Nca_logic

type step = {
  label : string;
  rules : Rule.t list;
  note : string;
}

type t = {
  steps : step list;  (** encode → reify → streamline → body-rewrite *)
  final : Rule.t list;  (** the regal rule set *)
  complete : bool;  (** every rewriting budget sufficed *)
}

val regalize :
  ?max_rounds:int -> ?max_disjuncts:int -> Instance.t -> Rule.t list -> t

val verify_chase_preservation :
  ?depth:int -> Instance.t -> Rule.t list -> t -> (string * bool) list
(** For each pipeline step, check the step's chase-preservation lemma on
    the given input: the chase of the step's rules from [{⊤}], restricted
    to the original signature, is homomorphically equivalent to
    [Ch(I, R)] truncated at the same depth. Reified steps are compared
    on the at-most-binary part of the original signature. *)

val final_report : t -> Properties.report
