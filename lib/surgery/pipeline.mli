(** The full Section-4 regalization pipeline.

    Starting from an instance [I] and a UCQ-rewritable rule set [R], apply
    in order: instance encoding (4.1), reification (4.2), streamlining
    (4.3) and body rewriting (4.4). The final rule set is {e regal}
    (Definition 27): UCQ-rewritable, quick, forward-existential and
    predicate-unique, over a binary signature — and its chase from [{⊤}]
    is homomorphically equivalent (restricted to the original signature,
    and up to reification) to [Ch(I, R)]. *)

open Nca_logic

exception Stage_error of { stage : string; reason : string }
(** A surgery stage could not build its rules (e.g. a malformed rule was
    produced). Typed so front ends can render it as a diagnostic instead
    of crashing on a bare [Invalid_argument]. *)

type check = { property : string; ok : bool; detail : string }
(** A pre/post invariant asserted by a pipeline stage: the property the
    stage is supposed to establish, whether it holds on the stage's
    output, and a human-readable explanation. *)

type step = {
  label : string;
  rules : Rule.t list;
  note : string;
  checks : check list;  (** the stage's post-condition report *)
}

type t = {
  steps : step list;  (** encode → reify → streamline → body-rewrite *)
  final : Rule.t list;  (** the regal rule set *)
  complete : bool;  (** every rewriting budget sufficed *)
  stopped : Nca_obs.Exhausted.t option;
      (** which resource cut body rewriting short; [None] iff [complete] *)
}

val regalize :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Instance.t -> Rule.t list -> t
(** Runs the four surgeries in order. Each stage re-checks the invariant
    it claims to establish — encoding covers the instance (Def. 12),
    reification yields a binary signature, streamlining yields
    forward-existential and predicate-unique rules (Defs. 21/22), body
    rewriting reaches its fixpoint — and records the verdicts in
    [step.checks] instead of failing silently. *)

val failed_checks : t -> (string * check) list
(** All failed stage invariants, tagged with their stage label.
    [Nca_analysis.Lint.of_pipeline] turns these into diagnostics. *)

val verify_chase_preservation :
  ?depth:int -> Instance.t -> Rule.t list -> t -> (string * bool) list
(** For each pipeline step, check the step's chase-preservation lemma on
    the given input: the chase of the step's rules from [{⊤}], restricted
    to the original signature, is homomorphically equivalent to
    [Ch(I, R)] truncated at the same depth. Reified steps are compared
    on the at-most-binary part of the original signature. *)

val final_report : t -> Properties.report
