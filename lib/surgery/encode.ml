open Nca_logic

let freeze j =
  let renaming =
    Term.Set.fold
      (fun t acc -> Term.Map.add t (Term.fresh_var ~prefix:"enc" ()) acc)
      (Instance.adom j) Term.Map.empty
  in
  let rename t =
    match Term.Map.find_opt t renaming with Some v -> v | None -> t
  in
  let head =
    Instance.fold
      (fun a acc -> Atom.map rename a :: acc)
      (Instance.filter (fun a -> not (Atom.equal a Atom.top)) j)
      []
  in
  let head = if head = [] then [ Atom.top ] else head in
  Rule.make ~name:"freeze" [ Atom.top ] head

let encode j rules = freeze j :: rules
