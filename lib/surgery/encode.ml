open Nca_logic

let freeze j =
  let renaming =
    (* name order: the [_enc<n>] numbering follows the name order of the
       active domain, independent of intern-id order *)
    List.fold_left
      (fun acc t -> Term.Map.add t (Term.fresh_var ~prefix:"enc" ()) acc)
      Term.Map.empty
      (Term.sorted_elements (Instance.adom j))
  in
  let rename t =
    match Term.Map.find_opt t renaming with Some v -> v | None -> t
  in
  let head =
    List.rev_map
      (fun a -> Atom.map rename a)
      (Instance.sorted_atoms
         (Instance.filter (fun a -> not (Atom.equal a Atom.top)) j))
  in
  let head = if head = [] then [ Atom.top ] else head in
  Rule.make ~name:"freeze" [ Atom.top ] head

let encode j rules = freeze j :: rules
