open Nca_logic

type entry = {
  rule : Rule.t;
  hom : Subst.t;
  round : int;
  parents : Atom.t list;
}

module Atom_tbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* The store doubles as the enabled flag, exactly like [Telemetry]: one
   ref read on the disabled fast path. The table itself sits behind a
   mutex so first-writer-wins is atomic when several domains race to
   record the same fact — the mem/add pair is one critical section, and
   whichever domain enters first owns the entry forever. [enable] and
   [disable] happen on the coordinator outside parallel sections, so
   the unguarded slot read is ordered by domain spawn/join. *)
let current : entry Atom_tbl.t option ref = ref None
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Option.is_some !current
let enable () = current := Some (Atom_tbl.create 256)
let disable () = current := None

let record fact ~rule ~hom ~round ~parents =
  match !current with
  | None -> ()
  | Some tbl ->
      with_lock @@ fun () ->
      if not (Atom_tbl.mem tbl fact) then
        Atom_tbl.add tbl fact { rule; hom; round; parents }

let find fact =
  match !current with
  | None -> None
  | Some tbl -> with_lock (fun () -> Atom_tbl.find_opt tbl fact)

let facts_tracked () =
  match !current with None -> 0 | Some tbl -> Atom_tbl.length tbl

let fold f init =
  match !current with
  | None -> init
  | Some tbl -> Atom_tbl.fold f tbl init

type stats = { facts : int; store_bytes : int; max_depth : int }

(* Structural size estimate, in bytes, chosen once and kept stable so
   the stats-json golden stays deterministic: a flat cost per entry (the
   record, the table slot, the fact pointer) plus per-parent and
   per-binding list/map costs. This is a bookkeeping figure, not an
   [Obj.reachable_words] measurement. *)
let entry_bytes e =
  48 + (16 * List.length e.parents) + (32 * List.length (Subst.bindings e.hom))

let store_bytes () =
  match !current with
  | None -> 0
  | Some tbl -> Atom_tbl.fold (fun _ e acc -> acc + entry_bytes e) tbl 0

(* Longest chain of recorded derivations. Parents of a recorded fact were
   present before the fact was derived and recording is first-writer-wins,
   so the recorded graph is acyclic and the memoized recursion terminates. *)
let max_depth () =
  match !current with
  | None -> 0
  | Some tbl ->
      let memo = Atom_tbl.create (Atom_tbl.length tbl) in
      let rec depth fact =
        match Atom_tbl.find_opt memo fact with
        | Some d -> d
        | None ->
            let d =
              match Atom_tbl.find_opt tbl fact with
              | None -> 0
              | Some e ->
                  1 + List.fold_left (fun m p -> max m (depth p)) 0 e.parents
            in
            Atom_tbl.add memo fact d;
            d
      in
      Atom_tbl.fold (fun fact _ m -> max m (depth fact)) tbl 0

let stats () =
  {
    facts = facts_tracked ();
    store_bytes = store_bytes ();
    max_depth = max_depth ();
  }
