(** Fact-level provenance: which trigger derived each fact.

    The chase records, per invented {e null}, the trigger that created it
    ({!Nca_chase.Chase.provenance}); this store generalizes that record to
    every derived {e fact}, across both engines: [Chase.run] and
    [Datalog.saturate] register each newly derived atom together with the
    rule, the (extended) body homomorphism, the round at which it fired
    and the instantiated body — the parent facts. {!Proof} reads the store
    back into checkable derivation DAGs.

    Recording follows the [Telemetry] discipline: it is ambient, off by
    default, and gated on one global slot — when disabled, every entry
    point is a single [ref] read, so engine hot paths and output are
    unchanged (asserted by the byte-identity goldens and the bench
    overhead workload). Budgets, which change results, travel explicitly;
    provenance, which must not, stays ambient.

    The store is {e first-writer-wins}: a fact derived twice keeps its
    first derivation, matching the level semantics of the chase (the
    earliest derivation is the one the timestamps describe). [enable]
    installs a fresh store, so one enable/disable window captures exactly
    one engine run (or one pipeline of runs over a common instance). *)

open Nca_logic

type entry = {
  rule : Rule.t;  (** the rule whose trigger derived the fact *)
  hom : Subst.t;
      (** the body homomorphism, extended to the existential variables for
          non-Datalog rules — applying it to [Rule.body rule] yields
          [parents], to [Rule.head rule] a list containing the fact *)
  round : int;  (** chase level / semi-naive round (inputs are round 0) *)
  parents : Atom.t list;  (** the instantiated body, in body order *)
}

val enabled : unit -> bool

val enable : unit -> unit
(** Install a fresh, empty store and start recording. *)

val disable : unit -> unit
(** Stop recording and drop the store. *)

val record :
  Atom.t -> rule:Rule.t -> hom:Subst.t -> round:int -> parents:Atom.t list ->
  unit
(** Register a derivation for a fact. No-op when disabled or when the
    fact already has an entry (first writer wins). *)

val find : Atom.t -> entry option
(** The recorded derivation of a fact; [None] for input facts, facts
    derived while recording was off, or when disabled. *)

val facts_tracked : unit -> int

val fold : (Atom.t -> entry -> 'a -> 'a) -> 'a -> 'a
(** Fold over every tracked fact and its entry, in unspecified order
    (callers wanting determinism must sort); the identity when
    disabled. *)

type stats = { facts : int; store_bytes : int; max_depth : int }
(** [store_bytes] is a deterministic structural estimate (entries, parent
    lists, substitution bindings — not [Obj] reachability), so it is
    stable across runs and safe for golden tests. [max_depth] is the
    longest chain of recorded derivations ending in any tracked fact. *)

val stats : unit -> stats
(** All zeros when disabled. *)
