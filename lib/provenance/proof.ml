open Nca_logic

type t = {
  fact : Atom.t;
  rule : Rule.t option;
  hom : Subst.t;
  round : int;
  premises : t list;
}

module Atom_tbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

let of_fact fact =
  let memo : t Atom_tbl.t = Atom_tbl.create 64 in
  (* the recorded graph is acyclic (parents precede their fact), so the
     recursion terminates; memoizing keeps the result a shared DAG *)
  let rec go fact =
    match Atom_tbl.find_opt memo fact with
    | Some node -> node
    | None ->
        let node =
          match Provenance.find fact with
          | None ->
              { fact; rule = None; hom = Subst.empty; round = 0; premises = [] }
          | Some e ->
              {
                fact;
                rule = Some e.Provenance.rule;
                hom = e.Provenance.hom;
                round = e.Provenance.round;
                premises = List.map go e.Provenance.parents;
              }
        in
        Atom_tbl.add memo fact node;
        node
  in
  go fact

(* Each traversal below visits every distinct fact once, so shared
   sub-DAGs do not blow up the walk. *)
let fold_distinct f init root =
  let seen = Atom_tbl.create 64 in
  let rec go acc node =
    if Atom_tbl.mem seen node.fact then acc
    else begin
      Atom_tbl.add seen node.fact ();
      let acc = List.fold_left go acc node.premises in
      f acc node
    end
  in
  go init root

let depth root =
  let memo = Atom_tbl.create 64 in
  let rec go node =
    match Atom_tbl.find_opt memo node.fact with
    | Some d -> d
    | None ->
        let d =
          match node.rule with
          | None -> 0
          | Some _ ->
              1 + List.fold_left (fun m p -> max m (go p)) 0 node.premises
        in
        Atom_tbl.add memo node.fact d;
        d
  in
  go root

let size root = fold_distinct (fun n _ -> n + 1) 0 root

let rules_used root =
  fold_distinct
    (fun acc node ->
      match node.rule with
      | Some r when not (List.mem (Rule.name r) acc) -> Rule.name r :: acc
      | _ -> acc)
    [] root
  |> List.rev

let facts root =
  List.rev (fold_distinct (fun acc node -> node.fact :: acc) [] root)

type error = { fact : Atom.t; reason : string }

let pp_error ppf e =
  Fmt.pf ppf "proof step for %a rejected: %s" Atom.pp e.fact e.reason

let error fact reason = Error { fact; reason }

(* Set-equality of the instantiated body and the premises' facts: the
   body image may repeat an atom (two body positions mapped onto the same
   fact), so compare as sets of hash-consed atoms. *)
let same_atom_set xs ys =
  let covers xs ys =
    List.for_all (fun a -> List.exists (Atom.equal a) ys) xs
  in
  covers xs ys && covers ys xs

let check ~rules ~input (root : t) =
  let seen = Atom_tbl.create 64 in
  let rec go (node : t) =
    if Atom_tbl.mem seen node.fact then Ok ()
    else begin
      Atom_tbl.add seen node.fact ();
      match node.rule with
      | None ->
          if Instance.mem node.fact input then Ok ()
          else error node.fact "leaf fact is not in the input instance"
      | Some r ->
          if not (List.exists (Rule.equal r) rules) then
            error node.fact
              (Fmt.str "rule %s is not in the rule set" (Rule.name r))
          else
            let body_image = Subst.apply_atoms node.hom (Rule.body r) in
            let premise_facts =
              List.map (fun (p : t) -> p.fact) node.premises
            in
            if not (same_atom_set body_image premise_facts) then
              error node.fact
                (Fmt.str "body image %a is not the premises %a" Atom.pp_list
                   body_image Atom.pp_list premise_facts)
            else if
              not
                (List.exists (Atom.equal node.fact)
                   (Subst.apply_atoms node.hom (Rule.head r)))
            then error node.fact "fact is not in the instantiated head"
            else
              List.fold_left
                (fun acc p -> match acc with Error _ -> acc | Ok () -> go p)
                (Ok ()) node.premises
    end
  in
  go root

let pp ppf (root : t) =
  let seen = Atom_tbl.create 64 in
  let rec go ppf (node : t) =
    match node.rule with
    | None -> Fmt.pf ppf "%a (input)" Atom.pp node.fact
    | Some r ->
        if Atom_tbl.mem seen node.fact then
          Fmt.pf ppf "%a … (shown above)" Atom.pp node.fact
        else begin
          Atom_tbl.add seen node.fact ();
          Fmt.pf ppf "@[<v 2>%a by %s at round %d%a@]" Atom.pp node.fact
            (Rule.name r) node.round
            (fun ppf premises ->
              List.iter (fun p -> Fmt.pf ppf "@,%a" go p) premises)
            node.premises
        end
  in
  go ppf root

let to_dot ?(name = "proof") (root : t) =
  let label a = Fmt.str "%a" Atom.pp a in
  let nodes =
    List.rev
      (fold_distinct
         (fun acc (node : t) ->
           ( label node.fact,
             label node.fact,
             match node.rule with None -> `Input | Some _ -> `Derived )
           :: acc)
         [] root)
  in
  let edges =
    List.rev
      (fold_distinct
         (fun acc (node : t) ->
           match node.rule with
           | None -> acc
           | Some r ->
               List.fold_left
                 (fun acc (p : t) ->
                   let e =
                     (label p.fact, label node.fact, Some (Rule.name r))
                   in
                   (* a repeated body atom maps onto one premise fact:
                      draw that edge once *)
                   if List.mem e acc then acc else e :: acc)
                 acc node.premises)
         [] root)
  in
  Nca_graph.Dot.of_dag ~name ~nodes ~edges ()
