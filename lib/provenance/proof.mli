(** Derivation DAGs over facts, and the independent certificate checker.

    This is {!Nca_chase.Derivation} generalized from terms to facts: a
    proof node justifies one fact either as an input (leaf) or as the
    head image of a rule under a homomorphism whose instantiated body is
    exactly the premises. {!of_fact} reads the DAG off the ambient
    {!Provenance} store; {!check} replays it bottom-up against a rule set
    {e without} consulting the store or re-running any engine — the
    certificate discipline: what the engines emit, an independent referee
    can verify. *)

open Nca_logic

type t = {
  fact : Atom.t;
  rule : Rule.t option;  (** [None] for input facts *)
  hom : Subst.t;
      (** body homomorphism, extended to existential variables — applying
          it to the rule's body yields the premises' facts, to the head a
          list containing [fact] *)
  round : int;  (** 0 for inputs *)
  premises : t list;  (** sub-proofs, in rule-body order *)
}

val of_fact : Atom.t -> t
(** The derivation DAG of a fact, from the ambient {!Provenance} store.
    Shared premises are physically shared (each distinct fact is expanded
    once). A fact without a store entry — an input, or a fact derived
    while recording was off — becomes a leaf. *)

val fold_distinct : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Fold over the distinct facts of the DAG, premises before conclusions
    (each distinct fact visited exactly once) — the traversal behind
    every aggregate below and the JSON/DOT exporters. *)

val depth : t -> int
(** Longest chain of rule applications (0 for a leaf); each distinct fact
    is measured once. *)

val size : t -> int
(** Number of distinct facts in the DAG. *)

val rules_used : t -> string list
(** Rule names along the proof, deduplicated, in first-use order of a
    premises-first traversal. *)

val facts : t -> Atom.t list
(** Every distinct fact of the DAG, premises before conclusions
    (topological, deterministic). *)

type error = { fact : Atom.t; reason : string }
(** The first step that failed to replay, with a human-readable reason. *)

val check : rules:Rule.t list -> input:Instance.t -> t -> (unit, error) result
(** Replay the proof bottom-up: every leaf must be an input fact; every
    inner node must name a rule of [rules] whose instantiated body is
    exactly its premises' facts and whose instantiated head contains the
    node's fact. Rejects — with the offending step — any proof whose body
    image is not satisfied by its premises. Purely structural: no engine
    runs, no store reads. *)

val pp_error : error Fmt.t

val pp : t Fmt.t
(** An indented tree, one line per step; a fact already printed earlier
    is elided as ["… (shown above)"] so shared sub-DAGs stay readable. *)

val to_dot : ?name:string -> t -> string
(** The DAG as Graphviz DOT ({!Nca_graph.Dot.of_dag}): one box per fact,
    inputs filled, premise → conclusion edges labelled by the rule. *)
