(** Process-wide SAT solver totals, for [--stats-json].

    One solver instance is created per iterative-deepening round; this
    aggregate sums their lifetime counters so the stats report (schema
    v5's ["sat"] block) can show what the whole invocation spent.
    Recorded on the coordinating domain only. *)

type totals = {
  solves : int;  (** solver rounds run *)
  vars : int;
  clauses : int;
  learnt : int;
  decisions : int;
  conflicts : int;
  propagations : int;
}

val record : Solver_intf.stats -> unit
(** Fold one solver's lifetime counters into the totals. *)

val snapshot : unit -> totals
val reset : unit -> unit
