(** MACE-style SAT instantiation of the bounded finite-model problem.

    [Make (Solver)] grounds an instance + rule set over a fixed domain
    into CNF through the abstract {!Solver_intf.S} seam:

    - one propositional variable per ground atom (predicates in name
      order, argument tuples lexicographic in domain order, so the
      numbering is reproducible);
    - unit clauses asserting the start instance;
    - rule-satisfaction clauses — every ground body implies some ground
      head instantiation, via auxiliary selector variables for
      multi-atom heads;
    - negative clauses forbidding every instantiation of the (monotone
      Boolean) [forbid] query;
    - symmetry-breaking clauses ordering the fresh domain elements: a
      fresh element may only be {e used} (occur in a true atom) when its
      predecessor is, cutting the [k!] permutations of unused fresh
      elements to one representative. Sound because fresh elements are
      generated never-before-interned names, absent from start, rules
      and [forbid] (see the {!Nca_logic.Names.fresh} contract).

    The ground universe closes over constants mentioned by the rules
    (rule heads can pull them into any model); existential disjunctions
    range over the same closed domain, so satisfiability is decided
    exactly for "is there a model over at most this domain". *)

open Nca_logic

type outcome =
  | Model of Instance.t
  | No_model  (** unsatisfiable at every deepening level — definitive *)
  | Exhausted of Nca_obs.Exhausted.t

exception Stop of Nca_obs.Exhausted.t
(** Raised by {!Make.instantiate} when the budget interrupts grounding. *)

val assignments : Term.t list -> Term.t list -> Subst.t Seq.t
(** All substitutions of the variables over the domain, lazily,
    lexicographic in variable then domain list order. (Shared with the
    DFS engine so both explore candidates in the same order.) *)

val rule_constants : domain:Term.t list -> Rule.t list -> Term.t list
(** Constants occurring in the rules but not in [domain], in name
    order. *)

module Make (S : Solver_intf.S) : sig
  type inst = {
    solver : S.t;
    universe : Atom.t array;  (** ground atoms, in variable order *)
    var_of : int Hashtbl.Make(Atom).t;
  }

  val instantiate :
    ?forbid:Cq.t ->
    ?budget:Nca_obs.Budget.t ->
    domain:Term.t list ->
    sym_break:Term.t list ->
    Instance.t ->
    Rule.t list ->
    inst
  (** Ground the problem over [domain]. [sym_break] lists the fresh
      (interchangeable) elements, in order; it must be a sublist of
      [domain]. Raises {!Stop} when the budget interrupts grounding. *)

  val solve_inst :
    ?budget:Nca_obs.Budget.t ->
    inst ->
    [ `Sat of Instance.t | `Unsat | `Unknown of Nca_obs.Exhausted.t ]
  (** Run the backend and decode a satisfying assignment back to an
      instance (the true ground atoms). *)

  val counts : inst -> int * int
  (** [(variables, clauses)] of the grounding, for tests and stats. *)

  val search :
    ?forbid:Cq.t ->
    ?budget:Nca_obs.Budget.t ->
    base:Term.t list ->
    fresh:Term.t list ->
    Instance.t ->
    Rule.t list ->
    outcome
  (** Iterative deepening: ground and solve over [base] plus the first
      [k] elements of [fresh], for [k = 0, 1, …]. A satisfiable round
      returns its model; an unsatisfiable final round is a definitive
      [No_model]. The budget's step bound (solver decisions) is shared
      across rounds; per-round counters land in telemetry
      ([sat.rounds], [sat.vars], [sat.clauses], [sat.decisions],
      [sat.conflicts], [sat.propagations]) and in the process-wide
      {!Stats} aggregate. *)
end
