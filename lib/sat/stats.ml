(* Process-wide SAT totals, mirroring [Nca_plan.Cache.stats]: the
   engine records after each solver round, the stats report reads the
   aggregate. Recording happens on the coordinating domain only (the
   SAT engine is not sharded), so plain mutable cells suffice. *)

type totals = {
  solves : int;
  vars : int;
  clauses : int;
  learnt : int;
  decisions : int;
  conflicts : int;
  propagations : int;
}

let solves = ref 0
let vars = ref 0
let clauses = ref 0
let learnt = ref 0
let decisions = ref 0
let conflicts = ref 0
let propagations = ref 0

let record (s : Solver_intf.stats) =
  incr solves;
  vars := !vars + s.vars;
  clauses := !clauses + s.clauses;
  learnt := !learnt + s.learnt;
  decisions := !decisions + s.decisions;
  conflicts := !conflicts + s.conflicts;
  propagations := !propagations + s.propagations

let snapshot () =
  {
    solves = !solves;
    vars = !vars;
    clauses = !clauses;
    learnt = !learnt;
    decisions = !decisions;
    conflicts = !conflicts;
    propagations = !propagations;
  }

let reset () =
  solves := 0;
  vars := 0;
  clauses := 0;
  learnt := 0;
  decisions := 0;
  conflicts := 0;
  propagations := 0
