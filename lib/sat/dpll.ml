(* The bundled pure-OCaml backend: DPLL with two watched literals,
   conflict-driven clause learning (first-UIP), phase saving and
   geometric restarts. Zero dependencies beyond the stdlib; every
   unbounded loop checkpoints the budget in the decision loop.

   Determinism: branching follows the static variable order (lowest
   unassigned id first) with saved phases initialised to false, so the
   first model found assigns as few atoms true as propagation allows —
   small models, and byte-stable CLI goldens. *)

module Lit = Solver_intf.Lit
module Budget = Nca_obs.Budget

let ev_restart = Nca_obs.Events.label "sat.restart"

type value = Vundef | Vtrue | Vfalse

type t = {
  mutable nvars : int;
  (* clause store: input clauses then learnt clauses, one array each;
     positions 0 and 1 of every stored clause are the watched literals *)
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : int list array;  (* literal -> indices into clauses *)
  mutable assign : value array;  (* var -> value *)
  mutable polarity : bool array;  (* var -> saved phase *)
  mutable reason : int array;  (* var -> implying clause, -1 for decisions *)
  mutable level : int array;  (* var -> decision level of its assignment *)
  mutable trail : int array;  (* assigned literals, oldest first *)
  mutable trail_n : int;
  mutable trail_lim : int array;  (* level l starts at trail_lim.(l), l >= 1 *)
  mutable dlevel : int;
  mutable qhead : int;  (* propagation queue head (index into trail) *)
  mutable order_head : int;  (* every var below it is assigned *)
  mutable units : int list;  (* root facts, re-asserted at each solve *)
  mutable root_conflict : bool;  (* an empty clause was added *)
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable added : int;
  mutable learnt : int;
  mutable decisions : int;
  mutable conflicts : int;
  mutable propagations : int;
}

let create () =
  {
    nvars = 0;
    clauses = [||];
    nclauses = 0;
    watches = [||];
    assign = [||];
    polarity = [||];
    reason = [||];
    level = [||];
    trail = [||];
    trail_n = 0;
    trail_lim = [||];
    dlevel = 0;
    qhead = 0;
    order_head = 0;
    units = [];
    root_conflict = false;
    seen = [||];
    added = 0;
    learnt = 0;
    decisions = 0;
    conflicts = 0;
    propagations = 0;
  }

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  if v >= Array.length s.assign then begin
    let n = max 16 (2 * Array.length s.assign) in
    let grow a fill =
      let a' = Array.make n fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    s.assign <- grow s.assign Vundef;
    s.polarity <- grow s.polarity false;
    s.reason <- grow s.reason (-1);
    s.level <- grow s.level 0;
    s.seen <- grow s.seen false;
    let t = Array.make n 0 in
    Array.blit s.trail 0 t 0 s.trail_n;
    s.trail <- t;
    let tl = Array.make (n + 2) 0 in
    Array.blit s.trail_lim 0 tl 0 (Array.length s.trail_lim);
    s.trail_lim <- tl;
    let w = Array.make (2 * n) [] in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  v

let lit_value s l =
  match s.assign.(Lit.var l) with
  | Vundef -> Vundef
  | Vtrue -> if Lit.is_pos l then Vtrue else Vfalse
  | Vfalse -> if Lit.is_pos l then Vfalse else Vtrue

let push_clause s arr =
  if s.nclauses = Array.length s.clauses then begin
    let n = max 16 (2 * Array.length s.clauses) in
    let a = Array.make n [||] in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  let ci = s.nclauses in
  s.clauses.(ci) <- arr;
  s.nclauses <- ci + 1;
  ci

let add_clause s lits =
  let lits = List.sort_uniq Int.compare lits in
  List.iter
    (fun l ->
      if Lit.var l >= s.nvars || l < 0 then
        invalid_arg "Dpll.add_clause: literal over an unallocated variable")
    lits;
  let tautology = List.exists (fun l -> List.mem (Lit.negate l) lits) lits in
  if not tautology then begin
    s.added <- s.added + 1;
    match lits with
    | [] -> s.root_conflict <- true
    | [ l ] -> s.units <- l :: s.units
    | l0 :: l1 :: _ ->
        let arr = Array.of_list lits in
        let ci = push_clause s arr in
        s.watches.(l0) <- ci :: s.watches.(l0);
        s.watches.(l1) <- ci :: s.watches.(l1)
  end

(* The encoder's distinguished clause kinds: this backend has no native
   symmetry or cardinality support, so they are ordinary clauses. *)
let add_symmetry_clause = add_clause
let add_at_least_one_clause = add_clause
let add_at_most_one_clause = add_clause

(* Assign [lit] true with [reason] (-1: decision or root fact). False on
   conflict with the current assignment. *)
let enqueue s lit reason =
  match lit_value s lit with
  | Vtrue -> true
  | Vfalse -> false
  | Vundef ->
      let v = Lit.var lit in
      s.assign.(v) <- (if Lit.is_pos lit then Vtrue else Vfalse);
      s.polarity.(v) <- Lit.is_pos lit;
      s.reason.(v) <- reason;
      s.level.(v) <- s.dlevel;
      s.trail.(s.trail_n) <- lit;
      s.trail_n <- s.trail_n + 1;
      s.propagations <- s.propagations + 1;
      true

(* Exhaustive unit propagation; the conflicting clause's index, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let falsified = Lit.negate p in
    let ws = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest -> (
          let c = s.clauses.(ci) in
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if lit_value s c.(0) = Vtrue then begin
            s.watches.(falsified) <- ci :: s.watches.(falsified);
            process rest
          end
          else
            let n = Array.length c in
            let rec find k =
              if k >= n then -1
              else if lit_value s c.(k) <> Vfalse then k
              else find (k + 1)
            in
            match find 2 with
            | k when k >= 0 ->
                (* move the watch to an unfalsified literal *)
                c.(1) <- c.(k);
                c.(k) <- falsified;
                s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
                process rest
            | _ ->
                if enqueue s c.(0) ci then begin
                  s.watches.(falsified) <- ci :: s.watches.(falsified);
                  process rest
                end
                else begin
                  (* conflict: keep the unvisited watchers where they were *)
                  s.watches.(falsified) <-
                    List.rev_append rest (ci :: s.watches.(falsified));
                  conflict := ci
                end)
    in
    process ws
  done;
  !conflict

let backjump s lvl =
  if s.dlevel > lvl then begin
    let upto = s.trail_lim.(lvl + 1) in
    for i = s.trail_n - 1 downto upto do
      let v = Lit.var s.trail.(i) in
      s.assign.(v) <- Vundef;
      s.reason.(v) <- -1;
      if v < s.order_head then s.order_head <- v
    done;
    s.trail_n <- upto;
    s.qhead <- upto;
    s.dlevel <- lvl
  end

(* First-UIP conflict analysis: resolve the conflict clause backwards
   along the trail until exactly one literal of the current decision
   level remains. Returns the asserting literal and the other learnt
   literals (all from lower levels). *)
let analyze s conflict_ci =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_n - 1) in
  let c = ref s.clauses.(conflict_ci) in
  let asserting = ref 0 in
  let continue = ref true in
  while !continue do
    let lits = !c in
    (* position 0 of a reason clause is the literal it implied — skip it *)
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        if s.level.(v) >= s.dlevel then incr counter
        else learnt := q :: !learnt
      end
    done;
    while not s.seen.(Lit.var s.trail.(!index)) do
      decr index
    done;
    let pl = s.trail.(!index) in
    decr index;
    let v = Lit.var pl in
    s.seen.(v) <- false;
    decr counter;
    p := pl;
    if !counter = 0 then begin
      asserting := Lit.negate pl;
      continue := false
    end
    else c := s.clauses.(s.reason.(v))
  done;
  let rest = !learnt in
  List.iter (fun q -> s.seen.(Lit.var q) <- false) rest;
  (!asserting, rest)

(* Install the learnt clause, backjump to its assertion level, and
   assert the UIP literal. *)
let record_learnt s asserting rest =
  s.learnt <- s.learnt + 1;
  match rest with
  | [] ->
      (* a learnt fact: persists across solves via the unit list *)
      s.units <- asserting :: s.units;
      backjump s 0;
      ignore (enqueue s asserting (-1))
  | _ ->
      let blevel =
        List.fold_left (fun m q -> max m s.level.(Lit.var q)) 0 rest
      in
      let arr = Array.of_list (asserting :: rest) in
      (* watch the asserting literal and one literal of the backjump
         level, so the watch invariant holds after the jump *)
      let ki = ref 1 in
      for j = 1 to Array.length arr - 1 do
        if s.level.(Lit.var arr.(j)) = blevel then ki := j
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!ki);
      arr.(!ki) <- tmp;
      backjump s blevel;
      let ci = push_clause s arr in
      s.watches.(arr.(0)) <- ci :: s.watches.(arr.(0));
      s.watches.(arr.(1)) <- ci :: s.watches.(arr.(1));
      ignore (enqueue s asserting ci)

let rec pick_branch_var s =
  if s.order_head >= s.nvars then -1
  else if s.assign.(s.order_head) = Vundef then s.order_head
  else begin
    s.order_head <- s.order_head + 1;
    pick_branch_var s
  end

let solve ?(budget = Budget.unlimited) s =
  (* full reset: assignments are per-solve, clauses persist *)
  for v = 0 to s.nvars - 1 do
    s.assign.(v) <- Vundef;
    s.reason.(v) <- -1;
    s.level.(v) <- 0
  done;
  s.trail_n <- 0;
  s.qhead <- 0;
  s.dlevel <- 0;
  s.order_head <- 0;
  if s.root_conflict then Solver_intf.Unsat
  else if not (List.for_all (fun l -> enqueue s l (-1)) s.units) then
    Solver_intf.Unsat
  else begin
    let decisions0 = s.decisions in
    let restart_limit = ref 100 in
    let conflicts_since = ref 0 in
    let result = ref None in
    while !result = None do
      let ci = propagate s in
      if ci >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_since;
        if s.dlevel = 0 then result := Some Solver_intf.Unsat
        else begin
          let asserting, rest = analyze s ci in
          record_learnt s asserting rest;
          if !conflicts_since >= !restart_limit then begin
            conflicts_since := 0;
            restart_limit := !restart_limit * 2;
            Nca_obs.Events.instant ev_restart ~arg:s.conflicts;
            backjump s 0
          end
        end
      end
      else
        match pick_branch_var s with
        | -1 -> result := Some Solver_intf.Sat
        | v -> (
            s.decisions <- s.decisions + 1;
            let used = s.decisions - decisions0 in
            let verdict =
              match Budget.steps budget ~used with
              | Some e -> Some e
              | None ->
                  if used land 255 = 0 then Budget.interrupted budget
                  else None
            in
            match verdict with
            | Some e -> result := Some (Solver_intf.Unknown e)
            | None ->
                s.dlevel <- s.dlevel + 1;
                s.trail_lim.(s.dlevel) <- s.trail_n;
                let lit = if s.polarity.(v) then Lit.pos v else Lit.neg v in
                ignore (enqueue s lit (-1)))
    done;
    Option.get !result
  end

let model_value s v = s.assign.(v) = Vtrue

let stats s =
  {
    Solver_intf.vars = s.nvars;
    clauses = s.added;
    learnt = s.learnt;
    decisions = s.decisions;
    conflicts = s.conflicts;
    propagations = s.propagations;
  }
