(* MACE-style grounding of a finite-model problem into CNF, over the
   abstract solver seam. See fm_inst.mli for the encoding contract and
   DESIGN.md for the variable layout and caveats. *)

open Nca_logic
module Budget = Nca_obs.Budget
module Telemetry = Nca_obs.Telemetry
module Metrics = Nca_obs.Metrics
module Events = Nca_obs.Events
module Lit = Solver_intf.Lit

let ev_deepen = Events.label "fm.deepen"

type outcome =
  | Model of Instance.t
  | No_model
  | Exhausted of Nca_obs.Exhausted.t

exception Stop of Nca_obs.Exhausted.t

(* All substitutions of [vars] over [domain], lazily, lexicographic in
   [vars] (outermost) and [domain] list order — the same order the DFS
   explores, so the two engines are comparable candidate by candidate. *)
let assignments vars domain =
  List.fold_left
    (fun partial x ->
      Seq.concat_map
        (fun s -> Seq.map (fun d -> Subst.add x d s) (List.to_seq domain))
        partial)
    (Seq.return Subst.empty) vars

(* All [arity]-tuples over [domain], lazily, lexicographic. *)
let tuples arity domain =
  let rec go k =
    if k = 0 then Seq.return []
    else
      Seq.concat_map
        (fun d -> Seq.map (fun rest -> d :: rest) (go (k - 1)))
        (List.to_seq domain)
  in
  go arity

(* Constants occurring in the rules but not already in [domain]: rule
   heads can introduce them into any model, so the ground universe must
   close over them (the DFS reaches them the same way). *)
let rule_constants ~domain rules =
  let in_domain t = List.exists (Term.equal t) domain in
  let scan acc atoms =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc t ->
            if Term.is_cst t && not (in_domain t) then Term.Set.add t acc
            else acc)
          acc (Atom.args a))
      acc atoms
  in
  let set =
    List.fold_left
      (fun acc r -> scan (scan acc (Rule.body r)) (Rule.head r))
      Term.Set.empty rules
  in
  Term.sorted_elements set

module Make (S : Solver_intf.S) = struct
  module Atbl = Hashtbl.Make (Atom)

  type inst = {
    solver : S.t;
    universe : Atom.t array;  (** ground atoms, in variable order *)
    var_of : int Atbl.t;
  }

  let instantiate ?forbid ?(budget = Budget.unlimited) ~domain ~sym_break
      start rules =
    let solver = S.create () in
    let var_of = Atbl.create 1024 in
    let rev_universe = ref [] in
    let ticks = ref 0 in
    (* grounding is outside the solver's decision loop; amortized
       deadline/cancellation checkpoints keep it inside the governor *)
    let tick () =
      incr ticks;
      if !ticks land 1023 = 0 then
        match Budget.interrupted budget with
        | Some e -> raise (Stop e)
        | None -> ()
    in
    let sign =
      let s =
        Symbol.Set.union (Rule.signature rules) (Instance.signature start)
      in
      match forbid with
      | None -> s
      | Some q ->
          List.fold_left
            (fun s a -> Symbol.Set.add (Atom.pred a) s)
            s (Cq.body q)
    in
    (* variable layout: one var per ground atom, predicates in name
       order, argument tuples lexicographic in domain order — the
       numbering (hence the model found) is independent of intern ids *)
    List.iter
      (fun p ->
        Seq.iter
          (fun args ->
            tick ();
            let a = Atom.make p args in
            if not (Atbl.mem var_of a) then begin
              let v = S.new_var solver in
              Atbl.add var_of a v;
              rev_universe := a :: !rev_universe
            end)
          (tuples (Symbol.arity p) domain))
      (Symbol.sorted_elements sign);
    let universe = Array.of_list (List.rev !rev_universe) in
    let pos a = Lit.pos (Atbl.find var_of a) in
    let neg a = Lit.neg (Atbl.find var_of a) in
    (* the start instance holds: one unit clause per atom *)
    List.iter
      (fun a ->
        tick ();
        S.add_clause solver [ pos a ])
      (Instance.sorted_atoms start);
    (* rule satisfaction: for every ground body, some head instantiation.
       Datalog rules ground to one clause per head atom; existential
       rules to an at-least-one disjunction whose disjuncts are head
       atoms (single-atom heads) or auxiliary selector variables
       implying every head atom of that instantiation. *)
    List.iter
      (fun rule ->
        let bvars = Term.sorted_elements (Rule.body_vars rule) in
        let evars = Term.sorted_elements (Rule.exist_vars rule) in
        let body = Rule.body rule and head = Rule.head rule in
        Seq.iter
          (fun sigma ->
            tick ();
            let body_lits =
              List.sort_uniq Int.compare
                (List.map (fun a -> neg (Subst.apply_atom sigma a)) body)
            in
            match evars with
            | [] ->
                List.iter
                  (fun h ->
                    S.add_clause solver
                      (body_lits @ [ pos (Subst.apply_atom sigma h) ]))
                  head
            | _ ->
                let disjuncts =
                  assignments evars domain
                  |> Seq.map (fun tau ->
                         tick ();
                         let ground =
                           List.map
                             (fun h ->
                               Subst.apply_atom tau (Subst.apply_atom sigma h))
                             head
                         in
                         match ground with
                         | [ h ] -> pos h
                         | hs ->
                             let y = S.new_var solver in
                             List.iter
                               (fun h ->
                                 S.add_clause solver [ Lit.neg y; pos h ])
                               hs;
                             Lit.pos y)
                  |> List.of_seq
                in
                S.add_at_least_one_clause solver (body_lits @ disjuncts))
          (assignments bvars domain))
      rules;
    (* forbid: no instantiation of the (monotone Boolean) query may be
       wholly true. Instantiations touching atoms outside the universe
       (constants beyond the domain) are unsatisfiable already. *)
    (match forbid with
    | None -> ()
    | Some q ->
        let qvars = Term.sorted_elements (Cq.vars q) in
        Seq.iter
          (fun sigma ->
            tick ();
            let ground = List.map (Subst.apply_atom sigma) (Cq.body q) in
            if List.for_all (fun a -> Atbl.mem var_of a) ground then
              S.add_at_most_one_clause solver
                (List.sort_uniq Int.compare (List.map neg ground)))
          (assignments qvars domain));
    (* symmetry breaking: fresh elements are interchangeable (they occur
       in no rule, start atom or forbid instantiation), so force the
       used ones to form a prefix — u_i ("element i is mentioned by some
       true atom") may only hold when u_{i-1} does. *)
    let prev = ref None in
    List.iter
      (fun d ->
        let u = S.new_var solver in
        Array.iter
          (fun a ->
            if List.exists (Term.equal d) (Atom.args a) then
              S.add_clause solver [ neg a; Lit.pos u ])
          universe;
        (match !prev with
        | Some u' -> S.add_symmetry_clause solver [ Lit.neg u; Lit.pos u' ]
        | None -> ());
        prev := Some u)
      sym_break;
    { solver; universe; var_of }

  let decode inst =
    Array.fold_left
      (fun m a ->
        if S.model_value inst.solver (Atbl.find inst.var_of a) then
          Instance.add a m
        else m)
      Instance.empty inst.universe

  let counts inst =
    let st = S.stats inst.solver in
    (st.Solver_intf.vars, st.Solver_intf.clauses)

  let solve_inst ?budget inst =
    let mt = Metrics.enabled () in
    let t0 = if mt then Events.now_us () else 0 in
    let outcome =
      match S.solve ?budget inst.solver with
      | Solver_intf.Sat -> `Sat (decode inst)
      | Solver_intf.Unsat -> `Unsat
      | Solver_intf.Unknown e -> `Unknown e
    in
    if mt then Metrics.observe "sat.solve_us" (Events.now_us () - t0);
    outcome

  let take k l = List.filteri (fun i _ -> i < k) l

  let record_round st =
    Telemetry.incr "sat.rounds";
    Telemetry.count "sat.vars" st.Solver_intf.vars;
    Telemetry.count "sat.clauses" st.Solver_intf.clauses;
    Telemetry.count "sat.decisions" st.Solver_intf.decisions;
    Telemetry.count "sat.conflicts" st.Solver_intf.conflicts;
    Telemetry.count "sat.propagations" st.Solver_intf.propagations;
    Stats.record st

  let search ?forbid ?(budget = Budget.unlimited) ~base ~fresh start rules =
    Telemetry.span "finite_model.sat" @@ fun () ->
    let consts = rule_constants ~domain:(base @ fresh) rules in
    (* the step budget is shared across deepening rounds: each round
       gets what the previous rounds left *)
    let steps_left = ref budget.Budget.max_steps in
    let rec deepen k =
      if k > List.length fresh then No_model
      else
        let () = Events.instant ev_deepen ~arg:k in
        let sym_break = take k fresh in
        let domain = base @ sym_break @ consts in
        let round_budget = { budget with Budget.max_steps = !steps_left } in
        match
          instantiate ?forbid ~budget:round_budget ~domain ~sym_break start
            rules
        with
        | exception Stop e -> Exhausted e
        | inst -> (
            let outcome = solve_inst ~budget:round_budget inst in
            let st = S.stats inst.solver in
            record_round st;
            (match !steps_left with
            | Some n ->
                steps_left := Some (max 0 (n - st.Solver_intf.decisions))
            | None -> ());
            match outcome with
            | `Sat m -> Model m
            | `Unsat -> deepen (k + 1)
            | `Unknown e -> Exhausted e)
    in
    deepen 0
end
