(** The bundled pure-OCaml SAT backend.

    DPLL with two watched literals and exhaustive unit propagation,
    extended with conflict-driven clause learning (first-UIP),
    chronological phase saving and geometric restarts — no external
    dependencies. Branching is deterministic (lowest unassigned
    variable, saved phase initialised to false), so the first model
    found is the propagation-minimal one under the static order and CLI
    output is byte-stable.

    The budget's step bound counts decisions and is checked on every
    decision; deadline/cancellation checkpoints are amortized over 256
    decisions — the hot loop is never more than 256 decisions away from
    a cancellation point. *)

include Solver_intf.S
