(** The abstract incremental-solver seam of the MACE-style finite-model
    finder.

    [Fm_inst.Make] grounds a rule set into propositional clauses through
    this interface; any backend that implements it — the bundled
    pure-OCaml {!Dpll}, or an external solver binding — can sit on the
    other side. Following the crossbow [Sat_inst.Make (Solver)] lineage,
    the interface distinguishes the {e kinds} of clauses the encoder
    emits (plain, symmetry-breaking, at-least-one, at-most-one), so a
    backend with native cardinality or symmetry support can intercept
    them; the default backend treats them all as ordinary clauses.

    Literals use the MiniSat convention: variable [v] appears positively
    as [2v] and negatively as [2v + 1], so negation is one [lxor] and
    the variable is one shift. *)

(** Literal encoding helpers. *)
module Lit = struct
  type t = int

  let pos v = v lsl 1
  let neg v = (v lsl 1) lor 1
  let negate l = l lxor 1
  let var l = l lsr 1
  let is_pos l = l land 1 = 0
  let pp ppf l = Fmt.pf ppf "%s%d" (if is_pos l then "" else "~") (var l)
end

type outcome =
  | Sat  (** a satisfying assignment is available via [model_value] *)
  | Unsat  (** definitively unsatisfiable — a proof-relevant negative *)
  | Unknown of Nca_obs.Exhausted.t
      (** the budget ran out inside the decision loop *)

(** Cumulative counters over a solver's lifetime. *)
type stats = {
  vars : int;
  clauses : int;  (** accepted input clauses, unit clauses included *)
  learnt : int;  (** clauses learnt from conflicts *)
  decisions : int;
  conflicts : int;
  propagations : int;  (** literals assigned by unit propagation *)
}

module type S = sig
  type t

  val create : unit -> t

  val new_var : t -> int
  (** Allocate the next propositional variable (dense ids from 0). *)

  val add_clause : t -> Lit.t list -> unit
  (** Add a clause (a disjunction of literals). Tautologies are dropped;
      the empty clause makes every subsequent [solve] return [Unsat].
      Every literal must reference a variable already allocated with
      {!new_var} ([Invalid_argument] otherwise). *)

  val add_symmetry_clause : t -> Lit.t list -> unit
  (** A symmetry-breaking clause — semantically ordinary, tagged so
      backends with native symmetry handling can intercept it. *)

  val add_at_least_one_clause : t -> Lit.t list -> unit
  (** An at-least-one(-value) constraint, emitted for rule-satisfaction
      disjunctions. *)

  val add_at_most_one_clause : t -> Lit.t list -> unit
  (** An at-most-one-style negative constraint, emitted for the [forbid]
      query instantiations. *)

  val solve : ?budget:Nca_obs.Budget.t -> t -> outcome
  (** Decide the accumulated clause set. The budget's step bound counts
      {e decisions} (checked on every decision); deadline/cancellation
      are consulted every 256 decisions. Incremental: more variables and
      clauses may be added after a [solve], and learnt unit facts are
      kept across calls. *)

  val model_value : t -> int -> bool
  (** After [Sat]: the value assigned to a variable. *)

  val stats : t -> stats
end
