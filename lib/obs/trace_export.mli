(** Render an {!Events} snapshot for external profiling UIs.

    {!chrome_json} emits Chrome trace-event JSON — the array-of-events
    format both [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto} load directly. Every event carries [pid = 1] and
    [tid = ] the event's track id, so a pooled run shows one lane per
    domain (tid 0 = coordinator, tid k = pool slot k — stable across
    runs, unlike raw [Domain.id]s). Timestamps are rebased to the
    earliest event so traces start at 0.

    {!folded} emits folded-stacks text ([stack;frames count] lines,
    one per unique stack, self-time in microseconds) — the input
    format of Brendan Gregg's [flamegraph.pl] and of speedscope.
    Instants don't contribute; unmatched begins are closed at the last
    timestamp seen on their track (a budget-stopped run still yields a
    well-formed flamegraph). *)

val chrome_json : Events.snapshot -> string
(** An object [{"traceEvents": [...], "droppedEvents": n}]. Begin/End
    pairs become ["B"]/["E"] slices, instants ["i"] with thread scope;
    an event's [arg] (when [>= 0]) is exposed as [args.v]. *)

val folded : Events.snapshot -> string
(** Folded stacks over all tracks; frames on non-zero tracks are
    rooted at a [domainK] frame so per-domain time stays visible. *)
