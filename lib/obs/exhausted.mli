(** Typed exhaustion verdicts.

    Every engine bound in the toolkit — chase depth, saturation rounds,
    atom counts, rewrite steps, finite-model search nodes, wall-clock
    deadlines, cooperative cancellation — reports running out through one
    value of this type, instead of the seed's mix of exceptions,
    [truncated] flags and silent [None]s. A verdict says {e which}
    resource ran out, at what limit, and how far the engine got, so front
    ends can render a uniform diagnostic and callers can distinguish
    "no" from "don't know". *)

type resource =
  | Wall_clock  (** the {!Budget.t} deadline passed *)
  | Cancelled  (** the budget's cancellation callback fired *)
  | Depth  (** chase levels ([used >= limit] stops) *)
  | Rounds  (** saturation / rewriting rounds *)
  | Atoms  (** instance size *)
  | Steps  (** generic step count (DFS nodes, generated CQs) *)
  | Disjuncts  (** UCQ size during rewriting *)

type t = {
  resource : resource;
  limit : int;  (** the configured bound ([Wall_clock]: the timeout in ms,
                    0 when only an absolute deadline was known) *)
  used : int;  (** the value that tripped the bound (0 for [Wall_clock]
                   and [Cancelled]) *)
}

val cancelled : t
(** The cancellation verdict. *)

val tag : t -> string
(** Short stable machine tag for the resource ("atoms", "wall-clock", …),
    used in JSON stats and log lines. *)

val pp : t Fmt.t
(** Human-readable one-line diagnostic. *)

val to_string : t -> string
