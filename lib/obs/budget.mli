(** The resource governor: one budget value for every engine.

    A {!t} bundles every bound an engine loop may consult — a wall-clock
    deadline, depth/round/atom/step/disjunct limits, and a cooperative
    cancellation callback. Engines thread a single budget through their
    loops and consult the relevant checkpoints
    ({!interrupted}/{!depth}/{!rounds}/{!atoms}/{!steps}/{!disjuncts});
    each checkpoint either passes ([None]) or yields a typed
    {!Exhausted.t} verdict the engine returns to its caller.

    Budgets are declarative data, not callbacks into engines: composing
    two budgets with {!intersect} takes the tighter bound of each
    resource, so a CLI-level wall-clock budget combines transparently
    with an engine's default structural bounds. All fields are exposed;
    [None] means unbounded. *)

type t = {
  deadline : float option;  (** absolute epoch seconds *)
  timeout_ms : int;  (** the original timeout, for reporting (0 if none) *)
  max_depth : int option;  (** chase levels *)
  max_rounds : int option;  (** saturation / rewriting rounds *)
  max_atoms : int option;  (** instance size *)
  max_steps : int option;  (** DFS nodes / generated CQs *)
  max_disjuncts : int option;  (** UCQ size *)
  cancel : (unit -> bool) option;  (** cooperative cancellation *)
}

val unlimited : t
(** No bound on anything. *)

val v :
  ?timeout_s:float ->
  ?max_depth:int ->
  ?max_rounds:int ->
  ?max_atoms:int ->
  ?max_steps:int ->
  ?max_disjuncts:int ->
  ?cancel:(unit -> bool) ->
  unit ->
  t
(** Build a budget. [timeout_s] is relative to now and becomes an
    absolute deadline. *)

val intersect : t -> t -> t
(** Pointwise tighter bound: min of each limit, earliest deadline,
    disjunction of the cancellation callbacks. *)

val is_unlimited : t -> bool

(** {1 Checkpoints}

    Each returns [Some verdict] when the corresponding bound is
    exhausted. The comparison direction of each helper replicates the
    seed engine it replaced ([depth] and [rounds_reached] stop at
    [used >= limit]; the rest at [used > limit]), so budgeted runs stop
    at exactly the same point as the pre-governor code. *)

val interrupted : t -> Exhausted.t option
(** The asynchronous checkpoints: cancellation first, then the deadline.
    Cheap when neither is set (two [option] matches, no syscall). *)

val depth : t -> used:int -> Exhausted.t option
val rounds : t -> used:int -> Exhausted.t option

val rounds_reached : t -> used:int -> Exhausted.t option
(** Like {!rounds} but stopping at [used >= limit] — the rewriting
    fixpoint's convention. *)

val atoms : t -> used:int -> Exhausted.t option
val steps : t -> used:int -> Exhausted.t option
val disjuncts : t -> used:int -> Exhausted.t option

(** {1 Parallel gate}

    One budget shared across domains. Worker loops call {!Gate.step}
    per unit of work: it bumps a single atomic counter and, once per
    [period] steps, consults the asynchronous checkpoints
    ({!interrupted} and {!steps}). The verdict is a set-once atomic
    flag, so the first domain to trip it stops every other domain at
    its next [step] — cooperative cancellation with no locks and no
    signals. *)
module Gate : sig
  type budget = t
  type t

  val make : ?period:int -> budget -> t
  (** [make ?period b] wraps [b]. [period] (default 4096, rounded up to
      a power of two) is how many steps pass between checkpoint
      consultations. *)

  val step : t -> bool
  (** Record one unit of work; [true] means the gate has tripped and
      the caller should unwind cleanly. *)

  val trip : t -> Exhausted.t -> unit
  (** Force the verdict (first writer wins; later calls are no-ops). *)

  val tripped : t -> Exhausted.t option
  (** The verdict, if any domain tripped the gate. *)

  val steps_taken : t -> int
  (** Total steps recorded across all domains. *)
end
