(** Metrics: log₂-bucketed latency/size histograms and memory gauges.

    The distribution half of the profiling layer: where {!Telemetry}
    counters give totals and {!Events} gives timelines, [Metrics]
    answers "what was the p99 chase-round latency" and "how big did the
    major heap get". Engines feed named histograms ({!observe}) at
    round/solve granularity and the CLI renders them into the
    [histograms] block of the v6 stats schema; {!sample_memory} reads
    [Gc.quick_stat] plus any {!register_sampler}ed process gauges
    (interned-name bytes, hash-cons occupancy) into the [memory] block.

    Same ambient, domain-local, single-slot-read-when-disabled
    discipline as {!Telemetry} and {!Events}; workers {!snapshot} and
    the coordinator {!absorb}s (bucket counts add, gauges take max). *)

module Histo : sig
  (** A log₂-bucketed histogram over non-negative integers. Bucket [b]
      (for [b >= 1]) holds values in [[2{^b-1}, 2{^b} - 1]]; bucket 0
      holds values [<= 0]. 64 fixed buckets, so a histogram is O(1)
      memory no matter how many observations it absorbs, and
      percentiles are exact up to bucket resolution (a reported
      percentile always falls in the same bucket as the true one). *)

  type t

  val create : unit -> t
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val max_value : t -> int

  val bucket_of : int -> int
  (** The bucket index a value lands in. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of a bucket: [2{^b} - 1] (0 for bucket 0). *)

  val percentile : t -> int -> int
  (** [percentile h p] for [p] in [1..100]: an upper bound on the value
      at rank [ceil (p/100 * count)], clamped to {!max_value} — always
      in the same log₂ bucket as the exact percentile. 0 when empty. *)

  val merge : t -> t -> unit
  (** [merge into from] adds [from]'s buckets into [into]. *)

  type summary = {
    count : int;
    sum : int;
    max : int;
    p50 : int;
    p90 : int;
    p99 : int;
  }

  val summary : t -> summary
end

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val observe : string -> int -> unit
(** Feed one value into the named histogram. No-op when disabled. *)

val gauge : string -> int -> unit
(** Set the named gauge's current value, tracking its max. No-op when
    disabled. *)

val register_sampler : string -> (unit -> int) -> unit
(** Register a process-wide memory/occupancy probe run by every
    {!sample_memory}. [Nca_obs] sits below the term layer, so the CLI
    registers [Names.live_bytes]-style probes here at startup instead
    of this library importing them. Process-global; re-registering a
    name replaces the probe. *)

val sample_memory : unit -> unit
(** Record [Gc.quick_stat] minor/major/heap words plus every registered
    sampler as gauges. Called from span exits when enabled ({!Telemetry}
    hooks it), callable directly. No-op when disabled. *)

type snapshot = {
  histos : (string * Histo.t) list;  (** frozen copies, sorted by name *)
  gauges : (string * (int * int)) list;  (** name, (last, max); sorted *)
}

val snapshot : unit -> snapshot
(** Freeze the calling domain's store (histograms are deep copies). *)

val absorb : snapshot -> unit
(** Fold a frozen worker snapshot into the calling domain's live store:
    histogram buckets add, gauges keep the pairwise max. No-op when
    disabled. *)

val scrub : snapshot -> snapshot
(** Zero every timing-dependent field (sums, maxima, percentiles, gauge
    values), keeping observation counts — deterministic snapshots for
    golden tests. *)
