(* The ring is five parallel int arrays rather than an array of event
   records: recording writes five ints at a fixed index, so the hot
   path allocates nothing and wrap-around is just [n mod cap]. Label
   strings live in a process-global intern table (one mutex, touched
   only at [label] time — instrumented modules intern at init, so
   recording never takes the lock). *)

type phase = Begin | End | Instant

type event = { phase : phase; label : int; ts_us : int; tid : int; arg : int }

(* -- label interning ----------------------------------------------- *)

let intern_lock = Mutex.create ()
let intern : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref (Array.make 64 "")
let n_labels = ref 0

let label name =
  Mutex.lock intern_lock;
  let id =
    match Hashtbl.find_opt intern name with
    | Some id -> id
    | None ->
        let id = !n_labels in
        if id = Array.length !names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit !names 0 bigger 0 id;
          names := bigger
        end;
        !names.(id) <- name;
        Hashtbl.add intern name id;
        incr n_labels;
        id
  in
  Mutex.unlock intern_lock;
  id

let label_name id =
  Mutex.lock intern_lock;
  let ok = id >= 0 && id < !n_labels in
  let name = if ok then !names.(id) else "" in
  Mutex.unlock intern_lock;
  if not ok then invalid_arg "Events.label_name: unknown label id";
  name

(* -- the per-domain ring ------------------------------------------- *)

type ring = {
  cap : int;
  e_phase : int array; (* 0 = Begin, 1 = End, 2 = Instant *)
  e_label : int array;
  e_ts : int array;
  e_tid : int array;
  e_arg : int array;
  mutable n : int; (* total ever recorded; next write at [n mod cap] *)
  mutable carried_drops : int; (* drops inherited from absorbed rings *)
}

let fresh capacity =
  let cap = max 16 capacity in
  {
    cap;
    e_phase = Array.make cap 0;
    e_label = Array.make cap 0;
    e_ts = Array.make cap 0;
    e_tid = Array.make cap 0;
    e_arg = Array.make cap 0;
    n = 0;
    carried_drops = 0;
  }

let current : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get current
let enabled () = Option.is_some !(slot ())
let enable ?(capacity = 65536) () = slot () := Some (fresh capacity)
let disable () = slot () := None
let now_us () = int_of_float (Unix.gettimeofday () *. 1_000_000.)

let push r phase lbl ts tid arg =
  let i = r.n mod r.cap in
  r.e_phase.(i) <- phase;
  r.e_label.(i) <- lbl;
  r.e_ts.(i) <- ts;
  r.e_tid.(i) <- tid;
  r.e_arg.(i) <- arg;
  r.n <- r.n + 1

let record phase ?(arg = -1) lbl =
  match !(slot ()) with
  | None -> ()
  | Some r -> push r phase lbl (now_us ()) 0 arg

let instant ?arg lbl = record 2 ?arg lbl
let enter ?arg lbl = record 0 ?arg lbl
let leave lbl = record 1 lbl

type snapshot = { events : event list; dropped : int }

let phase_of = function 0 -> Begin | 1 -> End | _ -> Instant

let snapshot () =
  match !(slot ()) with
  | None -> { events = []; dropped = 0 }
  | Some r ->
      let live = min r.n r.cap in
      let first = r.n - live in
      let events = ref [] in
      for k = live - 1 downto 0 do
        let i = (first + k) mod r.cap in
        events :=
          {
            phase = phase_of r.e_phase.(i);
            label = r.e_label.(i);
            ts_us = r.e_ts.(i);
            tid = r.e_tid.(i);
            arg = r.e_arg.(i);
          }
          :: !events
      done;
      { events = !events; dropped = max 0 (r.n - r.cap) + r.carried_drops }

let absorb ~tid snap =
  match !(slot ()) with
  | None -> ()
  | Some r ->
      List.iter
        (fun e ->
          push r
            (match e.phase with Begin -> 0 | End -> 1 | Instant -> 2)
            e.label e.ts_us tid e.arg)
        snap.events;
      r.carried_drops <- r.carried_drops + snap.dropped

let scrub_times snap =
  { snap with events = List.map (fun e -> { e with ts_us = 0 }) snap.events }
