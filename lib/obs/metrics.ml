(* Histograms are 64 fixed int buckets (bucket = bit width of the
   value), so [observe] is a few ALU ops and one array bump — no
   allocation, no comparison sort — and merging a worker's histogram
   into the coordinator's is 64 adds. Percentile extraction walks the
   buckets and reports the bucket's upper bound clamped to the observed
   max: exact up to log₂ resolution, which is all a latency profile
   needs. *)

module Histo = struct
  type t = {
    buckets : int array; (* 64 *)
    mutable count : int;
    mutable sum : int;
    mutable max : int;
  }

  let create () = { buckets = Array.make 64 0; count = 0; sum = 0; max = 0 }

  let bucket_of v =
    if v <= 0 then 0
    else
      (* number of significant bits: v in [2^(b-1), 2^b - 1] -> b *)
      let rec bits b v = if v = 0 then b else bits (b + 1) (v lsr 1) in
      bits 0 v

  let bucket_upper b = if b <= 0 then 0 else (1 lsl b) - 1

  let observe h v =
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + max 0 v;
    if v > h.max then h.max <- v

  let count h = h.count
  let sum h = h.sum
  let max_value h = h.max

  let percentile h p =
    if h.count = 0 then 0
    else begin
      let p = Stdlib.max 1 (Stdlib.min 100 p) in
      (* rank = ceil (p/100 * count), 1-based *)
      let rank = ((p * h.count) + 99) / 100 in
      let b = ref 0 and seen = ref 0 in
      (try
         for i = 0 to 63 do
           seen := !seen + h.buckets.(i);
           if !seen >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      Stdlib.min (bucket_upper !b) h.max
    end

  let merge into from =
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n)
      from.buckets;
    into.count <- into.count + from.count;
    into.sum <- into.sum + from.sum;
    if from.max > into.max then into.max <- from.max

  let copy h =
    { buckets = Array.copy h.buckets; count = h.count; sum = h.sum; max = h.max }

  type summary = {
    count : int;
    sum : int;
    max : int;
    p50 : int;
    p90 : int;
    p99 : int;
  }

  let summary (h : t) : summary =
    {
      count = h.count;
      sum = h.sum;
      max = h.max;
      p50 = percentile h 50;
      p90 = percentile h 90;
      p99 = percentile h 99;
    }
end

(* -- the ambient per-domain store ---------------------------------- *)

type gauge = { mutable last : int; mutable gmax : int }

type store = {
  histos : (string, Histo.t) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let fresh () = { histos = Hashtbl.create 16; gauges = Hashtbl.create 16 }

let current : store option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get current
let enabled () = Option.is_some !(slot ())
let enable () = slot () := Some (fresh ())
let disable () = slot () := None

let histo s name =
  match Hashtbl.find_opt s.histos name with
  | Some h -> h
  | None ->
      let h = Histo.create () in
      Hashtbl.add s.histos name h;
      h

let observe name v =
  match !(slot ()) with None -> () | Some s -> Histo.observe (histo s name) v

let gauge name v =
  match !(slot ()) with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.gauges name with
      | Some g ->
          g.last <- v;
          if v > g.gmax then g.gmax <- v
      | None -> Hashtbl.add s.gauges name { last = v; gmax = v })

(* -- memory samplers ----------------------------------------------- *)

let sampler_lock = Mutex.create ()
let samplers : (string * (unit -> int)) list ref = ref []

let register_sampler name probe =
  Mutex.lock sampler_lock;
  samplers := (name, probe) :: List.remove_assoc name !samplers;
  Mutex.unlock sampler_lock;
  ()

let sample_memory () =
  if enabled () then begin
    let st = Gc.quick_stat () in
    gauge "gc.minor_words" (int_of_float st.Gc.minor_words);
    gauge "gc.major_words" (int_of_float st.Gc.major_words);
    gauge "gc.heap_words" st.Gc.heap_words;
    Mutex.lock sampler_lock;
    let probes = !samplers in
    Mutex.unlock sampler_lock;
    List.iter (fun (name, probe) -> gauge name (probe ())) probes
  end

type snapshot = {
  histos : (string * Histo.t) list;
  gauges : (string * (int * int)) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  match !(slot ()) with
  | None -> { histos = []; gauges = [] }
  | Some s ->
      {
        histos =
          Hashtbl.fold (fun k h acc -> (k, Histo.copy h) :: acc) s.histos []
          |> List.sort by_name;
        gauges =
          Hashtbl.fold (fun k g acc -> (k, (g.last, g.gmax)) :: acc) s.gauges []
          |> List.sort by_name;
      }

let absorb snap =
  match !(slot ()) with
  | None -> ()
  | Some s ->
      List.iter (fun (k, h) -> Histo.merge (histo s k) h) snap.histos;
      List.iter
        (fun (k, ((last, mx) : int * int)) ->
          match Hashtbl.find_opt s.gauges k with
          | Some g ->
              if last > g.last then g.last <- last;
              if mx > g.gmax then g.gmax <- mx
          | None -> Hashtbl.add s.gauges k { last; gmax = mx })
        snap.gauges

(* Bucket placement of a latency is timing-dependent, so scrubbing
   collapses every histogram to [count] observations of 0 and zeroes
   the gauges: what survives is exactly the deterministic part. *)
let scrub snap =
  {
    histos =
      List.map
        (fun (k, h) ->
          let z = Histo.create () in
          z.Histo.buckets.(0) <- Histo.count h;
          z.Histo.count <- Histo.count h;
          (k, z))
        snap.histos;
    gauges = List.map (fun (k, _) -> (k, (0, 0))) snap.gauges;
  }
