type resource =
  | Wall_clock
  | Cancelled
  | Depth
  | Rounds
  | Atoms
  | Steps
  | Disjuncts

type t = { resource : resource; limit : int; used : int }

let cancelled = { resource = Cancelled; limit = 0; used = 0 }

let tag e =
  match e.resource with
  | Wall_clock -> "wall-clock"
  | Cancelled -> "cancelled"
  | Depth -> "depth"
  | Rounds -> "rounds"
  | Atoms -> "atoms"
  | Steps -> "steps"
  | Disjuncts -> "disjuncts"

let pp ppf e =
  match e.resource with
  | Cancelled -> Fmt.pf ppf "cancelled at a governor checkpoint"
  | Wall_clock ->
      if e.limit > 0 then
        Fmt.pf ppf "wall-clock budget exhausted (deadline %d ms)" e.limit
      else Fmt.pf ppf "wall-clock deadline passed"
  | Depth -> Fmt.pf ppf "depth budget exhausted (limit %d)" e.limit
  | Rounds ->
      Fmt.pf ppf "rounds budget exhausted (limit %d, at round %d)" e.limit
        e.used
  | Atoms ->
      Fmt.pf ppf "atom budget exhausted (limit %d, reached %d)" e.limit e.used
  | Steps ->
      Fmt.pf ppf "step budget exhausted (limit %d, at step %d)" e.limit e.used
  | Disjuncts ->
      Fmt.pf ppf "disjunct budget exhausted (limit %d, reached %d)" e.limit
        e.used

let to_string e = Fmt.str "%a" pp e
