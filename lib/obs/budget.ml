type t = {
  deadline : float option;
  timeout_ms : int;
  max_depth : int option;
  max_rounds : int option;
  max_atoms : int option;
  max_steps : int option;
  max_disjuncts : int option;
  cancel : (unit -> bool) option;
}

let unlimited =
  {
    deadline = None;
    timeout_ms = 0;
    max_depth = None;
    max_rounds = None;
    max_atoms = None;
    max_steps = None;
    max_disjuncts = None;
    cancel = None;
  }

let v ?timeout_s ?max_depth ?max_rounds ?max_atoms ?max_steps ?max_disjuncts
    ?cancel () =
  let deadline, timeout_ms =
    match timeout_s with
    | None -> (None, 0)
    | Some s -> (Some (Unix.gettimeofday () +. s), int_of_float (s *. 1000.))
  in
  {
    deadline;
    timeout_ms;
    max_depth;
    max_rounds;
    max_atoms;
    max_steps;
    max_disjuncts;
    cancel;
  }

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let intersect a b =
  let deadline, timeout_ms =
    match (a.deadline, b.deadline) with
    | None, None -> (None, 0)
    | Some d, None -> (Some d, a.timeout_ms)
    | None, Some d -> (Some d, b.timeout_ms)
    | Some da, Some db ->
        if da <= db then (Some da, a.timeout_ms) else (Some db, b.timeout_ms)
  in
  {
    deadline;
    timeout_ms;
    max_depth = min_opt a.max_depth b.max_depth;
    max_rounds = min_opt a.max_rounds b.max_rounds;
    max_atoms = min_opt a.max_atoms b.max_atoms;
    max_steps = min_opt a.max_steps b.max_steps;
    max_disjuncts = min_opt a.max_disjuncts b.max_disjuncts;
    cancel =
      (match (a.cancel, b.cancel) with
      | None, x | x, None -> x
      | Some f, Some g -> Some (fun () -> f () || g ()));
  }

let is_unlimited b =
  b.deadline = None && b.max_depth = None && b.max_rounds = None
  && b.max_atoms = None && b.max_steps = None && b.max_disjuncts = None
  && Option.is_none b.cancel

let interrupted b =
  match b.cancel with
  | Some f when f () -> Some Exhausted.cancelled
  | _ -> (
      match b.deadline with
      | Some d when Unix.gettimeofday () >= d ->
          Some
            { Exhausted.resource = Wall_clock; limit = b.timeout_ms; used = 0 }
      | _ -> None)

let over resource limit used = Some { Exhausted.resource; limit; used }

(* The comparison direction of each helper matches the seed engine it
   replaces, so budgeted runs stop at exactly the same point as the old
   ad-hoc checks (byte-identical prefixes). *)

let depth b ~used =
  match b.max_depth with
  | Some l when used >= l -> over Depth l used
  | _ -> None

let rounds b ~used =
  match b.max_rounds with
  | Some l when used > l -> over Rounds l used
  | _ -> None

let rounds_reached b ~used =
  match b.max_rounds with
  | Some l when used >= l -> over Rounds l used
  | _ -> None

let atoms b ~used =
  match b.max_atoms with
  | Some l when used > l -> over Atoms l used
  | _ -> None

let steps b ~used =
  match b.max_steps with
  | Some l when used > l -> over Steps l used
  | _ -> None

let disjuncts b ~used =
  match b.max_disjuncts with
  | Some l when used > l -> over Disjuncts l used
  | _ -> None

(* A gate shares one budget across domains: workers bump a single atomic
   step counter and consult the asynchronous checkpoints only once per
   [period] steps (the counter's low bits), so the hot path is one
   atomic load plus one fetch-and-add. The verdict is a set-once flag —
   the first tripper wins its CAS and every later [step]/[tripped] call
   on any domain observes the same verdict. *)
module Gate = struct
  type budget = t

  type t = {
    budget : budget;
    steps : int Atomic.t;
    stop : Exhausted.t option Atomic.t;
    mask : int;
  }

  let make ?(period = 4096) budget =
    let rec pow2 n = if n >= period then n else pow2 (n * 2) in
    {
      budget;
      steps = Atomic.make 0;
      stop = Atomic.make None;
      mask = pow2 1 - 1;
    }

  let ev_trip = Events.label "budget.trip"

  (* only the winning CAS emits the instant: one trip, one event, no
     matter how many domains race past their checkpoints *)
  let trip g e =
    if Atomic.compare_and_set g.stop None (Some e) then Events.instant ev_trip
  let tripped g = Atomic.get g.stop

  let step g =
    match Atomic.get g.stop with
    | Some _ -> true
    | None ->
        let n = Atomic.fetch_and_add g.steps 1 in
        if n land g.mask = g.mask then (
          (match interrupted g.budget with
          | Some e -> trip g e
          | None -> (
              match steps g.budget ~used:(n + 1) with
              | Some e -> trip g e
              | None -> ()));
          Option.is_some (Atomic.get g.stop))
        else false

  let steps_taken g = Atomic.get g.steps
end
