(* The store is a mutable span tree plus a counter table behind a
   domain-local [current] slot. The slot doubles as the enabled flag:
   every recording entry point reads one slot and returns immediately
   when telemetry is off, so instrumented engine loops pay a single
   option match per checkpoint on the disabled fast path.

   Domain awareness: [current] lives in domain-local storage, so a
   store enabled on one domain is invisible to every other — a worker
   domain can never race the coordinator's span tree, by construction.
   Workers that should contribute enable their own store (the pool does
   this), snapshot it at the barrier, and the coordinator folds the
   frozen snapshots into its live store with {!absorb}. Cross-domain
   mutation of a shared store is impossible, not merely guarded. *)

type node = {
  name : string;
  mutable calls : int;
  mutable time_us : int;
  mutable children : node list; (* newest first; reversed at snapshot *)
}

type store = {
  counters : (string, int ref) Hashtbl.t;
  root : node;
  mutable stack : node list; (* innermost open span first *)
}

let fresh_node name = { name; calls = 0; time_us = 0; children = [] }

let fresh () =
  { counters = Hashtbl.create 32; root = fresh_node "root"; stack = [] }

let current : store option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get current
let enabled () = Option.is_some !(slot ())
let enable () = slot () := Some (fresh ())
let disable () = slot () := None

let count name n =
  match !(slot ()) with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.counters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add s.counters name (ref n))

let incr name = count name 1

let find_child parent name =
  match List.find_opt (fun c -> c.name = name) parent.children with
  | Some c -> c
  | None ->
      let c = fresh_node name in
      parent.children <- c :: parent.children;
      c

(* Spans also drive the deeper profiling layers when those are on:
   each enter/exit becomes an {!Events} timeline record, and each exit
   samples the {!Metrics} memory gauges. The disabled fast path is
   three domain-local slot reads (one per layer) — still allocation-
   free and branch-predictable at round/stage granularity. *)
let span name f =
  let ev = Events.enabled () in
  let mt = Metrics.enabled () in
  let st = !(slot ()) in
  if Option.is_none st && (not ev) && not mt then f ()
  else begin
    let lbl = if ev then Events.label name else 0 in
    if ev then Events.enter lbl;
    let deep_exit () =
      if mt then Metrics.sample_memory ();
      if ev then Events.leave lbl
    in
    match st with
    | None -> Fun.protect ~finally:deep_exit f
    | Some s ->
        let parent = match s.stack with [] -> s.root | n :: _ -> n in
        let node = find_child parent name in
        node.calls <- node.calls + 1;
        s.stack <- node :: s.stack;
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            node.time_us <-
              node.time_us
              + int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.);
            (match s.stack with
            | top :: rest when top == node -> s.stack <- rest
            | _ -> ());
            deep_exit ())
          f
  end

type span_stats = {
  span_name : string;
  calls : int;
  time_us : int;
  children : span_stats list;
}

type snapshot = { counters : (string * int) list; spans : span_stats list }

let rec freeze node =
  {
    span_name = node.name;
    calls = node.calls;
    time_us = node.time_us;
    children = List.rev_map freeze node.children;
  }

let snapshot () =
  match !(slot ()) with
  | None -> { counters = []; spans = [] }
  | Some s ->
      {
        counters =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.counters []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        spans = (freeze s.root).children;
      }

(* Fold a frozen worker snapshot into this domain's live store: counters
   add up, span trees graft under the innermost open span (the round the
   workers ran inside), matching children by name so repeated absorbs
   accumulate like repeated [span] entries would. No-op when disabled. *)
let absorb snap =
  match !(slot ()) with
  | None -> ()
  | Some s ->
      List.iter (fun (k, n) -> count k n) snap.counters;
      let rec graft parent (sp : span_stats) =
        let node = find_child parent sp.span_name in
        node.calls <- node.calls + sp.calls;
        node.time_us <- node.time_us + sp.time_us;
        List.iter (graft node) sp.children
      in
      let parent = match s.stack with [] -> s.root | n :: _ -> n in
      List.iter (graft parent) snap.spans

let rec scrub_span sp =
  { sp with time_us = 0; children = List.map scrub_span sp.children }

let scrub_times snap = { snap with spans = List.map scrub_span snap.spans }

let pp_snapshot ppf snap =
  let rec pp_span indent sp =
    Fmt.pf ppf "  %s%-*s %6d\xc3\x97 %8d us@." indent
      (max 1 (36 - String.length indent))
      sp.span_name sp.calls sp.time_us;
    List.iter (pp_span (indent ^ "  ")) sp.children
  in
  Fmt.pf ppf "spans:@.";
  if snap.spans = [] then Fmt.pf ppf "  (none)@.";
  List.iter (pp_span "") snap.spans;
  Fmt.pf ppf "counters:@.";
  if snap.counters = [] then Fmt.pf ppf "  (none)@.";
  List.iter (fun (k, v) -> Fmt.pf ppf "  %-36s %10d@." k v) snap.counters
