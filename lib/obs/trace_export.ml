(* Chrome trace-event JSON is built with a plain [Buffer]: [Nca_obs]
   sits below the analysis layer, so it can't borrow [Nca_analysis.Json]
   without inverting the library graph — and the format is flat enough
   that hand-rolling beats carrying a dependency. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let chrome_json (snap : Events.snapshot) =
  let base =
    List.fold_left
      (fun acc (e : Events.event) -> min acc e.ts_us)
      max_int snap.events
  in
  let base = if base = max_int then 0 else base in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (e : Events.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      escape buf (Events.label_name e.label);
      Buffer.add_string buf "\",\"cat\":\"obs\",\"ph\":\"";
      Buffer.add_string buf
        (match e.phase with
        | Events.Begin -> "B"
        | Events.End -> "E"
        | Events.Instant -> "i");
      Buffer.add_string buf "\",\"ts\":";
      Buffer.add_string buf (string_of_int (e.ts_us - base));
      Buffer.add_string buf ",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int e.tid);
      (match e.phase with
      | Events.Instant -> Buffer.add_string buf ",\"s\":\"t\""
      | _ -> ());
      if e.arg >= 0 then begin
        Buffer.add_string buf ",\"args\":{\"v\":";
        Buffer.add_string buf (string_of_int e.arg);
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    snap.events;
  Buffer.add_string buf "],\"droppedEvents\":";
  Buffer.add_string buf (string_of_int snap.dropped);
  Buffer.add_string buf "}";
  Buffer.contents buf

(* -- folded stacks ------------------------------------------------- *)

type frame = { lbl : int; start : int; mutable child : int }

let folded (snap : Events.snapshot) =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let add stack self =
    let self = max 0 self in
    match Hashtbl.find_opt acc stack with
    | Some n -> Hashtbl.replace acc stack (n + self)
    | None -> Hashtbl.add acc stack self
  in
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Events.event) -> e.tid) snap.events)
  in
  List.iter
    (fun tid ->
      let root = if tid = 0 then [] else [ Printf.sprintf "domain%d" tid ] in
      let stack_string stack =
        (* [stack] is innermost-first *)
        String.concat ";"
          (root @ List.rev_map (fun f -> Events.label_name f.lbl) stack)
      in
      let stack = ref [] in
      let last_ts = ref 0 in
      let close ts =
        match !stack with
        | [] -> ()
        | f :: rest ->
            let dur = max 0 (ts - f.start) in
            add (stack_string !stack) (dur - f.child);
            (match rest with p :: _ -> p.child <- p.child + dur | [] -> ());
            stack := rest
      in
      List.iter
        (fun (e : Events.event) ->
          if e.tid = tid then begin
            last_ts := max !last_ts e.ts_us;
            match e.phase with
            | Events.Begin ->
                stack := { lbl = e.label; start = e.ts_us; child = 0 } :: !stack
            | Events.End -> (
                (* an End whose Begin was dropped by ring wrap-around
                   has no frame to close; skip it *)
                match !stack with
                | f :: _ when f.lbl = e.label -> close e.ts_us
                | _ -> ())
            | Events.Instant -> ()
          end)
        snap.events;
      (* budget stops / truncated rings leave open frames: close them
         at the last timestamp seen on this track *)
      while !stack <> [] do
        close !last_ts
      done)
    tids;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) acc [] in
  let lines = List.sort (fun (a, _) (b, _) -> String.compare a b) lines in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) lines)
