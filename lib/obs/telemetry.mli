(** Telemetry: cheap counters, per-stage timers and hierarchical spans.

    The observability half of [Nca_obs]: engines record named counters
    ({!count}/{!incr}) and wrap their phases in named {!span}s (chase
    rounds, saturation strata, rewrite iterations, pipeline stages).
    Spans nest by dynamic extent, so a chase running inside the
    body-rewriting stage of the pipeline shows up under that stage in
    the tree.

    Recording is off by default and gated on one slot: when disabled,
    every entry point is a single slot read and an immediate return —
    engine output and hot-path timings are unchanged (asserted by the
    golden byte-identity tests and the bench regression bound).
    Instrumentation sits at round/stage granularity, never per-atom.

    The API is deliberately ambient rather than threaded: budgets
    (which change results) travel explicitly as {!Budget.t} values,
    telemetry (which must not) stays ambient. The slot is {b
    domain-local} ([Domain.DLS]): each domain records into its own
    store, so worker domains never race the coordinator's span tree.
    Parallel engines enable a store on each worker, {!snapshot} it at
    the barrier, and fold the frozen snapshots into the coordinator's
    store with {!absorb}. *)

val enabled : unit -> bool
(** Whether the calling domain is recording. *)

val enable : unit -> unit
(** Install a fresh, empty store on the calling domain and start
    recording there. Other domains are unaffected. *)

val disable : unit -> unit
(** Stop recording on the calling domain and drop its store. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name]. No-op when disabled. *)

val incr : string -> unit

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f] under span [name], nested inside the
    innermost open span. Re-entering a name under the same parent
    accumulates (calls, total time). When disabled, [span name f] is
    [f ()]. Exceptions propagate; the span is closed either way.

    Spans also feed the deeper profiling layers when those are enabled
    on the calling domain: enter/exit become {!Events} timeline records
    and every exit samples the {!Metrics} memory gauges — so enabling
    [Events] alone (without telemetry) still yields a full timeline. *)

(** {1 Snapshots} *)

type span_stats = {
  span_name : string;
  calls : int;
  time_us : int;  (** total inclusive wall time, microseconds *)
  children : span_stats list;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  spans : span_stats list;  (** top-level spans, first-seen order *)
}

val snapshot : unit -> snapshot
(** Freeze the calling domain's store (empty snapshot when disabled). *)

val absorb : snapshot -> unit
(** Fold a frozen snapshot (typically from a worker domain) into the
    calling domain's live store: counters add up, span trees graft
    under the innermost open span, matching spans by name so repeated
    absorbs accumulate. No-op when disabled. *)

val scrub_times : snapshot -> snapshot
(** Zero every [time_us] — deterministic snapshots for golden tests. *)

val pp_snapshot : snapshot Fmt.t
(** The human tree rendered by [nocliques --trace]. *)
