(** Event tracing: a fixed-capacity, per-domain ring buffer of
    timestamped begin/end/instant events.

    Where {!Telemetry} aggregates (a span's total time over all calls),
    [Events] keeps the {e timeline}: each span enter/exit and each
    marked instant is one timestamped record, so a trace can show which
    chase round stalled or how pool batches interleave across domains.
    {!Trace_export} turns a snapshot into Chrome trace-event JSON
    (Perfetto / chrome://tracing) or folded stacks for flamegraphs.

    Same ambient discipline as {!Telemetry}: recording is off by
    default, every entry point reads one domain-local slot and returns
    immediately when disabled. Labels are interned once ({!label}) so
    the hot path records four machine ints and never allocates; the
    ring has fixed capacity, wrap-around overwrites the oldest events
    and counts them as {!type-snapshot}[.dropped] — memory use is
    bounded no matter how long a traced run lasts.

    The slot is domain-local: worker domains that should contribute
    enable their own ring (the pool does this), {!snapshot} it at the
    barrier, and the coordinator folds the frozen events into its ring
    with {!absorb}[ ~tid], tagging them with the worker's slot index so
    the export shows one track per domain. *)

type phase = Begin | End | Instant

type event = {
  phase : phase;
  label : int;  (** interned via {!label}; resolve with {!label_name} *)
  ts_us : int;  (** absolute wall clock, microseconds *)
  tid : int;  (** track id: 0 = recording domain, >0 = absorbed worker *)
  arg : int;  (** small payload (round number, batch size); -1 = none *)
}

val label : string -> int
(** Intern [name] to a dense id (process-global, thread-safe, stable
    for the life of the process). Call once at module init and keep the
    id: recording with a pre-interned label is allocation-free. *)

val label_name : int -> string
(** Inverse of {!label}. Raises [Invalid_argument] on unknown ids. *)

val enabled : unit -> bool
(** Whether the calling domain is recording events. *)

val enable : ?capacity:int -> unit -> unit
(** Install a fresh ring of [capacity] slots (default 65536) on the
    calling domain and start recording. Other domains are unaffected. *)

val disable : unit -> unit

val instant : ?arg:int -> int -> unit
(** [instant lbl] records a point event. No-op when disabled. *)

val enter : ?arg:int -> int -> unit
(** Record the beginning of a slice (Chrome phase ["B"]). *)

val leave : int -> unit
(** Record the end of a slice (Chrome phase ["E"]). *)

type snapshot = {
  events : event list;  (** oldest first; per-[tid] in timestamp order *)
  dropped : int;  (** events overwritten by ring wrap-around *)
}

val snapshot : unit -> snapshot
(** Freeze the calling domain's ring (empty snapshot when disabled). *)

val absorb : tid:int -> snapshot -> unit
(** Fold a frozen worker snapshot into the calling domain's live ring,
    re-tagging its events with track [tid] (the worker's pool slot, so
    track ids are stable across runs — unlike raw [Domain.id]s). The
    worker's own drop count carries over. No-op when disabled. *)

val scrub_times : snapshot -> snapshot
(** Zero every timestamp — deterministic snapshots for golden tests
    (see [NOCLIQUES_SCRUB_TIMES] in the CLI). *)

val now_us : unit -> int
(** The clock used for [ts_us]. *)
