(** UCQ rewriting to fixpoint (Definition 2 / Proposition 4).

    Iterates {!Piece.rewrite_step_all} from the initial query, keeping a
    subsumption-minimal cover of everything generated. If the iteration
    reaches a fixpoint, the result is a sound and complete UCQ rewriting
    and the rule set is bdd {e for this query}; the number of rounds is an
    upper bound on the bdd-constant [bdd(q, R)] (Definition 3). *)

open Nca_logic

type outcome = {
  ucq : Ucq.t;  (** the rewriting computed so far, cover-minimized *)
  rounds : int;  (** rewriting rounds executed *)
  complete : bool;  (** a fixpoint was reached within budget *)
  stopped : Nca_obs.Exhausted.t option;
      (** which resource cut the iteration short; [None] iff [complete] *)
  generated : int;  (** total CQs generated before minimization *)
}

val rewrite :
  ?max_rounds:int -> ?max_disjuncts:int -> ?minimize:bool ->
  ?budget:Nca_obs.Budget.t -> Rule.t list -> Cq.t -> outcome
(** [rewrite rules q] computes [rew(q, rules)]. Defaults: 12 rounds, 2000
    disjuncts; both intersect with [budget], whose deadline/cancellation
    and step bound (counting generated CQs) are checked once per round.
    [complete = false] means a resource ran out ([stopped] says which) —
    the rule set may not be bdd for [q], or is bdd with a larger constant.
    [minimize] (default true) prunes subsumed disjuncts each round; with
    [minimize:false] only isomorphic duplicates are dropped — the
    ablation mode measuring what the cover buys. *)

val rewrite_ucq :
  ?max_rounds:int -> ?max_disjuncts:int -> ?minimize:bool ->
  ?budget:Nca_obs.Budget.t -> Rule.t list -> Ucq.t -> outcome
(** Rewriting lifted to UCQs (used to compose rewritings, Lemma 5). *)

val sound_for :
  Nca_chase.Chase.t -> Instance.t -> outcome -> bool
(** Test harness: every disjunct that holds on the base instance must hold
    on the chase (soundness of the rewriting wrt. a computed chase). *)
