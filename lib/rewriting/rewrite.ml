open Nca_logic

type outcome = {
  ucq : Ucq.t;
  rounds : int;
  complete : bool;
  stopped : Nca_obs.Exhausted.t option;
  generated : int;
}

let dedup_body q =
  Cq.make ~answer:(Cq.answer q)
    (List.sort_uniq Atom.compare_structural (Cq.body q))

let rewrite_ucq ?max_rounds ?max_disjuncts ?(minimize = true)
    ?(budget = Nca_obs.Budget.unlimited) rules start =
  let budget =
    Nca_obs.Budget.intersect budget
      (Nca_obs.Budget.v
         ~max_rounds:(Option.value ~default:12 max_rounds)
         ~max_disjuncts:(Option.value ~default:2000 max_disjuncts)
         ())
  in
  let generated = ref 0 in
  let rec go all frontier round =
    let stop =
      match Nca_obs.Budget.interrupted budget with
      | Some _ as e -> e
      | None -> (
          match Nca_obs.Budget.rounds_reached budget ~used:round with
          | Some _ as e -> e
          | None ->
              Nca_obs.Budget.disjuncts budget ~used:(List.length all))
    in
    match stop with
    | Some _ ->
        { ucq = Ucq.cover (Ucq.make all); rounds = round; complete = false;
          stopped = stop; generated = !generated }
    | None ->
      let produced =
        Nca_obs.Telemetry.span "rewrite.round" @@ fun () ->
        List.concat_map
          (fun q ->
            List.map dedup_body (Piece.rewrite_step_all rules q))
          frontier
      in
      generated := !generated + List.length produced;
      Nca_obs.Telemetry.count "rewrite.generated" (List.length produced);
      (* Keep only CQs not subsumed by anything already known. *)
      let fresh =
        if minimize then
          List.fold_left
            (fun fresh q ->
              let subsumed_by q' = Nca_plan.Exec.subsumes q' q in
              if List.exists subsumed_by all || List.exists subsumed_by fresh
              then fresh
              else q :: fresh)
            [] produced
          |> List.rev
        else begin
          (* ablation mode: keep everything that is not an isomorphic copy
             of a known disjunct (no subsumption-based minimization) *)
          let iso q q' =
            List.length (Cq.answer q) = List.length (Cq.answer q')
            && Cq.size q = Cq.size q'
            &&
            let init =
              List.fold_left2
                (fun acc x y ->
                  match acc with
                  | None -> None
                  | Some s -> (
                      match Subst.find_opt x s with
                      | Some y' -> if Term.equal y y' then acc else None
                      | None -> Some (Subst.add x y s)))
                (Some Subst.empty) (Cq.answer q) (Cq.answer q')
            in
            match init with
            | None -> false
            | Some init ->
                let tgt = Instance.of_list (Cq.body q') in
                Instance.cardinal (Instance.of_list (Cq.body q))
                = Instance.cardinal tgt
                && Nca_plan.Exec.exists ~inj:true ~init (Cq.body q) tgt
          in
          List.fold_left
            (fun fresh q ->
              if List.exists (iso q) all || List.exists (iso q) fresh then
                fresh
              else q :: fresh)
            [] produced
          |> List.rev
        end
      in
      match Nca_obs.Budget.steps budget ~used:!generated with
      | Some _ as stop ->
          (* the CQs of the over-full round are kept: the cover minimizes *)
          { ucq = Ucq.cover (Ucq.make (all @ fresh)); rounds = round;
            complete = false; stopped = stop; generated = !generated }
      | None ->
          if fresh = [] then
            { ucq = Ucq.cover (Ucq.make all); rounds = round;
              complete = true; stopped = None; generated = !generated }
          else go (all @ fresh) fresh (round + 1)
  in
  Nca_obs.Telemetry.span "rewrite" @@ fun () ->
  let start_disjuncts = List.map dedup_body (Ucq.disjuncts start) in
  go start_disjuncts start_disjuncts 0

let rewrite ?max_rounds ?max_disjuncts ?minimize ?budget rules q =
  rewrite_ucq ?max_rounds ?max_disjuncts ?minimize ?budget rules (Ucq.of_cq q)

let sound_for chase base outcome =
  List.for_all
    (fun q ->
      (not (Cq.holds base q))
      || Cq.holds chase.Nca_chase.Chase.instance q)
    (Ucq.disjuncts outcome.ucq)
