open Nca_logic

(* Union-find over terms, persistent enough for our scale: we keep a simple
   association of term -> representative recomputed on merge. *)
module UF = struct
  type t = Term.t Term.Map.t

  let empty : t = Term.Map.empty

  let rec find uf x =
    match Term.Map.find_opt x uf with
    | None -> x
    | Some p -> if Term.equal p x then x else find uf p

  let union uf x y =
    let rx = find uf x and ry = find uf y in
    if Term.equal rx ry then uf else Term.Map.add rx ry uf

  (* All classes as lists of members, for terms seen in [terms]. Members
     are listed in descending name order: representative selection breaks
     score ties on the first member seen, so the order must not depend on
     intern-id order. *)
  let classes uf terms =
    let tbl = Hashtbl.create 16 in
    Term.Set.iter
      (fun t ->
        let r = find uf t in
        Hashtbl.replace tbl r (t :: Option.value ~default:[] (Hashtbl.find_opt tbl r)))
      terms;
    Hashtbl.fold
      (fun _ members acc ->
        List.sort (fun a b -> Term.compare_names b a) members :: acc)
      tbl []
end

let check_constant_free_rule r =
  List.iter
    (fun a ->
      List.iter
        (fun t ->
          if Term.is_cst t then
            invalid_arg "Piece.rewrite_step: rule with constants")
        (Atom.args a))
    (Rule.body r @ Rule.head r)

let check_constant_free_cq q =
  List.iter
    (fun a ->
      List.iter
        (fun t ->
          if Term.is_cst t then
            invalid_arg "Piece.rewrite_step: query with constants")
        (Atom.args a))
    (Cq.body q)

(* Unify the argument tuples of a query atom and a head atom. *)
let unify_atom uf qa ha =
  List.fold_left2
    (fun uf s t -> match uf with None -> None | Some uf -> Some (UF.union uf s t))
    (Some uf) (Atom.args qa) (Atom.args ha)

(* Enumerate all non-empty sub-multisets of query atoms with a chosen head
   atom each: for each query atom, either leave it out or map it to one of
   the same-predicate head atoms. *)
let enumerate_pieces q_atoms head_atoms k =
  let rec go chosen uf = function
    | [] -> if chosen = [] then () else k (List.rev chosen, uf)
    | qa :: rest ->
        (* leave qa out of the piece *)
        go chosen uf rest;
        (* or map it to a compatible head atom *)
        List.iter
          (fun ha ->
            if Symbol.equal (Atom.pred qa) (Atom.pred ha) then
              match unify_atom uf qa ha with
              | None -> ()
              | Some uf' -> go ((qa, ha) :: chosen) uf' rest)
          head_atoms
  in
  go [] UF.empty q_atoms

let rewrite_step rule q =
  check_constant_free_rule rule;
  check_constant_free_cq q;
  let rule = Rule.rename_apart rule in
  let head = Rule.head rule in
  let exist = Rule.exist_vars rule in
  let frontier = Rule.frontier rule in
  let answer_vars = Cq.answer_vars q in
  let results = ref [] in
  enumerate_pieces (Cq.body q) head (fun (piece, uf) ->
      let piece_atoms = List.map fst piece in
      let outside =
        List.filter
          (fun a -> not (List.exists (fun b -> Atom.equal a b) piece_atoms))
          (Cq.body q)
      in
      let outside_vars = Atom.vars_of_list outside in
      let seen_terms =
        Term.Set.union
          (Atom.vars_of_list piece_atoms)
          (Atom.vars_of_list (List.map snd piece))
      in
      let classes = UF.classes uf seen_terms in
      (* Validity of the piece condition on every class. *)
      let class_ok members =
        let exist_members = List.filter (fun t -> Term.Set.mem t exist) members in
        match exist_members with
        | [] -> true
        | [ _ ] ->
            List.for_all
              (fun t ->
                Term.Set.mem t exist
                || (not (Term.Set.mem t frontier))
                   && (not (Term.Set.mem t answer_vars))
                   && not (Term.Set.mem t outside_vars))
              members
        | _ :: _ :: _ -> false
      in
      if List.for_all class_ok classes then begin
        (* Representative: prefer an answer variable, then any query
           variable, then a frontier variable. *)
        let rep members =
          let score t =
            if Term.Set.mem t answer_vars then 0
            else if not (Term.Set.mem t exist || Term.Set.mem t frontier)
            then 1
            else if Term.Set.mem t frontier then 2
            else 3
          in
          List.fold_left
            (fun best t -> if score t < score best then t else best)
            (List.hd members) members
        in
        let mapping =
          List.fold_left
            (fun acc members ->
              let r = rep members in
              List.fold_left (fun acc t -> Term.Map.add t r acc) acc members)
            Term.Map.empty classes
        in
        let subst t =
          match Term.Map.find_opt t mapping with Some r -> r | None -> t
        in
        let new_body =
          List.map (Atom.map subst) (Rule.body rule)
          @ List.map (Atom.map subst) outside
        in
        let new_answer = List.map subst (Cq.answer q) in
        (* Deduplicate atoms; structural order keeps printed bodies
           byte-stable. *)
        let new_body = List.sort_uniq Atom.compare_structural new_body in
        results := Cq.make ~answer:new_answer new_body :: !results
      end);
  !results

let rewrite_step_all rules q =
  List.concat_map (fun r -> rewrite_step r q) rules
