(** Injective rewritings (Definition 2 rephrased, Proposition 6).

    For every UCQ [Q] there is a UCQ [Q_inj] — the disjunction of all
    {e specializations} of every disjunct — such that [I ⊨ Q(ā)] iff some
    disjunct of [Q_inj] holds {e injectively} for [ā]. A specialization of
    a CQ identifies some of its variables (a partition of its variable
    set); this is the construction in the proof of Proposition 6.

    The disjuncts of an injective UCQ may not be minimized by plain
    subsumption: injective entailment is not monotone under homomorphisms.
    Only isomorphic duplicates are removed. *)

open Nca_logic

val specializations : Cq.t -> Cq.t list
(** All specializations of the CQ, one per partition of its variable set
    (answer variables map to answer variables). The identity specialization
    comes first. Raises [Invalid_argument] beyond 10 variables (Bell-number
    blowup). *)

val of_ucq : Ucq.t -> Ucq.t
(** [Q_inj] as in Proposition 6, with isomorphic duplicates removed. *)

val injective_rewriting :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Rule.t list -> Cq.t -> Rewrite.outcome
(** [rew_inj(q, R)]: the plain rewriting (minimized) followed by the
    specialization closure. The [ucq] field of the result is [Q_inj]. *)

val iso_cq : Cq.t -> Cq.t -> bool
(** Isomorphism of CQs: a bijective renaming of variables mapping body to
    body and answer tuple to answer tuple pointwise. *)
