(** Ontology-based query answering (OBQA), the paper's motivating task.

    [⟨I, R⟩ ⊨ q(t̄)] can be decided two ways for bdd rule sets:
    - {e forward}: materialize a chase prefix and evaluate [q] on it
      (complete up to the bdd-constant of [q], Definition 3);
    - {e backward}: rewrite [q] into a UCQ and evaluate it on the
      database alone (Definition 2).

    Both are provided, together with a cross-check — the executable form
    of Proposition 4's equivalence. Lemma 5's composition of rewritings
    across a union of rule sets is exposed as {!rewrite_composed}. *)

open Nca_logic

val answers_via_chase :
  ?depth:int -> ?max_atoms:int -> Rule.t list -> Instance.t -> Cq.t ->
  Term.t list list
(** Certain answers over the chase prefix, restricted to database terms
    (nulls are not certain answers). *)

val answers_via_rewriting :
  ?max_rounds:int -> ?max_disjuncts:int -> Rule.t list -> Instance.t ->
  Cq.t -> Term.t list list option
(** Certain answers by evaluating the rewriting on the database; [None]
    when the rewriting did not reach its fixpoint within budget. *)

val entails :
  ?depth:int -> ?max_rounds:int -> Rule.t list -> Instance.t -> Cq.t -> bool
(** Boolean entailment, preferring the rewriting when complete and
    falling back to the chase. *)

val methods_agree :
  ?depth:int -> ?max_rounds:int -> Rule.t list -> Instance.t -> Cq.t ->
  bool option
(** Proposition 4 in executable form: both methods return the same
    answer set. [None] when the rewriting is incomplete (nothing to
    compare against soundly). *)

val rewrite_composed :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Rule.t list -> Rule.t list -> Cq.t -> Rewrite.outcome
(** Lemma 5: rewrite against [r2], then rewrite the result against [r1] —
    a rewriting for [r1 ∪ r2] whenever the chases commute
    ([Ch(Ch(I,R₁),R₂) ↔ Ch(I,R₁∪R₂)]). *)
