open Nca_logic

(* q ⊑ q' iff q' maps homomorphically into q with answers aligned:
   Cq.subsumes q' q is exactly that homomorphism (run on the compiled
   executor; Exec.subsumes falls back to Cq.subsumes' interpreted search
   when the planner is disabled). *)
let contained q q' = Nca_plan.Exec.subsumes q' q
let equivalent q q' = contained q q' && contained q' q

let canonical_database q =
  let freeze =
    Term.Set.fold
      (fun v acc ->
        match v with
        | Term.Var name -> Subst.add v (Term.cst ("k!" ^ Names.name name)) acc
        | Term.Null n -> Subst.add v (Term.cst (Fmt.str "k!n%d" n)) acc
        | Term.Cst _ -> acc)
      (Cq.vars q) Subst.empty
  in
  ( Instance.of_list (Subst.apply_atoms freeze (Cq.body q)),
    List.map (Subst.apply freeze) (Cq.answer q) )

let minimize q =
  (* Drop atoms one at a time while the smaller query stays equivalent;
     restart after each successful drop (the core is reached when no
     single atom can go — folklore greedy core computation, correct for
     CQ bodies because equivalence is transitive). *)
  let rec shrink body =
    let try_drop i =
      let candidate = List.filteri (fun j _ -> j <> i) body in
      if candidate = [] then None
      else
        match Cq.make ~answer:(Cq.answer q) candidate with
        | candidate_q ->
            if equivalent q candidate_q then Some candidate else None
        | exception Invalid_argument _ -> None
    in
    let rec first i =
      if i >= List.length body then None
      else match try_drop i with Some b -> Some b | None -> first (i + 1)
    in
    match first 0 with None -> body | Some smaller -> shrink smaller
  in
  Cq.make ~answer:(Cq.answer q)
    (shrink (List.sort_uniq Atom.compare_structural (Cq.body q)))

let is_minimal q = Cq.size (minimize q) = Cq.size q

let ucq_contained u u' =
  List.for_all
    (fun q -> List.exists (fun q' -> contained q q') (Ucq.disjuncts u'))
    (Ucq.disjuncts u)

let ucq_equivalent u u' = ucq_contained u u' && ucq_contained u' u

let minimize_ucq u =
  let minimized = List.map minimize (Ucq.disjuncts u) in
  Ucq.cover (Ucq.make minimized)
