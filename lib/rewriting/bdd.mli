(** Bounded derivation depth (Definition 3) and its checks.

    A rule set has bdd iff every CQ admits a finite UCQ rewriting
    (Proposition 4). Semantic bdd-ness is undecidable in general, so this
    module provides:
    - a {e certificate} check: the rewriting of a query reaches a fixpoint
      within a budget, yielding the rewriting and an upper bound on the
      bdd-constant;
    - a whole-signature check over the atomic queries of a signature
      (sufficient in practice for the experiment suite);
    - a chase-side cross-validation harness (Definition 3 verbatim on
      sample instances). *)

open Nca_logic

type verdict = {
  query : Cq.t;
  constant : int option;  (** upper bound on [bdd(q, R)]; [None] = budget out *)
  rewriting : Ucq.t;
  stopped : Nca_obs.Exhausted.t option;
      (** which resource ended the rewriting; [None] iff a fixpoint was
          reached ([constant] is [Some _]) *)
}

val for_query :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Rule.t list -> Cq.t -> verdict

val for_signature :
  ?max_rounds:int -> ?max_disjuncts:int -> ?budget:Nca_obs.Budget.t ->
  Rule.t list -> Symbol.Set.t -> verdict list
(** One verdict per atomic query [P(x̄)] of the signature. *)

val certified : verdict list -> bool
(** All verdicts have a finite constant. *)

val cross_validate :
  ?depth:int -> Rule.t list -> Cq.t -> Ucq.t -> Instance.t list -> bool
(** Definition 2 on samples: for each instance [I],
    [Ch(I,R) ⊨ q ⟺ I ⊨ Q]. The chase is truncated at [depth] (default 6),
    so a mismatch is a genuine refutation only in the ⊨-on-[I] direction;
    the harness reports logical equivalence of what it can observe. *)
