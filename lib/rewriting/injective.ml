open Nca_logic

(* All partitions of a list, as lists of non-empty blocks. *)
let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
      List.concat_map
        (fun blocks ->
          (* x in its own block, or added to an existing block *)
          ([ x ] :: blocks)
          :: List.mapi
               (fun i _ ->
                 List.mapi
                   (fun j b -> if i = j then x :: b else b)
                   blocks)
               blocks)
        (partitions rest)

let specializations q =
  let vars = Term.sorted_elements (Cq.vars q) in
  if List.length vars > 10 then
    invalid_arg "Injective.specializations: too many variables";
  let answer_vars = Cq.answer_vars q in
  let subst_of_blocks blocks =
    List.fold_left
      (fun acc block ->
        (* Prefer an answer variable as representative so the answer tuple
           stays within answer variables. *)
        let rep =
          match List.filter (fun v -> Term.Set.mem v answer_vars) block with
          | r :: _ -> r
          | [] -> List.hd block
        in
        List.fold_left (fun acc v -> Subst.add v rep acc) acc block)
      Subst.empty blocks
  in
  let identity_first a b =
    Int.compare (List.length b) (List.length a)
    (* more blocks = fewer identifications; the identity has |vars| blocks *)
  in
  let dedup_body q =
    Cq.make ~answer:(Cq.answer q)
      (List.sort_uniq Atom.compare_structural (Cq.body q))
  in
  partitions vars
  |> List.sort identity_first
  |> List.map (fun blocks -> dedup_body (Cq.apply (subst_of_blocks blocks) q))

let iso_cq q q' =
  Cq.size q = Cq.size q'
  && List.length (Cq.answer q) = List.length (Cq.answer q')
  && Term.Set.cardinal (Cq.vars q) = Term.Set.cardinal (Cq.vars q')
  &&
  let init =
    List.fold_left2
      (fun acc x y ->
        match acc with
        | None -> None
        | Some s -> (
            match Subst.find_opt x s with
            | Some y' -> if Term.equal y y' then acc else None
            | None -> Some (Subst.add x y s)))
      (Some Subst.empty) (Cq.answer q) (Cq.answer q')
  in
  match init with
  | None -> false
  | Some init ->
      let target = Instance.of_list (Cq.body q') in
      Instance.cardinal (Instance.of_list (Cq.body q))
      = Instance.cardinal target
      && Hom.exists ~inj:true ~init (Cq.body q) target

let of_ucq u =
  let disjuncts =
    List.concat_map specializations (Ucq.disjuncts u)
  in
  let rec dedup acc = function
    | [] -> List.rev acc
    | q :: rest ->
        if List.exists (iso_cq q) acc then dedup acc rest
        else dedup (q :: acc) rest
  in
  Ucq.make (dedup [] disjuncts)

let injective_rewriting ?max_rounds ?max_disjuncts ?budget rules q =
  let outcome = Rewrite.rewrite ?max_rounds ?max_disjuncts ?budget rules q in
  { outcome with ucq = of_ucq outcome.ucq }
