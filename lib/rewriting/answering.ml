open Nca_logic

let database_tuple adom tuple = List.for_all (fun t -> Term.Set.mem t adom) tuple

let answers_via_chase ?(depth = 6) ?(max_atoms = 20000) rules i q =
  let chase = Nca_chase.Chase.run ~max_depth:depth ~max_atoms i rules in
  let adom = Instance.adom i in
  List.filter (database_tuple adom)
    (Cq.answers chase.Nca_chase.Chase.instance q)

let ucq_answers i u =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun q -> Cq.answers i q)
    (Ucq.disjuncts u)
  |> List.filter (fun tuple ->
         if Hashtbl.mem seen tuple then false
         else begin
           Hashtbl.add seen tuple ();
           true
         end)

let answers_via_rewriting ?max_rounds ?max_disjuncts rules i q =
  let out = Rewrite.rewrite ?max_rounds ?max_disjuncts rules q in
  if not out.complete then None else Some (ucq_answers i out.ucq)

let entails ?depth ?max_rounds rules i q =
  match answers_via_rewriting ?max_rounds rules i q with
  | Some tuples -> tuples <> []
  | None ->
      let chase = Nca_chase.Chase.run ?max_depth:depth i rules in
      Cq.holds chase.Nca_chase.Chase.instance q

let sort_tuples = List.sort (List.compare Term.compare)

let methods_agree ?depth ?max_rounds rules i q =
  match answers_via_rewriting ?max_rounds rules i q with
  | None -> None
  | Some backward ->
      let forward = answers_via_chase ?depth rules i q in
      Some (sort_tuples backward = sort_tuples forward)

let rewrite_composed ?max_rounds ?max_disjuncts ?budget r1 r2 q =
  let inner = Rewrite.rewrite ?max_rounds ?max_disjuncts ?budget r2 q in
  let outer =
    Rewrite.rewrite_ucq ?max_rounds ?max_disjuncts ?budget r1 inner.ucq
  in
  {
    outer with
    Rewrite.complete = inner.complete && outer.Rewrite.complete;
    (* the inner stage's verdict wins: it ran (and stopped) first *)
    stopped =
      (match inner.Rewrite.stopped with
      | Some _ as s -> s
      | None -> outer.Rewrite.stopped);
    generated = inner.generated + outer.Rewrite.generated;
  }
