(** Piece unifiers: one backward-chaining step of UCQ rewriting.

    Given a CQ [q(x̄)] and a rule [ρ = B → ∃z̄ H], a {e piece unifier}
    unifies a non-empty subset [Q' ⊆ q] with head atoms of [ρ] such that
    every unification class containing an existential variable of [ρ]
    contains, besides it, only query variables that occur in no atom of
    [q ∖ Q'] and are not answer variables. The associated rewriting is
    [u(B) ∪ u(q ∖ Q')] — it entails [q] after one application of [ρ].

    This is the classical rewriting operator of König, Leclère, Mugnier,
    Thomazo ("Sound, complete and minimal UCQ-rewriting for existential
    rules"), which the paper relies on for [rew] (Definition 29) and for
    the existence of minimal rewritings (Section 2.3).

    Restriction: rules and queries must be constant-free (which all rule
    sets in this development are — the parser builds rules over variables
    only); [rewrite_step] raises [Invalid_argument] otherwise. *)

open Nca_logic

val rewrite_step : Rule.t -> Cq.t -> Cq.t list
(** All one-step rewritings of the query with the given rule (the rule is
    freshly renamed internally). Results are not minimized. *)

val rewrite_step_all : Rule.t list -> Cq.t -> Cq.t list
(** One-step rewritings over a whole rule set. *)
