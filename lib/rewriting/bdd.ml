open Nca_logic

type verdict = {
  query : Cq.t;
  constant : int option;
  rewriting : Ucq.t;
  stopped : Nca_obs.Exhausted.t option;
}

let for_query ?max_rounds ?max_disjuncts ?budget rules q =
  let outcome = Rewrite.rewrite ?max_rounds ?max_disjuncts ?budget rules q in
  {
    query = q;
    constant = (if outcome.complete then Some outcome.rounds else None);
    rewriting = outcome.ucq;
    stopped = outcome.stopped;
  }

let for_signature ?max_rounds ?max_disjuncts ?budget rules sign =
  Symbol.sorted_elements sign
  |> List.filter (fun p -> not (Symbol.equal p Symbol.top))
  |> List.map (fun p ->
         for_query ?max_rounds ?max_disjuncts ?budget rules (Cq.atom_query p))

let certified verdicts =
  List.for_all (fun v -> Option.is_some v.constant) verdicts

let cross_validate ?(depth = 6) rules q rewriting instances =
  List.for_all
    (fun i ->
      let chase = Nca_chase.Chase.run ~max_depth:depth i rules in
      let chase_side = Cq.holds chase.Nca_chase.Chase.instance q in
      let rewrite_side = Ucq.holds i rewriting in
      (* The rewriting may only anticipate atoms the truncated chase has
         not yet produced, never the converse. *)
      if chase.Nca_chase.Chase.saturated then chase_side = rewrite_side
      else (not chase_side) || rewrite_side)
    instances
