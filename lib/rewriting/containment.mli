(** Conjunctive-query containment and minimization (Chandra–Merlin).

    [q ⊑ q'] (every answer of [q] is an answer of [q'] on every instance)
    iff there is a homomorphism from [q'] to [q] preserving answers — the
    canonical-database argument. Minimization computes the {e core} of a
    query: a minimal equivalent sub-query, unique up to isomorphism. The
    rewriting engine's subsumption cover is containment-based; this
    module exposes the relation itself, plus minimization, which keeps
    rewriting disjuncts small and canonical. *)

open Nca_logic

val contained : Cq.t -> Cq.t -> bool
(** [contained q q']: [q ⊑ q']. Constants are allowed and rigid. *)

val equivalent : Cq.t -> Cq.t -> bool

val canonical_database : Cq.t -> Instance.t * Term.t list
(** The frozen body (variables become fresh constants) and the frozen
    answer tuple — the Chandra–Merlin instance. *)

val minimize : Cq.t -> Cq.t
(** The core of the query: a minimal equivalent sub-query obtained by
    iteratively dropping atoms while equivalence persists. *)

val is_minimal : Cq.t -> bool

val ucq_contained : Ucq.t -> Ucq.t -> bool
(** [Q ⊑ Q']: every disjunct of [Q] is contained in some disjunct of
    [Q'] (sound and complete for UCQs). *)

val ucq_equivalent : Ucq.t -> Ucq.t -> bool

val minimize_ucq : Ucq.t -> Ucq.t
(** Minimize every disjunct, then drop disjuncts contained in another —
    the canonical form of a UCQ rewriting. *)
