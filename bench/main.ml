(* Experiment harness: regenerates every table (T1–T7) and figure (F1–F3)
   of EXPERIMENTS.md, then runs the bechamel timing benches (B1–B6).

   Usage:
     main.exe             run everything
     main.exe t3 f1 b     run selected experiments ("b" = timing benches)
*)

open Nca_logic
module Chase = Nca_chase.Chase
module Rewrite = Nca_rewriting.Rewrite
module Injective = Nca_rewriting.Injective
module Bdd = Nca_rewriting.Bdd
module Pipeline = Nca_surgery.Pipeline
module Properties = Nca_surgery.Properties
module Rulesets = Nca_core.Rulesets
module Theorem1 = Nca_core.Theorem1
module Witness = Nca_core.Witness
module Valley = Nca_core.Valley
module Tabular = Nca_core.Tabular
module Tournament = Nca_graph.Tournament
module Ramsey = Nca_graph.Ramsey

let yesno b = if b then "yes" else "no"

(* ------------------------------------------------------------------ *)
(* T1 / T2: Example 1 and its bdd repair, level by level *)

let series_rows (entry : Rulesets.entry) depth =
  Theorem1.series ~max_depth:depth ~e:entry.e entry.instance entry.rules
  |> List.map (fun (p : Theorem1.point) ->
         [
           string_of_int p.level;
           string_of_int p.level_atoms;
           string_of_int p.level_tournament;
           yesno p.level_loop;
         ])

let t1 () =
  Tabular.print
    ~title:
      "T1 — Example 1 (succ + transitivity, NOT bdd): tournaments grow, no \
       loop"
    ~header:[ "level"; "atoms"; "max tournament"; "loop" ]
    (series_rows Rulesets.example1 5)

let t2 () =
  Tabular.print
    ~title:
      "T2 — Example 1 repaired to bdd (succ + two-hop): loop forced \
       (Theorem 1)"
    ~header:[ "level"; "atoms"; "max tournament"; "loop" ]
    (series_rows Rulesets.example1_bdd 4)

(* ------------------------------------------------------------------ *)
(* T3: Theorem 1 sweep over the zoo *)

let t3 () =
  let rows =
    List.map
      (fun (entry : Rulesets.entry) ->
        let bdd =
          Bdd.certified
            (Bdd.for_signature ~max_rounds:8 entry.rules
               (Rule.signature entry.rules))
        in
        let v =
          Theorem1.validate ~max_depth:4 ~max_atoms:4000 ~e:entry.e
            entry.instance entry.rules
        in
        [
          entry.name;
          string_of_int (List.length entry.rules);
          yesno bdd;
          string_of_int v.atoms;
          string_of_int v.max_tournament;
          yesno v.loop;
          (if bdd then yesno (Theorem1.implication_holds ~threshold:4 v)
           else "n/a");
        ])
      Rulesets.zoo
  in
  Tabular.print
    ~title:
      "T3 — Theorem 1 sweep: for bdd sets, tournament ≥ 4 must force a loop"
    ~header:
      [ "rule set"; "#rules"; "bdd"; "atoms"; "max trn"; "loop"; "T1 holds" ]
    rows

(* ------------------------------------------------------------------ *)
(* T4: the Section-4 surgeries, step by step *)

let t4 () =
  let entries = [ "example1_bdd"; "tangle"; "dense"; "ternary" ] in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Rulesets.find name in
        let p = Pipeline.regalize entry.instance entry.rules in
        let checks =
          Pipeline.verify_chase_preservation ~depth:3 entry.instance
            entry.rules p
        in
        List.map2
          (fun (step : Pipeline.step) (label, preserved) ->
            let r = Properties.describe step.rules in
            assert (String.equal label step.label);
            [
              name;
              step.label;
              string_of_int (List.length step.rules);
              yesno r.binary;
              yesno r.forward_existential;
              yesno r.predicate_unique;
              yesno preserved;
            ])
          p.steps checks)
      entries
  in
  Tabular.print
    ~title:
      "T4 — Rule-set surgeries (Section 4): properties gained, chase \
       preserved"
    ~header:
      [ "rule set"; "step"; "#rules"; "binary"; "fwd∃"; "pred-uniq";
        "chase ≡" ]
    rows

(* ------------------------------------------------------------------ *)
(* T5: UCQ rewriting sizes and bdd constants *)

let t5 () =
  let rows =
    List.map
      (fun (entry : Rulesets.entry) ->
        let q = Cq.atom_query entry.e in
        let t0 = Unix.gettimeofday () in
        let out = Rewrite.rewrite ~max_rounds:8 entry.rules q in
        let dt = (Unix.gettimeofday () -. t0) *. 1000. in
        [
          entry.name;
          Fmt.str "%a(x̄)" Symbol.pp_name entry.e;
          string_of_int (Ucq.size out.ucq);
          string_of_int out.generated;
          (if out.complete then string_of_int out.rounds else "∞ (budget)");
          Fmt.str "%.1f" dt;
        ])
      Rulesets.zoo
  in
  Tabular.print
    ~title:
      "T5 — UCQ rewriting of the edge predicate: size, bdd-constant bound, \
       cost"
    ~header:[ "rule set"; "query"; "|UCQ|"; "generated"; "rounds"; "ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* T6: injective rewriting blowup (Proposition 6) *)

let t6 () =
  let x = Term.var "x" and y = Term.var "y" in
  let z = Term.var "z" and w = Term.var "w" in
  let e s t = Atom.app "E" [ s; t ] in
  let cases =
    [
      ("edge", Cq.make ~answer:[ x; y ] [ e x y ]);
      ("path-2", Cq.make ~answer:[ x; y ] [ e x z; e z y ]);
      ("path-3", Cq.make ~answer:[ x; y ] [ e x z; e z w; e w y ]);
      ("V", Cq.make ~answer:[ x; y ] [ e z x; e z y ]);
      ("diamond", Cq.make ~answer:[ x; y ] [ e z x; e z y; e w z ]);
    ]
  in
  let rows =
    List.map
      (fun (name, q) ->
        let specs = Injective.specializations q in
        let u_inj = Injective.of_ucq (Ucq.of_cq q) in
        [
          name;
          string_of_int (Cq.size q);
          string_of_int (Term.Set.cardinal (Cq.vars q));
          string_of_int (List.length specs);
          string_of_int (Ucq.size u_inj);
        ])
      cases
  in
  Tabular.print
    ~title:
      "T6 — Injective rewriting blowup (Prop. 6): partitions of the \
       variable set"
    ~header:[ "query"; "atoms"; "vars"; "partitions"; "|Q_inj| (iso-dedup)" ]
    rows

(* ------------------------------------------------------------------ *)
(* T7: Section-5 valley analysis on regalized rule sets *)

let t7 () =
  let entries = [ "example1_bdd"; "tangle"; "succ_only"; "dense" ] in
  let rows =
    List.map
      (fun name ->
        let entry = Rulesets.find name in
        let p = Pipeline.regalize entry.instance entry.rules in
        let t = Witness.analyze ~depth:4 ~e:entry.e p.final in
        let edges = Witness.edges t in
        let stats =
          List.map
            (fun (s, tt) ->
              let ws = Witness.witnesses t s tt in
              let direct = List.exists (fun (q, _) -> Valley.is_valley q) ws in
              let valley = Witness.valley_witness t s tt in
              (List.length ws, direct, valley))
            edges
        in
        let shapes =
          List.filter_map
            (fun (_, _, v) ->
              Option.map
                (fun (q, _) -> Fmt.str "%a" Valley.pp_shape (Valley.shape q))
                v)
            stats
          |> List.sort_uniq String.compare
          |> String.concat ","
        in
        let g = Nca_graph.Digraph.of_instance t.e t.full in
        [
          name;
          string_of_int (Ucq.size t.rewriting);
          string_of_int (List.length edges);
          string_of_int (List.fold_left (fun acc (n, _, _) -> acc + n) 0 stats);
          string_of_int (List.length (List.filter (fun (_, d, _) -> d) stats));
          string_of_int
            (List.length
               (List.filter (fun (_, _, v) -> Option.is_some v) stats));
          (if shapes = "" then "-" else shapes);
          string_of_int (Tournament.max_tournament_size g);
          yesno (Cq.holds t.full (Cq.loop_query t.e));
        ])
      entries
  in
  Tabular.print
    ~title:
      "T7 — Valley analysis (Section 5) on regalized sets: every edge gets \
       a valley witness"
    ~header:
      [
        "rule set"; "|Q_⊠|"; "edges"; "Σ|W|"; "direct valleys";
        "after Lemma 40"; "shapes"; "max trn"; "loop";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* T11: scalability — chase and rewriting-based answering vs database size *)

let t11 () =
  let rules = (Rulesets.find "person_knows").rules in
  let knows = Symbol.make "Knows" 2 in
  let person = Symbol.make "Person" 1 in
  let sign = Symbol.Set.of_list [ knows; person ] in
  let q = Cq.atom_query person in
  let rows =
    List.map
      (fun size ->
        let db =
          Rulesets.random_instance ~seed:size ~constants:(max 4 (size / 3))
            ~atoms:size sign
        in
        let t0 = Unix.gettimeofday () in
        let forward =
          Nca_rewriting.Answering.answers_via_chase ~depth:3 rules db q
        in
        let t1 = Unix.gettimeofday () in
        let backward =
          Nca_rewriting.Answering.answers_via_rewriting rules db q
        in
        let t2 = Unix.gettimeofday () in
        [
          string_of_int size;
          string_of_int (List.length forward);
          Fmt.str "%.1f" ((t1 -. t0) *. 1000.);
          (match backward with
          | Some l -> string_of_int (List.length l)
          | None -> "-");
          Fmt.str "%.1f" ((t2 -. t1) *. 1000.);
        ])
      [ 10; 30; 100; 300; 1000 ]
  in
  Tabular.print
    ~title:
      "T11 — OBQA scalability: certain answers to Person(x) vs database \
       size (forward chase vs backward rewriting)"
    ~header:[ "db atoms"; "answers"; "chase ms"; "answers (rw)"; "rewrite ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* F1: chase growth, full vs existential part (Observation 35 context) *)

let f1 () =
  let entries = [ "succ_only"; "dense"; "example1_bdd"; "tangle" ] in
  let depth = 5 in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Rulesets.find name in
        let _, existential = Rule.split_datalog entry.rules in
        let full = Chase.run ~max_depth:depth entry.instance entry.rules in
        let ex = Chase.run ~max_depth:depth entry.instance existential in
        List.init (depth + 1) (fun k ->
            [
              name;
              string_of_int k;
              string_of_int (Instance.cardinal (Chase.level full k));
              string_of_int (Instance.cardinal (Chase.level ex k));
              yesno
                (Nca_graph.Digraph.Term_graph.is_dag
                   (Nca_graph.Digraph.of_instance entry.e (Chase.level ex k)));
            ]))
      entries
  in
  Tabular.print
    ~title:
      "F1 — Chase growth per level: |Ch_k| full vs existential part (which \
       stays a DAG, Obs. 35)"
    ~header:[ "rule set"; "k"; "|Ch_k| full"; "|Ch_k| ∃-part"; "∃-part DAG" ]
    rows

(* ------------------------------------------------------------------ *)
(* F2: tournament-size bound vs number of rewriting disjuncts (Q. 46) *)

let f2 () =
  let rows =
    List.init 6 (fun i ->
        let colors = i + 1 in
        [
          string_of_int colors;
          string_of_int (Ramsey.four_clique_bound ~colors);
          yesno (Ramsey.is_exact (List.init colors (fun _ -> 4)));
        ])
  in
  Tabular.print
    ~title:
      "F2 — Loop-free tournament size bound R(4,…,4) vs |Q_⊠| (Question 46)"
    ~header:[ "|Q_⊠| (colors)"; "R(4,…,4) bound"; "exact" ]
    rows

(* ------------------------------------------------------------------ *)
(* F3: max tournament vs depth across rule-set families *)

let f3 () =
  let entries = [ "example1"; "example1_bdd"; "all_pairs"; "dense" ] in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Rulesets.find name in
        Theorem1.series ~max_depth:5 ~max_atoms:6000 ~e:entry.e entry.instance
          entry.rules
        |> List.map (fun (p : Theorem1.point) ->
               [
                 name;
                 string_of_int p.level;
                 string_of_int p.level_tournament;
                 yesno p.level_loop;
               ]))
      entries
  in
  Tabular.print
    ~title:
      "F3 — Max tournament size vs chase depth: bdd sets loop before \
       tournaments outgrow the bound"
    ~header:[ "rule set"; "level"; "max tournament"; "loop" ] rows

(* ------------------------------------------------------------------ *)
(* T8: finite vs unrestricted semantics (the fc gap, computed) *)

let t8 () =
  let entries = [ "example1"; "example1_bdd"; "succ_only"; "symmetric" ] in
  let rows =
    List.map
      (fun name ->
        let entry = Rulesets.find name in
        let chase = Chase.run ~max_depth:5 entry.instance entry.rules in
        let unrestricted = Cq.holds chase.instance (Cq.loop_query entry.e) in
        let finite =
          match
            Nca_chase.Finite_model.loop_free_model_exists ~fresh:2 ~e:entry.e
              entry.instance entry.rules
          with
          | Nca_chase.Finite_model.Exists -> "no"
          | Nca_chase.Finite_model.Absent -> "yes"
          | Nca_chase.Finite_model.Unknown _ -> "budget"
        in
        [
          name;
          (if unrestricted then "yes" else "no");
          finite;
          (if (finite = "yes") <> unrestricted then "DIVERGE" else "agree");
        ])
      entries
  in
  Tabular.print
    ~title:
      "T8 — Finite vs unrestricted semantics of Loop_E: Example 1 diverges \
       (not fc), its bdd repair agrees"
    ~header:
      [ "rule set"; "chase ⊨ Loop"; "finite ⊨ Loop (+2 elems)"; "semantics" ]
    rows

(* ------------------------------------------------------------------ *)
(* T9: syntactic class membership across the zoo *)

let t9 () =
  let rows =
    List.map
      (fun (entry : Rulesets.entry) ->
        let c = Nca_surgery.Classes.classify entry.rules in
        let bdd =
          Bdd.certified
            (Bdd.for_signature ~max_rounds:8 entry.rules
               (Rule.signature entry.rules))
        in
        [
          entry.name;
          yesno c.linear;
          yesno c.guarded;
          yesno c.frontier_guarded;
          yesno c.sticky;
          yesno c.weakly_acyclic;
          yesno bdd;
        ])
      Rulesets.zoo
  in
  Tabular.print
    ~title:
      "T9 — Classical decidable classes vs the engine's bdd certificate \
       (linear/sticky ⟹ bdd)"
    ~header:
      [ "rule set"; "linear"; "guarded"; "fr-guarded"; "sticky"; "weak-acyc";
        "bdd (engine)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A1: oblivious vs restricted chase (ablation) *)

let a1 () =
  let entries = [ "example1_bdd"; "dense"; "tangle"; "symmetric"; "inclusion" ] in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Rulesets.find name in
        List.map
          (fun depth ->
            let atoms variant =
              Instance.cardinal
                (Chase.run ~variant ~max_depth:depth entry.instance
                   entry.rules)
                  .instance
            in
            let obl = atoms Chase.Oblivious in
            let semi = atoms Chase.Semi_oblivious in
            let res = atoms Chase.Restricted in
            [
              name;
              string_of_int depth;
              string_of_int obl;
              string_of_int semi;
              string_of_int res;
              Fmt.str "%.2f" (float_of_int obl /. float_of_int (max 1 res));
            ])
          [ 2; 4 ])
      entries
  in
  Tabular.print
    ~title:
      "A1 — Ablation: chase variants (oblivious = paper's Section 2.2; \
       semi-oblivious = Skolem; restricted = standard), atoms produced"
    ~header:
      [ "rule set"; "depth"; "oblivious"; "semi-obl"; "restricted";
        "obl/restr" ]
    rows

(* ------------------------------------------------------------------ *)
(* T10: the Question 46 audit — measured tournaments vs the Ramsey bound *)

let t10 () =
  let entries = [ "example1_bdd"; "succ_only"; "dense"; "tangle"; "short_only" ] in
  let rows =
    List.map
      (fun name ->
        let entry = Rulesets.find name in
        let a = Nca_core.Question46.audit ~depth:4 entry in
        [
          a.Nca_core.Question46.name;
          yesno a.bdd;
          yesno a.loop;
          string_of_int a.max_tournament;
          string_of_int a.rewriting_disjuncts;
          (if a.bound >= max_int / 2 then "≫10⁶" else string_of_int a.bound);
          yesno a.within_bound;
        ])
      entries
  in
  Tabular.print
    ~title:
      "T10 — Question 46 audit: loop-free tournament sizes vs the \
       extractable bound R(4,…,4) over |Q_⊠| colors"
    ~header:
      [ "rule set"; "bdd"; "loop"; "max trn"; "|Q_⊠|"; "bound"; "within" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: what the subsumption cover buys during rewriting (ablation) *)

let a2 () =
  let entries = [ "example1_bdd"; "symmetric"; "person_knows"; "all_pairs" ] in
  let rows =
    List.map
      (fun name ->
        let entry = Rulesets.find name in
        let q = Cq.atom_query entry.e in
        let with_cover = Rewrite.rewrite ~max_rounds:8 entry.rules q in
        let without =
          Rewrite.rewrite ~max_rounds:8 ~minimize:false entry.rules q
        in
        [
          name;
          string_of_int (Ucq.size with_cover.ucq);
          string_of_int with_cover.generated;
          yesno with_cover.complete;
          string_of_int (Ucq.size without.ucq);
          string_of_int without.generated;
          yesno without.complete;
        ])
      entries
  in
  Tabular.print
    ~title:
      "A2 — Ablation: rewriting with subsumption cover vs isomorphism-only \
       dedup"
    ~header:
      [ "rule set"; "|UCQ| cover"; "gen"; "fixpoint"; "|UCQ| no-cover";
        "gen"; "fixpoint" ]
    rows

(* ------------------------------------------------------------------ *)
(* F4: chromatic number of chase prefixes (Conjecture 44's measure) *)

let f4 () =
  let entries = [ "example1"; "example1_bdd"; "dense"; "all_pairs" ] in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Rulesets.find name in
        let points =
          Nca_core.Conjecture44.series ~max_depth:4 ~e:entry.e entry.instance
            entry.rules
        in
        let verdict =
          match Nca_core.Conjecture44.verdict points with
          | `Consistent -> "consistent"
          | `Suspicious _ -> "suspicious"
        in
        List.map
          (fun (p : Nca_core.Conjecture44.point) ->
            [
              name;
              string_of_int p.level;
              string_of_int p.tournament;
              (match p.chromatic with
              | Some k -> string_of_int k
              | None -> "∞ (loop)");
              yesno p.loop;
              verdict;
            ])
          points)
      entries
  in
  Tabular.print
    ~title:
      "F4 — Chromatic number of chase E-graphs per level (Conjecture 44's \
       measure; χ ≥ tournament)"
    ~header:
      [ "rule set"; "level"; "max trn"; "χ (orientation closure)"; "loop";
        "C44 verdict" ]
    rows

(* ------------------------------------------------------------------ *)
(* F5: Theorem 7 checked empirically on random colored tournaments *)

let f5 () =
  let rows =
    List.map
      (fun (colors, target, trials) ->
        let n =
          Ramsey.upper_bound (List.init colors (fun _ -> target))
        in
        let ok =
          Nca_graph.Ramsey_check.check_theorem7 ~seed:42 ~colors ~target
            ~trials
        in
        [
          string_of_int colors;
          string_of_int target;
          string_of_int n;
          string_of_int trials;
          yesno ok;
        ])
      [ (2, 3, 50); (3, 3, 10); (2, 4, 5) ]
  in
  Tabular.print
    ~title:
      "F5 — Theorem 7 empirically: random k-colorings of R(s,…,s)-sized \
       tournaments always contain a monochromatic s-tournament"
    ~header:
      [ "colors"; "target s"; "tournament size"; "trials";
        "all contain mono-s" ]
    rows

(* ------------------------------------------------------------------ *)
(* B: bechamel timing benches *)

let timing_tests () =
  let open Bechamel in
  let entry = Rulesets.example1_bdd in
  let chase = Chase.run ~max_depth:4 entry.instance entry.rules in
  let big = chase.instance in
  let pattern =
    [
      Atom.app "E" [ Term.var "u"; Term.var "v" ];
      Atom.app "E" [ Term.var "v"; Term.var "w" ];
    ]
  in
  let eq = Cq.atom_query Rulesets.e2 in
  [
    Test.make ~name:"B1 hom-search path2 on chase"
      (Staged.stage (fun () -> ignore (Hom.exists pattern big)));
    Test.make ~name:"B2 chase example1_bdd depth3"
      (Staged.stage (fun () ->
           ignore (Chase.run ~max_depth:3 entry.instance entry.rules)));
    Test.make ~name:"B3 rewrite E under example1_bdd"
      (Staged.stage (fun () ->
           ignore (Rewrite.rewrite ~max_rounds:6 entry.rules eq)));
    Test.make ~name:"B4 max tournament on chase graph"
      (Staged.stage (fun () ->
           ignore
             (Tournament.max_tournament_size
                (Nca_graph.Digraph.of_instance entry.e big))));
    Test.make ~name:"B5 streamline example1_bdd"
      (Staged.stage (fun () ->
           ignore (Nca_surgery.Streamline.apply entry.rules)));
    Test.make ~name:"B7 datalog closure (semi-naive, chain 8 + tc)"
      (Staged.stage
         (let tc = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
          let chain =
            Instance.of_list
              (List.init 8 (fun i ->
                   Atom.app "E"
                     [
                       Term.cst (Fmt.str "c%d" i);
                       Term.cst (Fmt.str "c%d" (i + 1));
                     ]))
          in
          fun () -> ignore (Nca_chase.Datalog.saturate chain tc)));
    Test.make ~name:"B8 datalog closure (generic chase, chain 8 + tc)"
      (Staged.stage
         (let tc = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
          let chain =
            Instance.of_list
              (List.init 8 (fun i ->
                   Atom.app "E"
                     [
                       Term.cst (Fmt.str "c%d" i);
                       Term.cst (Fmt.str "c%d" (i + 1));
                     ]))
          in
          fun () -> ignore (Chase.run ~max_depth:20 chain tc)));
    Test.make ~name:"B6 specializations of path-2"
      (Staged.stage (fun () ->
           ignore
             (Injective.specializations
                (Cq.make
                   ~answer:[ Term.var "x"; Term.var "y" ]
                   [
                     Atom.app "E" [ Term.var "x"; Term.var "z" ];
                     Atom.app "E" [ Term.var "z"; Term.var "y" ];
                   ]))));
  ]

let run_timing () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analysis = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (est :: _) -> Fmt.str "%.0f" est
              | _ -> "?"
            in
            [ name; ns ] :: acc)
          analysis [])
      (timing_tests ())
  in
  Tabular.print ~title:"B — timing benches (bechamel, monotonic clock, ns/run)"
    ~header:[ "bench"; "ns/run" ]
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let all =
  [
    ("t1", t1); ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5); ("t6", t6);
    ("t7", t7); ("t8", t8); ("t9", t9); ("t10", t10); ("t11", t11); ("a1", a1); ("a2", a2);
    ("f1", f1); ("f2", f2); ("f3", f3); ("f4", f4); ("f5", f5);
    ("b", run_timing);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) all with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown experiment %S (known: %s)@." name
            (String.concat ", " (List.map fst all)))
    requested
