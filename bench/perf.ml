(* Perf harness for the matching/evaluation hot path.

   Times the indexed, delta-driven engines (Hom over the positional
   index, Chase.run over Trigger.all_delta, semi-naive Datalog) against
   the pre-index reference implementations preserved below in [Naive]
   (per-predicate scans, full trigger re-enumeration every round, string
   trigger keys), and writes machine-readable BENCH_chase.json so later
   PRs have a perf trajectory to beat.

   Usage:
     perf.exe                 full run, writes BENCH_chase.json in the cwd
     perf.exe --out FILE      full run, writes FILE
     perf.exe --smoke         seconds-scale budgets, no file unless --out;
                              still validates JSON well-formedness and the
                              naive/indexed equivalence checks (the
                              @bench-smoke alias runs this under dune)

   Every workload run also cross-checks the two engines against each
   other (atom counts, level profiles, closure equality); a mismatch
   exits non-zero, so the harness doubles as an integration test. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Trigger = Nca_chase.Trigger
module Datalog = Nca_chase.Datalog
module Rewrite = Nca_rewriting.Rewrite
module Rulesets = Nca_core.Rulesets
module Json = Nca_analysis.Json

(* ------------------------------------------------------------------ *)
(* The reference ("before") engines: the seed implementations, kept
   verbatim so the before/after numbers stay honest across PRs. *)

module Naive = struct
  (* Seed Hom: candidates filtered by predicate only, sub-goal order by
     number of already-bound positions. *)

  let match_atom sub a b =
    let rec go sub ss ts =
      match (ss, ts) with
      | [], [] -> Some sub
      | s :: ss, t :: ts -> (
          if not (Term.is_mappable s) then
            if Term.equal s t then go sub ss ts else None
          else
            match Subst.find_opt s sub with
            | Some u -> if Term.equal u t then go sub ss ts else None
            | None -> go (Subst.add s t sub) ss ts)
      | _ -> None
    in
    go sub (Atom.args a) (Atom.args b)

  let bound_terms sub a =
    List.fold_left
      (fun n t ->
        if (not (Term.is_mappable t)) || Subst.mem t sub then n + 1 else n)
      0 (Atom.args a)

  let pick sub atoms =
    let rec go best best_score acc = function
      | [] -> (best, List.rev acc)
      | a :: rest ->
          let score = bound_terms sub a in
          if score > best_score then go a score (best :: acc) rest
          else go best best_score (a :: acc) rest
    in
    match atoms with
    | [] -> invalid_arg "Naive.pick: empty"
    | a :: rest -> go a (bound_terms sub a) [] rest

  let iter ?(init = Subst.empty) src tgt f =
    let rec solve sub = function
      | [] -> f sub
      | atoms ->
          let a, rest = pick sub atoms in
          List.iter
            (fun b ->
              match match_atom sub a b with
              | Some sub' -> solve sub' rest
              | None -> ())
            (Instance.with_pred (Atom.pred a) tgt)
    in
    solve init src

  let count ?init src tgt =
    let n = ref 0 in
    iter ?init src tgt (fun _ -> incr n);
    !n

  let trigger_all rules i =
    List.concat_map
      (fun rule ->
        let acc = ref [] in
        iter (Rule.body rule) i (fun hom ->
            acc := { Trigger.rule; hom } :: !acc);
        List.rev !acc)
      rules

  (* Seed trigger identity: a formatted string per enumeration. *)
  let trigger_key (tr : Trigger.t) =
    let bindings =
      Term.Set.elements (Rule.body_vars tr.rule)
      |> List.map (fun x ->
             Fmt.str "%a=%a" Term.pp x Term.pp (Subst.apply tr.hom x))
    in
    String.concat "|" (Rule.name tr.rule :: bindings)

  let stamp_terms level terms stamps =
    Term.Set.fold
      (fun t acc ->
        if Term.Map.mem t acc then acc else Term.Map.add t level acc)
      terms stamps

  (* Seed oblivious chase: re-enumerates every trigger over the whole
     instance at every level, filtered through the string-key table;
     keeps the same timestamp/provenance bookkeeping for a fair clock. *)
  let chase ~max_depth ~max_atoms start rules =
    let fired = Hashtbl.create 256 in
    let rec go current levels_rev level stamps prov =
      if level >= max_depth then finish current levels_rev ~saturated:false
      else
        let triggers =
          List.filter
            (fun tr ->
              let k = trigger_key tr in
              if Hashtbl.mem fired k then false
              else begin
                Hashtbl.add fired k ();
                true
              end)
            (trigger_all rules current)
        in
        if triggers = [] then finish current levels_rev ~saturated:true
        else begin
          let next, stamps, prov =
            List.fold_left
              (fun (inst, stamps, prov) (tr : Trigger.t) ->
                let out, ext = Trigger.output tr in
                let prov =
                  Term.Set.fold
                    (fun z acc ->
                      Term.Map.add (Subst.apply ext z)
                        (tr.rule, tr.hom, ext, level + 1)
                        acc)
                    (Rule.exist_vars tr.rule) prov
                in
                ( Instance.union inst out,
                  stamp_terms (level + 1) (Instance.adom out) stamps,
                  prov ))
              (current, stamps, prov) triggers
          in
          if Instance.cardinal next > max_atoms then
            finish next (next :: levels_rev) ~saturated:false
          else go next (next :: levels_rev) (level + 1) stamps prov
        end
    and finish instance levels_rev ~saturated =
      (instance, List.rev levels_rev, saturated)
    in
    let stamps = stamp_terms 0 (Instance.adom start) Term.Map.empty in
    go start [ start ] 0 stamps Term.Map.empty

  (* Seed semi-naive Datalog: pivot seeded on the delta, the rest of the
     body matched by predicate scan over the whole relation (duplicate
     enumerations across pivots included), persistent accumulator. *)
  let datalog_saturate ?(max_rounds = 10000) start rules =
    let rec split_nth i acc = function
      | [] -> invalid_arg "split_nth"
      | x :: rest ->
          if i = 0 then (x, List.rev_append acc rest)
          else split_nth (i - 1) (x :: acc) rest
    in
    let rec go total delta round =
      if Instance.is_empty delta then total
      else if round > max_rounds then failwith "naive datalog: rounds budget"
      else begin
        let fresh = ref Instance.empty in
        List.iter
          (fun rule ->
            let body = Rule.body rule in
            List.iteri
              (fun i _ ->
                let pivot, rest = split_nth i [] body in
                Instance.iter
                  (fun fact ->
                    match Datalog.seed_with pivot fact with
                    | None -> ()
                    | Some seed ->
                        iter ~init:seed rest total (fun h ->
                            List.iter
                              (fun head_atom ->
                                let derived = Subst.apply_atom h head_atom in
                                if not (Instance.mem derived total) then
                                  fresh := Instance.add derived !fresh)
                              (Rule.head rule)))
                  delta)
              body)
          rules;
        let fresh = Instance.diff !fresh total in
        go (Instance.union total fresh) fresh (round + 1)
      end
    in
    go start start 0
end

(* ------------------------------------------------------------------ *)
(* Timing *)

let time_us ?(reps = 3) f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, int_of_float (!best *. 1_000_000.))

let speedup_x100 ~before ~after = before * 100 / max 1 after

let failures = ref 0

(* One extra, untimed run with telemetry on: the engine's own counters
   (rounds, triggers, derived atoms) land next to the timings in the JSON
   row. The timed runs above execute with telemetry disabled, so the
   numbers stay comparable across PRs. *)
let counters_of f =
  Nca_obs.Telemetry.enable ();
  ignore (f ());
  let snap = Nca_obs.Telemetry.snapshot () in
  Nca_obs.Telemetry.disable ();
  Json.Obj
    (List.map
       (fun (k, v) -> (k, Json.Int v))
       snap.Nca_obs.Telemetry.counters)

let check_eq ~workload what a b =
  if a <> b then begin
    Fmt.epr "MISMATCH %s: %s: %d vs %d@." workload what a b;
    incr failures
  end

(* ------------------------------------------------------------------ *)
(* Workloads *)

type budgets = { depth : int; atoms : int }

let chase_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  let (n_inst, n_levels, n_sat), before_us =
    time_us ~reps (fun () ->
        Naive.chase ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
          entry.rules)
  in
  let c, after_us =
    time_us ~reps (fun () ->
        Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
          entry.rules)
  in
  let workload = "chase/" ^ name in
  check_eq ~workload "atoms" (Instance.cardinal n_inst)
    (Instance.cardinal c.instance);
  check_eq ~workload "levels" (List.length n_levels)
    (List.length c.levels);
  check_eq ~workload "saturated" (Bool.to_int n_sat)
    (Bool.to_int c.saturated);
  List.iter2
    (fun a b ->
      check_eq ~workload "level profile" (Instance.cardinal a)
        (Instance.cardinal b))
    n_levels c.levels;
  Json.Obj
    [
      ("kind", Json.String "chase");
      ("name", Json.String name);
      ("max_depth", Json.Int b.depth);
      ("max_atoms", Json.Int b.atoms);
      ("atoms", Json.Int (Instance.cardinal c.instance));
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
      ( "counters",
        counters_of (fun () ->
            Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
              entry.rules) );
    ]

let datalog_workload ~reps (name, instance, rules_src, smoke_scale) ~smoke =
  let instance = if smoke then smoke_scale instance else instance in
  let rules = Parser.parse_rules rules_src in
  let n_closure, before_us =
    time_us ~reps (fun () -> Naive.datalog_saturate instance rules)
  in
  let closure, after_us =
    time_us ~reps (fun () -> Datalog.closure instance rules)
  in
  let workload = "datalog/" ^ name in
  check_eq ~workload "closure" (Instance.cardinal n_closure)
    (Instance.cardinal closure);
  if not (Instance.equal n_closure closure) then begin
    Fmt.epr "MISMATCH %s: closures differ@." workload;
    incr failures
  end;
  Json.Obj
    [
      ("kind", Json.String "datalog");
      ("name", Json.String name);
      ("db_atoms", Json.Int (Instance.cardinal instance));
      ("closure_atoms", Json.Int (Instance.cardinal closure));
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
      ("counters", counters_of (fun () -> Datalog.closure instance rules));
    ]

let hom_workload ~reps (name, pattern, target) =
  let n_count, before_us = time_us ~reps (fun () -> Naive.count pattern target) in
  let count, after_us = time_us ~reps (fun () -> Hom.count pattern target) in
  check_eq ~workload:("hom/" ^ name) "hom count" n_count count;
  Json.Obj
    [
      ("kind", Json.String "hom");
      ("name", Json.String name);
      ("target_atoms", Json.Int (Instance.cardinal target));
      ("homs", Json.Int count);
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
    ]

(* Interned-vs-reference comparator workloads: the same data pushed once
   through the id-based comparators used on the hot paths and once
   through the string-based structural comparators kept for output
   ordering — the latter are the pre-interning reference semantics, so
   the ratio is the direct cost of structural comparison the interning
   layer removed. *)
module Structural_set = Set.Make (struct
  type t = Atom.t

  let compare = Atom.compare_structural
end)

let intern_row name ~detail ~reps ~before ~after ~data_atoms =
  let n_before, before_us = time_us ~reps before in
  let n_after, after_us = time_us ~reps after in
  check_eq ~workload:("intern/" ^ name) "result" n_before n_after;
  Json.Obj
    [
      ("kind", Json.String "intern");
      ("name", Json.String name);
      ("detail", Json.String detail);
      ("data_atoms", Json.Int data_atoms);
      ("result", Json.Int n_after);
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
    ]

(* Hom-search flavor: the inner loop of matching is membership of a
   candidate fact in an already-matched set. Probe an interned id-ordered
   Atom.Set and a structurally-ordered reference set with the same
   mixed hit/miss stream. *)
let intern_membership_workload ~reps ~rounds target =
  let facts = Instance.atoms target in
  let misses =
    List.filter_map
      (fun a ->
        match Atom.args a with
        | [ s; t ] when not (Term.equal s t) ->
            Some (Atom.make (Atom.pred a) [ t; s ])
        | _ -> None)
      facts
    |> List.filter (fun a -> not (Instance.mem a target))
  in
  let probes = facts @ misses in
  let interned = Instance.to_set target in
  let structural =
    Structural_set.of_list facts
  in
  let count mem =
    let hits = ref 0 in
    for _ = 1 to rounds do
      List.iter (fun a -> if mem a then incr hits) probes
    done;
    !hits
  in
  intern_row "hom_membership"
    ~detail:"set membership probes on chase output (matching inner loop)"
    ~reps
    ~before:(fun () -> count (fun a -> Structural_set.mem a structural))
    ~after:(fun () -> count (fun a -> Atom.Set.mem a interned))
    ~data_atoms:(List.length probes)

(* Rewriting flavor: piece rewriting and minimization dedup candidate
   bodies with sort_uniq after every unification step. Replay that dedup
   over the bodies the rewriting actually produced. *)
let intern_dedup_workload ~reps ~rounds ~max_rounds name =
  let entry = Rulesets.find name in
  let q = Cq.atom_query entry.e in
  let out = Rewrite.rewrite ~max_rounds entry.rules q in
  let bodies = List.map Cq.body (Ucq.disjuncts out.ucq) in
  let pool = List.concat (bodies @ List.map List.rev bodies) in
  let dedup cmp =
    let n = ref 0 in
    for _ = 1 to rounds do
      List.iter
        (fun body -> n := !n + List.length (List.sort_uniq cmp body))
        bodies;
      n := !n + List.length (List.sort_uniq cmp pool)
    done;
    !n
  in
  intern_row "rewrite_dedup"
    ~detail:
      (Fmt.str "sort_uniq over %s rewriting bodies (piece/minimize dedup)" name)
    ~reps
    ~before:(fun () -> dedup Atom.compare_structural)
    ~after:(fun () -> dedup Atom.compare)
    ~data_atoms:(List.length pool)

(* Provenance overhead: the same chase timed with fact-level recording
   off (the default, one ref read per trigger) and on (an entry per
   derived fact). Here before = recording ON and after = recording OFF,
   so speedup_x100 is the overhead ratio directly: 100 = free, 110 = 10%
   slower with recording. The cross-check asserts recording is neutral —
   identical atom counts and depth either way. *)
let provenance_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  (* the two sides run the same engine on the same input — compact the
     heap before each so the second side does not pay (or dodge) the
     first side's GC debt, which at example1 scale outweighs the
     recording cost being measured *)
  Gc.compact ();
  let off, off_us =
    time_us ~reps (fun () ->
        Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
          entry.rules)
  in
  Gc.compact ();
  let (on, stats), on_us =
    time_us ~reps (fun () ->
        Nca_provenance.Provenance.enable ();
        Fun.protect ~finally:Nca_provenance.Provenance.disable (fun () ->
            let c =
              Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
                entry.rules
            in
            (c, Nca_provenance.Provenance.stats ())))
  in
  let workload = "provenance/" ^ name in
  check_eq ~workload "atoms" (Instance.cardinal off.Chase.instance)
    (Instance.cardinal on.Chase.instance);
  check_eq ~workload "depth" off.Chase.depth on.Chase.depth;
  Json.Obj
    [
      ("kind", Json.String "provenance");
      ("name", Json.String name);
      ("max_depth", Json.Int b.depth);
      ("max_atoms", Json.Int b.atoms);
      ("atoms", Json.Int (Instance.cardinal on.Chase.instance));
      ("facts_tracked", Json.Int stats.Nca_provenance.Provenance.facts);
      ("store_bytes", Json.Int stats.Nca_provenance.Provenance.store_bytes);
      ("max_derivation_depth",
       Json.Int stats.Nca_provenance.Provenance.max_depth);
      ("before_us", Json.Int on_us);
      ("after_us", Json.Int off_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:on_us ~after:off_us));
    ]

(* Observability overhead rows: the same chase run once with every
   profiling layer recording (telemetry counters/spans + metrics
   histograms/gauges + the event timeline ring) and once with all of
   them off — the default configuration every other row measures.
   speedup_x100 is the recording overhead (100 = free). The disabled
   path's no-op contract is guarded the other way round: these rows'
   after_us, like every chase row, feeds `nocliques debug bench-diff`
   against the committed baseline, so an instrumentation check that
   leaks cost into the disabled path shows up as a plain regression. *)
let obs_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  let run () =
    Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance entry.rules
  in
  Gc.compact ();
  let off, off_us = time_us ~reps run in
  Gc.compact ();
  let (on, events, dropped), on_us =
    time_us ~reps (fun () ->
        Nca_obs.Telemetry.enable ();
        Nca_obs.Metrics.enable ();
        Nca_obs.Events.enable ();
        Fun.protect
          ~finally:(fun () ->
            Nca_obs.Telemetry.disable ();
            Nca_obs.Metrics.disable ();
            Nca_obs.Events.disable ())
          (fun () ->
            let c = run () in
            let snap = Nca_obs.Events.snapshot () in
            ( c,
              List.length snap.Nca_obs.Events.events,
              snap.Nca_obs.Events.dropped )))
  in
  let workload = "obs/" ^ name in
  check_eq ~workload "atoms"
    (Instance.cardinal off.Chase.instance)
    (Instance.cardinal on.Chase.instance);
  check_eq ~workload "depth" off.Chase.depth on.Chase.depth;
  Json.Obj
    [
      ("kind", Json.String "obs");
      ("name", Json.String name);
      ("max_depth", Json.Int b.depth);
      ("max_atoms", Json.Int b.atoms);
      ("atoms", Json.Int (Instance.cardinal on.Chase.instance));
      ("events", Json.Int events);
      ("events_dropped", Json.Int dropped);
      ("before_us", Json.Int on_us);
      ("after_us", Json.Int off_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:on_us ~after:off_us));
    ]

(* Planner-vs-interpreter rows: the same indexed engines (PR 2-3) run
   once on the interpreted Hom search (Exec disabled — exactly the PR-3
   hot path) and once on the compiled join plans, so speedup_x100 is the
   planner's own contribution on top of indexing/interning. Both sides
   cross-check; enumeration is order-identical on these rule sets, so the
   checks are exact. *)
let with_planner on f =
  Nca_plan.Exec.set_enabled on;
  Fun.protect ~finally:(fun () -> Nca_plan.Exec.set_enabled true) f

let plan_chase_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  let run on () =
    with_planner on (fun () ->
        Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
          entry.rules)
  in
  Gc.compact ();
  let h, before_us = time_us ~reps (run false) in
  Gc.compact ();
  let c, after_us = time_us ~reps (run true) in
  let workload = "plan/chase/" ^ name in
  check_eq ~workload "atoms" (Instance.cardinal h.Chase.instance)
    (Instance.cardinal c.Chase.instance);
  check_eq ~workload "levels" (List.length h.Chase.levels)
    (List.length c.Chase.levels);
  check_eq ~workload "saturated" (Bool.to_int h.Chase.saturated)
    (Bool.to_int c.Chase.saturated);
  Json.Obj
    [
      ("kind", Json.String "plan");
      ("name", Json.String ("chase/" ^ name));
      ("max_depth", Json.Int b.depth);
      ("max_atoms", Json.Int b.atoms);
      ("atoms", Json.Int (Instance.cardinal c.Chase.instance));
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
      ("counters", counters_of (run true));
    ]

(* The pure hom-search half of the same comparison: enumerate every
   trigger of the rule set over its chase fixpoint (trigger enumeration
   IS the hom search — no instance construction, no key table), once
   interpreted and once compiled. *)
let plan_hom_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  let fixpoint =
    (Chase.run ~max_depth:b.depth ~max_atoms:b.atoms entry.instance
       entry.rules)
      .Chase.instance
  in
  let run on () =
    with_planner on (fun () ->
        List.length (Trigger.all entry.rules fixpoint))
  in
  Gc.compact ();
  let n_h, before_us = time_us ~reps (run false) in
  Gc.compact ();
  let n_c, after_us = time_us ~reps (run true) in
  check_eq ~workload:("plan/hom/" ^ name) "triggers" n_h n_c;
  Json.Obj
    [
      ("kind", Json.String "plan");
      ("name", Json.String ("hom/" ^ name));
      ("target_atoms", Json.Int (Instance.cardinal fixpoint));
      ("triggers", Json.Int n_c);
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
    ]

let plan_datalog_workload ~reps (name, instance, rules_src, smoke_scale) ~smoke
    =
  let instance = if smoke then smoke_scale instance else instance in
  let rules = Parser.parse_rules rules_src in
  let run on () = with_planner on (fun () -> Datalog.closure instance rules) in
  Gc.compact ();
  let h, before_us = time_us ~reps (run false) in
  Gc.compact ();
  let c, after_us = time_us ~reps (run true) in
  let workload = "plan/datalog/" ^ name in
  check_eq ~workload "closure" (Instance.cardinal h) (Instance.cardinal c);
  if not (Instance.equal h c) then begin
    Fmt.epr "MISMATCH %s: closures differ@." workload;
    incr failures
  end;
  Json.Obj
    [
      ("kind", Json.String "plan");
      ("name", Json.String ("datalog/" ^ name));
      ("db_atoms", Json.Int (Instance.cardinal instance));
      ("closure_atoms", Json.Int (Instance.cardinal c));
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
    ]

(* Domain-scaling rows: the same chase / Datalog closure at --jobs 1, 2
   and 4 on a shared pool per jobs count. [cores] records the hardware
   the trajectory point was taken on: on a single-core container the
   worker domains time-slice one core, so the parallel timings measure
   coordination overhead rather than speedup — the rows exist so the
   trajectory picks up real scaling the first time the harness runs on
   a multi-core box. Results are cross-checked across jobs counts. *)
let par_chase_workload ~reps (name, full, smoke_b) ~smoke =
  let b = if smoke then smoke_b else full in
  let entry = Rulesets.find name in
  let run jobs () =
    Nca_chase.Pool.with_pool ~jobs (fun pool ->
        Chase.run ~max_depth:b.depth ~max_atoms:b.atoms ?pool entry.instance
          entry.rules)
  in
  let time jobs =
    Gc.compact ();
    time_us ~reps (run jobs)
  in
  let c1, us1 = time 1 in
  let c2, us2 = time 2 in
  let c4, us4 = time 4 in
  let workload = "par/chase/" ^ name in
  List.iter
    (fun (c : Chase.t) ->
      check_eq ~workload "atoms" (Instance.cardinal c1.Chase.instance)
        (Instance.cardinal c.Chase.instance);
      check_eq ~workload "depth" c1.Chase.depth c.Chase.depth)
    [ c2; c4 ];
  Json.Obj
    [
      ("kind", Json.String "par");
      ("name", Json.String ("chase/" ^ name));
      ("max_depth", Json.Int b.depth);
      ("max_atoms", Json.Int b.atoms);
      ("atoms", Json.Int (Instance.cardinal c1.Chase.instance));
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("jobs1_us", Json.Int us1);
      ("jobs2_us", Json.Int us2);
      ("jobs4_us", Json.Int us4);
      ("speedup2_x100", Json.Int (speedup_x100 ~before:us1 ~after:us2));
      ("speedup4_x100", Json.Int (speedup_x100 ~before:us1 ~after:us4));
    ]

let par_datalog_workload ~reps (name, instance, rules_src, smoke_scale) ~smoke =
  let instance = if smoke then smoke_scale instance else instance in
  let rules = Parser.parse_rules rules_src in
  let run jobs () =
    Nca_chase.Pool.with_pool ~jobs (fun pool ->
        Datalog.closure ?pool instance rules)
  in
  let time jobs =
    Gc.compact ();
    time_us ~reps (run jobs)
  in
  let c1, us1 = time 1 in
  let c2, us2 = time 2 in
  let c4, us4 = time 4 in
  let workload = "par/datalog/" ^ name in
  List.iter
    (fun c ->
      check_eq ~workload "closure" (Instance.cardinal c1) (Instance.cardinal c);
      if not (Instance.equal c1 c) then begin
        Fmt.epr "MISMATCH %s: closures differ@." workload;
        incr failures
      end)
    [ c2; c4 ];
  Json.Obj
    [
      ("kind", Json.String "par");
      ("name", Json.String ("datalog/" ^ name));
      ("db_atoms", Json.Int (Instance.cardinal instance));
      ("closure_atoms", Json.Int (Instance.cardinal c1));
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("jobs1_us", Json.Int us1);
      ("jobs2_us", Json.Int us2);
      ("jobs4_us", Json.Int us4);
      ("speedup2_x100", Json.Int (speedup_x100 ~before:us1 ~after:us2));
      ("speedup4_x100", Json.Int (speedup_x100 ~before:us1 ~after:us4));
    ]

(* Finite-model rows: the same bounded search run once on the
   depth-first completion engine (before) and once on the SAT-backed
   grounding (after), under one shared step budget. Two definitive
   verdicts must agree — an exhausted side contradicts nothing, and a
   [dfs_verdict = "exhausted"] next to a definitive [sat_verdict] is
   the row's point: the SAT engine settles fresh-element budgets the
   DFS cannot finish. Every SAT model is re-run through the
   independent checker before the row is accepted. *)
module Finite_model = Nca_chase.Finite_model

let fm_verdict_name = function
  | Finite_model.Model _ -> "model"
  | Finite_model.No_model -> "no_model"
  | Finite_model.Exhausted _ -> "exhausted"

let fm_workload ~reps (name, fresh, max_steps) =
  let entry = Rulesets.find name in
  let forbid = Some (Cq.loop_query entry.e) in
  let run engine () =
    Finite_model.search ~engine ~fresh ~max_steps ?forbid entry.instance
      entry.rules
  in
  Gc.compact ();
  let d, before_us = time_us ~reps (run Finite_model.Dfs) in
  Gc.compact ();
  let s, after_us = time_us ~reps (run Finite_model.Sat) in
  let workload = Fmt.str "fm/%s@fresh%d" name fresh in
  (match (d, s) with
  | Finite_model.Model _, Finite_model.No_model
  | Finite_model.No_model, Finite_model.Model _ ->
      Fmt.epr "MISMATCH %s: dfs %s vs sat %s@." workload (fm_verdict_name d)
        (fm_verdict_name s);
      incr failures
  | _ -> ());
  (match s with
  | Finite_model.Model m -> (
      match
        Nca_chase.Fm_check.check ?forbid ~start:entry.instance
          ~rules:entry.rules m
      with
      | Ok () -> ()
      | Error e ->
          Fmt.epr "MISMATCH %s: sat model rejected by the checker: %s@."
            workload e;
          incr failures)
  | _ -> ());
  Json.Obj
    [
      ("kind", Json.String "fm");
      ("name", Json.String (Fmt.str "%s@fresh%d" name fresh));
      ("fresh", Json.Int fresh);
      ("max_steps", Json.Int max_steps);
      ("dfs_verdict", Json.String (fm_verdict_name d));
      ("sat_verdict", Json.String (fm_verdict_name s));
      ("before_us", Json.Int before_us);
      ("after_us", Json.Int after_us);
      ("speedup_x100", Json.Int (speedup_x100 ~before:before_us ~after:after_us));
    ]

(* Rewriting rides on the same Hom hot path; no separate naive engine is
   preserved for it, so these entries record the trajectory only. *)
let rewrite_workload ~reps ~max_rounds name =
  let entry = Rulesets.find name in
  let q = Cq.atom_query entry.e in
  let out, after_us =
    time_us ~reps (fun () -> Rewrite.rewrite ~max_rounds entry.rules q)
  in
  Json.Obj
    [
      ("kind", Json.String "rewrite");
      ("name", Json.String name);
      ("max_rounds", Json.Int max_rounds);
      ("ucq_size", Json.Int (Ucq.size out.ucq));
      ("complete", Json.Bool out.complete);
      ("after_us", Json.Int after_us);
    ]

(* The termination classifier (static hierarchy + budgeted critical-
   instance chase) has no naive counterpart either; the rows pin the
   cost and the verdict so regressions in either show up in the
   trajectory. *)
let classify_workload ~reps name =
  let entry = Rulesets.find name in
  let module T = Nca_analysis.Termination in
  let t, after_us = time_us ~reps (fun () -> T.classify entry.rules) in
  let status =
    match t.T.verdict with
    | T.Terminating (c, _) -> "terminating/" ^ T.criterion_name c
    | T.Non_terminating _ -> "non-terminating"
    | T.Unknown _ -> "unknown"
  in
  Json.Obj
    [
      ("kind", Json.String "classify");
      ("name", Json.String name);
      ("verdict", Json.String status);
      ("after_us", Json.Int after_us);
      ("counters", counters_of (fun () -> T.classify entry.rules));
    ]

(* ------------------------------------------------------------------ *)

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         Atom.app "E"
           [ Term.cst (Fmt.str "c%d" i); Term.cst (Fmt.str "c%d" (i + 1)) ]))

let star n =
  Instance.of_list
    (Atom.app "H" [ Term.cst "hub" ]
    :: List.init n (fun i -> Atom.app "N" [ Term.cst (Fmt.str "n%d" i) ]))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Host metadata (bench_chase v2): makes the PR-8 caveat — a
   single-core container measures coordination overhead, not scaling —
   machine-readable, and lets bench-diff refuse to hard-fail a
   comparison across differing hosts. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "unknown" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let host_json () =
  Json.Obj
    [
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml_version", Json.String Sys.ocaml_version);
      ("os_type", Json.String Sys.os_type);
      ("git_describe", Json.String (git_describe ()));
    ]

let run_all ~smoke ~only =
  let sel name = match only with None -> true | Some s -> contains name s in
  let reps = if smoke then 1 else 3 in
  (* Budgets are per-workload: deep for the linear/join rule sets where
     the naive engine's per-round re-enumeration bites, shallow for the
     geometric ones (dense, tangle, example1_bdd) where the final round
     dominates both engines and the honest speedup is modest. *)
  let chase_workloads =
    [
      ("example1", { depth = 32; atoms = 20000 }, { depth = 8; atoms = 500 });
      ("example1_bdd", { depth = 6; atoms = 20000 }, { depth = 4; atoms = 500 });
      ("dense", { depth = 8; atoms = 20000 }, { depth = 5; atoms = 500 });
      ("tangle", { depth = 8; atoms = 20000 }, { depth = 5; atoms = 500 });
      ("succ_only", { depth = 250; atoms = 20000 }, { depth = 30; atoms = 500 });
      ("inclusion", { depth = 300; atoms = 20000 }, { depth = 30; atoms = 500 });
      ("guarded", { depth = 250; atoms = 20000 }, { depth = 30; atoms = 500 });
      ("all_pairs", { depth = 80; atoms = 20000 }, { depth = 10; atoms = 500 });
    ]
  in
  let datalog_workloads =
    [
      ( "tc_chain",
        chain (if smoke then 12 else 48),
        "tc: E(x,y), E(y,z) -> E(x,z).",
        fun i -> i );
      ( "tc_sym_random",
        Rulesets.random_instance ~seed:7
          ~constants:(if smoke then 8 else 24)
          ~atoms:(if smoke then 20 else 120)
          (Symbol.Set.singleton (Symbol.make "E" 2)),
        "sym: E(x,y) -> E(y,x). tc: E(x,y), E(y,z) -> E(x,z).",
        fun i -> i );
      ( "broadcast_star",
        star (if smoke then 10 else 60),
        "b1: H(x), N(y) -> E(x,y). b2: H(x), N(y) -> E(y,x).",
        fun i -> i );
    ]
  in
  let chase_rows =
    chase_workloads
    |> List.filter (fun (n, _, _) -> sel ("chase/" ^ n))
    |> List.map (fun w -> chase_workload ~reps w ~smoke)
  in
  let datalog_rows =
    datalog_workloads
    |> List.filter (fun (n, _, _, _) -> sel ("datalog/" ^ n))
    |> List.map (fun w -> datalog_workload ~reps w ~smoke)
  in
  let hom_target =
    let entry = Rulesets.find "example1_bdd" in
    (Chase.run ~max_depth:(if smoke then 4 else 6) entry.instance entry.rules)
      .instance
  in
  let u = Term.var "u" and v = Term.var "v" and w = Term.var "w" in
  let e s t = Atom.app "E" [ s; t ] in
  let hom_rows =
    [
      ("path2_exists_seeded", [ e u v; e v w ], hom_target);
      ("vee_join", [ e u v; e u w ], hom_target);
    ]
    |> List.filter (fun (n, _, _) -> sel ("hom/" ^ n))
    |> List.map (fun w -> hom_workload ~reps w)
  in
  let fm_rows =
    (* one step budget for both engines per row; reps = 1 because the
       interesting rows run the DFS side to its budget *)
    (if smoke then
       [ ("example1", 2, 50_000); ("succ_only", 2, 50_000) ]
     else
       [
         ("example1", 2, 500_000);
         ("example1", 4, 500_000);
         ("example1", 8, 500_000);
         ("succ_only", 2, 500_000);
         ("succ_only", 4, 500_000);
         ("succ_only", 8, 500_000);
       ])
    |> List.filter (fun (n, f, _) -> sel (Fmt.str "fm/%s@fresh%d" n f))
    |> List.map (fun w -> fm_workload ~reps:1 w)
  in
  let rewrite_rows =
    [ "example1_bdd"; "symmetric"; "sticky"; "ucq_defined" ]
    |> List.filter (fun n -> sel ("rewrite/" ^ n))
    |> List.map (rewrite_workload ~reps ~max_rounds:(if smoke then 4 else 8))
  in
  let classify_rows =
    [ "example1"; "example1_bdd"; "succ_only"; "guarded"; "sticky";
      "datalog_star" ]
    |> List.filter (fun n -> sel ("classify/" ^ n))
    |> List.map (fun n -> classify_workload ~reps n)
  in
  let provenance_rows =
    [
      ("example1", { depth = 32; atoms = 20000 }, { depth = 8; atoms = 500 });
      ("dense", { depth = 8; atoms = 20000 }, { depth = 5; atoms = 500 });
      ("inclusion", { depth = 300; atoms = 20000 }, { depth = 30; atoms = 500 });
    ]
    |> List.filter (fun (n, _, _) -> sel ("provenance/" ^ n))
    |> List.map (fun w -> provenance_workload ~reps w ~smoke)
  in
  let obs_rows =
    [
      ("example1", { depth = 32; atoms = 20000 }, { depth = 8; atoms = 500 });
      ("dense", { depth = 8; atoms = 20000 }, { depth = 5; atoms = 500 });
      ("inclusion", { depth = 300; atoms = 20000 }, { depth = 30; atoms = 500 });
    ]
    |> List.filter (fun (n, _, _) -> sel ("obs/" ^ n))
    |> List.map (fun w -> obs_workload ~reps w ~smoke)
  in
  let intern_rows =
    (if sel "intern/hom_membership" then
       [
         intern_membership_workload ~reps
           ~rounds:(if smoke then 5 else 200)
           hom_target;
       ]
     else [])
    @
    if sel "intern/rewrite_dedup" then
      [
        intern_dedup_workload ~reps
          ~rounds:(if smoke then 5 else 500)
          ~max_rounds:(if smoke then 4 else 8)
          "example1_bdd";
      ]
    else []
  in
  let plan_chase_rows =
    chase_workloads
    |> List.filter (fun (n, _, _) -> sel ("plan/chase/" ^ n))
    |> List.map (fun w -> plan_chase_workload ~reps w ~smoke)
  in
  let plan_hom_rows =
    chase_workloads
    |> List.filter (fun (n, _, _) ->
           List.mem n [ "example1"; "example1_bdd"; "dense"; "tangle";
                        "all_pairs" ])
    |> List.filter (fun (n, _, _) -> sel ("plan/hom/" ^ n))
    |> List.map (fun w -> plan_hom_workload ~reps w ~smoke)
  in
  let plan_datalog_rows =
    datalog_workloads
    |> List.filter (fun (n, _, _, _) -> sel ("plan/datalog/" ^ n))
    |> List.map (fun w -> plan_datalog_workload ~reps w ~smoke)
  in
  let par_chase_rows =
    chase_workloads
    |> List.filter (fun (n, _, _) -> List.mem n [ "example1"; "all_pairs" ])
    |> List.filter (fun (n, _, _) -> sel ("par/chase/" ^ n))
    |> List.map (fun w -> par_chase_workload ~reps w ~smoke)
  in
  let par_datalog_rows =
    datalog_workloads
    |> List.filter (fun (n, _, _, _) -> n = "tc_chain")
    |> List.filter (fun (n, _, _, _) -> sel ("par/datalog/" ^ n))
    |> List.map (fun w -> par_datalog_workload ~reps w ~smoke)
  in
  Json.Obj
    [
      ("schema", Json.String "nocliques/bench_chase/v2");
      ("smoke", Json.Bool smoke);
      ("host", host_json ());
      ("time_unit", Json.String "us");
      ( "note",
        Json.String
          "before = seed engines (predicate-scan Hom, full trigger \
           re-enumeration, string keys); after = positional-index Hom + \
           delta-driven chase + structural keys. intern rows: before = \
           string-based structural comparators, after = interned id \
           comparators on the same data. provenance rows: before = \
           chase with fact-level recording on, after = recording off, \
           so speedup_x100 is the recording overhead (100 = free). \
           fm rows: before = depth-first finite-model completion, after \
           = MACE-style SAT grounding, both under the same step budget \
           and forbidding an E-loop; an exhausted dfs_verdict next to a \
           definitive sat_verdict means the SAT engine settled a budget \
           the DFS could not finish. \
           plan rows: before = interpreted fewest-candidates-first Hom \
           search (planner disabled), after = compiled join plans with \
           leapfrog intersection, on otherwise identical engines; \
           plan/hom rows time trigger enumeration alone over the chase \
           fixpoint. par rows: the same engine at --jobs 1/2/4 on a \
           worker-domain pool; [cores] is the host's available core \
           count — with cores = 1 the domains time-slice a single core \
           and the jobs > 1 points measure coordination overhead, not \
           scaling. obs rows: before = chase with every profiling layer \
           recording (telemetry + metrics + event ring), after = all \
           off, so speedup_x100 is the recording overhead (100 = free). \
           v2 adds the host block (cores, ocaml_version, os_type, git \
           describe) consumed by `nocliques debug bench-diff`, which \
           only hard-fails comparisons between runs whose host blocks \
           match. speedup_x100 = 100 * before/after." );
      ( "workloads",
        Json.List
          (chase_rows @ datalog_rows @ hom_rows @ fm_rows @ rewrite_rows
          @ classify_rows @ provenance_rows @ obs_rows @ intern_rows
          @ plan_chase_rows @ plan_hom_rows @ plan_datalog_rows
          @ par_chase_rows @ par_datalog_rows) );
    ]

let summarize doc =
  match Json.member "workloads" doc with
  | Some (Json.List rows) ->
      List.iter
        (fun row ->
          let str k = Option.bind (Json.member k row) Json.to_str in
          let int k = Option.bind (Json.member k row) Json.to_int in
          let name =
            Fmt.str "%s/%s"
              (Option.value ~default:"?" (str "kind"))
              (Option.value ~default:"?" (str "name"))
          in
          match (int "before_us", int "after_us", int "speedup_x100") with
          | Some b, Some a, Some s ->
              Fmt.pr "%-28s %8d us -> %8d us  (%d.%02dx)@." name b a (s / 100)
                (s mod 100)
          | _ -> (
              match (int "jobs1_us", int "jobs2_us", int "jobs4_us") with
              | Some j1, Some j2, Some j4 ->
                  Fmt.pr "%-28s j1 %8d us  j2 %8d us  j4 %8d us@." name j1 j2
                    j4
              | _ ->
                  Fmt.pr "%-28s %8s    -> %8d us@." name "-"
                    (Option.value ~default:0 (int "after_us"))))
        rows
  | _ -> ()

let () =
  let argv = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" argv in
  let rec out_arg = function
    | "--out" :: path :: _ -> Some path
    | _ :: rest -> out_arg rest
    | [] -> None
  in
  let out = out_arg argv in
  let rec only_arg = function
    | "--only" :: sub :: _ -> Some sub
    | _ :: rest -> only_arg rest
    | [] -> None
  in
  let only = only_arg argv in
  let doc = run_all ~smoke ~only in
  let rendered = Fmt.str "%a" Json.pp doc in
  (* harness-rot check: the emitted document must round-trip *)
  (match Json.parse rendered with
  | Ok _ -> ()
  | Error e ->
      Fmt.epr "BENCH json does not round-trip: %s@." e;
      incr failures);
  summarize doc;
  (* a filtered run is partial — never let it overwrite the committed
     document unless an output path was asked for explicitly *)
  (if Option.is_some out || (not smoke && only = None) then begin
     let path = Option.value ~default:"BENCH_chase.json" out in
     let oc = open_out path in
     output_string oc rendered;
     output_string oc "\n";
     close_out oc;
     Fmt.pr "wrote %s@." path
   end);
  if !failures > 0 then begin
    Fmt.epr "%d failure(s)@." !failures;
    exit 2
  end
