open Nca_logic
module Chase = Nca_chase.Chase
module Trigger = Nca_chase.Trigger

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2
let loop = Cq.loop_query e2

let example1 = Nca_core.Rulesets.example1
let example1_bdd = Nca_core.Rulesets.example1_bdd

(* ------------------------------------------------------------------ *)
(* Triggers *)

let test_triggers_enumeration () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Parser.instance "E(a,b), E(b,c)" in
  let ts = Trigger.all rules i in
  (* homs: (a,b,c), (a,b)-(b,c) only... x→a y→b z→c; also x→y→z over the
     same atom pairs in the other order fails; plus (b,c)+(c,?) none. *)
  check_int "one join trigger" 1 (List.length ts)

let test_trigger_output_fresh () =
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  let i = Parser.instance "E(a,b)" in
  match Trigger.all [ rule ] i with
  | [ tr ] ->
      let out, ext = Trigger.output tr in
      check_int "one atom" 1 (Instance.cardinal out);
      let z = Subst.apply ext (Term.var "z") in
      check "existential became a null" true (Term.is_null z);
      let out2, _ = Trigger.output tr in
      check "fresh nulls each time" false (Instance.equal out out2)
  | _ -> Alcotest.fail "expected exactly one trigger"

let key_testable = Alcotest.testable Trigger.Key.pp Trigger.Key.equal

let test_trigger_key_identity () =
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  let i = Parser.instance "E(a,b)" in
  match (Trigger.all [ rule ] i, Trigger.all [ rule ] i) with
  | [ t1 ], [ t2 ] ->
      Alcotest.check key_testable "stable key" (Trigger.key t1)
        (Trigger.key t2);
      Alcotest.(check int)
        "stable hash" (Trigger.Key.hash (Trigger.key t1))
        (Trigger.Key.hash (Trigger.key t2))
  | _ -> Alcotest.fail "expected exactly one trigger"

let test_trigger_frontier_image () =
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  let i = Parser.instance "E(a,b)" in
  match Trigger.all [ rule ] i with
  | [ tr ] ->
      check "frontier image is {b}" true
        (Term.Set.equal (Trigger.frontier_image tr)
           (Term.Set.singleton (Term.cst "b")))
  | _ -> Alcotest.fail "expected exactly one trigger"

(* ------------------------------------------------------------------ *)
(* Chase basics *)

let test_chase_example1 () =
  let c = Chase.run ~max_depth:4 example1.instance example1.rules in
  check "no loop in chase of Example 1" false (Chase.entails c loop);
  check "E(a,b) kept" true
    (Instance.mem (Atom.make e2 [ Term.cst "a"; Term.cst "b" ]) c.instance);
  check "grows" true (Instance.cardinal c.instance > 1);
  check "not saturated" false (c.saturated

)

let test_chase_example1_bdd_loop () =
  let c = Chase.run ~max_depth:3 example1_bdd.instance example1_bdd.rules in
  check "loop entailed" true (Chase.entails c loop);
  match Chase.holds_at c loop with
  | Some level -> check "loop appears by level 2" true (level <= 2)
  | None -> Alcotest.fail "loop expected"

let test_chase_datalog_saturates () =
  let rules = Parser.parse_rules "sym: E(x,y) -> E(y,x)." in
  let c = Chase.run (Parser.instance "E(a,b)") rules in
  check "saturated" true c.saturated;
  check_int "two atoms" 2 (Instance.cardinal c.instance);
  check "symmetric edge" true
    (Instance.mem (Atom.make e2 [ Term.cst "b"; Term.cst "a" ]) c.instance)

let test_chase_levels_monotone () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        check "levels grow" true (Instance.subset a b);
        pairs rest
    | _ -> ()
  in
  pairs c.levels;
  check_int "levels count" (c.depth + 1) (List.length c.levels)

let test_chase_level_access () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  check "level 0 is the database" true
    (Instance.equal (Chase.level c 0) example1.instance);
  check "level beyond depth clamps" true
    (Instance.equal (Chase.level c 99) c.instance)

let test_chase_timestamps () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  check "database terms at 0" true
    (Chase.timestamp c (Term.cst "a") = Some 0);
  check "terms outside the chase have no timestamp" true
    (Chase.timestamp c (Term.cst "not-in-the-chase") = None);
  Term.Set.iter
    (fun t ->
      check "invented terms have positive timestamps" true
        (match Chase.timestamp c t with Some ts -> ts > 0 | None -> false))
    (Chase.invented c)

let test_chase_provenance () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  Term.Set.iter
    (fun t ->
      match Term.Map.find_opt t c.provenance with
      | None -> Alcotest.fail "invented term without provenance"
      | Some p ->
          check "created by the existential rule" true
            (String.equal (Rule.name p.rule) "succ");
          check "provenance level matches timestamp" true
            (Some p.level = Chase.timestamp c t))
    (Chase.invented c)

let test_chase_oblivious_refire () =
  (* the oblivious chase fires a trigger even when its output is already
     present: E(a,b) with rule E(x,y) -> E(y,z) twice over the same atom
     is a single trigger, but a symmetric pair gives two *)
  let rules = Parser.parse_rules "r: E(x,y) -> E(y,z)." in
  let c = Chase.run ~max_depth:1 (Parser.instance "E(a,b), E(b,a)") rules in
  check_int "two fresh terms at level 1" 2
    (Term.Set.cardinal (Chase.invented c))

let test_chase_max_atoms () =
  let c =
    Chase.run ~max_depth:50 ~max_atoms:30 example1.instance example1.rules
  in
  check "stopped on the atom budget" true
    (match c.stopped with
    | Some e -> e.Nca_obs.Exhausted.resource = Nca_obs.Exhausted.Atoms
    | None -> false);
  check "did not explode" true (Instance.cardinal c.instance < 1000)

let test_chase_from_top () =
  let rules =
    Parser.parse_rules "init: TOP -> E(x,y). succ: E(x,y) -> E(y,z)."
  in
  let c = Chase.run ~max_depth:3 Instance.top rules in
  check "E created from ⊤" true
    (Cq.holds c.instance (Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "v" ] ]));
  check "all terms invented" true
    (Term.Set.equal (Chase.invented c) (Chase.terms c))

let test_chase_empty_rules () =
  let c = Chase.run example1.instance [] in
  check "saturated immediately" true c.saturated;
  check "instance unchanged" true (Instance.equal c.instance example1.instance)

let test_timestamp_multiset () =
  let c = Chase.run ~max_depth:2 example1.instance example1.rules in
  let ms = Chase.timestamp_multiset c (Instance.adom example1.instance) in
  check_int "two database terms at 0" 2
    (Nca_graph.Multiset.Int_multiset.count 0 ms)

let test_e_graph () =
  let c = Chase.run ~max_depth:2 example1.instance example1.rules in
  let g = Chase.e_graph e2 c in
  check "edges present" true (Nca_graph.Digraph.Term_graph.num_edges g > 0)

(* ------------------------------------------------------------------ *)
(* Universality-flavored checks *)

let test_chase_entails_its_queries () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  let q = Parser.query "? E(x,y), E(y,z)" in
  check "path of 2 entailed" true (Chase.entails c q)

let test_chase_dag_for_forward_existential () =
  (* Observation 35: the chase of a forward-existential set is a DAG *)
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let _, existential = Rule.split_datalog entry.rules in
      let c = Chase.run ~max_depth:4 entry.instance existential in
      Term.Set.iter
        (fun _ -> ())
        (Chase.invented c);
      let g = Nca_graph.Digraph.of_instance entry.e c.instance in
      check (name ^ " existential chase is a DAG") true
        (Nca_graph.Digraph.Term_graph.is_dag g || not
           (Nca_surgery.Properties.is_forward_existential existential)))
    [ "succ_only"; "example1_bdd"; "inclusion" ]

let test_holds_at_first_level () =
  let c = Chase.run ~max_depth:3 example1_bdd.instance example1_bdd.rules in
  match Chase.holds_at c loop with
  | None -> Alcotest.fail "loop expected"
  | Some k ->
      check "not at level 0" true (k > 0);
      check "loop absent one level earlier" false
        (Cq.holds (Chase.level c (k - 1)) loop)

(* ------------------------------------------------------------------ *)
(* Properties *)

let rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Nca_core.Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 10000))

let prop_chase_monotone_in_depth =
  QCheck.Test.make ~name:"deeper chase contains shallower" ~count:30 rules_arb
    (fun rules ->
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let c2 = Chase.run ~max_depth:2 i rules in
      let c4 = Chase.run ~max_depth:4 i rules in
      (* fresh nulls differ between runs; compare up to homomorphism *)
      Hom.exists (Instance.atoms c2.instance) c4.instance)

let prop_chase_preserves_database =
  QCheck.Test.make ~name:"chase contains the database" ~count:30 rules_arb
    (fun rules ->
      let i = Parser.instance "E(c0,c1), B(c1)" in
      let c = Chase.run ~max_depth:3 i rules in
      Instance.subset i c.instance)

let prop_dag_forward_existential =
  QCheck.Test.make ~name:"Obs 35: fwd-existential chase from ⊤+seed is a DAG"
    ~count:30 rules_arb (fun rules ->
      QCheck.assume (Nca_surgery.Properties.is_forward_existential rules);
      let _, existential = Rule.split_datalog rules in
      let i = Parser.instance "E(c0,c1)" in
      let c = Chase.run ~max_depth:4 i existential in
      (* edges among invented terms only (database edges may be arbitrary) *)
      let g =
        Nca_graph.Digraph.Term_graph.restrict
          (Nca_graph.Digraph.Term_graph.VSet.of_list
             (Term.Set.elements (Chase.invented c)))
          (Chase.e_graph e2 c)
      in
      Nca_graph.Digraph.Term_graph.is_dag g)

(* Random instances over {E/2, F/2} mixing constants and variables, for
   the delta-decomposition property below. *)
let delta_atom_gen =
  QCheck.Gen.(
    let term =
      oneof
        [
          map (fun i -> Term.var (Printf.sprintf "v%d" (abs i mod 4))) int;
          map (fun i -> Term.cst (Printf.sprintf "c%d" (abs i mod 3))) int;
        ]
    in
    let* s = term in
    let* t = term in
    let* choice = bool in
    return (if choice then Atom.app "E" [ s; t ] else Atom.app "F" [ s; t ]))

let delta_instance_arb =
  QCheck.make
    QCheck.Gen.(map Instance.of_list (list_size (int_range 0 10) delta_atom_gen))

let delta_rules =
  Parser.parse_rules
    {| succ: E(x,y) -> E(y,z).
       tc: E(x,y), E(y,z) -> E(x,z).
       mix: E(x,y), F(y,z) -> F(x,w). |}

(* The pivot decomposition behind the semi-naive chase:
   all_delta rules ~total ~delta enumerates exactly the triggers of
   [total] that are not triggers of [total ∖ delta], each once. *)
let prop_all_delta_is_set_difference =
  QCheck.Test.make
    ~name:"Trigger.all_delta = all(total) minus all(total∖delta)" ~count:500
    (QCheck.pair delta_instance_arb delta_instance_arb) (fun (i1, i2) ->
      let total = Instance.union i1 i2 in
      let delta = i2 in
      let old = Instance.diff total delta in
      let keys trs = List.sort Trigger.Key.compare (List.map Trigger.key trs) in
      let got = keys (Trigger.all_delta delta_rules ~total ~delta) in
      let old_keys = keys (Trigger.all delta_rules old) in
      let expected =
        List.filter
          (fun k -> not (List.exists (Trigger.Key.equal k) old_keys))
          (keys (Trigger.all delta_rules total))
      in
      List.equal Trigger.Key.equal got expected)

let test_seed_with_guard () =
  let module D = Nca_chase.Datalog in
  let x = Term.var "x" and y = Term.var "y" in
  let pat = Atom.app "E" [ x; y ] in
  (match D.seed_with pat (Atom.app "E" [ Term.cst "a"; Term.cst "b" ]) with
  | Some s ->
      check "binds x" true (Term.equal (Subst.apply s x) (Term.cst "a"));
      check "binds y" true (Term.equal (Subst.apply s y) (Term.cst "b"))
  | None -> Alcotest.fail "expected a seeding");
  check "predicate mismatch is None (not an exception)" true
    (D.seed_with pat (Atom.app "F" [ Term.cst "a"; Term.cst "b" ]) = None);
  check "arity mismatch is None (not an exception)" true
    (D.seed_with pat (Atom.app "E" [ Term.cst "a" ]) = None);
  check "constant clash is None" true
    (D.seed_with
       (Atom.app "E" [ Term.cst "a"; y ])
       (Atom.app "E" [ Term.cst "b"; Term.cst "c" ])
    = None)

let prop_offending_cycle_certificate =
  QCheck.Test.make ~name:"offending_cycle is a real special-edge cycle"
    ~count:100 rules_arb (fun rules ->
      let module A = Nca_chase.Acyclicity in
      match A.offending_cycle rules with
      | None -> A.is_weakly_acyclic rules
      | Some cycle ->
          let edges = A.dependency_graph rules in
          let edge ?special u v =
            List.exists
              (fun (e : A.edge) ->
                e.source = u && e.target = v
                &&
                match special with None -> true | Some s -> e.special = s)
              edges
          in
          let rec pairs = function
            | u :: (v :: _ as rest) -> (u, v) :: pairs rest
            | _ -> []
          in
          let ps = pairs cycle in
          (not (A.is_weakly_acyclic rules))
          && ps <> []
          && List.hd cycle = List.nth cycle (List.length cycle - 1)
          && List.for_all (fun (u, v) -> edge u v) ps
          && (let u, v = List.hd ps in
              edge ~special:true u v))

let test_acyclicity_certificate_example () =
  let module A = Nca_chase.Acyclicity in
  let rules = Parser.parse_rules "g: A(x) -> E(x,y), A(y)." in
  check "not weakly acyclic" false (A.is_weakly_acyclic rules);
  match A.offending_cycle rules with
  | None -> Alcotest.fail "expected a certificate"
  | Some cycle -> check "cycle closes" true (List.hd cycle = List.nth cycle (List.length cycle - 1))

let test_acyclicity_negative () =
  let module A = Nca_chase.Acyclicity in
  (* special edges exist (y is existential) but no cycle through one *)
  let rules = Parser.parse_rules "r: E(x,y) -> A(x). s: A(x) -> B(x,y)." in
  check "weakly acyclic" true (A.is_weakly_acyclic rules);
  check "no certificate" true (A.offending_cycle rules = None)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_chase_monotone_in_depth;
      prop_chase_preserves_database;
      prop_dag_forward_existential;
      prop_all_delta_is_set_difference;
      prop_offending_cycle_certificate;
    ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "chase"
    [
      ( "trigger",
        [
          tc "enumeration" test_triggers_enumeration;
          tc "fresh output" test_trigger_output_fresh;
          tc "key identity" test_trigger_key_identity;
          tc "frontier image" test_trigger_frontier_image;
        ] );
      ( "chase",
        [
          tc "example 1" test_chase_example1;
          tc "example 1 bdd loops" test_chase_example1_bdd_loop;
          tc "datalog saturates" test_chase_datalog_saturates;
          tc "levels monotone" test_chase_levels_monotone;
          tc "level access" test_chase_level_access;
          tc "timestamps" test_chase_timestamps;
          tc "provenance" test_chase_provenance;
          tc "oblivious refire" test_chase_oblivious_refire;
          tc "max atoms" test_chase_max_atoms;
          tc "from top" test_chase_from_top;
          tc "empty rules" test_chase_empty_rules;
          tc "timestamp multiset" test_timestamp_multiset;
          tc "e-graph" test_e_graph;
        ] );
      ( "semantics",
        [
          tc "entails queries" test_chase_entails_its_queries;
          tc "dag for fwd-existential" test_chase_dag_for_forward_existential;
          tc "first loop level" test_holds_at_first_level;
        ] );
      ( "acyclicity",
        [
          tc "certificate on a cyclic set" test_acyclicity_certificate_example;
          tc "no certificate on a weakly acyclic set" test_acyclicity_negative;
        ] );
      ("datalog", [ tc "seed_with guards" test_seed_with_guard ]);
      ("properties", props);
    ]
