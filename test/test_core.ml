open Nca_logic
module Valley = Nca_core.Valley
module Witness = Nca_core.Witness
module Theorem1 = Nca_core.Theorem1
module Rulesets = Nca_core.Rulesets
module Tabular = Nca_core.Tabular
module MS = Nca_graph.Multiset.Int_multiset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let w = Term.var "w"
let e s t = Atom.app "E" [ s; t ]

(* ------------------------------------------------------------------ *)
(* Valley queries *)

let test_valley_basic () =
  (* x ← z → y : a V shape, the eponymous valley *)
  let q = Cq.make ~answer:[ x; y ] [ e z x; e z y ] in
  check "V shape is a valley" true (Valley.is_valley q);
  check "two-max" true (Valley.shape q = Valley.Two_max)

let test_valley_single_max () =
  (* y → x : x is the only maximal variable *)
  let q = Cq.make ~answer:[ x; y ] [ e y x ] in
  check "edge is a valley" true (Valley.is_valley q);
  check "single max x" true (Valley.shape q = Valley.Single_max `X);
  let q' = Cq.make ~answer:[ x; y ] [ e x y ] in
  check "single max y" true (Valley.shape q' = Valley.Single_max `Y)

let test_valley_disconnected () =
  let q = Cq.make ~answer:[ x; y ] [ e z x; e w y ] in
  check "valley" true (Valley.is_valley q);
  check "disconnected" true (Valley.shape q = Valley.Disconnected)

let test_not_valley_peak () =
  (* x → z ← y has the existential z maximal: not a valley *)
  let q = Cq.make ~answer:[ x; y ] [ e x z; e y z ] in
  check "peak is not a valley" false (Valley.is_valley q)

let test_not_valley_cycle () =
  let q = Cq.make ~answer:[ x; y ] [ e x y; e y x ] in
  check "cycle is not a valley" false (Valley.is_valley q)

let test_not_valley_wrong_arity () =
  let q = Cq.make ~answer:[ x ] [ e x y ] in
  check "unary answers rejected" false (Valley.is_valley q)

let test_valley_order_graph () =
  let q = Cq.make ~answer:[ x; y ] [ e z x; e z y ] in
  let g = Valley.order_graph q in
  check "z below x" true (Nca_graph.Digraph.Term_graph.reaches z x g);
  check "x not below z" false (Nca_graph.Digraph.Term_graph.reaches x z g);
  check "maximal = {x,y}" true
    (Term.Set.equal (Valley.maximal_vars q) (Term.Set.of_list [ x; y ]))

let test_functional_lemma42 () =
  (* over a DAG instance, a path query y →…→ x defines a function *)
  let i = Parser.instance "E(a,b), E(b,c), E(d,c)" in
  let q = Cq.make ~answer:[ x; y ] [ e y x ] in
  check "edge relation functional on this DAG" false
    (Valley.functional_on i q);
  (* E(a,b),E(b,c): from a the only edge goes to b; functional *)
  let i2 = Parser.instance "E(a,b), E(b,c)" in
  let q2 = Cq.make ~answer:[ y; x ] [ e y x ] in
  check "out-degree-1 DAG functional" true (Valley.functional_on i2 q2)

let test_defines_tournament () =
  let i = Parser.instance "E(a,b), E(b,c), E(a,c)" in
  let q = Cq.make ~answer:[ x; y ] [ e x y ] in
  check "triangle" true
    (Valley.defines_tournament i q
       [ Term.cst "a"; Term.cst "b"; Term.cst "c" ]);
  check "missing pair" false
    (Valley.defines_tournament i q
       [ Term.cst "a"; Term.cst "b"; Term.cst "d" ])

let test_loop_witness_disconnected_case () =
  (* Prop 43, disconnected case, materialized: q(x,y) = E(z,x) ∧ E(w,y);
     on a 4-tournament of sinks the same u ends both sides *)
  let i =
    Parser.instance
      "E(s,k1), E(s,k2), E(s,k3), E(s,k4)"
  in
  let q = Cq.make ~answer:[ x; y ] [ e z x; e w y ] in
  let k = [ Term.cst "k1"; Term.cst "k2"; Term.cst "k3"; Term.cst "k4" ] in
  check "q-tournament" true (Valley.defines_tournament i q k);
  check "loop witness exists" true
    (Option.is_some (Valley.loop_witness_in_tournament i q k))

(* ------------------------------------------------------------------ *)
(* Witness analysis on regalized example1_bdd *)

let regal_analysis =
  lazy
    (let entry = Rulesets.example1_bdd in
     let p = Nca_surgery.Pipeline.regalize entry.instance entry.rules in
     Witness.analyze ~depth:4 ~e:entry.e p.final)

let test_analysis_dag () =
  let t = Lazy.force regal_analysis in
  (* Observation 35 *)
  let g =
    Nca_graph.Digraph.of_instance t.e t.chase_ex.Nca_chase.Chase.instance
  in
  check "Ch(R∃) is a DAG" true (Nca_graph.Digraph.Term_graph.is_dag g)

let test_analysis_rewriting_complete () =
  let t = Lazy.force regal_analysis in
  check "Q_⊠ computed to fixpoint" true t.rewriting_complete;
  check "Q_⊠ nonempty" true (Ucq.size t.rewriting > 0)

let test_observation37_witnesses_nonempty () =
  let t = Lazy.force regal_analysis in
  let edges = Witness.edges t in
  check "edges exist" true (edges <> []);
  List.iter
    (fun (s, tt) ->
      check "W(s,t) nonempty" true (Witness.witnesses t s tt <> []))
    edges

let test_valley_witness_every_edge () =
  let t = Lazy.force regal_analysis in
  List.iter
    (fun (s, tt) ->
      match Witness.valley_witness t s tt with
      | None -> Alcotest.fail "no valley witness"
      | Some (q, h) ->
          check "witness is a valley" true (Valley.is_valley q);
          (* and it is a genuine injective witness *)
          let img = Subst.apply_atoms h (Cq.body q) in
          check "image inside Ch(R∃)" true
            (List.for_all
               (fun a -> Instance.mem a t.chase_ex.Nca_chase.Chase.instance)
               img))
    (Witness.edges t)

let test_peak_removal_decreases () =
  let t = Lazy.force regal_analysis in
  List.iter
    (fun (s, tt) ->
      let ws = Witness.witnesses t s tt in
      List.iter
        (fun witness ->
          let outcome = Witness.remove_peaks t s tt witness in
          (* multisets strictly decrease along the steps *)
          let rec strictly_decreasing = function
            | a :: (b :: _ as rest) ->
                MS.compare_lex b.Witness.timestamp_multiset
                  a.Witness.timestamp_multiset
                < 0
                && strictly_decreasing rest
            | _ -> true
          in
          check "TSₘ strictly decreases" true
            (strictly_decreasing outcome.steps);
          check "ends in a valley" true (Option.is_some outcome.valley))
        ws)
    (Witness.edges t)

let test_color_edges () =
  let t = Lazy.force regal_analysis in
  let g = Nca_graph.Digraph.of_instance t.e t.full in
  let k = Nca_graph.Tournament.max_tournament g in
  check "tournament of size ≥ 3" true (List.length k >= 3);
  match Witness.color_edges t k with
  | None -> Alcotest.fail "coloring failed"
  | Some colored ->
      check_int "one color per unordered pair"
        (List.length k * (List.length k - 1) / 2)
        (List.length colored);
      List.iter
        (fun (_, q) -> check "colors are valleys" true (Valley.is_valley q))
        colored

let test_monochromatic_subtournament () =
  let t = Lazy.force regal_analysis in
  let g = Nca_graph.Digraph.of_instance t.e t.full in
  let k = Nca_graph.Tournament.max_tournament g in
  match Witness.monochromatic_subtournament t k with
  | None -> Alcotest.fail "expected a monochromatic sub-tournament"
  | Some (q, sub) ->
      check "valley color" true (Valley.is_valley q);
      check "sub-tournament nonempty" true (sub <> [])

(* ------------------------------------------------------------------ *)
(* Theorem 1 validation *)

let test_theorem1_example1 () =
  let entry = Rulesets.example1 in
  let v = Theorem1.validate ~max_depth:5 ~e:entry.e entry.instance entry.rules in
  check "tournaments grow" true (v.max_tournament >= 4);
  check "no loop (not bdd: no contradiction)" false v.loop

let test_theorem1_example1_bdd () =
  let entry = Rulesets.example1_bdd in
  let v = Theorem1.validate ~max_depth:4 ~e:entry.e entry.instance entry.rules in
  check "tournament present" true (v.max_tournament >= 3);
  check "loop entailed" true v.loop;
  check "implication holds" true (Theorem1.implication_holds ~threshold:3 v)

let test_theorem1_zoo_bdd_sets () =
  (* Theorem 1 on every bdd zoo entry: tournament ≥ 4 forces a loop *)
  List.iter
    (fun (entry : Rulesets.entry) ->
      match entry.bdd_expected with
      | Some true ->
          let v =
            Theorem1.validate ~max_depth:4 ~max_atoms:4000 ~e:entry.e
              entry.instance entry.rules
          in
          check (entry.name ^ ": Theorem 1") true
            (Theorem1.implication_holds ~threshold:4 v)
      | _ -> ())
    Rulesets.zoo

let test_theorem1_series_monotone () =
  let entry = Rulesets.example1 in
  let s = Theorem1.series ~max_depth:4 ~e:entry.e entry.instance entry.rules in
  check "levels counted" true (List.length s >= 4);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Theorem1.level_atoms <= b.Theorem1.level_atoms
        && a.Theorem1.level_tournament <= b.Theorem1.level_tournament
        && monotone rest
    | _ -> true
  in
  check "atoms and tournaments monotone" true (monotone s)

let test_theorem1_tournament_bound () =
  check_int "bound for 1 disjunct" 4
    (Theorem1.tournament_size_bound ~rewriting_disjuncts:1);
  check_int "bound for 2 disjuncts" 18
    (Theorem1.tournament_size_bound ~rewriting_disjuncts:2);
  check "monotone in disjuncts" true
    (Theorem1.tournament_size_bound ~rewriting_disjuncts:3
    > Theorem1.tournament_size_bound ~rewriting_disjuncts:2)

let test_all_pairs_tournament_with_loop () =
  let entry = Rulesets.all_pairs in
  let v = Theorem1.validate ~max_depth:3 ~e:entry.e entry.instance entry.rules in
  check "big tournament" true (v.max_tournament >= 3);
  check "loop present, as Theorem 1 demands" true v.loop

(* ------------------------------------------------------------------ *)
(* Rule-set zoo integrity *)

let test_zoo_names_unique () =
  let names = List.map (fun (en : Rulesets.entry) -> en.name) Rulesets.zoo in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_zoo_instances_match_signatures () =
  List.iter
    (fun (entry : Rulesets.entry) ->
      check (entry.name ^ " instance nonempty") true
        (not (Instance.is_empty entry.instance)))
    Rulesets.zoo

let test_zoo_find () =
  check "find example1" true
    (String.equal (Rulesets.find "example1").name "example1");
  check "find raises" true
    (try
       ignore (Rulesets.find "nope");
       false
     with Not_found -> true)

let test_random_rules_shape () =
  let rules = Rulesets.random_forward_existential_rules ~seed:42 ~rules:6 in
  check "nonempty" true (rules <> []);
  check "all linear" true
    (List.for_all (fun r -> List.length (Rule.body r) = 1) rules);
  check "deterministic" true
    (List.equal Rule.equal rules
       (Rulesets.random_forward_existential_rules ~seed:42 ~rules:6))

let test_random_instance_shape () =
  let sign = Symbol.Set.of_list [ e2; Symbol.make "A" 1 ] in
  let i = Rulesets.random_instance ~seed:7 ~constants:3 ~atoms:5 sign in
  check "bounded" true (Instance.cardinal i <= 5);
  check "over signature" true
    (Symbol.Set.subset (Instance.signature i) sign)

(* ------------------------------------------------------------------ *)
(* Section 6: UCQ-defined tournaments *)

let test_definable_rules () =
  let r = Atom.app "R" [ x; y ] and s = Atom.app "S" [ y; x ] in
  let ucq =
    Ucq.make [ Cq.make ~answer:[ x; y ] [ r ]; Cq.make ~answer:[ x; y ] [ s ] ]
  in
  let defs = Nca_core.Definable.definition_rules ~e:e2 ucq in
  check_int "one rule per disjunct" 2 (List.length defs);
  check "all datalog" true (List.for_all Rule.is_datalog defs)

let test_definable_freshness () =
  let ucq = Ucq.make [ Cq.make ~answer:[ x; y ] [ e x y ] ] in
  check "E inside the UCQ rejected" true
    (try
       ignore (Nca_core.Definable.definition_rules ~e:e2 ucq);
       false
     with Invalid_argument _ -> true);
  let ucq_r = Ucq.make [ Cq.make ~answer:[ x; y ] [ Atom.app "R" [ x; y ] ] ] in
  check "E in the rule set rejected" true
    (try
       ignore
         (Nca_core.Definable.extend ~e:e2 ucq_r
            (Parser.parse_rules "r: E(x,y) -> E(y,x)."));
       false
     with Invalid_argument _ -> true)

let test_definable_preserves_bdd () =
  let ucq_r =
    Ucq.make
      [
        Cq.make ~answer:[ x; y ] [ Atom.app "R" [ x; y ] ];
        Cq.make ~answer:[ x; y ] [ Atom.app "S" [ y; x ] ];
      ]
  in
  let base = Parser.parse_rules "gr: R(x,y) -> R(y,z). gs: R(x,y) -> S(x,w)." in
  check "Section 6 remark holds" true
    (Nca_core.Definable.preserves_bdd ~e:e2 ucq_r base)

let test_definable_zoo_entry () =
  let entry = Rulesets.ucq_defined in
  let v = Theorem1.validate ~max_depth:4 ~e:entry.e entry.instance entry.rules in
  check "theorem 1 shadow" true (Theorem1.implication_holds ~threshold:4 v);
  (* the defined E contains both R-edges and reversed S-edges *)
  let chase = Nca_chase.Chase.run ~max_depth:3 entry.instance entry.rules in
  let has_pred p =
    Instance.exists
      (fun a -> Symbol.equal (Atom.pred a) (Symbol.make p 2))
      chase.instance
  in
  check "R present" true (has_pred "R");
  check "E derived" true (has_pred "E")

(* ------------------------------------------------------------------ *)
(* Tabular *)

let test_tabular_renders () =
  let out =
    Fmt.str "%a" Tabular.pp
      (Tabular.make ~header:[ "name"; "value" ]
         [ [ "alpha"; "1" ]; [ "beta-long"; "22" ] ])
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check "contains header" true (contains out "name");
  check "aligned cell" true (contains out "beta-long");
  check "row padding" true (String.length out > 20)

let test_tabular_pads_short_rows () =
  let t = Tabular.make ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  let out = Fmt.str "%a" Tabular.pp t in
  check "renders" true (String.length out > 0)

(* ------------------------------------------------------------------ *)
(* End-to-end: the paper's pipeline on a second rule set *)

let test_end_to_end_tangle () =
  let entry = Rulesets.tangle in
  let p = Nca_surgery.Pipeline.regalize entry.instance entry.rules in
  check "pipeline ok" true p.complete;
  let t = Witness.analyze ~depth:4 ~e:entry.e p.final in
  let g = Nca_graph.Digraph.of_instance t.e t.full in
  let tournament = Nca_graph.Tournament.max_tournament_size g in
  let loop = Cq.holds t.full (Cq.loop_query t.e) in
  (* Theorem 1 finite shadow *)
  check "tangle: tournament ≥ 4 ⟹ loop" true (tournament < 4 || loop)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_theorem1_random_linear =
  QCheck.Test.make ~name:"Theorem 1 shadow on random linear bdd sets"
    ~count:20
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Rulesets.random_forward_existential_rules ~seed ~rules:5)
           (int_range 0 10000)))
    (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0), B(c1)" in
      let v = Theorem1.validate ~max_depth:4 ~max_atoms:3000 ~e:e2 i rules in
      Theorem1.implication_holds ~threshold:4 v)

let prop_valley_shapes_total =
  QCheck.Test.make ~name:"every valley query has a shape" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let term =
           map (fun i -> Term.var (Printf.sprintf "v%d" (abs i mod 4))) int
         in
         list_size (int_range 1 4)
           (map2 (fun s t -> e s t) term term)))
    (fun atoms ->
      match
        (try
           Some
             (Cq.make
                ~answer:
                  [ Term.var "v0"; Term.var "v1" ]
                atoms)
         with Invalid_argument _ -> None)
      with
      | None -> true
      | Some q ->
          if Valley.is_valley q then (
            ignore (Valley.shape q);
            true)
          else true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_theorem1_random_linear; prop_valley_shapes_total ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "core"
    [
      ( "valley",
        [
          tc "V shape" test_valley_basic;
          tc "single max" test_valley_single_max;
          tc "disconnected" test_valley_disconnected;
          tc "peak rejected" test_not_valley_peak;
          tc "cycle rejected" test_not_valley_cycle;
          tc "arity" test_not_valley_wrong_arity;
          tc "order graph" test_valley_order_graph;
          tc "lemma 42 functional" test_functional_lemma42;
          tc "defines tournament" test_defines_tournament;
          tc "prop 43 disconnected" test_loop_witness_disconnected_case;
        ] );
      ( "witness",
        [
          tc "dag (obs 35)" test_analysis_dag;
          tc "rewriting complete" test_analysis_rewriting_complete;
          tc "witnesses nonempty (obs 37)" test_observation37_witnesses_nonempty;
          tc "valley witness per edge (lemma 40)" test_valley_witness_every_edge;
          tc "peak removal decreases TSₘ" test_peak_removal_decreases;
          tc "edge coloring (prop 41)" test_color_edges;
          tc "monochromatic sub-tournament" test_monochromatic_subtournament;
        ] );
      ( "theorem1",
        [
          tc "example 1" test_theorem1_example1;
          tc "example 1 bdd" test_theorem1_example1_bdd;
          tc "zoo" test_theorem1_zoo_bdd_sets;
          tc "series monotone" test_theorem1_series_monotone;
          tc "tournament bound (question 46)" test_theorem1_tournament_bound;
          tc "all-pairs loop" test_all_pairs_tournament_with_loop;
        ] );
      ( "zoo",
        [
          tc "unique names" test_zoo_names_unique;
          tc "instances" test_zoo_instances_match_signatures;
          tc "find" test_zoo_find;
          tc "random rules" test_random_rules_shape;
          tc "random instances" test_random_instance_shape;
        ] );
      ( "tabular",
        [
          tc "renders" test_tabular_renders;
          tc "pads" test_tabular_pads_short_rows;
        ] );
      ( "definable",
        [
          tc "rules" test_definable_rules;
          tc "freshness" test_definable_freshness;
          tc "preserves bdd" test_definable_preserves_bdd;
          tc "zoo entry" test_definable_zoo_entry;
        ] );
      ("end-to-end", [ tc "tangle pipeline" test_end_to_end_tangle ]);
      ("qcheck", props);
    ]
