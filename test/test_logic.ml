open Nca_logic

let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let a = Term.cst "a"
let b = Term.cst "b"
let e s t = Atom.app "E" [ s; t ]
let f s t = Atom.app "F" [ s; t ]
let p t = Atom.app "P" [ t ]

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Symbols *)

let test_symbol_basics () =
  let s = Symbol.make "E" 2 in
  check_int "arity" 2 (Symbol.arity s);
  Alcotest.(check string) "name" "E" (Symbol.name s);
  check "equal" true (Symbol.equal s (Symbol.make "E" 2));
  check "arity distinguishes" false (Symbol.equal s (Symbol.make "E" 3));
  check "top is nullary" true (Symbol.arity Symbol.top = 0)

let test_symbol_invalid () =
  Alcotest.check_raises "negative arity"
    (Invalid_argument "Symbol.make: negative arity") (fun () ->
      ignore (Symbol.make "E" (-1)));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Symbol.make: empty name") (fun () ->
      ignore (Symbol.make "" 1))

let test_binary_signature () =
  let s = Symbol.Set.of_list [ Symbol.make "E" 2; Symbol.make "A" 1 ] in
  check "binary" true (Symbol.is_binary_signature s);
  let s3 = Symbol.Set.add (Symbol.make "T" 3) s in
  check "ternary not binary" false (Symbol.is_binary_signature s3)

(* ------------------------------------------------------------------ *)
(* Terms *)

let test_term_kinds () =
  check "var" true (Term.is_var x);
  check "cst" true (Term.is_cst a);
  check "null" true (Term.is_null (Term.null 1));
  check "var mappable" true (Term.is_mappable x);
  check "null mappable" true (Term.is_mappable (Term.null 1));
  check "cst rigid" false (Term.is_mappable a)

let test_term_fresh () =
  let v1 = Term.fresh_var () and v2 = Term.fresh_var () in
  check "fresh vars distinct" false (Term.equal v1 v2);
  let n1 = Term.fresh_null () and n2 = Term.fresh_null () in
  check "fresh nulls distinct" false (Term.equal n1 n2)

let test_term_order_total () =
  let terms = [ x; y; a; b; Term.null 1; Term.null 2 ] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let c12 = Term.compare t1 t2 and c21 = Term.compare t2 t1 in
          check "antisymmetric" true (Int.compare c12 (-c21) = 0))
        terms)
    terms

(* ------------------------------------------------------------------ *)
(* Atoms *)

let test_atom_basics () =
  let at = e x y in
  check_int "arity" 2 (Atom.arity at);
  check "binary" true (Atom.is_binary at);
  check "edge view" true (Atom.as_edge at = Some (x, y));
  check "vars" true (Term.Set.equal (Atom.vars at) (Term.Set.of_list [ x; y ]));
  check "terms of ground atom" true
    (Term.Set.equal (Atom.terms (e a b)) (Term.Set.of_list [ a; b ]))

let test_atom_arity_mismatch () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Atom.make: E/2 applied to 1 arguments") (fun () ->
      ignore (Atom.make (Symbol.make "E" 2) [ x ]))

let test_atom_map () =
  let at = Atom.map (fun t -> if Term.equal t x then a else t) (e x y) in
  check "map substitutes" true (Atom.equal at (e a y))

let test_atom_vars_excludes_constants () =
  check "constants not vars" true
    (Term.Set.equal (Atom.vars (e a y)) (Term.Set.singleton y))

(* ------------------------------------------------------------------ *)
(* Substitutions *)

let test_subst_apply () =
  let s = Subst.of_list [ (x, a); (y, b) ] in
  check "x→a" true (Term.equal (Subst.apply s x) a);
  check "z untouched" true (Term.equal (Subst.apply s z) z);
  check "atom image" true (Atom.equal (Subst.apply_atom s (e x y)) (e a b))

let test_subst_rejects_constants () =
  Alcotest.check_raises "constant domain"
    (Invalid_argument "Subst.add: constant a in domain") (fun () ->
      ignore (Subst.add a x Subst.empty))

let test_subst_compose () =
  let s1 = Subst.singleton x y in
  let s2 = Subst.singleton y a in
  let s = Subst.compose s1 s2 in
  check "x→a through composition" true (Term.equal (Subst.apply s x) a);
  check "y→a kept" true (Term.equal (Subst.apply s y) a)

let test_subst_restrict () =
  let s = Subst.of_list [ (x, a); (y, b) ] in
  let r = Subst.restrict (Term.Set.singleton x) s in
  check "kept" true (Subst.mem x r);
  check "dropped" false (Subst.mem y r)

let test_subst_injective () =
  let s = Subst.of_list [ (x, a); (y, a) ] in
  check "not injective" false
    (Subst.is_injective_on (Term.Set.of_list [ x; y ]) s);
  check "injective on singleton" true
    (Subst.is_injective_on (Term.Set.singleton x) s)

(* ------------------------------------------------------------------ *)
(* Instances *)

let test_instance_basics () =
  let i = Instance.of_list [ e a b; e b a ] in
  check_int "cardinal" 2 (Instance.cardinal i);
  check "mem" true (Instance.mem (e a b) i);
  check "adom" true
    (Term.Set.equal (Instance.adom i) (Term.Set.of_list [ a; b ]));
  check_int "idempotent add" 2 (Instance.cardinal (Instance.add (e a b) i))

let test_instance_index () =
  let i = Instance.of_list [ e a b; f a b; p a ] in
  check_int "E atoms" 1 (List.length (Instance.with_pred (Symbol.make "E" 2) i));
  check_int "absent pred" 0
    (List.length (Instance.with_pred (Symbol.make "Z" 2) i))

let test_instance_remove_updates_index () =
  let i = Instance.of_list [ e a b; e b a ] in
  let i = Instance.remove (e a b) i in
  check_int "one left" 1
    (List.length (Instance.with_pred (Symbol.make "E" 2) i))

let test_instance_set_ops () =
  let i1 = Instance.of_list [ e a b ] and i2 = Instance.of_list [ e b a ] in
  let u = Instance.union i1 i2 in
  check_int "union" 2 (Instance.cardinal u);
  check "subset" true (Instance.subset i1 u);
  check_int "diff" 1 (Instance.cardinal (Instance.diff u i1));
  check_int "inter" 1 (Instance.cardinal (Instance.inter u i1))

let test_instance_restrict () =
  let i = Instance.of_list [ e a b; p a ] in
  let r = Instance.restrict (Symbol.Set.singleton (Symbol.make "P" 1)) i in
  check_int "restricted" 1 (Instance.cardinal r);
  check "kept P" true (Instance.mem (p a) r)

let test_instance_disjoint_union () =
  let i = Instance.of_list [ e x y ] in
  let u = Instance.disjoint_union i i in
  check_int "atoms doubled" 2 (Instance.cardinal u);
  check_int "terms doubled" 4 (Term.Set.cardinal (Instance.adom u))

let test_instance_disjoint_union_keeps_constants () =
  let i = Instance.of_list [ e a b ] in
  let u = Instance.disjoint_union i i in
  (* constants are rigid, so the disjoint union collapses ground parts *)
  check_int "single ground atom" 1 (Instance.cardinal u)

let test_instance_edges () =
  let i = Instance.of_list [ e a b; f b a; p a ] in
  check "edges of E" true (Instance.edges (Symbol.make "E" 2) i = [ (a, b) ])

(* ------------------------------------------------------------------ *)
(* Homomorphisms *)

let test_hom_simple () =
  let tgt = Instance.of_list [ e a b; e b a ] in
  check "pattern maps" true (Hom.exists [ e x y ] tgt);
  check "path of 2 maps" true (Hom.exists [ e x y; e y z ] tgt);
  check "loop pattern maps via a-b-a" true (Hom.exists [ e x y; e y x ] tgt)

let test_hom_respects_constants () =
  let tgt = Instance.of_list [ e a b ] in
  check "constant matches itself" true (Hom.exists [ e a y ] tgt);
  check "wrong constant fails" false (Hom.exists [ e b y ] tgt)

let test_hom_count () =
  let tgt = Instance.of_list [ e a b; e b a ] in
  check_int "two homs for an edge" 2 (Hom.count [ e x y ] tgt);
  check_int "two round trips" 2 (Hom.count [ e x y; e y x ] tgt)

let test_hom_injective () =
  let tgt = Instance.of_list [ e a a ] in
  check "non-injective ok" true (Hom.exists [ e x y ] tgt);
  check "injective fails on loop" false (Hom.exists ~inj:true [ e x y ] tgt);
  let tgt2 = Instance.of_list [ e a b ] in
  check "injective ok on proper edge" true (Hom.exists ~inj:true [ e x y ] tgt2)

let test_hom_init () =
  let tgt = Instance.of_list [ e a b; e b a ] in
  let init = Subst.singleton x b in
  check "seeded search" true (Hom.exists ~init [ e x y ] tgt);
  let got = Hom.find ~init [ e x y ] tgt in
  check "binding respected" true
    (match got with Some s -> Term.equal (Subst.apply s x) b | None -> false)

let test_hom_equiv () =
  let i1 = Instance.of_list [ e x y ] in
  let i2 = Instance.of_list [ e x y; e z (Term.var "w") ] in
  check "hom equivalent patterns" true (Hom.hom_equiv i1 i2);
  let i3 = Instance.of_list [ e x x ] in
  check "loop not equivalent to edge" false (Hom.hom_equiv i1 i3);
  check "edge maps into loop" true (Hom.maps_into i1 i3)

let test_hom_iso () =
  let i1 = Instance.of_list [ e x y ] in
  let i2 = Instance.of_list [ e z (Term.var "w") ] in
  check "renamed edge isomorphic" true (Hom.isomorphic i1 i2);
  let i3 = Instance.of_list [ e x y; e y z ] in
  check "different sizes" false (Hom.isomorphic i1 i3)

(* ------------------------------------------------------------------ *)
(* CQs *)

let test_cq_basics () =
  let q = Cq.make ~answer:[ x ] [ e x y ] in
  check_int "size" 1 (Cq.size q);
  check "answer vars" true
    (Term.Set.equal (Cq.answer_vars q) (Term.Set.singleton x));
  check "exist vars" true
    (Term.Set.equal (Cq.exist_vars q) (Term.Set.singleton y))

let test_cq_unsafe_answer () =
  Alcotest.check_raises "answer not in body"
    (Invalid_argument "Cq.make: unsafe answer variable z") (fun () ->
      ignore (Cq.make ~answer:[ z ] [ e x y ]))

let test_cq_holds () =
  let i = Instance.of_list [ e a b ] in
  let q = Cq.make ~answer:[ x ] [ e x y ] in
  check "holds" true (Cq.holds i q);
  check "holds at a" true (Cq.holds ~tuple:[ a ] i q);
  check "fails at b" false (Cq.holds ~tuple:[ b ] i q)

let test_cq_holds_inj () =
  let i = Instance.of_list [ e a a ] in
  let q = Cq.boolean [ e x y ] in
  check "holds plain" true (Cq.holds i q);
  check "fails injectively" false (Cq.holds_inj i q)

let test_cq_answers () =
  let i = Instance.of_list [ e a b; e b a ] in
  let q = Cq.make ~answer:[ x; y ] [ e x y ] in
  check_int "two answers" 2 (List.length (Cq.answers i q))

let test_cq_subsumes () =
  let general = Cq.boolean [ e x y ] in
  let specific = Cq.boolean [ e x x ] in
  check "edge subsumes loop" true (Cq.subsumes general specific);
  check "loop does not subsume edge" false (Cq.subsumes specific general)

let test_cq_subsumes_answers () =
  let q1 = Cq.make ~answer:[ x; y ] [ e x y ] in
  let q2 = Cq.make ~answer:[ x; y ] [ e x y; e y x ] in
  check "q1 subsumes q2" true (Cq.subsumes q1 q2);
  check "q2 does not subsume q1" false (Cq.subsumes q2 q1)

let test_cq_loop_query () =
  let lq = Cq.loop_query (Symbol.make "E" 2) in
  check "no loop" false (Cq.holds (Instance.of_list [ e a b ]) lq);
  check "loop" true (Cq.holds (Instance.of_list [ e a a ]) lq)

let test_cq_atom_query () =
  let q = Cq.atom_query (Symbol.make "E" 2) in
  check_int "answer arity" 2 (List.length (Cq.answer q));
  check "holds on edge" true
    (Cq.holds ~tuple:[ a; b ] (Instance.of_list [ e a b ]) q)

let test_cq_rename_apart () =
  let q = Cq.make ~answer:[ x ] [ e x y ] in
  let q' = Cq.rename_apart q in
  check "vars disjoint" true
    (Term.Set.is_empty (Term.Set.inter (Cq.vars q) (Cq.vars q')));
  check "still equivalent" true (Cq.equivalent q q')

(* ------------------------------------------------------------------ *)
(* UCQs *)

let test_ucq_holds () =
  let u = Ucq.make [ Cq.boolean [ e x x ]; Cq.boolean [ f x y ] ] in
  check "first disjunct" true (Ucq.holds (Instance.of_list [ e a a ]) u);
  check "second disjunct" true (Ucq.holds (Instance.of_list [ f a b ]) u);
  check "neither" false (Ucq.holds (Instance.of_list [ e a b ]) u)

let test_ucq_cover () =
  let u =
    Ucq.make
      [
        Cq.boolean [ e x y ];
        Cq.boolean [ e x x ];
        (* subsumed by the edge *)
        Cq.boolean [ f x y ];
      ]
  in
  check_int "cover drops the loop" 2 (Ucq.size (Ucq.cover u))

let test_ucq_cover_keeps_one_of_equivalent () =
  let u =
    Ucq.make [ Cq.boolean [ e x y ]; Cq.boolean [ e z (Term.var "w") ] ]
  in
  check_int "equivalent disjuncts collapse" 1 (Ucq.size (Ucq.cover u))

let test_ucq_arity_mismatch () =
  Alcotest.check_raises "mismatched arities"
    (Invalid_argument "Ucq.make: mismatched answer arities") (fun () ->
      ignore
        (Ucq.make [ Cq.make ~answer:[ x ] [ e x y ]; Cq.boolean [ e x y ] ]))

let test_ucq_witness () =
  let u = Ucq.make [ Cq.make ~answer:[ x; y ] [ e x y ] ] in
  let i = Instance.of_list [ e a b ] in
  check "witness found" true
    (Option.is_some (Ucq.witness ~tuple:[ a; b ] ~inj:true i u));
  check "wrong tuple" false
    (Option.is_some (Ucq.witness ~tuple:[ b; a ] ~inj:true i u))

(* ------------------------------------------------------------------ *)
(* Rules *)

let test_rule_parts () =
  let r = Rule.make [ e x y ] [ e y z ] in
  check "frontier" true
    (Term.Set.equal (Rule.frontier r) (Term.Set.singleton y));
  check "exist" true
    (Term.Set.equal (Rule.exist_vars r) (Term.Set.singleton z));
  check "not datalog" false (Rule.is_datalog r);
  check "datalog" true (Rule.is_datalog (Rule.make [ e x y ] [ e y x ]))

let test_rule_rename_apart () =
  let r = Rule.make [ e x y ] [ e y z ] in
  let r' = Rule.rename_apart r in
  check "no shared vars" true
    (Term.Set.is_empty
       (Term.Set.inter
          (Term.Set.union (Rule.body_vars r) (Rule.head_vars r))
          (Term.Set.union (Rule.body_vars r') (Rule.head_vars r'))))

let test_rule_split () =
  let dl, ex =
    Rule.split_datalog
      [ Rule.make [ e x y ] [ e y x ]; Rule.make [ e x y ] [ e y z ] ]
  in
  check_int "one datalog" 1 (List.length dl);
  check_int "one existential" 1 (List.length ex)

let test_rule_signature () =
  let sign = Rule.signature [ Rule.make [ e x y ] [ f y z ] ] in
  check_int "two predicates" 2 (Symbol.Set.cardinal sign)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_rule () =
  let r = Parser.rule "E(x,y), E(y,z) -> E(x,z)" in
  check_int "body size" 2 (List.length (Rule.body r));
  check "datalog" true (Rule.is_datalog r)

let test_parse_named_rule () =
  let r = Parser.parse_rule "tc: E(x,y) -> E(y,z)." in
  Alcotest.(check string) "name" "tc" (Rule.name r);
  check "existential" false (Rule.is_datalog r)

let test_parse_facts () =
  let i = Parser.instance "E(a,b), P(a)" in
  check_int "two facts" 2 (Instance.cardinal i);
  check "constants" true (Term.Set.for_all Term.is_cst (Instance.adom i))

let test_parse_program () =
  let prog =
    Parser.parse_program
      {| # a comment
         E(a,b).
         tc: E(x,y), E(y,z) -> E(x,z).
         ? E(x,x). |}
  in
  check_int "facts" 1 (Instance.cardinal prog.facts);
  check_int "rules" 1 (List.length prog.rules);
  check_int "queries" 1 (List.length prog.queries)

let test_parse_query_answers () =
  let q = Parser.query "?(x, y) E(x,y), E(y,x)" in
  check_int "answer arity" 2 (List.length (Cq.answer q));
  check_int "body" 2 (Cq.size q)

let test_parse_nullary () =
  let prog = Parser.parse_program "TOP. Start -> E(x,y)." in
  check "top fact parsed" true (Instance.mem Atom.top prog.facts);
  check_int "rule parsed" 1 (List.length prog.rules)

let test_parse_arity_error () =
  check "arity clash rejected" true
    (try
       ignore (Parser.parse_program "E(a,b). E(a,b,c).");
       false
     with Parser.Error _ -> true)

let test_parse_syntax_error () =
  check "unterminated rule rejected" true
    (try
       ignore (Parser.parse_program "E(x,y) -> ");
       false
     with Parser.Error _ -> true)

let test_parse_roundtrip_rule () =
  let r = Parser.rule "E(x,y), F(y,z) -> G(z,w), P(z)" in
  let printed = Fmt.str "%a" Rule.pp r in
  check "pp mentions existential" true
    (String.length printed > 0 && String.contains printed 'G')

(* ------------------------------------------------------------------ *)
(* Interning and hash-consing *)

let test_names_roundtrip () =
  let id = Names.intern "somename" in
  Alcotest.(check string) "name resolves" "somename" (Names.name id);
  check_int "intern idempotent" id (Names.intern "somename");
  check "known after intern" true (Names.known "somename");
  check_int "roundtrip through name" id (Names.intern (Names.name id))

let test_term_interned_identity () =
  check "same var same value" true (Term.equal (Term.var "v!") (Term.var "v!"));
  check "var and cst differ" false (Term.equal (Term.var "v!") (Term.cst "v!"));
  check "names preserved" true (String.equal (Term.name (Term.var "v!")) "v!")

let test_symbol_interned_identity () =
  let s1 = Symbol.make "Q!" 2 and s2 = Symbol.make "Q!" 2 in
  check_int "same id" (Symbol.id s1) (Symbol.id s2);
  check "different arity, different id" false
    (Symbol.id s1 = Symbol.id (Symbol.make "Q!" 3))

let test_atom_hashcons_shares () =
  let a1 = e x y and a2 = e x y in
  check "physically shared" true (a1 == a2);
  check "hash agrees" true (Atom.hash a1 = Atom.hash a2);
  check "distinct atoms distinct ids" false (Atom.id (e x y) = Atom.id (e y x))

let test_fresh_skips_claimed_names () =
  (* claim the name the generator would produce two steps from now; the
     generator must skip it rather than alias the user's variable *)
  let v1 = Term.fresh_var () in
  let n = int_of_string (String.sub (Term.name v1) 2 (String.length (Term.name v1) - 2)) in
  let claimed = Term.var (Printf.sprintf "_v%d" (n + 2)) in
  let v2 = Term.fresh_var () in
  let v3 = Term.fresh_var () in
  check "next fresh distinct" false (Term.equal v2 claimed);
  check "fresh skips the claimed name" false (Term.equal v3 claimed);
  check "fresh names still distinct" false (Term.equal v2 v3)

let test_parser_rejects_reserved () =
  let rejected input =
    try
      ignore (Parser.parse_program input);
      false
    with Parser.Error { message; _ } ->
      (* the message must point at the reserved namespace *)
      let contains_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      contains_sub message "reserved"
  in
  check "reserved rule variable" true (rejected "E(_x,y) -> E(y,x).");
  check "reserved fact constant" true (rejected "E(_a,b).");
  check "reserved query variable" true (rejected "? E(_x,_x).");
  check "reserved rule label" true (rejected "_r: E(x,y) -> E(y,x).");
  check "inner underscore fine" true
    (try
       ignore (Parser.parse_program "E(x_y,y) -> E(y,x_y).");
       true
     with Parser.Error _ -> false)

let name_gen =
  QCheck.Gen.(
    map
      (fun (c, i) -> Printf.sprintf "%c%d" (Char.chr (Char.code 'a' + (abs c mod 26))) (abs i mod 1000))
      (pair int int))

let prop_intern_roundtrip =
  QCheck.Test.make ~name:"intern → name → intern is the identity" ~count:500
    (QCheck.make name_gen) (fun s ->
      let id = Names.intern s in
      String.equal (Names.name id) s && Names.intern (Names.name id) = id)

let symbol_gen =
  QCheck.Gen.(
    map
      (fun (i, a) ->
        Symbol.make (Printf.sprintf "S%d" (abs i mod 5)) (abs a mod 3))
      (pair int int))

let prop_symbol_compare_agrees =
  QCheck.Test.make
    ~name:"interned Symbol.equal/compare/hash agree with structural semantics"
    ~count:500
    (QCheck.make QCheck.Gen.(pair symbol_gen symbol_gen))
    (fun (s, t) ->
      let structurally_equal = Symbol.compare_names s t = 0 in
      Symbol.equal s t = structurally_equal
      && Symbol.compare s t = 0 = structurally_equal
      && ((not structurally_equal) || Symbol.hash s = Symbol.hash t))

(* ------------------------------------------------------------------ *)
(* Instance.remove index consistency *)

let test_instance_interleaved_remove () =
  let i = Instance.of_list [ e a b; e b a ] in
  let i = Instance.remove (e a b) i in
  check "removed gone" false (Instance.mem (e a b) i);
  let i = Instance.remove (e a b) i in
  check_int "second remove is a no-op" 1 (Instance.cardinal i);
  let i = Instance.add (e a b) i in
  check "re-added" true (Instance.mem (e a b) i);
  check_int "re-add visible in pred index" 2
    (List.length (Instance.with_pred (Symbol.make "E" 2) i));
  check_int "re-add visible in positional index" 1
    (List.length (Instance.candidates (e a y) Subst.empty i));
  let i = Instance.remove (e b a) i in
  let i = Instance.remove (e a b) i in
  check "empty again" true (Instance.is_empty i);
  check_int "pred index empty" 0
    (List.length (Instance.with_pred (Symbol.make "E" 2) i));
  check_int "positional index empty" 0
    (List.length (Instance.candidates (e a y) Subst.empty i))

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let term_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Term.var (Printf.sprintf "x%d" (abs i mod 5))) int;
        map (fun i -> Term.cst (Printf.sprintf "c%d" (abs i mod 3))) int;
      ])

let atom_gen =
  QCheck.Gen.(
    let* s = term_gen in
    let* t = term_gen in
    let* choice = bool in
    return (if choice then Atom.app "E" [ s; t ] else Atom.app "F" [ s; t ]))

let instance_gen =
  QCheck.Gen.(map Instance.of_list (list_size (int_range 0 12) atom_gen))

let instance_arb = QCheck.make instance_gen

let prop_term_compare_agrees =
  QCheck.Test.make
    ~name:"interned Term.equal/compare/hash agree with structural semantics"
    ~count:500
    (QCheck.make QCheck.Gen.(pair term_gen term_gen))
    (fun (t, u) ->
      let structurally_equal = Term.compare_names t u = 0 in
      Term.equal t u = structurally_equal
      && Term.compare t u = 0 = structurally_equal
      && ((not structurally_equal) || Term.hash t = Term.hash u))

let prop_atom_compare_agrees =
  QCheck.Test.make
    ~name:"hash-consed Atom.equal/compare/hash agree with structural semantics"
    ~count:500
    (QCheck.make QCheck.Gen.(pair atom_gen atom_gen))
    (fun (p, q) ->
      let structurally_equal = Atom.compare_structural p q = 0 in
      Atom.equal p q = structurally_equal
      && Atom.compare p q = 0 = structurally_equal
      && structurally_equal = (p == q)
      && ((not structurally_equal) || Atom.hash p = Atom.hash q))

(* Arbitrary interleaved add/remove sequences (including re-adds): the
   incrementally maintained instance must be indistinguishable — through
   every index-backed observation — from one rebuilt from scratch. *)
let ops_gen = QCheck.Gen.(list_size (int_range 0 30) (pair bool atom_gen))

let apply_ops ops =
  List.fold_left
    (fun (inst, reference) (add, atom) ->
      if add then (Instance.add atom inst, Atom.Set.add atom reference)
      else (Instance.remove atom inst, Atom.Set.remove atom reference))
    (Instance.empty, Atom.Set.empty)
    ops

let same_observations inst reference =
  let rebuilt = Instance.of_list (Atom.Set.elements reference) in
  let preds = [ Symbol.make "E" 2; Symbol.make "F" 2; Symbol.make "P" 1 ] in
  let pattern_subs = [ Subst.empty; Subst.singleton (Term.var "x0") a ] in
  let patterns = [ e x y; e a y; e (Term.var "x0") (Term.var "x0"); f x b ] in
  Atom.Set.equal (Instance.to_set inst) reference
  && Instance.cardinal inst = Atom.Set.cardinal reference
  && List.for_all
       (fun p ->
         List.equal Atom.equal
           (Instance.with_pred p inst)
           (Instance.with_pred p rebuilt)
         && Instance.pred_cardinal p inst = Instance.pred_cardinal p rebuilt)
       preds
  && List.for_all
       (fun pat ->
         List.for_all
           (fun sub ->
             List.equal Atom.equal
               (Instance.candidates pat sub inst)
               (Instance.candidates pat sub rebuilt)
             && Instance.candidate_count pat sub inst
                = Instance.candidate_count pat sub rebuilt)
           pattern_subs)
       patterns

let prop_instance_indexes_consistent =
  QCheck.Test.make
    ~name:"predicate and positional indexes track atoms under add/remove"
    ~count:500 (QCheck.make ops_gen) (fun ops ->
      let inst, reference = apply_ops ops in
      same_observations inst reference)

let prop_instance_remove_then_readd =
  QCheck.Test.make ~name:"removing then re-adding every atom is the identity"
    ~count:200 (QCheck.make ops_gen) (fun ops ->
      let inst, reference = apply_ops ops in
      let cleared = Atom.Set.fold Instance.remove reference inst in
      let restored = Atom.Set.fold Instance.add reference cleared in
      Instance.is_empty cleared && same_observations restored reference)

let prop_union_commutes =
  QCheck.Test.make ~name:"instance union commutes" ~count:100
    (QCheck.pair instance_arb instance_arb) (fun (i1, i2) ->
      Instance.equal (Instance.union i1 i2) (Instance.union i2 i1))

let prop_union_idempotent =
  QCheck.Test.make ~name:"instance union idempotent" ~count:100 instance_arb
    (fun i -> Instance.equal (Instance.union i i) i)

let prop_adom_union =
  QCheck.Test.make ~name:"adom distributes over union" ~count:100
    (QCheck.pair instance_arb instance_arb) (fun (i1, i2) ->
      Term.Set.equal
        (Instance.adom (Instance.union i1 i2))
        (Term.Set.union (Instance.adom i1) (Instance.adom i2)))

let prop_identity_hom =
  QCheck.Test.make ~name:"identity homomorphism exists" ~count:100
    instance_arb (fun i -> Instance.is_empty i || Hom.exists (Instance.atoms i) i)

let prop_hom_equiv_reflexive =
  QCheck.Test.make ~name:"hom-equivalence reflexive" ~count:50 instance_arb
    (fun i -> Instance.is_empty i || Hom.hom_equiv i i)

let prop_subst_apply_ground =
  QCheck.Test.make ~name:"substitution fixes constants" ~count:100
    (QCheck.make term_gen) (fun t ->
      let s = Subst.of_list [ (x, a); (y, b) ] in
      (not (Term.is_cst t)) || Term.equal (Subst.apply s t) t)

let prop_rename_apart_equiv =
  QCheck.Test.make ~name:"rename_apart preserves hom-equivalence" ~count:50
    instance_arb (fun i ->
      QCheck.assume (not (Instance.is_empty i));
      let i', _ = Instance.rename_apart ~avoid:Term.Set.empty i in
      Hom.hom_equiv i i')

let prop_rename_apart_avoids =
  QCheck.Test.make ~name:"rename_apart honors ~avoid" ~count:200
    (QCheck.pair instance_arb instance_arb) (fun (i, j) ->
      (* ask the renaming to avoid everything in [j] — including terms
         that [fresh_var] would produce next, which is what a silently
         ignored ~avoid gets wrong *)
      let avoid = Term.Set.union (Instance.adom j) (Instance.adom i) in
      let i', _ = Instance.rename_apart ~avoid i in
      Term.Set.for_all
        (fun t -> (not (Term.is_mappable t)) || not (Term.Set.mem t avoid))
        (Instance.adom i'))

(* An order-naive reference solver: no goal reordering, candidates by
   predicate scan only. The indexed engine (positional index + fewest
   candidates first) must enumerate exactly the same homomorphisms. *)
let naive_match sub pat fact =
  let rec go sub ps fs =
    match (ps, fs) with
    | [], [] -> Some sub
    | s :: ps, t :: fs -> (
        if not (Term.is_mappable s) then
          if Term.equal s t then go sub ps fs else None
        else
          match Subst.find_opt s sub with
          | Some u -> if Term.equal u t then go sub ps fs else None
          | None -> go (Subst.add s t sub) ps fs)
    | _ -> None
  in
  go sub (Atom.args pat) (Atom.args fact)

let rec naive_homs sub pats tgt =
  match pats with
  | [] -> [ sub ]
  | pat :: rest ->
      List.concat_map
        (fun fact ->
          match naive_match sub pat fact with
          | Some sub' -> naive_homs sub' rest tgt
          | None -> [])
        (Instance.with_pred (Atom.pred pat) tgt)

let subst_compare s1 s2 =
  List.compare
    (fun (a, b) (c, d) ->
      match Term.compare a c with 0 -> Term.compare b d | n -> n)
    (Subst.bindings s1) (Subst.bindings s2)

let pattern_arb =
  QCheck.make QCheck.Gen.(list_size (int_range 1 3) atom_gen)

let prop_hom_indexed_matches_naive =
  QCheck.Test.make ~name:"indexed Hom.all/Hom.count agree with naive scan"
    ~count:500
    (QCheck.pair pattern_arb instance_arb)
    (fun (pat, i) ->
      let naive = List.sort subst_compare (naive_homs Subst.empty pat i) in
      let indexed = List.sort subst_compare (Hom.all pat i) in
      List.equal Subst.equal naive indexed
      && List.length naive = Hom.count pat i)

let prop_candidates_sound_and_pruning =
  QCheck.Test.make ~name:"Instance.candidates over-approximates matches"
    ~count:500
    (QCheck.pair (QCheck.make atom_gen) instance_arb)
    (fun (pat, i) ->
      let cands = Instance.candidates pat Subst.empty i in
      let by_pred = Instance.with_pred (Atom.pred pat) i in
      (* sound: every atom matching the pattern is among the candidates *)
      List.for_all
        (fun fact ->
          Option.is_none (naive_match Subst.empty pat fact)
          || List.exists (Atom.equal fact) cands)
        by_pred
      (* never coarser than the predicate scan *)
      && List.length cands <= List.length by_pred)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_commutes;
      prop_union_idempotent;
      prop_adom_union;
      prop_identity_hom;
      prop_hom_equiv_reflexive;
      prop_subst_apply_ground;
      prop_rename_apart_equiv;
      prop_rename_apart_avoids;
      prop_hom_indexed_matches_naive;
      prop_candidates_sound_and_pruning;
      prop_intern_roundtrip;
      prop_term_compare_agrees;
      prop_symbol_compare_agrees;
      prop_atom_compare_agrees;
      prop_instance_indexes_consistent;
      prop_instance_remove_then_readd;
    ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "logic"
    [
      ( "symbol",
        [
          tc "basics" test_symbol_basics;
          tc "invalid" test_symbol_invalid;
          tc "binary signature" test_binary_signature;
        ] );
      ( "term",
        [
          tc "kinds" test_term_kinds;
          tc "fresh" test_term_fresh;
          tc "total order" test_term_order_total;
        ] );
      ( "atom",
        [
          tc "basics" test_atom_basics;
          tc "arity mismatch" test_atom_arity_mismatch;
          tc "map" test_atom_map;
          tc "vars vs constants" test_atom_vars_excludes_constants;
        ] );
      ( "subst",
        [
          tc "apply" test_subst_apply;
          tc "rejects constants" test_subst_rejects_constants;
          tc "compose" test_subst_compose;
          tc "restrict" test_subst_restrict;
          tc "injectivity" test_subst_injective;
        ] );
      ( "instance",
        [
          tc "basics" test_instance_basics;
          tc "index" test_instance_index;
          tc "remove updates index" test_instance_remove_updates_index;
          tc "set ops" test_instance_set_ops;
          tc "restrict" test_instance_restrict;
          tc "disjoint union" test_instance_disjoint_union;
          tc "disjoint union constants"
            test_instance_disjoint_union_keeps_constants;
          tc "edges" test_instance_edges;
        ] );
      ( "hom",
        [
          tc "simple" test_hom_simple;
          tc "constants" test_hom_respects_constants;
          tc "count" test_hom_count;
          tc "injective" test_hom_injective;
          tc "seeded" test_hom_init;
          tc "equivalence" test_hom_equiv;
          tc "isomorphism" test_hom_iso;
        ] );
      ( "cq",
        [
          tc "basics" test_cq_basics;
          tc "unsafe answer" test_cq_unsafe_answer;
          tc "holds" test_cq_holds;
          tc "holds injectively" test_cq_holds_inj;
          tc "answers" test_cq_answers;
          tc "subsumption" test_cq_subsumes;
          tc "subsumption with answers" test_cq_subsumes_answers;
          tc "loop query" test_cq_loop_query;
          tc "atom query" test_cq_atom_query;
          tc "rename apart" test_cq_rename_apart;
        ] );
      ( "ucq",
        [
          tc "holds" test_ucq_holds;
          tc "cover" test_ucq_cover;
          tc "cover equivalents" test_ucq_cover_keeps_one_of_equivalent;
          tc "arity mismatch" test_ucq_arity_mismatch;
          tc "witness" test_ucq_witness;
        ] );
      ( "rule",
        [
          tc "parts" test_rule_parts;
          tc "rename apart" test_rule_rename_apart;
          tc "split datalog" test_rule_split;
          tc "signature" test_rule_signature;
        ] );
      ( "parser",
        [
          tc "rule" test_parse_rule;
          tc "named rule" test_parse_named_rule;
          tc "facts" test_parse_facts;
          tc "program" test_parse_program;
          tc "query answers" test_parse_query_answers;
          tc "nullary" test_parse_nullary;
          tc "arity error" test_parse_arity_error;
          tc "syntax error" test_parse_syntax_error;
          tc "rule roundtrip" test_parse_roundtrip_rule;
          tc "reserved namespace" test_parser_rejects_reserved;
        ] );
      ( "interning",
        [
          tc "names roundtrip" test_names_roundtrip;
          tc "term identity" test_term_interned_identity;
          tc "symbol identity" test_symbol_interned_identity;
          tc "atom hash-consing" test_atom_hashcons_shares;
          tc "fresh skips claimed names" test_fresh_skips_claimed_names;
          tc "interleaved remove" test_instance_interleaved_remove;
        ] );
      ("properties", props);
    ]
