open Nca_logic
module Rewrite = Nca_rewriting.Rewrite
module Piece = Nca_rewriting.Piece
module Injective = Nca_rewriting.Injective
module Bdd = Nca_rewriting.Bdd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2
let eq = Cq.atom_query e2

(* ------------------------------------------------------------------ *)
(* Piece unifiers *)

let test_piece_datalog_step () =
  (* E(x,y) -> E(y,x): rewriting E(x0,x1) gives E(x1,x0) *)
  let rule = Parser.rule "E(x,y) -> E(y,x)" in
  let results = Piece.rewrite_step rule eq in
  check_int "one rewriting" 1 (List.length results);
  let flipped =
    Cq.make
      ~answer:[ Term.var "x0"; Term.var "x1" ]
      [ Atom.make e2 [ Term.var "x1"; Term.var "x0" ] ]
  in
  check "flipped query" true
    (List.exists (fun q -> Cq.equivalent q flipped) results)

let test_piece_existential_blocked_by_answer () =
  (* E(x,y) -> ∃z E(y,z): unifying E(x0,x1) with E(y,z) maps the answer
     variable x1 to the existential z — forbidden *)
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  check_int "no rewriting" 0 (List.length (Piece.rewrite_step rule eq))

let test_piece_existential_allowed_boolean () =
  (* same rule against the Boolean query ∃u,v E(u,v): now allowed,
     producing body E(x,y) (the rule's own body) *)
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  let q = Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "v" ] ] in
  let results = Piece.rewrite_step rule q in
  check "one-step rewriting exists" true (List.length results >= 1);
  check "body is an E edge" true
    (List.exists
       (fun q' -> Cq.equivalent q' (Cq.boolean [ Atom.app "E" [ Term.var "s"; Term.var "t" ] ]))
       results)

let test_piece_shared_existential_needs_both_atoms () =
  (* rule A(x) -> ∃z D(x,z) ∧ E(x,z); query ∃u,v,w D(u,w) ∧ E(v,w):
     w unifies with z, and both atoms must join the piece, forcing u = v *)
  let rule = Parser.rule "A(x) -> D(x,z), E(x,z)" in
  let q =
    Cq.boolean
      [
        Atom.app "D" [ Term.var "u"; Term.var "w" ];
        Atom.app "E" [ Term.var "v"; Term.var "w" ];
      ]
  in
  let results = Piece.rewrite_step rule q in
  check "rewriting exists" true (results <> []);
  check "some rewriting is just A" true
    (List.exists
       (fun q' ->
         Cq.equivalent q' (Cq.boolean [ Atom.app "A" [ Term.var "u" ] ]))
       results)

let test_piece_partial_piece_blocked () =
  (* same rule, but v is used elsewhere: E(v,w) with w existential and v
     also in F(v) outside the piece is fine — v is not in the existential
     class; but w occurring outside the piece blocks it *)
  let rule = Parser.rule "A(x) -> D(x,z), E(x,z)" in
  let q =
    Cq.boolean
      [
        Atom.app "D" [ Term.var "u"; Term.var "w" ];
        Atom.app "E" [ Term.var "v"; Term.var "w" ];
        Atom.app "F" [ Term.var "w" ];
      ]
  in
  check_int "w escapes the piece: no rewriting" 0
    (List.length (Piece.rewrite_step rule q))

let test_piece_frontier_existential_clash () =
  (* rule E(x,y) -> ∃z E(x,z): query E(u,u) forces z ≡ x — a frontier
     variable in an existential class, forbidden *)
  let rule = Parser.rule "E(x,y) -> E(x,z)" in
  let q = Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "u" ] ] in
  check_int "no rewriting" 0 (List.length (Piece.rewrite_step rule q))

let test_piece_rejects_constants () =
  let rule = Parser.rule "E(x,y) -> E(y,z)" in
  let q = Cq.boolean [ Atom.app "E" [ Term.cst "a"; Term.var "v" ] ] in
  check "constants rejected" true
    (try
       ignore (Piece.rewrite_step rule q);
       false
     with Invalid_argument _ -> true)

let test_piece_multi_atom_identification () =
  (* two query atoms unified with the same head atom identify variables *)
  let rule = Parser.rule "A(x) -> E(x,z)" in
  let q =
    Cq.boolean
      [
        Atom.app "E" [ Term.var "u"; Term.var "w" ];
        Atom.app "E" [ Term.var "v"; Term.var "w" ];
      ]
  in
  let results = Piece.rewrite_step rule q in
  check "aggregated piece produces A(u) with u=v" true
    (List.exists
       (fun q' ->
         Cq.equivalent q' (Cq.boolean [ Atom.app "A" [ Term.var "u" ] ]))
       results)

(* ------------------------------------------------------------------ *)
(* Fixpoint rewriting *)

let test_rewrite_example1_bdd () =
  let out = Rewrite.rewrite (Nca_core.Rulesets.example1_bdd).rules eq in
  check "complete" true out.complete;
  check "small rewriting" true (Ucq.size out.ucq <= 4);
  (* the rewriting must recognize E(a,b) databases *)
  check "holds on a concrete edge" true
    (Ucq.holds
       ~tuple:[ Term.cst "a"; Term.cst "b" ]
       (Parser.instance "E(a,b)") out.ucq)

let test_rewrite_example1_diverges () =
  let out =
    Rewrite.rewrite ~max_rounds:8 (Nca_core.Rulesets.example1).rules eq
  in
  check "not complete (not bdd)" false out.complete;
  check "keeps generating" true (Ucq.size out.ucq > 5)

let test_rewrite_datalog_symmetric () =
  let out = Rewrite.rewrite (Nca_core.Rulesets.symmetric).rules eq in
  check "complete" true out.complete;
  check_int "E(x,y) ∨ E(y,x)" 2 (Ucq.size out.ucq);
  check_int "one round" 1 out.rounds

let test_rewrite_trivial_for_dense () =
  let out = Rewrite.rewrite (Nca_core.Rulesets.dense).rules eq in
  check "complete" true out.complete;
  check_int "identity only" 1 (Ucq.size out.ucq)

let test_rewrite_person_knows () =
  let rules = (Nca_core.Rulesets.person_knows).rules in
  let person = Cq.atom_query (Symbol.make "Person" 1) in
  let out = Rewrite.rewrite rules person in
  check "complete" true out.complete;
  check_int "Person(x) ∨ Knows(_,x)" 2 (Ucq.size out.ucq)

let test_rewrite_equivalence_on_database () =
  (* Definition 2 checked concretely: I ⊨ Q iff Ch(I,R) ⊨ q *)
  let rules = (Nca_core.Rulesets.example1_bdd).rules in
  let out = Rewrite.rewrite rules eq in
  List.iter
    (fun src ->
      let i = Parser.instance src in
      let chase = Nca_chase.Chase.run ~max_depth:6 i rules in
      List.iter
        (fun tuple ->
          let lhs = Cq.holds ~tuple chase.Nca_chase.Chase.instance eq in
          let rhs = Ucq.holds ~tuple i out.ucq in
          (* the chase is truncated, so lhs ⟹ rhs must hold exactly on
             saturated prefixes; here rule growth only adds new terms, so
             tuples over the database stabilize early *)
          check (Fmt.str "agree on %s" src) true (lhs = rhs))
        [ [ Term.cst "a"; Term.cst "b" ]; [ Term.cst "b"; Term.cst "a" ] ])
    [ "E(a,b)"; "E(b,a)"; "E(a,b), E(b,a)"; "F(a,b)" ]

let test_rewrite_ucq_composition () =
  (* Lemma 5-flavored: rewriting a UCQ is rewriting its disjuncts *)
  let rules = (Nca_core.Rulesets.symmetric).rules in
  let u = Ucq.make [ eq ] in
  let out = Rewrite.rewrite_ucq rules u in
  check "complete" true out.complete;
  check_int "two disjuncts" 2 (Ucq.size out.ucq)

(* ------------------------------------------------------------------ *)
(* bdd verdicts *)

let test_bdd_zoo_classification () =
  List.iter
    (fun (entry : Nca_core.Rulesets.entry) ->
      match entry.bdd_expected with
      | None -> ()
      | Some expected ->
          let verdicts =
            Bdd.for_signature ~max_rounds:8 entry.rules
              (Rule.signature entry.rules)
          in
          check
            (Fmt.str "%s bdd=%b" entry.name expected)
            expected (Bdd.certified verdicts))
    Nca_core.Rulesets.zoo

let test_bdd_constant_bounds () =
  let v = Bdd.for_query (Nca_core.Rulesets.example1_bdd).rules eq in
  (match v.constant with
  | None -> Alcotest.fail "expected a bdd constant"
  | Some k -> check "small constant" true (k <= 4));
  let v1 = Bdd.for_query ~max_rounds:6 (Nca_core.Rulesets.example1).rules eq in
  check "no constant for transitivity" true (v1.constant = None)

let test_bdd_cross_validation () =
  let rules = (Nca_core.Rulesets.example1_bdd).rules in
  let v = Bdd.for_query rules eq in
  let samples =
    List.map Parser.instance
      [ "E(a,b)"; "E(a,a)"; "E(a,b), E(b,c)"; "E(a,b), E(c,d)" ]
  in
  check "cross validation passes" true
    (Bdd.cross_validate rules eq v.rewriting samples)

(* ------------------------------------------------------------------ *)
(* Injective rewritings (Prop. 6) *)

let test_specializations_count () =
  (* E(x0,x1) has 2 variables: 2 partitions *)
  check_int "two specializations" 2 (List.length (Injective.specializations eq));
  let q = Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "v" ] ] in
  check_int "boolean edge also 2" 2 (List.length (Injective.specializations q))

let test_specializations_bell () =
  let q =
    Cq.boolean
      [
        Atom.app "E" [ Term.var "u"; Term.var "v" ];
        Atom.app "E" [ Term.var "v"; Term.var "w" ];
      ]
  in
  (* 3 variables: Bell(3) = 5 partitions *)
  check_int "Bell(3)" 5 (List.length (Injective.specializations q))

let test_specializations_identity_first () =
  match Injective.specializations eq with
  | first :: _ -> check "identity first" true (Cq.equivalent first eq)
  | [] -> Alcotest.fail "no specializations"

let test_injective_prop6 () =
  (* Proposition 6: I ⊨ Q iff some disjunct of Q_inj holds injectively *)
  let u = Ucq.make [ eq ] in
  let u_inj = Injective.of_ucq u in
  List.iter
    (fun src ->
      let i = Parser.instance src in
      List.iter
        (fun tuple ->
          let plain = Ucq.holds ~tuple i u in
          let inj =
            List.exists (fun q -> Cq.holds_inj ~tuple i q)
              (Ucq.disjuncts u_inj)
          in
          check (Fmt.str "Prop 6 on %s" src) plain inj)
        [
          [ Term.cst "a"; Term.cst "b" ];
          [ Term.cst "a"; Term.cst "a" ];
          [ Term.cst "b"; Term.cst "b" ];
        ])
    [ "E(a,b)"; "E(a,a)"; "E(a,b), E(b,b)" ]

let test_iso_cq () =
  let q1 = Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "v" ] ] in
  let q2 = Cq.boolean [ Atom.app "E" [ Term.var "s"; Term.var "t" ] ] in
  check "renamed CQs isomorphic" true (Injective.iso_cq q1 q2);
  let q3 = Cq.boolean [ Atom.app "E" [ Term.var "u"; Term.var "u" ] ] in
  check "loop not isomorphic to edge" false (Injective.iso_cq q1 q3);
  (* equivalent but not isomorphic *)
  let q4 =
    Cq.boolean
      [
        Atom.app "E" [ Term.var "u"; Term.var "v" ];
        Atom.app "E" [ Term.var "u"; Term.var "w" ];
      ]
  in
  check "equivalent" true (Cq.equivalent q1 q4);
  check "but not isomorphic" false (Injective.iso_cq q1 q4)

let test_injective_rewriting_end_to_end () =
  let out =
    Injective.injective_rewriting (Nca_core.Rulesets.example1_bdd).rules eq
  in
  check "complete" true out.complete;
  check "specializations expand the UCQ" true (Ucq.size out.ucq >= 2);
  check "holds injectively on loop database" true
    (List.exists
       (fun q -> Cq.holds_inj ~tuple:[ Term.cst "a"; Term.cst "a" ]
           (Parser.instance "E(a,a)") q)
       (Ucq.disjuncts out.ucq))

(* ------------------------------------------------------------------ *)
(* Properties *)

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Nca_core.Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 5000))

let prop_linear_rules_bdd =
  QCheck.Test.make ~name:"random linear rule sets are bdd" ~count:25
    linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      Bdd.certified
        (Bdd.for_signature ~max_rounds:10 rules (Rule.signature rules)))

let prop_rewriting_sound =
  QCheck.Test.make ~name:"every disjunct entails the query on the chase"
    ~count:20 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let out = Rewrite.rewrite ~max_rounds:8 rules eq in
      (* soundness: if a disjunct holds on I, the chase of I entails q;
         we test on the disjunct's own body as the database (frozen). *)
      List.for_all
        (fun disjunct ->
          let frozen =
            let renaming =
              Term.Set.fold
                (fun v acc ->
                  Subst.add v (Term.cst ("k_" ^ Fmt.str "%a" Term.pp v)) acc)
                (Cq.vars disjunct) Subst.empty
            in
            Instance.of_list (Subst.apply_atoms renaming (Cq.body disjunct))
          in
          let chase = Nca_chase.Chase.run ~max_depth:6 frozen rules in
          Cq.holds chase.Nca_chase.Chase.instance eq)
        (Ucq.disjuncts out.ucq))

let prop_specializations_preserve_plain_semantics =
  QCheck.Test.make ~name:"specializations union ≡ original (plain semantics)"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Nca_core.Rulesets.random_instance ~seed ~constants:3 ~atoms:4
               (Symbol.Set.singleton e2))
           (int_range 0 5000)))
    (fun i ->
      let q =
        Cq.boolean
          [
            Atom.app "E" [ Term.var "u"; Term.var "v" ];
            Atom.app "E" [ Term.var "v"; Term.var "w" ];
          ]
      in
      let specs = Injective.specializations q in
      Cq.holds i q = List.exists (fun s -> Cq.holds i s) specs)

let prop_injective_iff_plain =
  QCheck.Test.make ~name:"Prop 6 on random instances" ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Nca_core.Rulesets.random_instance ~seed ~constants:3 ~atoms:5
               (Symbol.Set.singleton e2))
           (int_range 0 5000)))
    (fun i ->
      let q =
        Cq.boolean
          [
            Atom.app "E" [ Term.var "u"; Term.var "v" ];
            Atom.app "E" [ Term.var "v"; Term.var "w" ];
          ]
      in
      let u = Ucq.make [ q ] in
      let u_inj = Injective.of_ucq u in
      Ucq.holds i u
      = List.exists (fun s -> Cq.holds_inj i s) (Ucq.disjuncts u_inj))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_linear_rules_bdd;
      prop_rewriting_sound;
      prop_specializations_preserve_plain_semantics;
      prop_injective_iff_plain;
    ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "rewriting"
    [
      ( "piece",
        [
          tc "datalog step" test_piece_datalog_step;
          tc "existential blocked by answer" test_piece_existential_blocked_by_answer;
          tc "existential allowed boolean" test_piece_existential_allowed_boolean;
          tc "shared existential aggregates" test_piece_shared_existential_needs_both_atoms;
          tc "escaping variable blocks" test_piece_partial_piece_blocked;
          tc "frontier-existential clash" test_piece_frontier_existential_clash;
          tc "constants rejected" test_piece_rejects_constants;
          tc "multi-atom identification" test_piece_multi_atom_identification;
        ] );
      ( "rewrite",
        [
          tc "example1_bdd" test_rewrite_example1_bdd;
          tc "example1 diverges" test_rewrite_example1_diverges;
          tc "symmetric datalog" test_rewrite_datalog_symmetric;
          tc "dense trivial" test_rewrite_trivial_for_dense;
          tc "person/knows" test_rewrite_person_knows;
          tc "agrees with chase" test_rewrite_equivalence_on_database;
          tc "ucq composition" test_rewrite_ucq_composition;
        ] );
      ( "bdd",
        [
          tc "zoo classification" test_bdd_zoo_classification;
          tc "constants" test_bdd_constant_bounds;
          tc "cross validation" test_bdd_cross_validation;
        ] );
      ( "injective",
        [
          tc "specializations count" test_specializations_count;
          tc "bell numbers" test_specializations_bell;
          tc "identity first" test_specializations_identity_first;
          tc "proposition 6" test_injective_prop6;
          tc "cq isomorphism" test_iso_cq;
          tc "end to end" test_injective_rewriting_end_to_end;
        ] );
      ("properties", props);
    ]
