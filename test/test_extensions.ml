(* Tests for the substrate extensions: weak acyclicity, syntactic class
   checkers, the restricted chase variant, and the bounded finite-model
   search that makes the fc side of the conjecture executable. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Acyclicity = Nca_chase.Acyclicity
module Finite_model = Nca_chase.Finite_model
module Classes = Nca_surgery.Classes
module Rulesets = Nca_core.Rulesets

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2

(* ------------------------------------------------------------------ *)
(* Weak acyclicity *)

let test_wa_datalog () =
  check "datalog always weakly acyclic" true
    (Acyclicity.is_weakly_acyclic
       (Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)."))

let test_wa_successor () =
  (* E(x,y) -> ∃z E(y,z): special edge E.1 ⇒ E.1 (self-cycle) *)
  check "successor not weakly acyclic" false
    (Acyclicity.is_weakly_acyclic (Parser.parse_rules "s: E(x,y) -> E(y,z)."))

let test_wa_stratified () =
  (* A feeds B, B never feeds back: weakly acyclic *)
  check "stratified existential" true
    (Acyclicity.is_weakly_acyclic
       (Parser.parse_rules "r: A(x) -> B(x,y). s: B(x,y) -> C(y)."))

let test_wa_cycle_via_datalog () =
  (* the special edge's target flows back through a Datalog rule *)
  check "cycle through datalog" false
    (Acyclicity.is_weakly_acyclic
       (Parser.parse_rules "r: A(x) -> B(x,y). s: B(x,y) -> A(y)."))

let test_wa_certificate () =
  let rules = Parser.parse_rules "s: E(x,y) -> E(y,z)." in
  match Acyclicity.offending_cycle rules with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle -> check "non-empty certificate" true (cycle <> [])

let test_wa_terminating_chase () =
  (* weakly acyclic ⟹ the chase saturates *)
  let rules = Parser.parse_rules "r: A(x) -> B(x,y). s: B(x,y) -> C(y)." in
  check "weakly acyclic" true (Acyclicity.is_weakly_acyclic rules);
  let c = Chase.run ~max_depth:20 (Parser.instance "A(a)") rules in
  check "chase saturates" true c.saturated

let test_wa_dependency_edges () =
  let rules = Parser.parse_rules "s: E(x,y) -> E(y,z)." in
  let edges = Acyclicity.dependency_graph rules in
  check "has a regular edge" true
    (List.exists (fun e -> not e.Acyclicity.special) edges);
  check "has a special edge" true
    (List.exists (fun e -> e.Acyclicity.special) edges)

(* ------------------------------------------------------------------ *)
(* Syntactic classes *)

let test_linear () =
  check "successor linear" true
    (Classes.is_linear Rulesets.succ_only.rules);
  check "transitivity not linear" false
    (Classes.is_linear Rulesets.example1.rules)

let test_guarded () =
  check "single-atom bodies are guarded" true
    (Classes.is_guarded Rulesets.succ_only.rules);
  check "transitivity join is not guarded" false
    (Classes.is_guarded (Parser.parse_rules "t: E(x,y), E(y,z) -> E(x,z)."));
  check "guard atom covering all variables" true
    (Classes.is_guarded
       (Parser.parse_rules "g: G(x,y), A(x) -> B(y)."))

let test_frontier_guarded () =
  (* transitivity: frontier {x,z}, no body atom contains both *)
  check "transitivity not frontier-guarded" false
    (Classes.is_frontier_guarded
       (Parser.parse_rules "t: E(x,y), E(y,z) -> E(x,z)."));
  (* two-hop: E(x,x1),E(y,y1) -> E(x,y1): frontier {x,y1} split *)
  check "two-hop not frontier-guarded" false
    (Classes.is_frontier_guarded Rulesets.short_only.rules);
  check "same-atom frontier is" true
    (Classes.is_frontier_guarded
       (Parser.parse_rules "r: E(x,y), A(x) -> F(x,y)."))

let test_sticky () =
  (* the classical sticky failure: transitivity repeats the join variable
     y, which is marked because it misses the head *)
  check "transitivity not sticky" false
    (Classes.is_sticky (Parser.parse_rules "t: E(x,y), E(y,z) -> E(x,z)."));
  check "two-hop rule is sticky" true
    (Classes.is_sticky Rulesets.short_only.rules);
  check "linear sets are sticky" true
    (Classes.is_sticky Rulesets.succ_only.rules);
  (* join variable kept in the head: sticky *)
  check "join kept in head" true
    (Classes.is_sticky (Parser.parse_rules "t: E(x,y), F(y,z) -> G(x,y,z)."))

let test_sticky_propagation () =
  (* marking propagates backwards through head positions: in the second
     rule, z sits (in the head) at position F.1 which the first rule
     marks, so z becomes marked in the body where it occurs twice *)
  let rules =
    Parser.parse_rules
      {| a: F(x,y) -> G(x).
         b: E(z,z) -> F(w,z). |}
  in
  check "marked positions include F.1" true
    (List.exists
       (fun (p, i) -> Symbol.name p = "F" && i = 1)
       (Classes.marked_positions rules));
  check "propagated marking breaks stickiness" false (Classes.is_sticky rules)

let test_classify_zoo () =
  let c = Classes.classify Rulesets.example1.rules in
  check "example1 not sticky" false c.sticky;
  check "example1 not weakly acyclic" false c.weakly_acyclic;
  let c2 = Classes.classify Rulesets.succ_only.rules in
  check "succ linear" true c2.linear;
  check "succ guarded" true c2.guarded;
  check "succ sticky" true c2.sticky;
  check "succ not weakly acyclic" false c2.weakly_acyclic

let test_classes_imply_bdd () =
  (* linear and sticky zoo entries must be certified bdd by the engine *)
  List.iter
    (fun (entry : Rulesets.entry) ->
      let c = Classes.classify entry.rules in
      if c.linear || c.sticky then
        check (entry.name ^ " class ⟹ bdd") true
          (Nca_rewriting.Bdd.certified
             (Nca_rewriting.Bdd.for_signature ~max_rounds:8 entry.rules
                (Rule.signature entry.rules))))
    Rulesets.zoo

(* ------------------------------------------------------------------ *)
(* Restricted chase *)

let test_restricted_smaller () =
  let entry = Rulesets.example1_bdd in
  let obl = Chase.run ~max_depth:4 entry.instance entry.rules in
  let res =
    Chase.run ~variant:Chase.Restricted ~max_depth:4 entry.instance
      entry.rules
  in
  check "restricted no larger" true
    (Instance.cardinal res.instance <= Instance.cardinal obl.instance)

let test_restricted_equivalent () =
  (* both chases are universal: homomorphically equivalent prefixes *)
  List.iter
    (fun name ->
      let entry = Rulesets.find name in
      let obl = Chase.run ~max_depth:3 entry.instance entry.rules in
      let res =
        Chase.run ~variant:Chase.Restricted ~max_depth:4 entry.instance
          entry.rules
      in
      check (name ^ ": oblivious → restricted") true
        (Hom.exists (Instance.atoms obl.instance) res.instance
         (* restricted may lag a level when skipping satisfied triggers *)
        ||
        let res_deep =
          Chase.run ~variant:Chase.Restricted ~max_depth:6 entry.instance
            entry.rules
        in
        Hom.exists (Instance.atoms obl.instance) res_deep.instance);
      check (name ^ ": restricted ⊆ deeper oblivious") true
        (let obl_deep = Chase.run ~max_depth:5 entry.instance entry.rules in
         Hom.exists
           (Instance.atoms (Chase.level res 3))
           obl_deep.instance))
    [ "example1_bdd"; "dense"; "symmetric" ]

let test_restricted_saturates_on_satisfied () =
  (* E(a,b),E(b,c) with rule E(x,y) -> ∃z E(y,z): the (a,b) trigger is
     already satisfied by E(b,c); the restricted chase only extends c *)
  let rules = Parser.parse_rules "s: E(x,y) -> E(y,z)." in
  let i = Parser.instance "E(a,b), E(b,c)" in
  let obl = Chase.run ~max_depth:1 i rules in
  let res = Chase.run ~variant:Chase.Restricted ~max_depth:1 i rules in
  check_int "oblivious adds two atoms" 4 (Instance.cardinal obl.instance);
  check_int "restricted adds one" 3 (Instance.cardinal res.instance)

let test_semi_oblivious_between () =
  (* semi-oblivious identifies triggers with equal frontier images, so it
     sits between oblivious and restricted in size *)
  List.iter
    (fun name ->
      let entry = Rulesets.find name in
      let atoms variant =
        Instance.cardinal
          (Chase.run ~variant ~max_depth:4 entry.instance entry.rules)
            .instance
      in
      let obl = atoms Chase.Oblivious in
      let semi = atoms Chase.Semi_oblivious in
      check (name ^ ": semi ≤ oblivious") true (semi <= obl))
    [ "example1_bdd"; "tangle"; "dense"; "succ_only" ]

let test_semi_oblivious_collapses_nonfrontier () =
  (* rule with a non-frontier body variable: E(x,y) -> ∃z F(y,z); the two
     bodies E(a,b), E(c,b) share the frontier image {y↦b}: one firing *)
  let rules = Parser.parse_rules "r: E(x,y) -> F(y,z)." in
  let i = Parser.instance "E(a,b), E(c,b)" in
  let obl = Chase.run ~max_depth:1 i rules in
  let semi = Chase.run ~variant:Chase.Semi_oblivious ~max_depth:1 i rules in
  check_int "oblivious fires twice" 4 (Instance.cardinal obl.instance);
  check_int "semi-oblivious fires once" 3 (Instance.cardinal semi.instance)

let test_semi_oblivious_universal () =
  let entry = Rulesets.example1_bdd in
  let obl = Chase.run ~max_depth:3 entry.instance entry.rules in
  let semi =
    Chase.run ~variant:Chase.Semi_oblivious ~max_depth:4 entry.instance
      entry.rules
  in
  check "oblivious maps into semi-oblivious" true
    (Hom.exists (Instance.atoms obl.instance) semi.instance)

let test_restricted_loop_detection_agrees () =
  let entry = Rulesets.example1_bdd in
  let res =
    Chase.run ~variant:Chase.Restricted ~max_depth:4 entry.instance
      entry.rules
  in
  check "loop also found by restricted chase" true
    (Cq.holds res.instance (Cq.loop_query e2))

(* ------------------------------------------------------------------ *)
(* Finite models *)

let test_is_model () =
  let rules = Parser.parse_rules "sym: E(x,y) -> E(y,x)." in
  check "asymmetric edge is no model" false
    (Finite_model.is_model (Parser.instance "E(a,b)") rules);
  check "symmetric pair is" true
    (Finite_model.is_model (Parser.instance "E(a,b), E(b,a)") rules)

let test_violations () =
  let rules = Parser.parse_rules "sym: E(x,y) -> E(y,x)." in
  check_int "one violation" 1
    (List.length (Finite_model.violations (Parser.instance "E(a,b)") rules));
  check_int "none on a model" 0
    (List.length
       (Finite_model.violations (Parser.instance "E(a,a)") rules))

let test_search_finds_model () =
  let entry = Rulesets.example1 in
  match Finite_model.search ~fresh:1 entry.instance entry.rules with
  | Model m ->
      check "search result is a model" true
        (Finite_model.is_model m entry.rules);
      check "the model has a loop" true (Cq.holds m (Cq.loop_query e2))
  | No_model | Exhausted _ -> Alcotest.fail "expected a finite model"

let test_example1_not_fc_witness () =
  (* no loop-free finite model at any small budget, yet the chase is
     loop-free: the two semantics diverge *)
  List.iter
    (fun fresh ->
      match
        Finite_model.loop_free_model_exists ~fresh ~e:e2
          Rulesets.example1.instance Rulesets.example1.rules
      with
      | Finite_model.Absent ->
          check (Fmt.str "no loop-free finite model (+%d)" fresh) true true
      | Finite_model.Exists ->
          Alcotest.fail "found a loop-free finite model"
      | Finite_model.Unknown _ -> Alcotest.fail "budget exhausted")
    [ 0; 1; 2 ];
  let chase =
    Chase.run ~max_depth:5 Rulesets.example1.instance Rulesets.example1.rules
  in
  check "chase (unrestricted side) loop-free" false
    (Cq.holds chase.instance (Cq.loop_query e2))

let test_symmetric_has_loop_free_model () =
  check "symmetric closure has a loop-free finite model" true
    (Finite_model.loop_free_model_exists ~fresh:0 ~e:e2
       Rulesets.symmetric.instance Rulesets.symmetric.rules
    = Finite_model.Exists)

let test_forbid_respected () =
  (* forbidding E(x,y) entirely: E(a,b) itself violates it *)
  let q = Cq.boolean [ Atom.app "E" [ Term.var "x"; Term.var "y" ] ] in
  check "start violating forbid" true
    (Finite_model.search ~forbid:q (Parser.instance "E(a,b)") []
    = Finite_model.No_model)

let test_search_empty_rules () =
  match Finite_model.search (Parser.instance "E(a,b)") [] with
  | Model m -> check "instance is its own model" true
      (Instance.equal m (Parser.instance "E(a,b)"))
  | No_model | Exhausted _ -> Alcotest.fail "expected the instance back"

let test_succ_only_needs_cycle () =
  (* E(x,y) → ∃z E(y,z) has loop-free finite models: a cycle through a
     fresh element *)
  check "successor has a loop-free finite model" true
    (Finite_model.loop_free_model_exists ~fresh:1 ~e:e2
       Rulesets.succ_only.instance Rulesets.succ_only.rules
    = Finite_model.Exists)

let test_chase_maps_into_finite_models () =
  (* universality made concrete: the chase prefix maps homomorphically
     into every finite model the bounded search produces *)
  List.iter
    (fun name ->
      let entry = Rulesets.find name in
      match Finite_model.search ~fresh:1 entry.instance entry.rules with
      | Model m ->
          let chase =
            Chase.run ~max_depth:3 entry.instance entry.rules
          in
          check (name ^ ": chase → finite model") true
            (Hom.exists (Instance.atoms chase.instance) m)
      | No_model | Exhausted _ -> ())
    [ "example1"; "example1_bdd"; "symmetric"; "succ_only" ]

(* ------------------------------------------------------------------ *)
(* qcheck *)

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 5000))

let prop_linear_class_detected =
  QCheck.Test.make ~name:"generator output classified linear+sticky"
    ~count:50 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let c = Classes.classify rules in
      c.linear && c.sticky)

let prop_restricted_subset_behavior =
  QCheck.Test.make ~name:"restricted chase ≤ oblivious chase (atoms)"
    ~count:20 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let obl = Chase.run ~max_depth:3 i rules in
      let res = Chase.run ~variant:Chase.Restricted ~max_depth:3 i rules in
      Instance.cardinal res.instance <= Instance.cardinal obl.instance)

let prop_model_search_sound =
  QCheck.Test.make ~name:"found finite models are models" ~count:20
    linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1)" in
      match Finite_model.search ~fresh:1 ~max_steps:50000 i rules with
      | Model m -> Finite_model.is_model m rules && Instance.subset i m
      | No_model | Exhausted _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_linear_class_detected;
      prop_restricted_subset_behavior;
      prop_model_search_sound;
    ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "extensions"
    [
      ( "weak-acyclicity",
        [
          tc "datalog" test_wa_datalog;
          tc "successor" test_wa_successor;
          tc "stratified" test_wa_stratified;
          tc "cycle via datalog" test_wa_cycle_via_datalog;
          tc "certificate" test_wa_certificate;
          tc "terminating chase" test_wa_terminating_chase;
          tc "dependency edges" test_wa_dependency_edges;
        ] );
      ( "classes",
        [
          tc "linear" test_linear;
          tc "guarded" test_guarded;
          tc "frontier-guarded" test_frontier_guarded;
          tc "sticky" test_sticky;
          tc "sticky propagation" test_sticky_propagation;
          tc "classify zoo" test_classify_zoo;
          tc "classes imply bdd" test_classes_imply_bdd;
        ] );
      ( "restricted-chase",
        [
          tc "smaller" test_restricted_smaller;
          tc "equivalent" test_restricted_equivalent;
          tc "skips satisfied" test_restricted_saturates_on_satisfied;
          tc "loop agrees" test_restricted_loop_detection_agrees;
        ] );
      ( "semi-oblivious",
        [
          tc "between variants" test_semi_oblivious_between;
          tc "collapses non-frontier" test_semi_oblivious_collapses_nonfrontier;
          tc "universal" test_semi_oblivious_universal;
        ] );
      ( "universality",
        [ tc "chase maps into finite models" test_chase_maps_into_finite_models ] );
      ( "finite-models",
        [
          tc "is model" test_is_model;
          tc "violations" test_violations;
          tc "search finds model" test_search_finds_model;
          tc "example1 fc gap" test_example1_not_fc_witness;
          tc "symmetric loop-free" test_symmetric_has_loop_free_model;
          tc "forbid respected" test_forbid_respected;
          tc "empty rules" test_search_empty_rules;
          tc "successor cycle model" test_succ_only_needs_cycle;
        ] );
      ("qcheck", props);
    ]
