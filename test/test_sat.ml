(* Tests for the SAT-backed finite-model engine: the pure-OCaml DPLL
   backend, the MACE-style grounding functor, the independent witness
   checker, and the SAT ≡ DFS differential properties. *)

open Nca_logic
module Lit = Nca_sat.Solver_intf.Lit
module Dpll = Nca_sat.Dpll
module Fm_inst = Nca_sat.Fm_inst
module Fm = Nca_sat.Fm_inst.Make (Nca_sat.Dpll)
module Finite_model = Nca_chase.Finite_model
module Fm_check = Nca_chase.Fm_check
module Rulesets = Nca_core.Rulesets
module Budget = Nca_obs.Budget

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2

(* ------------------------------------------------------------------ *)
(* DPLL backend *)

let outcome_is_sat = function Nca_sat.Solver_intf.Sat -> true | _ -> false

let outcome_is_unsat = function
  | Nca_sat.Solver_intf.Unsat -> true
  | _ -> false

let test_unit_propagation () =
  (* a ∧ (¬a ∨ b) ∧ (¬b ∨ c): pure propagation, no decisions *)
  let s = Dpll.create () in
  let a = Dpll.new_var s
  and b = Dpll.new_var s
  and c = Dpll.new_var s in
  Dpll.add_clause s [ Lit.pos a ];
  Dpll.add_clause s [ Lit.neg a; Lit.pos b ];
  Dpll.add_clause s [ Lit.neg b; Lit.pos c ];
  check "sat" true (outcome_is_sat (Dpll.solve s));
  check "a" true (Dpll.model_value s a);
  check "b" true (Dpll.model_value s b);
  check "c" true (Dpll.model_value s c);
  check_int "no decisions needed" 0 (Dpll.stats s).Nca_sat.Solver_intf.decisions

let test_conflict_and_backtrack () =
  (* (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b): forces a = b = true through at
     least one conflict under the false-first phase *)
  let s = Dpll.create () in
  let a = Dpll.new_var s
  and b = Dpll.new_var s in
  Dpll.add_clause s [ Lit.pos a; Lit.pos b ];
  Dpll.add_clause s [ Lit.neg a; Lit.pos b ];
  Dpll.add_clause s [ Lit.pos a; Lit.neg b ];
  check "sat" true (outcome_is_sat (Dpll.solve s));
  check "a" true (Dpll.model_value s a);
  check "b" true (Dpll.model_value s b);
  check "conflicts recorded" true
    ((Dpll.stats s).Nca_sat.Solver_intf.conflicts >= 1)

let test_unsat_sanity () =
  (* all four sign combinations over {a, b}: UNSAT; dropping any one
     clause restores satisfiability (a minimal-core sanity check) *)
  let clauses =
    [
      (fun a b -> [ Lit.pos a; Lit.pos b ]);
      (fun a b -> [ Lit.pos a; Lit.neg b ]);
      (fun a b -> [ Lit.neg a; Lit.pos b ]);
      (fun a b -> [ Lit.neg a; Lit.neg b ]);
    ]
  in
  let solve_without skip =
    let s = Dpll.create () in
    let a = Dpll.new_var s
    and b = Dpll.new_var s in
    List.iteri (fun i c -> if i <> skip then Dpll.add_clause s (c a b)) clauses;
    Dpll.solve s
  in
  check "full set unsat" true (outcome_is_unsat (solve_without (-1)));
  List.iteri
    (fun i _ ->
      check (Fmt.str "dropping clause %d restores sat" i) true
        (outcome_is_sat (solve_without i)))
    clauses

let test_pigeonhole_unsat () =
  (* PHP(3,2): 3 pigeons in 2 holes, no hole shared — needs real search,
     not just root propagation *)
  let s = Dpll.create () in
  let x = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Dpll.new_var s)) in
  for p = 0 to 2 do
    Dpll.add_clause s [ Lit.pos x.(p).(0); Lit.pos x.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p = 0 to 2 do
      for q = p + 1 to 2 do
        Dpll.add_clause s [ Lit.neg x.(p).(h); Lit.neg x.(q).(h) ]
      done
    done
  done;
  check "php(3,2) unsat" true (outcome_is_unsat (Dpll.solve s))

let test_empty_and_tautology () =
  let s = Dpll.create () in
  let a = Dpll.new_var s in
  Dpll.add_clause s [ Lit.pos a; Lit.neg a ];
  (* tautologies are dropped entirely *)
  check_int "tautology not counted" 0 (Dpll.stats s).Nca_sat.Solver_intf.clauses;
  check "sat without constraints" true (outcome_is_sat (Dpll.solve s));
  Dpll.add_clause s [];
  check "empty clause" true (outcome_is_unsat (Dpll.solve s))

let test_incremental_blocking () =
  (* model enumeration by blocking clauses, across solve calls *)
  let s = Dpll.create () in
  let a = Dpll.new_var s
  and b = Dpll.new_var s in
  Dpll.add_clause s [ Lit.pos a; Lit.pos b ];
  let rec count n =
    if outcome_is_sat (Dpll.solve s) then begin
      let block =
        List.map
          (fun v -> if Dpll.model_value s v then Lit.neg v else Lit.pos v)
          [ a; b ]
      in
      Dpll.add_clause s block;
      count (n + 1)
    end
    else n
  in
  check_int "three models of a ∨ b" 3 (count 0)

let test_budget_unknown () =
  (* a step budget of 0 stops the solver at its first decision *)
  let s = Dpll.create () in
  let a = Dpll.new_var s
  and b = Dpll.new_var s in
  Dpll.add_clause s [ Lit.pos a; Lit.pos b ];
  (match Dpll.solve ~budget:(Budget.v ~max_steps:0 ()) s with
  | Nca_sat.Solver_intf.Unknown e ->
      check "steps resource" true (e.Nca_obs.Exhausted.resource = Steps)
  | _ -> Alcotest.fail "expected Unknown");
  (* pure-propagation problems still finish under the same budget *)
  let s' = Dpll.create () in
  let c = Dpll.new_var s' in
  Dpll.add_clause s' [ Lit.pos c ];
  check "propagation-only sat at 0 steps" true
    (outcome_is_sat (Dpll.solve ~budget:(Budget.v ~max_steps:0 ()) s'))

(* ------------------------------------------------------------------ *)
(* Grounding functor *)

let test_grounding_counts () =
  (* start A(a), rule A(x) → ∃y E(x,y), domain {a, f}: universe is
     2 A-atoms + 4 E-atoms; one symmetry-usage variable for f *)
  let f = Term.cst "f_ground_counts" in
  let start = Instance.of_list [ Atom.app "A" [ Term.cst "a" ] ] in
  let rules = Parser.parse_rules "r: A(x) -> E(x,y)." in
  let inst =
    Fm.instantiate ~domain:[ Term.cst "a"; f ] ~sym_break:[ f ] start rules
  in
  check_int "universe" 6 (Array.length inst.Fm.universe);
  let vars, clauses = Fm.counts inst in
  check_int "vars = universe + usage var" 7 vars;
  (* 1 start unit + 2 rule clauses (one per ground body) + 4 usage
     implications for f's atoms *)
  check_int "clauses" 7 clauses

let test_sat_search_finds_model () =
  List.iter
    (fun name ->
      let entry = Rulesets.find name in
      match
        Finite_model.search ~engine:Sat ~fresh:1 entry.Rulesets.instance
          entry.Rulesets.rules
      with
      | Finite_model.Model m ->
          check (name ^ ": model checks") true
            (Fm_check.check ~start:entry.Rulesets.instance
               ~rules:entry.Rulesets.rules m
            = Ok ())
      | _ -> Alcotest.fail (name ^ ": expected a model"))
    [ "symmetric"; "succ_only"; "inclusion"; "fork" ]

let test_sat_example1_no_loop_free_model () =
  (* the paper's gap, decided by UNSAT instead of search exhaustion *)
  let entry = Rulesets.find "example1" in
  List.iter
    (fun fresh ->
      check
        (Fmt.str "example1 loop-free absent at +%d" fresh)
        true
        (Finite_model.loop_free_model_exists ~engine:Sat ~fresh ~e:e2
           entry.Rulesets.instance entry.Rulesets.rules
        = Finite_model.Absent))
    [ 0; 1; 2; 4 ]

let test_sat_respects_budget () =
  let entry = Rulesets.find "example1" in
  match
    Finite_model.search ~engine:Sat ~fresh:6 ~max_steps:1
      ~forbid:(Cq.loop_query e2) entry.Rulesets.instance entry.Rulesets.rules
  with
  | Finite_model.Exhausted e ->
      check "steps resource" true (e.Nca_obs.Exhausted.resource = Steps)
  | Finite_model.Model _ -> Alcotest.fail "expected exhaustion, got a model"
  | Finite_model.No_model ->
      (* acceptable only if UNSAT needed at most one decision per round *)
      Alcotest.fail "expected exhaustion, got a definitive negative"

let test_fm_check_rejects () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let start = Parser.instance "E(a,b), E(b,c)" in
  (* missing the transitive closure atom E(a,c) *)
  check "non-model rejected" true
    (Result.is_error (Fm_check.check ~start ~rules start));
  (* a genuine model, but violating the forbid query *)
  let m = Parser.instance "E(a,a)" in
  check "forbidden model rejected" true
    (Result.is_error
       (Fm_check.check ~forbid:(Cq.loop_query e2) ~start:m ~rules:[] m));
  check "good model accepted" true
    (Fm_check.check ~start ~rules (Parser.instance "E(a,b), E(b,c), E(a,c)")
    = Ok ())

let test_fresh_names_no_collision () =
  (* regression for the fixed "_m0"/"_m1" fresh constants: a start
     instance that already uses such a name must still get genuinely
     fresh elements. Forbidding E(x,y) ∧ E(y,x) (loops and 2-cycles)
     makes any model need a cycle of length ≥ 3 — impossible if a
     colliding name eats one of the two fresh slots. *)
  let start = Instance.of_list [ Atom.app "A" [ Term.cst "_m0" ] ] in
  let rules =
    Parser.parse_rules "r: A(x) -> E(x,y). s: E(x,y) -> E(y,z)."
  in
  let x = Term.var "x" and y = Term.var "y" in
  let forbid =
    Cq.boolean [ Atom.make e2 [ x; y ]; Atom.make e2 [ y; x ] ]
  in
  List.iter
    (fun engine ->
      match Finite_model.search ~engine ~fresh:2 ~forbid start rules with
      | Finite_model.Model m ->
          check "model checks" true
            (Fm_check.check ~forbid ~start ~rules m = Ok ())
      | _ -> Alcotest.fail "expected a 3-cycle model over the fresh elements")
    [ Finite_model.Dfs; Finite_model.Sat ]

(* ------------------------------------------------------------------ *)
(* Differential: SAT ≡ DFS *)

let verdicts_agree name dfs sat =
  match (dfs, sat) with
  | Finite_model.Model _, Finite_model.Model _
  | Finite_model.No_model, Finite_model.No_model ->
      true
  | Finite_model.Exhausted _, _ | _, Finite_model.Exhausted _ ->
      (* a budgeted non-verdict never contradicts anything *)
      true
  | _ ->
      Alcotest.failf "%s: engines disagree (dfs %s, sat %s)" name
        (match dfs with
        | Finite_model.Model _ -> "model"
        | Finite_model.No_model -> "no-model"
        | Finite_model.Exhausted _ -> "exhausted")
        (match sat with
        | Finite_model.Model _ -> "model"
        | Finite_model.No_model -> "no-model"
        | Finite_model.Exhausted _ -> "exhausted")

let differential ?forbid ~fresh name start rules =
  let dfs = Finite_model.search ~engine:Dfs ~fresh ?forbid start rules in
  let sat = Finite_model.search ~engine:Sat ~fresh ?forbid start rules in
  check (name ^ ": verdicts agree") true (verdicts_agree name dfs sat);
  match sat with
  | Finite_model.Model m ->
      check (name ^ ": sat model checks") true
        (Fm_check.check ?forbid ~start ~rules m = Ok ())
  | _ -> ()

let test_differential_zoo () =
  List.iter
    (fun entry ->
      List.iter
        (fun fresh ->
          differential ~fresh entry.Rulesets.name entry.Rulesets.instance
            entry.Rulesets.rules;
          differential ~forbid:(Cq.loop_query entry.Rulesets.e) ~fresh
            (entry.Rulesets.name ^ "+forbid")
            entry.Rulesets.instance entry.Rulesets.rules)
        [ 0; 1; 2 ])
    Rulesets.zoo

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed -> Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_bound 5000))

let prop_sat_equals_dfs =
  QCheck.Test.make ~name:"sat ≡ dfs on random linear rule sets" ~count:40
    linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let sign = Rule.signature rules in
      let start = Rulesets.random_instance ~seed:11 ~constants:2 ~atoms:3 sign in
      List.iter
        (fun forbid ->
          differential ?forbid ~fresh:2 "random" start rules)
        [ None; Some (Cq.loop_query e2) ];
      true)

let props = List.map QCheck_alcotest.to_alcotest [ prop_sat_equals_dfs ]

let () =
  Alcotest.run "sat"
    [
      ( "dpll",
        [
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "conflict and backtrack" `Quick
            test_conflict_and_backtrack;
          Alcotest.test_case "unsat sanity" `Quick test_unsat_sanity;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "empty and tautology" `Quick
            test_empty_and_tautology;
          Alcotest.test_case "incremental blocking" `Quick
            test_incremental_blocking;
          Alcotest.test_case "budget unknown" `Quick test_budget_unknown;
        ] );
      ( "fm_inst",
        [
          Alcotest.test_case "grounding counts" `Quick test_grounding_counts;
          Alcotest.test_case "sat finds models" `Quick
            test_sat_search_finds_model;
          Alcotest.test_case "example1 loop-free absent" `Quick
            test_sat_example1_no_loop_free_model;
          Alcotest.test_case "budget respected" `Quick test_sat_respects_budget;
          Alcotest.test_case "checker rejects" `Quick test_fm_check_rejects;
          Alcotest.test_case "fresh names never collide" `Quick
            test_fresh_names_no_collision;
        ] );
      ("differential", Alcotest.test_case "zoo at fresh 0-2" `Slow
         test_differential_zoo
         :: props);
    ]
