(* Tests for the evaluation engines: semi-naive Datalog saturation,
   CQ/UCQ containment and minimization, and the empirical Theorem-7
   (Ramsey) checker. *)

open Nca_logic
module Datalog = Nca_chase.Datalog
module Chase = Nca_chase.Chase
module Containment = Nca_rewriting.Containment
module Ramsey_check = Nca_graph.Ramsey_check
module Rulesets = Nca_core.Rulesets

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"
let e s t = Atom.app "E" [ s; t ]

(* ------------------------------------------------------------------ *)
(* Datalog saturation *)

let test_datalog_transitive_closure () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Parser.instance "E(a,b), E(b,c), E(c,d)" in
  let closure = Datalog.closure i rules in
  (* 3 base + ac, bd, ad *)
  check_int "full transitive closure" 6 (Instance.cardinal closure);
  check "ad derived" true
    (Instance.mem (Atom.app "E" [ Term.cst "a"; Term.cst "d" ]) closure)

let test_datalog_rejects_existentials () =
  let rules = Parser.parse_rules "s: E(x,y) -> E(y,z)." in
  check "existential rejected" true
    (try
       ignore (Datalog.closure Instance.empty rules);
       false
     with Datalog.Not_datalog _ -> true)

let test_datalog_agrees_with_chase () =
  List.iter
    (fun (rules_src, facts) ->
      let rules = Parser.parse_rules rules_src in
      let i = Parser.instance facts in
      let semi = Datalog.closure i rules in
      let chase = Chase.run ~max_depth:20 i rules in
      check "saturated chase" true chase.saturated;
      check
        (Fmt.str "engines agree on %s" facts)
        true
        (Instance.equal semi chase.instance))
    [
      ("tc: E(x,y), E(y,z) -> E(x,z).", "E(a,b), E(b,c), E(c,a)");
      ("sym: E(x,y) -> E(y,x).", "E(a,b), E(c,d)");
      ("p1: A(x) -> B(x). p2: B(x) -> C(x).", "A(a), A(b)");
      ( "short: E(x,x1), E(y,y1) -> E(x,y1).",
        "E(a,b), E(c,d)" );
    ]

let test_datalog_rounds () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let chain n =
    Instance.of_list
      (List.init n (fun i ->
           Atom.app "E"
             [ Term.cst (Fmt.str "c%d" i); Term.cst (Fmt.str "c%d" (i + 1)) ]))
  in
  (* transitive closure of a chain of 8 needs ~log rounds (semi-naive
     joins deltas with the full relation, so paths double each round) *)
  let rounds = Datalog.rounds_to_fixpoint (chain 8) rules in
  check "few rounds" true (rounds >= 2 && rounds <= 5);
  check_int "closure size" 36
    (Instance.cardinal (Datalog.closure (chain 8) rules))

let test_datalog_empty_delta_terminates () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Parser.instance "E(a,b)" in
  check_int "nothing to derive" 1 (Instance.cardinal (Datalog.closure i rules))

let test_datalog_lemma33_decomposition () =
  (* Ch(Ch(R∃), R^DL) computed with the Datalog engine agrees with the
     generic chase on the Datalog part *)
  let entry = Rulesets.example1_bdd in
  let datalog, existential = Rule.split_datalog entry.rules in
  let ex = Chase.run ~max_depth:4 entry.instance existential in
  let via_engine = Datalog.closure ex.instance datalog in
  let via_chase = Chase.run ~max_depth:10 ex.instance datalog in
  check "saturated" true via_chase.saturated;
  check "engines agree on the DL closure" true
    (Instance.equal via_engine via_chase.instance)

(* ------------------------------------------------------------------ *)
(* Containment *)

let test_containment_basic () =
  let edge = Cq.boolean [ e x y ] in
  let path2 = Cq.boolean [ e x y; e y z ] in
  check "path2 ⊑ edge" true (Containment.contained path2 edge);
  check "edge ⋢ path2" false (Containment.contained edge path2)

let test_containment_with_answers () =
  let q1 = Cq.make ~answer:[ x ] [ e x y ] in
  let q2 = Cq.make ~answer:[ x ] [ e x y; e x z ] in
  check "q2 ⊑ q1" true (Containment.contained q2 q1);
  check "equivalent (z-copy redundant)" true (Containment.equivalent q1 q2)

let test_canonical_database () =
  let q = Cq.make ~answer:[ x ] [ e x y ] in
  let db, tuple = Containment.canonical_database q in
  check_int "frozen body" 1 (Instance.cardinal db);
  check "frozen answers are constants" true (List.for_all Term.is_cst tuple);
  (* Chandra–Merlin: q' contains q iff q' holds on q's canonical db *)
  let q' = Cq.rename_apart (Cq.make ~answer:[ x ] [ e x y ]) in
  check "holds on canonical db" true (Cq.holds ~tuple db q')

let test_minimize () =
  let q = Cq.make ~answer:[ x ] [ e x y; e x z ] in
  let m = Containment.minimize q in
  check_int "one atom suffices" 1 (Cq.size m);
  check "equivalent" true (Containment.equivalent q m);
  check "minimal" true (Containment.is_minimal m);
  check "original not minimal" false (Containment.is_minimal q)

let test_minimize_keeps_necessary_atoms () =
  let q = Cq.make ~answer:[ x; z ] [ e x y; e y z ] in
  let m = Containment.minimize q in
  check_int "path needed in full" 2 (Cq.size m)

let test_ucq_containment () =
  let u1 = Ucq.make [ Cq.boolean [ e x x ] ] in
  let u2 = Ucq.make [ Cq.boolean [ e x y ] ] in
  check "loop ⊑ edge (as UCQs)" true (Containment.ucq_contained u1 u2);
  check "edge ⋢ loop" false (Containment.ucq_contained u2 u1);
  let u3 = Ucq.make [ Cq.boolean [ e x y ]; Cq.boolean [ e x x ] ] in
  check "u3 ≡ u2" true (Containment.ucq_equivalent u3 u2)

let test_minimize_ucq () =
  let u =
    Ucq.make
      [
        Cq.boolean [ e x y; e x z ];
        (* minimizes to one atom *)
        Cq.boolean [ e x x ];
        (* then contained in the first *)
      ]
  in
  let m = Containment.minimize_ucq u in
  check_int "single minimal disjunct" 1 (Ucq.size m);
  check_int "of one atom" 1 (Cq.size (List.hd (Ucq.disjuncts m)))

(* ------------------------------------------------------------------ *)
(* Empirical Theorem 7 *)

let test_random_tournament_is_tournament () =
  let g = Ramsey_check.random_tournament ~seed:5 ~size:7 in
  check_int "7 vertices" 7 (Nca_graph.Digraph.Term_graph.num_vertices g);
  check_int "binomial edges" 21 (Nca_graph.Digraph.Term_graph.num_edges g);
  check "is a tournament" true
    (Nca_graph.Tournament.is_tournament
       (Nca_graph.Digraph.Term_graph.vertices g)
       g)

let test_random_coloring_covers_edges () =
  let g = Ramsey_check.random_tournament ~seed:5 ~size:6 in
  let colored = Ramsey_check.random_coloring ~seed:11 ~colors:2 g in
  check_int "every edge colored" 15 (List.length colored);
  check "colors in range" true
    (List.for_all (fun (_, c) -> c = 0 || c = 1) colored)

let test_theorem7_two_colors () =
  (* any 2-coloring of a 6-tournament has a monochromatic 3-tournament *)
  check "Theorem 7 at R(3,3)=6" true
    (Ramsey_check.check_theorem7 ~seed:0 ~colors:2 ~target:3 ~trials:25)

let test_theorem7_below_threshold_can_fail () =
  (* below the Ramsey number a coloring avoiding the target exists; the
     classical witness is the 2-colored K5 — find a failing coloring *)
  let rec exists_failure seed =
    if seed > 500 then false
    else
      let t = Ramsey_check.random_tournament ~seed ~size:5 in
      let colored = Ramsey_check.random_coloring ~seed:(seed * 31) ~colors:2 t in
      match Ramsey_check.monochromatic_tournament colored ~size:3 with
      | None -> true
      | Some _ -> exists_failure (seed + 1)
  in
  check "size 5 admits a mono-free coloring" true (exists_failure 0)

let test_monochromatic_extraction () =
  let g = Ramsey_check.random_tournament ~seed:1 ~size:6 in
  let colored = List.map (fun e -> (e, 0)) (Nca_graph.Digraph.Term_graph.edges g) in
  (* everything one color: the whole tournament is monochromatic *)
  match Ramsey_check.monochromatic_tournament colored ~size:6 with
  | Some (0, t) -> check_int "all six" 6 (List.length t)
  | _ -> Alcotest.fail "expected the full tournament in color 0"

(* ------------------------------------------------------------------ *)
(* qcheck *)

let cq_gen =
  QCheck.Gen.(
    let term = map (fun i -> Term.var (Printf.sprintf "v%d" (abs i mod 4))) int in
    let atom = map2 (fun s t -> e s t) term term in
    map
      (fun atoms ->
        match atoms with
        | [] -> Cq.boolean [ e x y ]
        | _ -> Cq.boolean atoms)
      (list_size (int_range 1 4) atom))

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment reflexive" ~count:100 (QCheck.make cq_gen)
    (fun q -> Containment.contained q q)

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize preserves equivalence" ~count:100
    (QCheck.make cq_gen) (fun q ->
      let m = Containment.minimize q in
      Containment.equivalent q m && Cq.size m <= Cq.size q)

let prop_datalog_chase_agree =
  QCheck.Test.make ~name:"semi-naive ≡ chase on random datalog" ~count:25
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Nca_core.Rulesets.random_instance ~seed ~constants:4 ~atoms:6
               (Symbol.Set.singleton (Symbol.make "E" 2)))
           (int_range 0 5000)))
    (fun i ->
      let rules =
        Parser.parse_rules "sym: E(x,y) -> E(y,x). tc: E(x,y), E(y,z) -> E(x,z)."
      in
      let semi = Datalog.closure i rules in
      let chase = Chase.run ~max_depth:30 ~max_atoms:100000 i rules in
      chase.saturated && Instance.equal semi chase.instance)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_containment_reflexive; prop_minimize_equivalent;
      prop_datalog_chase_agree ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "engines"
    [
      ( "datalog",
        [
          tc "transitive closure" test_datalog_transitive_closure;
          tc "rejects existentials" test_datalog_rejects_existentials;
          tc "agrees with chase" test_datalog_agrees_with_chase;
          tc "rounds" test_datalog_rounds;
          tc "trivial" test_datalog_empty_delta_terminates;
          tc "lemma 33 decomposition" test_datalog_lemma33_decomposition;
        ] );
      ( "containment",
        [
          tc "basic" test_containment_basic;
          tc "with answers" test_containment_with_answers;
          tc "canonical database" test_canonical_database;
          tc "minimize" test_minimize;
          tc "necessary atoms" test_minimize_keeps_necessary_atoms;
          tc "ucq containment" test_ucq_containment;
          tc "minimize ucq" test_minimize_ucq;
        ] );
      ( "ramsey-empirical",
        [
          tc "random tournament" test_random_tournament_is_tournament;
          tc "random coloring" test_random_coloring_covers_edges;
          tc "theorem 7 at threshold" test_theorem7_two_colors;
          tc "below threshold" test_theorem7_below_threshold_can_fail;
          tc "monochromatic extraction" test_monochromatic_extraction;
        ] );
      ("qcheck", props);
    ]
