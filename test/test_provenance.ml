(* Fact-level provenance, proof DAGs and certificates.

   Three families of guarantees:
   - neutrality: with recording disabled every entry point is a no-op,
     and a provenance-on run computes exactly the instance of a
     provenance-off run (the CLI byte-identity golden is the
     end-to-end version of this);
   - soundness: every derivation the store records replays through the
     independent checker — [Proof.check] accepts every recorded proof,
     [Certificate.check] every certificate built from a recorded run —
     across both engines and the whole zoo;
   - rejection: a hand-corrupted proof or certificate is refused with a
     typed error naming the offending step. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Datalog = Nca_chase.Datalog
module Derivation = Nca_chase.Derivation
module Provenance = Nca_provenance.Provenance
module Proof = Nca_provenance.Proof
module Rulesets = Nca_core.Rulesets
module Theorem1 = Nca_core.Theorem1
module Witness = Nca_core.Witness
module Certificate = Nca_core.Certificate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let example1 = Rulesets.example1

let with_provenance f =
  Provenance.enable ();
  Fun.protect ~finally:Provenance.disable f

let tracked_facts () = List.rev (Provenance.fold (fun a _ acc -> a :: acc) [])

let check_all_proofs ~rules ~input =
  List.iter
    (fun a ->
      match Proof.check ~rules ~input (Proof.of_fact a) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "recorded proof rejected: %a" Proof.pp_error e)
    (tracked_facts ())

(* ------------------------------------------------------------------ *)
(* Term-level derivations (the --explain-nulls trace) *)

let test_derivation_depth_rules () =
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  let deepest =
    List.fold_left
      (fun best t ->
        let ts x = Option.value ~default:0 (Chase.timestamp c x) in
        match best with
        | Some b when ts b >= ts t -> best
        | _ -> Some t)
      None
      (Term.Set.elements (Chase.invented c))
  in
  match deepest with
  | None -> Alcotest.fail "example1 invents terms"
  | Some t ->
      let d = Derivation.of_term c t in
      check_int "depth = creation level"
        (Option.value ~default:0 (Chase.timestamp c t))
        (Derivation.depth d);
      check "succ creates every null" true
        (List.mem "succ" (Derivation.rules_used d));
      (* deduplicated: each rule name appears once *)
      let rs = Derivation.rules_used d in
      check_int "rules_used deduplicates" (List.length rs)
        (List.length (List.sort_uniq String.compare rs))

let test_derivation_database_term () =
  let c = Chase.run ~max_depth:2 example1.instance example1.rules in
  let d = Derivation.of_term c (Term.cst "a") in
  check_int "database terms have depth 0" 0 (Derivation.depth d);
  check "and no rules" true (Derivation.rules_used d = [])

(* ------------------------------------------------------------------ *)
(* Store discipline *)

let test_disabled_is_noop () =
  check "disabled" false (Provenance.enabled ());
  Provenance.record (Atom.app "P" [ Term.cst "a" ])
    ~rule:(List.hd example1.rules) ~hom:Subst.empty ~round:1 ~parents:[];
  check "nothing recorded" true
    (Provenance.find (Atom.app "P" [ Term.cst "a" ]) = None);
  check_int "no facts" 0 (Provenance.facts_tracked ());
  let s = Provenance.stats () in
  check "stats all zero" true
    (s.Provenance.facts = 0
    && s.Provenance.store_bytes = 0
    && s.Provenance.max_depth = 0)

let test_first_writer_wins () =
  with_provenance @@ fun () ->
  let a = Atom.app "P" [ Term.cst "a" ] in
  let r1 = List.hd example1.rules in
  let r2 = List.nth example1.rules 1 in
  Provenance.record a ~rule:r1 ~hom:Subst.empty ~round:1 ~parents:[];
  Provenance.record a ~rule:r2 ~hom:Subst.empty ~round:2 ~parents:[];
  match Provenance.find a with
  | Some e ->
      check "first derivation kept" true (Rule.equal e.Provenance.rule r1);
      check_int "first round kept" 1 e.Provenance.round
  | None -> Alcotest.fail "fact not recorded"

let test_enable_resets () =
  Provenance.enable ();
  Provenance.record (Atom.app "P" [ Term.cst "a" ])
    ~rule:(List.hd example1.rules) ~hom:Subst.empty ~round:1 ~parents:[];
  Provenance.enable ();
  check_int "enable installs a fresh store" 0 (Provenance.facts_tracked ());
  Provenance.disable ()

(* ------------------------------------------------------------------ *)
(* Neutrality: recording does not change what the engines compute *)

let test_chase_unchanged_by_recording () =
  let off = Chase.run ~max_depth:4 example1.instance example1.rules in
  let on =
    with_provenance @@ fun () ->
    Chase.run ~max_depth:4 example1.instance example1.rules
  in
  (* fresh nulls are globally numbered, so compare up to renaming *)
  check "same instance" true
    (Hom.isomorphic off.Chase.instance on.Chase.instance);
  check_int "same depth" off.Chase.depth on.Chase.depth

let test_datalog_unchanged_by_recording () =
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Parser.instance "E(a,b), E(b,c), E(c,d)" in
  let off = Datalog.closure i rules in
  let on = with_provenance @@ fun () -> Datalog.closure i rules in
  check "same closure" true (Instance.equal off on)

(* ------------------------------------------------------------------ *)
(* Soundness: every recorded derivation replays *)

let test_chase_proofs_check () =
  with_provenance @@ fun () ->
  let c = Chase.run ~max_depth:4 example1.instance example1.rules in
  check "store populated" true (Provenance.facts_tracked () > 0);
  check_all_proofs ~rules:example1.rules ~input:example1.instance;
  (* every tracked fact is a chase fact, with a positive round *)
  List.iter
    (fun a ->
      check "tracked fact in chase" true (Instance.mem a c.Chase.instance);
      match Provenance.find a with
      | Some e -> check "round positive" true (e.Provenance.round > 0)
      | None -> Alcotest.fail "find after fold")
    (tracked_facts ())

let test_datalog_proofs_check () =
  with_provenance @@ fun () ->
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Parser.instance "E(a,b), E(b,c), E(c,d), E(d,e)" in
  ignore (Datalog.closure i rules);
  check "pure-Datalog runs are tracked too" true
    (Provenance.facts_tracked () > 0);
  check_all_proofs ~rules ~input:i

let test_proof_structure () =
  with_provenance @@ fun () ->
  ignore (Chase.run ~max_depth:3 example1.instance example1.rules);
  let deepest =
    Provenance.fold
      (fun a (e : Provenance.entry) best ->
        match best with
        | Some (_, r) when r >= e.Provenance.round -> best
        | _ -> Some (a, e.Provenance.round))
      None
  in
  match deepest with
  | None -> Alcotest.fail "store populated"
  | Some (a, round) ->
      let p = Proof.of_fact a in
      check_int "depth reaches the creation round" round (Proof.depth p);
      check "size counts distinct facts" true (Proof.size p >= round + 1);
      check "facts lists premises first" true
        (match Proof.facts p with
        | first :: _ -> Instance.mem first example1.instance
        | [] -> false);
      let rs = Proof.rules_used p in
      check_int "rules_used deduplicates" (List.length rs)
        (List.length (List.sort_uniq String.compare rs))

(* ------------------------------------------------------------------ *)
(* Rejection: corrupted proofs and certificates are refused *)

let test_check_rejects_corruption () =
  with_provenance @@ fun () ->
  ignore (Chase.run ~max_depth:3 example1.instance example1.rules);
  let some_derived =
    match tracked_facts () with
    | a :: _ -> Proof.of_fact a
    | [] -> Alcotest.fail "store populated"
  in
  let input = example1.instance in
  let rules = example1.rules in
  (* a derived step whose premises are dropped: the body image is no
     longer covered *)
  let corrupt = { some_derived with Proof.premises = [] } in
  check "dropped premises rejected" true
    (Result.is_error (Proof.check ~rules ~input corrupt));
  (* a leaf that is not an input fact *)
  let ghost =
    {
      Proof.fact = Atom.app "Ghost" [ Term.cst "a" ];
      rule = None;
      hom = Subst.empty;
      round = 0;
      premises = [];
    }
  in
  check "foreign leaf rejected" true
    (Result.is_error (Proof.check ~rules ~input ghost));
  (* a rule outside the rule set *)
  let alien = Parser.parse_rules "alien: E(x,y) -> E(y,x)." in
  let renamed = { some_derived with Proof.rule = Some (List.hd alien) } in
  check "foreign rule rejected" true
    (Result.is_error (Proof.check ~rules ~input renamed))

(* ------------------------------------------------------------------ *)
(* Certificates *)

let certificate_of entry depth =
  let v, chase =
    Theorem1.validate_full ~max_depth:depth ~max_atoms:2000
      ~e:entry.Rulesets.e entry.Rulesets.instance entry.Rulesets.rules
  in
  (v, Certificate.of_verdict ~input:entry.Rulesets.instance
        ~e:entry.Rulesets.e ~rules:entry.Rulesets.rules v chase)

let test_zoo_certificates_check () =
  List.iter
    (fun entry ->
      with_provenance @@ fun () ->
      let _, c = certificate_of entry 3 in
      match Certificate.check c with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s: %a" entry.Rulesets.name Certificate.pp_error e)
    Rulesets.zoo

let test_certificate_rejects_corruption () =
  with_provenance @@ fun () ->
  let _, c = certificate_of example1 3 in
  check "the honest certificate checks" true
    (Result.is_ok (Certificate.check c));
  (* a vertex smuggled into the tournament without an edge *)
  let padded =
    {
      c with
      Certificate.tournament =
        Term.cst "zzz_uncovered" :: c.Certificate.tournament;
    }
  in
  check "padded tournament rejected" true
    (Result.is_error (Certificate.check padded));
  (* support withheld: the edge facts lose their proofs *)
  (match c.Certificate.edges with
  | [] -> ()
  | _ ->
      let stripped = { c with Certificate.support = [] } in
      check "stripped support rejected" true
        (Result.is_error (Certificate.check stripped)))

let test_analysis_certificate_checks () =
  with_provenance @@ fun () ->
  let entry = Rulesets.find "fork" in
  let p =
    Nca_surgery.Pipeline.regalize entry.Rulesets.instance entry.Rulesets.rules
  in
  let t = Witness.analyze ~depth:4 ~e:entry.Rulesets.e p.Nca_surgery.Pipeline.final in
  let g = Nca_graph.Digraph.of_instance entry.Rulesets.e t.Witness.full in
  let tournament = Nca_graph.Tournament.max_tournament g in
  let c = Certificate.of_analysis t tournament in
  (match Certificate.check c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "analysis certificate: %a" Certificate.pp_error e);
  (* the full chain is present: witness, trace and valley per edge *)
  List.iter
    (fun (ed : Certificate.edge) ->
      check "edge has a witness" true (ed.Certificate.witness <> None);
      check "edge has a valley" true (ed.Certificate.valley <> None);
      check "edge has a removal trace" true (ed.Certificate.removal <> []))
    c.Certificate.edges

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_populated () =
  with_provenance @@ fun () ->
  ignore (Chase.run ~max_depth:3 example1.instance example1.rules);
  let s = Provenance.stats () in
  check_int "facts = tracked" (Provenance.facts_tracked ())
    s.Provenance.facts;
  check "bytes grow with the store" true
    (s.Provenance.store_bytes >= 48 * s.Provenance.facts);
  check_int "max depth = chase depth for example1" 3 s.Provenance.max_depth

(* ------------------------------------------------------------------ *)
(* Properties *)

let rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 5000))

let prop_recorded_proofs_check =
  QCheck.Test.make ~name:"Proof.check accepts every recorded derivation"
    ~count:30 rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      with_provenance @@ fun () ->
      ignore (Chase.run ~max_depth:4 ~max_atoms:2000 i rules);
      List.for_all
        (fun a ->
          Result.is_ok (Proof.check ~rules ~input:i (Proof.of_fact a)))
        (tracked_facts ()))

let prop_recording_neutral =
  QCheck.Test.make
    ~name:"provenance-on chase isomorphic to provenance-off" ~count:20
    rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let off = Chase.run ~max_depth:3 ~max_atoms:2000 i rules in
      let on =
        with_provenance @@ fun () ->
        Chase.run ~max_depth:3 ~max_atoms:2000 i rules
      in
      off.Chase.depth = on.Chase.depth
      && Hom.isomorphic off.Chase.instance on.Chase.instance)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_recorded_proofs_check; prop_recording_neutral ]

let () =
  Alcotest.run "provenance"
    [
      ( "derivation",
        [
          Alcotest.test_case "depth and rules_used" `Quick
            test_derivation_depth_rules;
          Alcotest.test_case "database term" `Quick
            test_derivation_database_term;
        ] );
      ( "store",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "first writer wins" `Quick
            test_first_writer_wins;
          Alcotest.test_case "enable resets" `Quick test_enable_resets;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "chase unchanged" `Quick
            test_chase_unchanged_by_recording;
          Alcotest.test_case "datalog unchanged" `Quick
            test_datalog_unchanged_by_recording;
        ] );
      ( "proofs",
        [
          Alcotest.test_case "chase proofs check" `Quick
            test_chase_proofs_check;
          Alcotest.test_case "datalog proofs check" `Quick
            test_datalog_proofs_check;
          Alcotest.test_case "proof structure" `Quick test_proof_structure;
          Alcotest.test_case "corruption rejected" `Quick
            test_check_rejects_corruption;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "zoo certificates check" `Quick
            test_zoo_certificates_check;
          Alcotest.test_case "corrupted certificate rejected" `Quick
            test_certificate_rejects_corruption;
          Alcotest.test_case "analysis certificate checks" `Quick
            test_analysis_certificate_checks;
        ] );
      ("properties", props);
    ]
