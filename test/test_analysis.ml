(* Tests for the analysis extensions: coloring & Conjecture 44, instance
   cores, derivation traces, DOT export, OBQA answering, and the
   rewriting-cover ablation. *)

open Nca_logic
module G = Nca_graph.Digraph.Term_graph
module Coloring = Nca_graph.Coloring
module Dot = Nca_graph.Dot
module Conjecture44 = Nca_core.Conjecture44
module Derivation = Nca_chase.Derivation
module Answering = Nca_rewriting.Answering
module Rulesets = Nca_core.Rulesets

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v i = Term.cst (Printf.sprintf "v%d" i)
let graph edges = G.of_edges (List.map (fun (i, j) -> (v i, v j)) edges)
let e2 = Symbol.make "E" 2

(* ------------------------------------------------------------------ *)
(* Coloring *)

let test_coloring_bipartite () =
  let g = graph [ (1, 2); (3, 2); (1, 4); (3, 4) ] in
  check "2-colorable" true (Coloring.is_k_colorable 2 g);
  check "not 1-colorable" false (Coloring.is_k_colorable 1 g);
  check "χ = 2" true (Coloring.chromatic_number g = Some 2)

let test_coloring_triangle () =
  let g = graph [ (1, 2); (2, 3); (3, 1) ] in
  check "χ = 3" true (Coloring.chromatic_number g = Some 3);
  check "not 2-colorable" false (Coloring.is_k_colorable 2 g)

let test_coloring_odd_cycle () =
  (* C5: χ = 3 though the largest tournament has size 2 — the Erdős
     phenomenon in miniature *)
  let g = graph [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ] in
  check "χ(C5) = 3" true (Coloring.chromatic_number g = Some 3);
  check_int "tournament only 2" 2 (Coloring.clique_lower_bound g)

let test_coloring_loop () =
  let g = graph [ (1, 1) ] in
  check "loops kill colorability" true (Coloring.chromatic_number g = None);
  check "greedy agrees" true (Coloring.greedy_chromatic g = None);
  check "no k works" false (Coloring.is_k_colorable 5 g)

let test_coloring_both_directions () =
  (* u ↔ w is one closure edge, not two *)
  let g = graph [ (1, 2); (2, 1) ] in
  check "χ = 2" true (Coloring.chromatic_number g = Some 2)

let test_coloring_witness_proper () =
  let g = graph [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  match Coloring.coloring 3 g with
  | None -> Alcotest.fail "expected a 3-coloring"
  | Some assignment ->
      List.iter
        (fun (x, cx) ->
          List.iter
            (fun (y, cy) ->
              if
                (not (Term.equal x y))
                && (G.has_edge x y g || G.has_edge y x g)
              then check "proper" false (cx = cy))
            assignment)
        assignment

let test_greedy_upper_bound () =
  let g = graph [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ] in
  match (Coloring.greedy_chromatic g, Coloring.chromatic_number g) with
  | Some greedy, Some exact -> check "greedy ≥ exact" true (greedy >= exact)
  | _ -> Alcotest.fail "expected colorable"

(* ------------------------------------------------------------------ *)
(* Conjecture 44 explorer *)

let test_c44_example1 () =
  let entry = Rulesets.example1 in
  let points =
    Conjecture44.series ~max_depth:4 ~e:entry.e entry.instance entry.rules
  in
  check "χ grows with the order" true
    (List.exists
       (fun (p : Conjecture44.point) ->
         match p.chromatic with Some k -> k >= 4 | None -> false)
       points);
  check "χ matches tournament on transitive chains" true
    (List.for_all
       (fun (p : Conjecture44.point) ->
         match p.chromatic with
         | Some k -> k = p.tournament
         | None -> p.loop)
       points);
  check "consistent with C44" true (Conjecture44.verdict points = `Consistent)

let test_c44_loop_infinite_chromatic () =
  let entry = Rulesets.example1_bdd in
  let points =
    Conjecture44.series ~max_depth:3 ~e:entry.e entry.instance entry.rules
  in
  check "after the loop, χ is undefined" true
    (List.exists
       (fun (p : Conjecture44.point) -> p.loop && p.chromatic = None)
       points)

let test_c44_zoo_consistent () =
  List.iter
    (fun name ->
      let entry = Rulesets.find name in
      let points =
        Conjecture44.series ~max_depth:3 ~e:entry.e entry.instance entry.rules
      in
      check (name ^ " C44-consistent") true
        (Conjecture44.verdict points = `Consistent))
    [ "example1_bdd"; "dense"; "succ_only"; "symmetric"; "tangle" ]

(* ------------------------------------------------------------------ *)
(* Instance cores *)

let test_core_collapses_redundancy () =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let e s t = Atom.app "E" [ s; t ] in
  (* E(x,y) ∧ E(x,z): z-branch retracts onto y-branch *)
  let i = Instance.of_list [ e x y; e x z ] in
  let c = Core.core i in
  check_int "one atom" 1 (Instance.cardinal c);
  check "equivalent to original" true (Hom.hom_equiv i c)

let test_core_of_core_is_core () =
  let x = Term.var "x" and y = Term.var "y" in
  let e s t = Atom.app "E" [ s; t ] in
  let i = Instance.of_list [ e x y; e y x ] in
  let c = Core.core i in
  check "idempotent" true (Instance.equal (Core.core c) c);
  check "is_core" true (Core.is_core c)

let test_core_constants_fixed () =
  let i = Parser.instance "E(a,b), E(a,c)" in
  (* constants are rigid: nothing retracts *)
  check "ground instances are cores" true (Core.is_core i);
  check_int "unchanged" 2 (Instance.cardinal (Core.core i))

let test_core_equivalence_decision () =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let e s t = Atom.app "E" [ s; t ] in
  let single = Instance.of_list [ e x y ] in
  let fan = Instance.of_list [ e x y; e x z; e (Term.var "u") y ] in
  check "fan ≡ edge via cores" true (Core.equivalent_via_cores single fan);
  let loop = Instance.of_list [ e x x ] in
  check "loop ≢ edge" false (Core.equivalent_via_cores single loop)

let test_core_loop_absorbs () =
  let x = Term.var "x" and y = Term.var "y" in
  let e s t = Atom.app "E" [ s; t ] in
  (* an edge next to a loop retracts onto the loop *)
  let i = Instance.of_list [ e x x; e x y ] in
  check_int "core is the loop" 1 (Instance.cardinal (Core.core i))

(* ------------------------------------------------------------------ *)
(* Derivation traces *)

let test_derivation_of_database_term () =
  let entry = Rulesets.example1 in
  let chase = Nca_chase.Chase.run ~max_depth:3 entry.instance entry.rules in
  let d = Derivation.of_term chase (Term.cst "a") in
  check "database term has no rule" true (d.rule = None);
  check_int "depth 0" 0 (Derivation.depth d)

let test_derivation_of_null () =
  (* succ_only: the only derivations are chains, so trace depth equals
     the timestamp *)
  let entry = Rulesets.succ_only in
  let chase = Nca_chase.Chase.run ~max_depth:3 entry.instance entry.rules in
  let deep =
    Term.Set.fold
      (fun t acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if Nca_chase.Chase.timestamp chase t = Some 3 then Some t
            else None)
      (Nca_chase.Chase.invented chase)
      None
  in
  match deep with
  | None -> Alcotest.fail "expected a level-3 null"
  | Some t ->
      let d = Derivation.of_term chase t in
      check_int "depth 3" 3 (Derivation.depth d);
      check "uses succ" true (List.mem "succ" (Derivation.rules_used d));
      let rendered = Fmt.str "%a" Derivation.pp d in
      check "pp renders" true (String.length rendered > 10)

(* ------------------------------------------------------------------ *)
(* DOT export *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dot_graph () =
  let g = graph [ (1, 2) ] in
  let dot = Dot.of_graph ~name:"test" g in
  check "digraph header" true (contains dot "digraph \"test\"");
  check "edge rendered" true (contains dot "\"v1\" -> \"v2\"")

let test_dot_highlight () =
  let g = graph [ (1, 2) ] in
  let dot = Dot.of_graph ~highlight:(Term.Set.singleton (v 1)) g in
  check "highlight style" true (contains dot "lightblue")

let test_dot_instance () =
  let i = Parser.instance "E(a,b), F(b,c)" in
  let dot = Dot.of_instance ~e:e2 i in
  check "only E edges" true (contains dot "\"a\" -> \"b\"");
  check "F not an edge" false (contains dot "\"b\" -> \"c\"")

let test_dot_cq () =
  let q =
    Cq.make
      ~answer:[ Term.var "x"; Term.var "y" ]
      [ Atom.app "E" [ Term.var "z"; Term.var "x" ];
        Atom.app "E" [ Term.var "z"; Term.var "y" ] ]
  in
  let dot = Dot.of_cq q in
  check "answers boxed" true (contains dot "\"x\" [shape=box]");
  check "existential ellipse" true (contains dot "\"z\" [shape=ellipse]");
  check "labelled edges" true (contains dot "label=\"E\"")

(* ------------------------------------------------------------------ *)
(* OBQA answering *)

let obqa_rules =
  Parser.parse_rules
    {| k: Person(x) -> Knows(x,y).
       p: Knows(x,y) -> Person(y). |}

let obqa_db = Parser.instance "Person(ann), Knows(bob, ann)"

let test_answers_via_chase () =
  let q = Parser.query "?(x) Person(x)" in
  let answers = Answering.answers_via_chase obqa_rules obqa_db q in
  (* ann is given; bob only *knows*, nothing makes him a person; the
     invented acquaintances are nulls and not certain answers *)
  check_int "only ann" 1 (List.length answers);
  check "no nulls among answers" true
    (List.for_all (List.for_all Term.is_cst) answers)

let test_answers_via_rewriting () =
  let q = Parser.query "?(x) Person(x)" in
  match Answering.answers_via_rewriting obqa_rules obqa_db q with
  | None -> Alcotest.fail "rewriting should be complete"
  | Some answers -> check_int "only ann" 1 (List.length answers)

let test_methods_agree () =
  List.iter
    (fun src ->
      let q = Parser.query src in
      check (src ^ " agrees") true
        (Answering.methods_agree obqa_rules obqa_db q = Some true))
    [ "?(x) Person(x)"; "?(x) Knows(x,y)"; "? Knows(x,y), Person(y)" ]

let test_entails_boolean () =
  check "somebody knows somebody" true
    (Answering.entails obqa_rules obqa_db (Parser.query "? Knows(x,y)"));
  check "nobody knows ann's friend... wrong pattern" false
    (Answering.entails obqa_rules obqa_db (Parser.query "? Lab(x)"))

let test_rewrite_composed () =
  (* Lemma 5 needs Ch(Ch(I,R₁),R₂) ↔ Ch(I,R₁∪R₂): here R₁ = F⇒E feeds
     R₂ = symmetry, so rewriting first against R₂ then against R₁ is a
     rewriting for the union *)
  let r1 = Parser.parse_rules "f: F(x,y) -> E(x,y)." in
  let r2 = Parser.parse_rules "sym: E(x,y) -> E(y,x)." in
  let q = Cq.atom_query e2 in
  let composed = Answering.rewrite_composed r1 r2 q in
  check "complete" true composed.complete;
  (* E(x,y) ∨ E(y,x) ∨ F(x,y) ∨ F(y,x) *)
  check_int "four disjuncts" 4 (Ucq.size composed.ucq);
  (* matches the direct rewriting against the union (Lemma 5) *)
  let direct = Nca_rewriting.Rewrite.rewrite (r1 @ r2) q in
  check "equivalent to union rewriting" true
    (Ucq.equivalent composed.ucq direct.ucq);
  (* with the roles swapped the commutation hypothesis fails and the
     composition may genuinely miss disjuncts — Lemma 5's hypothesis is
     not decorative *)
  let swapped = Answering.rewrite_composed r2 r1 q in
  check "swapped composition is weaker" true
    (Ucq.size swapped.ucq < Ucq.size composed.ucq)

(* ------------------------------------------------------------------ *)
(* Rewriting-cover ablation *)

let test_minimize_ablation () =
  let entry = Rulesets.symmetric in
  let q = Cq.atom_query e2 in
  let cover = Nca_rewriting.Rewrite.rewrite entry.rules q in
  let no_cover =
    Nca_rewriting.Rewrite.rewrite ~minimize:false entry.rules q
  in
  check "both complete" true (cover.complete && no_cover.complete);
  check "same final cover" true (Ucq.equivalent cover.ucq no_cover.ucq)

let test_minimize_ablation_generates_more () =
  let entry = Rulesets.example1_bdd in
  let q = Cq.atom_query e2 in
  let cover = Nca_rewriting.Rewrite.rewrite ~max_rounds:6 entry.rules q in
  let no_cover =
    Nca_rewriting.Rewrite.rewrite ~max_rounds:6 ~minimize:false entry.rules q
  in
  check "no-cover generates at least as much" true
    (no_cover.generated >= cover.generated)

(* ------------------------------------------------------------------ *)
(* Question 46 audit *)

let test_q46_loop_free_within_bound () =
  let a = Nca_core.Question46.audit ~depth:3 Rulesets.succ_only in
  check "bdd" true a.bdd;
  check "loop-free" false a.loop;
  check "within bound" true a.within_bound;
  check "rewriting nonempty" true (a.rewriting_disjuncts > 0)

let test_q46_loop_case () =
  let a = Nca_core.Question46.audit ~depth:3 Rulesets.example1_bdd in
  check "loop" true a.loop;
  check "vacuously within" true a.within_bound;
  let rendered = Fmt.str "%a" Nca_core.Question46.pp a in
  check "pp" true (String.length rendered > 10)

(* ------------------------------------------------------------------ *)
(* Critical instance *)

let test_critical_instance () =
  let sign = Symbol.Set.of_list [ e2; Symbol.make "A" 1 ] in
  let i = Instance.critical sign in
  check_int "one atom per predicate" 2 (Instance.cardinal i);
  check_int "single constant" 1 (Term.Set.cardinal (Instance.adom i));
  check "E loop present" true (Cq.holds i (Cq.loop_query e2))

let test_critical_detects_nontermination_direction () =
  (* the chase of the critical instance saturates for datalog... *)
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let i = Instance.critical (Rule.signature rules) in
  let c = Nca_chase.Chase.run ~max_depth:5 i rules in
  check "datalog critical chase saturates" true c.saturated

(* ------------------------------------------------------------------ *)

let prop_chromatic_at_least_tournament =
  QCheck.Test.make ~name:"χ ≥ max tournament" ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Rulesets.random_instance ~seed ~constants:5 ~atoms:8
               (Symbol.Set.singleton e2))
           (int_range 0 5000)))
    (fun i ->
      let g = Nca_graph.Digraph.of_instance e2 i in
      match Coloring.chromatic_number g with
      | None -> Nca_graph.Digraph.Term_graph.has_loop g
      | Some chi -> chi >= Nca_graph.Tournament.max_tournament_size g)

let prop_core_equivalent =
  QCheck.Test.make ~name:"core ≡ original" ~count:40
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             (* variables, not constants, so retraction has room to act *)
             Instance.generalize
               (Rulesets.random_instance ~seed ~constants:4 ~atoms:6
                  (Symbol.Set.singleton e2)))
           (int_range 0 5000)))
    (fun i ->
      QCheck.assume (not (Instance.is_empty i));
      let c = Core.core i in
      Hom.hom_equiv i c && Core.is_core c)

(* ------------------------------------------------------------------ *)
(* Lint engine: one triggering and one non-triggering fixture per
   diagnostic code, plus JSON round-trips and the exit-status policy. *)

module Lint = Nca_analysis.Lint
module Diag = Nca_analysis.Diagnostic
module Ajson = Nca_analysis.Json
module Pipeline = Nca_surgery.Pipeline

let has_code code ds = List.exists (fun (d : Diag.t) -> d.code = code) ds

(* (code, triggering source, non-triggering source). NCA002 and NCA013
   cannot be provoked from source text (the parser rejects arity drift
   and pipeline invariants need a pipeline run); they get their own
   tests below. *)
let lint_fixtures =
  [
    ("NCA001", "r: E(x,", "E(a,b).");
    ("NCA003", "r: A(x) -> E(x,y).", "r: E(x,y) -> A(x).");
    ( "NCA004",
      "a: P(x) -> Q(x). b: Q(x) -> P(x).",
      "a: E(x,y) -> P(x). b: P(x) -> Q(x)." );
    ( "NCA005",
      "r: E(x,y) -> A(x). ?(x,y) E(x,y).",
      "r: E(x,y) -> A(x). ?(x) A(x)." );
    ( "NCA006",
      "gen: E(x,y) -> B(x). spec: E(x,x) -> B(x).",
      "a: E(x,y) -> B(x). b: F(x,y) -> B(x)." );
    ("NCA007", "g: A(x) -> E(x,y), A(y).", "t: E(x,y) -> A(x).");
    ("NCA008", "r: E(x,y) -> E(z,x).", "r: E(x,y) -> E(y,z).");
    ( "NCA009",
      "r: A(x) -> E(x,y), E(y,z).",
      "r: A(x) -> E(x,y), F(y,z)." );
    ( "NCA010",
      "g: A(x) -> E(x,y), A(y).",
      (* predicate-level feedback exists here (E feeds B feeds r1), but
         the classifier certifies termination, so the pass stays silent *)
      "r1: A(x), B(x) -> E(x,z). r2: E(x,z) -> B(z)." );
    ("NCA011", "r: E(x,y) -> E(x,x).", "r: E(x,y) -> E(y,x).");
    ("NCA012", "r: R(x,y,z) -> A(x).", "r: E(x,y) -> A(x).");
    ("NCA014", "g: A(x) -> E(x,y), A(y).", "r: A(x) -> E(x,y).");
    ("NCA015", "g: A(x) -> E(x,y), A(y).", "r: A(x) -> E(x,y).");
    ("NCA016", "g: A(x) -> E(x,y), A(y).", "r: A(x) -> E(x,y).");
    ( "NCA017",
      "g: A(x) -> E(x,y), A(y).",
      (* not acyclic in any static sense, but MFA-terminating: no
         pumping witness exists *)
      "r1: A(x) -> E(x,z), E(z,x). r2: E(y,y) -> A(y)." );
    ( "NCA018",
      "r: A(x) -> E(x,y).",
      (* Datalog-only termination is trivial and stays unreported *)
      "tc: E(x,y), E(y,z) -> E(x,z)." );
  ]

let test_lint_fixture_table () =
  List.iter
    (fun (code, pos, neg) ->
      check (code ^ " fires on its fixture") true
        (has_code code (Lint.lint_source pos));
      check (code ^ " stays silent on the negative fixture") false
        (has_code code (Lint.lint_source neg)))
    lint_fixtures

let test_lint_arity_drift () =
  (* the parser itself enforces a consistent signature, so an NCA002
     program has to be assembled through the API *)
  let p1 = Symbol.make "P" 1 and p2 = Symbol.make "P" 2 in
  let a1 = Symbol.make "A" 1 in
  let x = Term.var "x" and y = Term.var "y" in
  let r1 = Rule.make ~name:"r1" [ Atom.make p1 [ x ] ] [ Atom.make a1 [ x ] ] in
  let r2 =
    Rule.make ~name:"r2" [ Atom.make p2 [ x; y ] ] [ Atom.make a1 [ x ] ]
  in
  let drifting =
    { Parser.facts = Instance.empty; rules = [ r1; r2 ]; queries = [] }
  in
  check "NCA002 fires on P/1 vs P/2" true (has_code "NCA002" (Lint.run drifting));
  let consistent =
    { Parser.facts = Instance.empty; rules = [ r1 ]; queries = [] }
  in
  check "NCA002 silent on a consistent signature" false
    (has_code "NCA002" (Lint.run consistent))

let test_lint_parse_error_span () =
  match Lint.lint_source "E(a,b).\nr: E(x," with
  | [ d ] -> (
      check "NCA001" true (d.Diag.code = "NCA001");
      check "severity error" true (d.Diag.severity = Diag.Error);
      match d.Diag.location with
      | Diag.Span { line; column } ->
          check "line 2" true (line = 2);
          check "positive column" true (column > 0)
      | _ -> Alcotest.fail "expected a Span location")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_lint_pipeline_invariants () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let ok = Pipeline.regalize entry.instance entry.rules in
  check "clean pipeline has no violated invariant" true
    (Lint.of_pipeline ok = []);
  let starved = Pipeline.regalize ~max_rounds:0 entry.instance entry.rules in
  let ds = Lint.of_pipeline starved in
  check "starved rewriting budget reports NCA013" true (has_code "NCA013" ds);
  check "budget exhaustion is a warning, not an error" true
    (List.exists
       (fun (d : Diag.t) ->
         d.code = "NCA013" && d.severity = Diag.Warning)
       ds)

let test_lint_json_roundtrip () =
  let source =
    "E(a,b). grow: A(x) -> E(x,y), A(y). loopy: E(x,y) -> E(x,x). ?(x) A(x)."
  in
  let ds = Lint.lint_source source in
  check "fixture produced diagnostics" true (ds <> []);
  List.iter
    (fun d ->
      check "diagnostic JSON round-trips" true
        (Diag.of_json (Diag.to_json d) = Some d))
    ds;
  (* the whole --json document parses back and keeps every diagnostic *)
  match Ajson.parse (Ajson.to_string (Lint.report_to_json ds)) with
  | Error e -> Alcotest.failf "report does not re-parse: %s" e
  | Ok doc -> (
      check "version 1" true
        (Option.bind (Ajson.member "version" doc) Ajson.to_int = Some 1);
      match Option.bind (Ajson.member "diagnostics" doc) Ajson.to_list with
      | None -> Alcotest.fail "missing diagnostics array"
      | Some vs ->
          check_int "same cardinality" (List.length ds) (List.length vs);
          List.iter2
            (fun d v ->
              check "array entry round-trips" true (Diag.of_json v = Some d))
            ds vs)

let test_lint_exit_status () =
  let diag severity =
    Diag.make ~code:"NCA999" ~severity ~location:Diag.Program "synthetic"
  in
  check_int "clean exits 0" 0 (Lint.exit_status []);
  check_int "an error exits 1" 1 (Lint.exit_status [ diag Diag.Error ]);
  check_int "warnings alone exit 0" 0 (Lint.exit_status [ diag Diag.Warning ]);
  check_int "infos alone exit 0" 0 (Lint.exit_status [ diag Diag.Info ]);
  check_int "--max-warnings 0 turns warnings fatal" 1
    (Lint.exit_status ~max_warnings:0 [ diag Diag.Warning ]);
  check_int "--max-warnings 1 tolerates one" 0
    (Lint.exit_status ~max_warnings:1 [ diag Diag.Warning ])

let test_lint_select () =
  let source = "g: A(x) -> E(x,y), A(y). loopy: E(x,y) -> E(x,x)." in
  let ds = Lint.lint_source ~select:[ "NCA011" ] source in
  check "selected code fires" true (has_code "NCA011" ds);
  check "unselected codes suppressed" true
    (List.for_all (fun (d : Diag.t) -> d.code = "NCA011") ds)

(* ------------------------------------------------------------------ *)
(* Termination classifier: the acyclicity hierarchy, certificate
   checking (including rejection of corrupted certificates), and the
   differential oracle — every Terminating verdict is confirmed by an
   actual budgeted chase of the critical instance. *)

module T = Nca_analysis.Termination

let check_ok what = function
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: certificate rejected: %s" what reason

let check_rejected what = function
  | Ok () -> Alcotest.failf "%s: corrupted certificate accepted" what
  | Error _ -> ()

(* the sources of examples/programs/{ja_demo,mirror}.nca, inline so the
   unit tests do not depend on the example corpus *)
let ja_demo_rules =
  Parser.parse_rules "r1: A(x), B(x) -> E(x,z). r2: E(x,z) -> B(z)."

let mirror_rules =
  Parser.parse_rules "r1: A(x) -> E(x,z), E(z,x). r2: E(y,y) -> A(y)."

let test_classify_datalog () =
  let t = T.classify (Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z).") in
  (match t.T.verdict with
  | T.Terminating (T.Datalog, T.Datalog_cert) -> ()
  | v -> Alcotest.failf "expected datalog verdict, got %a" (T.pp_verdict t.T.rules) v);
  check "JA holds" true t.T.jointly_acyclic;
  check "SWA holds" true t.T.super_weakly_acyclic;
  check "MFA holds" true (t.T.mfa = Some true)

let test_classify_weakly_acyclic () =
  let rules = Parser.parse_rules "r: A(x) -> E(x,y). s: E(x,y) -> B(y)." in
  let t = T.classify rules in
  match t.T.verdict with
  | T.Terminating (T.Weak_acyclicity, T.Ranking _) as v ->
      check_ok "WA ranking" (T.check rules v)
  | v ->
      Alcotest.failf "expected weak-acyclicity, got %a" (T.pp_verdict rules) v

let test_classify_jointly_acyclic () =
  let t = T.classify ja_demo_rules in
  check "not weakly acyclic" false t.T.classes.Nca_surgery.Classes.weakly_acyclic;
  match t.T.verdict with
  | T.Terminating (T.Joint_acyclicity, T.Ja_order _) as v ->
      check_ok "JA order" (T.check ja_demo_rules v)
  | v ->
      Alcotest.failf "expected joint-acyclicity, got %a"
        (T.pp_verdict ja_demo_rules) v

let test_classify_mfa () =
  (* every static criterion fails on mirror, yet the critical-instance
     chase saturates: only the dynamic test certifies termination *)
  let t = T.classify mirror_rules in
  check "not jointly acyclic" false t.T.jointly_acyclic;
  check "not super-weakly acyclic" false t.T.super_weakly_acyclic;
  match t.T.verdict with
  | T.Terminating (T.Mfa, T.Critical_chase run) as v ->
      check_ok "critical chase" (T.check mirror_rules v);
      (match run.T.mfa_proof with
      | None -> Alcotest.fail "expected a derivation proof on the chase"
      | Some p ->
          let critical = Instance.critical (Rule.signature mirror_rules) in
          check "proof replays against the critical instance" true
            (Nca_provenance.Proof.check ~rules:mirror_rules ~input:critical p
            = Ok ()))
  | v -> Alcotest.failf "expected mfa, got %a" (T.pp_verdict mirror_rules) v

let test_classify_example1_diverges () =
  (* the paper's Example 1 is not weakly acyclic and its semi-oblivious
     chase genuinely diverges — the classifier must find the pumping
     witness, not an MFA certificate *)
  let entry = Rulesets.example1 in
  let t = T.classify entry.Rulesets.rules in
  match t.T.verdict with
  | T.Non_terminating w as v ->
      check_ok "pumping witness" (T.check entry.Rulesets.rules v);
      check "witness names a rule of the set" true
        (w.T.w_rule >= 0 && w.T.w_rule < List.length entry.Rulesets.rules)
  | v ->
      Alcotest.failf "expected divergence, got %a"
        (T.pp_verdict entry.Rulesets.rules) v

let test_classify_cascade_cyclic_term () =
  let rules = Parser.parse_rules "g: A(x) -> E(x,y), A(y)." in
  let t = T.classify rules in
  check "cyclic term found" true (Option.is_some t.T.cyclic_term);
  check "MFA fails" true (t.T.mfa = Some false);
  match t.T.verdict with
  | T.Non_terminating _ -> ()
  | v -> Alcotest.failf "expected divergence, got %a" (T.pp_verdict rules) v

let test_corrupted_certificates_rejected () =
  let wa_rules = Parser.parse_rules "r: A(x) -> E(x,y)." in
  (* a flat ranking violates ρ(s) < ρ(t) on the special edges *)
  let positions =
    match T.classify wa_rules with
    | { T.verdict = T.Terminating (_, T.Ranking l); _ } -> List.map fst l
    | _ -> Alcotest.fail "fixture is weakly acyclic"
  in
  check_rejected "flat ranking"
    (T.check wa_rules
       (T.Terminating
          (T.Weak_acyclicity, T.Ranking (List.map (fun p -> (p, 0)) positions))));
  (* a ranking on a genuinely non-WA set can never verify *)
  check_rejected "ranking on a non-WA set"
    (T.check ja_demo_rules (T.Terminating (T.Weak_acyclicity, T.Ranking [])));
  (* reversing a topological order breaks the edge constraint *)
  (match T.classify ja_demo_rules with
  | { T.verdict = T.Terminating (T.Joint_acyclicity, T.Ja_order order); _ }
    ->
      check_rejected "JA order on the wrong rule set"
        (T.check mirror_rules
           (T.Terminating (T.Joint_acyclicity, T.Ja_order order)))
  | _ -> Alcotest.fail "fixture is jointly acyclic");
  (* tampering with the recorded chase bounds must not replay *)
  (match T.classify mirror_rules with
  | { T.verdict = T.Terminating (T.Mfa, T.Critical_chase run); _ } ->
      check_rejected "inflated atom count"
        (T.check mirror_rules
           (T.Terminating
              (T.Mfa, T.Critical_chase { run with T.mfa_atoms = run.T.mfa_atoms + 5 })))
  | _ -> Alcotest.fail "fixture is mfa-terminating");
  (* a witness over a terminating rule set must be refuted *)
  let x = Term.var "x" and y = Term.var "y" in
  check_rejected "fabricated witness"
    (T.check wa_rules
       (T.Non_terminating
          { T.w_rule = 0; w_var = x; w_hom = Subst.of_list [ (x, y) ] }))

let test_classifier_matches_goldens_corpus () =
  (* differential oracle: every Terminating verdict over the zoo is
     confirmed by actually chasing the critical instance to saturation
     under a generous independent budget *)
  let generous = Nca_obs.Budget.v ~max_depth:30 ~max_atoms:100_000 () in
  List.iter
    (fun (e : Rulesets.entry) ->
      match (T.classify e.Rulesets.rules).T.verdict with
      | T.Terminating _ ->
          let critical = Instance.critical (Rule.signature e.Rulesets.rules) in
          let c =
            Nca_chase.Chase.run ~variant:Nca_chase.Chase.Semi_oblivious
              ~max_depth:1_000_000 ~max_atoms:1_000_000 ~budget:generous
              critical e.Rulesets.rules
          in
          check
            (Fmt.str "%s: certified termination confirmed by the chase"
               e.Rulesets.name)
            true c.Nca_chase.Chase.saturated;
          (* Datalog entries double-checked against the saturation engine *)
          if List.for_all Rule.is_datalog e.Rulesets.rules then
            check
              (Fmt.str "%s: Datalog.saturate agrees" e.Rulesets.name)
              true
              (match Nca_chase.Datalog.saturate critical e.Rulesets.rules with
              | Ok _ -> true
              | Error _ -> false)
      | T.Non_terminating _ | T.Unknown _ -> ())
    Rulesets.zoo

let prop_hierarchy_containment =
  QCheck.Test.make ~name:"WA ⇒ JA ⇒ SWA; terminating ⇒ chase saturates"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             Rulesets.random_forward_existential_rules ~seed ~rules:6)
           (int_range 0 5000)))
    (fun rules ->
      QCheck.assume (rules <> []);
      (* classify re-checks its own certificate internally, so a bogus
         emission would raise here and fail the property *)
      let t = T.classify rules in
      let wa = t.T.classes.Nca_surgery.Classes.weakly_acyclic in
      let chase_saturates () =
        let critical = Instance.critical (Rule.signature rules) in
        let c =
          Nca_chase.Chase.run ~variant:Nca_chase.Chase.Semi_oblivious
            ~max_depth:1_000_000 ~max_atoms:1_000_000
            ~budget:(Nca_obs.Budget.v ~max_depth:30 ~max_atoms:100_000 ())
            critical rules
        in
        c.Nca_chase.Chase.saturated
      in
      (not wa || t.T.jointly_acyclic)
      && ((not t.T.jointly_acyclic) || t.T.super_weakly_acyclic)
      && ((not t.T.super_weakly_acyclic) || t.T.mfa <> Some false)
      &&
      match t.T.verdict with
      | T.Terminating _ -> chase_saturates ()
      | T.Non_terminating _ | T.Unknown _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_chromatic_at_least_tournament; prop_core_equivalent;
      prop_hierarchy_containment;
    ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "analysis"
    [
      ( "coloring",
        [
          tc "bipartite" test_coloring_bipartite;
          tc "triangle" test_coloring_triangle;
          tc "odd cycle (Erdős in miniature)" test_coloring_odd_cycle;
          tc "loop" test_coloring_loop;
          tc "bidirectional edge" test_coloring_both_directions;
          tc "witness proper" test_coloring_witness_proper;
          tc "greedy bound" test_greedy_upper_bound;
        ] );
      ( "conjecture44",
        [
          tc "example1 profile" test_c44_example1;
          tc "loop ⇒ no coloring" test_c44_loop_infinite_chromatic;
          tc "zoo consistent" test_c44_zoo_consistent;
        ] );
      ( "cores",
        [
          tc "collapse" test_core_collapses_redundancy;
          tc "idempotent" test_core_of_core_is_core;
          tc "constants fixed" test_core_constants_fixed;
          tc "equivalence decision" test_core_equivalence_decision;
          tc "loop absorbs" test_core_loop_absorbs;
        ] );
      ( "derivation",
        [
          tc "database term" test_derivation_of_database_term;
          tc "null trace" test_derivation_of_null;
        ] );
      ( "dot",
        [
          tc "graph" test_dot_graph;
          tc "highlight" test_dot_highlight;
          tc "instance" test_dot_instance;
          tc "query" test_dot_cq;
        ] );
      ( "answering",
        [
          tc "chase answers" test_answers_via_chase;
          tc "rewriting answers" test_answers_via_rewriting;
          tc "methods agree (prop 4)" test_methods_agree;
          tc "boolean entailment" test_entails_boolean;
          tc "composed rewriting (lemma 5)" test_rewrite_composed;
        ] );
      ( "ablation",
        [
          tc "cover vs no-cover agree" test_minimize_ablation;
          tc "no-cover generates more" test_minimize_ablation_generates_more;
        ] );
      ( "question46",
        [
          tc "loop-free within bound" test_q46_loop_free_within_bound;
          tc "loop case" test_q46_loop_case;
        ] );
      ( "critical",
        [
          tc "shape" test_critical_instance;
          tc "datalog saturation" test_critical_detects_nontermination_direction;
        ] );
      ( "termination",
        [
          tc "datalog" test_classify_datalog;
          tc "weak acyclicity + ranking" test_classify_weakly_acyclic;
          tc "joint acyclicity (ja_demo)" test_classify_jointly_acyclic;
          tc "mfa with proof (mirror)" test_classify_mfa;
          tc "example1 diverges with witness" test_classify_example1_diverges;
          tc "cyclic term (cascade core)" test_classify_cascade_cyclic_term;
          tc "corrupted certificates rejected"
            test_corrupted_certificates_rejected;
          tc "differential oracle over the zoo"
            test_classifier_matches_goldens_corpus;
        ] );
      ( "lint",
        [
          tc "fixture table (pos/neg per code)" test_lint_fixture_table;
          tc "arity drift (NCA002)" test_lint_arity_drift;
          tc "parse error span (NCA001)" test_lint_parse_error_span;
          tc "pipeline invariants (NCA013)" test_lint_pipeline_invariants;
          tc "JSON round-trip" test_lint_json_roundtrip;
          tc "exit status policy" test_lint_exit_status;
          tc "--select filtering" test_lint_select;
        ] );
      ("qcheck", props);
    ]
