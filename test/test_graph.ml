open Nca_logic
module G = Nca_graph.Digraph.Term_graph
module Tournament = Nca_graph.Tournament
module Ramsey = Nca_graph.Ramsey
module MS = Nca_graph.Multiset.Int_multiset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v i = Term.cst (Printf.sprintf "v%d" i)

let graph edges = G.of_edges (List.map (fun (i, j) -> (v i, v j)) edges)

(* ------------------------------------------------------------------ *)
(* Digraph *)

let test_build () =
  let g = graph [ (1, 2); (2, 3) ] in
  check_int "vertices" 3 (G.num_vertices g);
  check_int "edges" 2 (G.num_edges g);
  check "has edge" true (G.has_edge (v 1) (v 2) g);
  check "no reverse edge" false (G.has_edge (v 2) (v 1) g)

let test_degrees () =
  let g = graph [ (1, 2); (1, 3); (2, 3) ] in
  check_int "out 1" 2 (G.out_degree (v 1) g);
  check_int "in 3" 2 (G.in_degree (v 3) g);
  check_int "in 1" 0 (G.in_degree (v 1) g)

let test_loops () =
  let g = graph [ (1, 1); (1, 2) ] in
  check "has loop" true (G.has_loop g);
  check_int "loop vertex" 1 (List.length (G.loops g));
  check "loop-free" false (G.has_loop (graph [ (1, 2) ]))

let test_dag () =
  check "chain is dag" true (G.is_dag (graph [ (1, 2); (2, 3) ]));
  check "cycle is not" false (G.is_dag (graph [ (1, 2); (2, 1) ]));
  check "loop is not" false (G.is_dag (graph [ (1, 1) ]));
  check "diamond is dag" true
    (G.is_dag (graph [ (1, 2); (1, 3); (2, 4); (3, 4) ]))

let test_topo () =
  match G.topo_sort (graph [ (1, 2); (2, 3); (1, 3) ]) with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
      let pos t =
        let rec go i = function
          | [] -> -1
          | u :: rest -> if Term.equal u t then i else go (i + 1) rest
        in
        go 0 order
      in
      check "1 before 2" true (pos (v 1) < pos (v 2));
      check "2 before 3" true (pos (v 2) < pos (v 3))

let test_topo_cyclic () =
  check "no order on cycle" true (G.topo_sort (graph [ (1, 2); (2, 1) ]) = None)

let test_reach () =
  let g = graph [ (1, 2); (2, 3) ] in
  check "reaches transitively" true (G.reaches (v 1) (v 3) g);
  check "not backwards" false (G.reaches (v 3) (v 1) g);
  check "no empty path" false (G.reaches (v 1) (v 1) g)

let test_maximal () =
  let g = graph [ (1, 2); (1, 3) ] in
  let maxima = G.maximal_vertices g in
  check_int "two maxima" 2 (List.length maxima);
  check "2 is maximal" true (List.exists (Term.equal (v 2)) maxima);
  check "1 is not" false (List.exists (Term.equal (v 1)) maxima)

let test_restrict () =
  let g = graph [ (1, 2); (2, 3) ] in
  let r = G.restrict (G.VSet.of_list [ v 1; v 2 ]) g in
  check_int "restricted vertices" 2 (G.num_vertices r);
  check_int "restricted edges" 1 (G.num_edges r)

let test_components () =
  let g = graph [ (1, 2); (3, 4) ] in
  check_int "two components" 2 (List.length (G.weakly_connected_components g))

let test_of_instance () =
  let i = Parser.instance "E(a,b), E(b,c), F(c,d)" in
  let g = Nca_graph.Digraph.of_instance (Symbol.make "E" 2) i in
  check_int "E edges only" 2 (G.num_edges g);
  check_int "all adom vertices" 4 (G.num_vertices g)

let test_of_atoms () =
  let x = Term.var "x" and y = Term.var "y" in
  let g =
    Nca_graph.Digraph.of_atoms [ Atom.app "E" [ x; y ]; Atom.app "P" [ x ] ]
  in
  check_int "one edge" 1 (G.num_edges g);
  check "unary keeps vertex" true (G.mem_vertex x g)

(* ------------------------------------------------------------------ *)
(* Tournament *)

let test_tournament_simple () =
  (* 3-cycle: a tournament of size 3 *)
  let g = graph [ (1, 2); (2, 3); (3, 1) ] in
  check_int "3-cycle is a 3-tournament" 3 (Tournament.max_tournament_size g)

let test_tournament_inclusive_or () =
  (* both directions present is still a tournament (footnote 2) *)
  let g = graph [ (1, 2); (2, 1); (1, 3); (2, 3) ] in
  check_int "inclusive-or tournament" 3 (Tournament.max_tournament_size g)

let test_tournament_path () =
  let g = graph [ (1, 2); (2, 3); (3, 4) ] in
  check_int "path has only 2-tournaments" 2 (Tournament.max_tournament_size g)

let test_tournament_transitive () =
  let g = graph [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ] in
  check_int "transitive tournament" 4 (Tournament.max_tournament_size g)

let test_tournament_early_exit () =
  let g = graph [ (1, 2); (1, 3); (2, 3); (4, 5) ] in
  check "has 3" true (Tournament.has_tournament_of_size 3 g);
  check "no 4" false (Tournament.has_tournament_of_size 4 g);
  check "trivial 0" true (Tournament.has_tournament_of_size 0 g)

let test_tournament_membership () =
  let g = graph [ (1, 2); (2, 3); (3, 1) ] in
  check "witness is a tournament" true
    (Tournament.is_tournament (Tournament.max_tournament g) g);
  check "non-tournament detected" false
    (Tournament.is_tournament [ v 1; v 2; v 3; v 4 ] g)

let test_tournament_greedy_bound () =
  let g = graph [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ] in
  check "greedy ≤ exact" true
    (Tournament.greedy_lower_bound g <= Tournament.max_tournament_size g);
  check "greedy ≥ 2 on an edge" true (Tournament.greedy_lower_bound g >= 2)

let test_tournament_empty () =
  check_int "empty graph" 0 (Tournament.max_tournament_size G.empty)

(* ------------------------------------------------------------------ *)
(* Ramsey *)

let test_ramsey_one_color () =
  check_int "R(s) = s" 5 (Ramsey.upper_bound [ 5 ]);
  check_int "R(1) = 1" 1 (Ramsey.upper_bound [ 1 ])

let test_ramsey_trivial_colors () =
  check_int "R(2,m) = m" 7 (Ramsey.upper_bound [ 2; 7 ]);
  check_int "a 1 dominates" 1 (Ramsey.upper_bound [ 1; 100 ])

let test_ramsey_known () =
  check_int "R(3,3)" 6 (Ramsey.upper_bound [ 3; 3 ]);
  check_int "R(4,4)" 18 (Ramsey.upper_bound [ 4; 4 ]);
  check_int "R(3,3,3)" 17 (Ramsey.upper_bound [ 3; 3; 3 ]);
  check "R(3,3) exact" true (Ramsey.is_exact [ 3; 3 ]);
  check "R(4,4,4) is a bound" false (Ramsey.is_exact [ 4; 4; 4 ])

let test_ramsey_monotone () =
  check "more colors, bigger bound" true
    (Ramsey.four_clique_bound ~colors:3 > Ramsey.four_clique_bound ~colors:2);
  check_int "one color" 4 (Ramsey.four_clique_bound ~colors:1);
  check_int "two colors" 18 (Ramsey.four_clique_bound ~colors:2)

let test_ramsey_symmetric () =
  check_int "argument order irrelevant" (Ramsey.upper_bound [ 3; 4 ])
    (Ramsey.upper_bound [ 4; 3 ])

let test_ramsey_invalid () =
  check "empty rejected" true
    (try
       ignore (Ramsey.upper_bound []);
       false
     with Invalid_argument _ -> true);
  check "zero rejected" true
    (try
       ignore (Ramsey.upper_bound [ 0; 3 ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Multisets (Lemma 8 machinery) *)

let test_multiset_basics () =
  let m = MS.of_list [ 1; 2; 2; 3 ] in
  check_int "size" 4 (MS.size m);
  check_int "count 2" 2 (MS.count 2 m);
  check "max" true (MS.max_opt m = Some 3);
  check "empty max" true (MS.max_opt MS.empty = None)

let test_multiset_ops () =
  let m = MS.of_list [ 1; 2 ] and n = MS.of_list [ 2; 3 ] in
  check_int "union size" 4 (MS.size (MS.union m n));
  check_int "union count 2" 2 (MS.count 2 (MS.union m n));
  check_int "inter" 1 (MS.size (MS.inter m n));
  check_int "diff" 1 (MS.size (MS.diff m n));
  check_int "diff keeps 1" 1 (MS.count 1 (MS.diff m n))

let test_multiset_remove () =
  let m = MS.of_list [ 2; 2 ] in
  check_int "remove one occurrence" 1 (MS.count 2 (MS.remove 2 m));
  check_int "remove absent is noop" 0 (MS.count 5 (MS.remove 5 m))

let test_lex_order () =
  let lt a bl = MS.compare_lex (MS.of_list a) (MS.of_list bl) < 0 in
  check "∅ < {1}" true (lt [] [ 1 ]);
  check "{1,1} < {2}" true (lt [ 1; 1 ] [ 2 ]);
  check "{2} < {2,1}" true (lt [ 2 ] [ 2; 1 ]);
  check "{1,3} < {2,3}" true (lt [ 1; 3 ] [ 2; 3 ]);
  check "equal" true (MS.compare_lex (MS.of_list [ 1; 2 ]) (MS.of_list [ 2; 1 ]) = 0);
  check "not symmetric" false (lt [ 2 ] [ 1; 1 ])

let test_lex_peak_removal_shape () =
  (* the shape of Lemma 40's decrease: replacing a maximal timestamp by any
     number of strictly smaller ones decreases the multiset *)
  let before = MS.of_list [ 0; 1; 3 ] in
  let after = MS.of_list [ 0; 1; 2; 2; 2 ] in
  check "peak removal decreases" true (MS.compare_lex after before < 0)

let ms_arb =
  QCheck.(make Gen.(map MS.of_list (list_size (int_range 0 8) (int_range 0 5))))

let prop_lex_total =
  QCheck.Test.make ~name:"lex order total and antisymmetric" ~count:200
    (QCheck.pair ms_arb ms_arb) (fun (m, n) ->
      let c1 = MS.compare_lex m n and c2 = MS.compare_lex n m in
      (c1 = 0 && c2 = 0 && MS.equal m n) || c1 * c2 < 0)

let prop_lex_transitive =
  QCheck.Test.make ~name:"lex order transitive" ~count:200
    (QCheck.triple ms_arb ms_arb ms_arb) (fun (m, n, o) ->
      let le a bl = MS.compare_lex a bl <= 0 in
      (not (le m n && le n o)) || le m o)

let prop_union_monotone =
  QCheck.Test.make ~name:"adding elements grows in lex order" ~count:200
    (QCheck.pair ms_arb QCheck.(int_range 0 5)) (fun (m, x) ->
      MS.compare_lex m (MS.add x m) < 0)

let prop_no_infinite_descent =
  (* Lemma 8 witnessed on bounded multisets over 0..5 of size ≤ 6: any
     strictly descending chain from a random start must terminate within
     the (finite) number of such multisets. *)
  QCheck.Test.make ~name:"well-foundedness: descent terminates" ~count:50
    ms_arb (fun start ->
      let smaller m =
        (* a canonical strictly smaller multiset: drop one max element and
           re-add all values below it *)
        match MS.max_opt m with
        | None -> None
        | Some mx ->
            let m' = MS.remove mx m in
            if mx = 0 then Some m'
            else Some (MS.add (mx - 1) m')
      in
      let rec descend m steps =
        if steps > 100000 then false
        else
          match smaller m with
          | None -> true
          | Some m' ->
              assert (MS.compare_lex m' m < 0);
              descend m' (steps + 1)
      in
      descend start 0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lex_total; prop_lex_transitive; prop_union_monotone;
      prop_no_infinite_descent ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          tc "build" test_build;
          tc "degrees" test_degrees;
          tc "loops" test_loops;
          tc "dag" test_dag;
          tc "topo" test_topo;
          tc "topo cyclic" test_topo_cyclic;
          tc "reach" test_reach;
          tc "maximal" test_maximal;
          tc "restrict" test_restrict;
          tc "components" test_components;
          tc "of instance" test_of_instance;
          tc "of atoms" test_of_atoms;
        ] );
      ( "tournament",
        [
          tc "three-cycle" test_tournament_simple;
          tc "inclusive or" test_tournament_inclusive_or;
          tc "path" test_tournament_path;
          tc "transitive" test_tournament_transitive;
          tc "early exit" test_tournament_early_exit;
          tc "membership" test_tournament_membership;
          tc "greedy bound" test_tournament_greedy_bound;
          tc "empty" test_tournament_empty;
        ] );
      ( "ramsey",
        [
          tc "one color" test_ramsey_one_color;
          tc "trivial colors" test_ramsey_trivial_colors;
          tc "known values" test_ramsey_known;
          tc "monotone" test_ramsey_monotone;
          tc "symmetric" test_ramsey_symmetric;
          tc "invalid" test_ramsey_invalid;
        ] );
      ( "multiset",
        [
          tc "basics" test_multiset_basics;
          tc "ops" test_multiset_ops;
          tc "remove" test_multiset_remove;
          tc "lex order" test_lex_order;
          tc "peak removal shape" test_lex_peak_removal_shape;
        ] );
      ("properties", props);
    ]
