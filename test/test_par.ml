(* Parallel-equivalence suite (@par-smoke): the multi-domain engines
   must be indistinguishable from the sequential ones.  Workers only
   enumerate (no atoms, no nulls), results merge in task order, so a
   parallel chase produces exactly the run the sequential engine would
   have produced from the same process state.  Cross-process
   byte-identity is pinned by the chase.jobs3.out golden in test/dune;
   here the comparisons are in-process, which needs two accommodations
   spelled out at [chase_equal] and [warmed]. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Datalog = Nca_chase.Datalog
module Pool = Nca_chase.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:3 @@ function
  | None -> Alcotest.fail "expected a pool at jobs=3"
  | Some p ->
      check_int "crew size" 3 (Pool.jobs p);
      let r = Pool.map p 100 (fun i -> i * i) in
      check_int "length" 100 (Array.length r);
      Array.iteri (fun i v -> check_int "task-order results" (i * i) v) r

let test_pool_sequential_is_none () =
  Pool.with_pool ~jobs:1 @@ function
  | None -> ()
  | Some _ -> Alcotest.fail "jobs=1 must not build a pool"

let test_pool_lowest_failure_wins () =
  Pool.with_pool ~jobs:4 @@ function
  | None -> Alcotest.fail "expected a pool"
  | Some p -> (
      match
        Pool.map p 32 (fun i ->
            if i = 2 || i = 5 then failwith (Printf.sprintf "t%d" i) else i)
      with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Failure msg ->
          Alcotest.(check string) "lowest failing index" "t2" msg)

let test_pool_stats_account_tasks () =
  Pool.with_pool ~jobs:3 @@ function
  | None -> Alcotest.fail "expected a pool"
  | Some p ->
      ignore (Pool.map p 40 (fun i -> i) : int array);
      ignore (Pool.map p 17 (fun i -> i) : int array);
      let s = Pool.stats p in
      check_int "batches" 2 s.Pool.batches;
      check_int "slots" 3 (List.length s.Pool.per_domain);
      check_int "every task accounted" 57
        (List.fold_left (fun acc (t, _) -> acc + t) 0 s.Pool.per_domain)

let test_gate_trips_on_step_budget () =
  let b = Nca_obs.Budget.v ~max_steps:100 () in
  let g = Nca_obs.Budget.Gate.make ~period:16 b in
  let tripped = ref false in
  for _ = 1 to 200 do
    if Nca_obs.Budget.Gate.step g then tripped := true
  done;
  check "gate tripped past the step budget" true !tripped;
  check "verdict is steps" true
    (match Nca_obs.Budget.Gate.tripped g with
    | Some e -> e.Nca_obs.Exhausted.resource = Nca_obs.Exhausted.Steps
    | None -> false);
  (* post-trip steps short-circuit without counting, so the total sits
     between the budget and the trip checkpoint, short of 200 *)
  let taken = Nca_obs.Budget.Gate.steps_taken g in
  check "counted up to the tripping checkpoint" true
    (taken >= 100 && taken < 200)

(* ------------------------------------------------------------------ *)
(* Engine equivalence *)

(* In one process the global null counter keeps running, so a rerun of
   the same chase shifts every null id.  The determinism claim —
   parallel creates the very same nulls in the very same order —
   therefore shows up in-process as equality modulo the order-preserving
   renaming of nulls: sort structurally, rename nulls by first
   occurrence, compare atom lists. *)
let renamer () =
  let tbl = Hashtbl.create 16 in
  fun t ->
    if Term.is_null t then (
      match Hashtbl.find_opt tbl t with
      | Some c -> c
      | None ->
          let c = Term.cst (Printf.sprintf "!n%d" (Hashtbl.length tbl)) in
          Hashtbl.add tbl t c;
          c)
    else t

let canon rename inst =
  List.map (Atom.map rename)
    (List.sort Atom.compare_structural (Instance.atoms inst))

let chase_equal (a : Chase.t) (b : Chase.t) =
  let ra = renamer () and rb = renamer () in
  a.depth = b.depth
  && a.saturated = b.saturated
  && List.length a.levels = List.length b.levels
  && List.for_all2
       (fun x y -> List.equal Atom.equal (canon ra x) (canon rb y))
       a.levels b.levels
  && List.equal Atom.equal (canon ra a.instance) (canon rb b.instance)
  && Term.Set.cardinal (Chase.invented a)
     = Term.Set.cardinal (Chase.invented b)

(* Trigger enumeration iterates instances in hash-cons id order, so a
   run that re-derives a constant-only atom first interned by an
   EARLIER run sees it at an old (small) id and enumerates its round
   delta in a different order — different null numbering, same
   instance up to isomorphism.  That is a property of the sequential
   engine (two back-to-back sequential runs disagree the same way),
   not of the pool; a single throwaway run pins every constant-only
   atom the chase can derive, after which enumeration order is stable
   and reruns at any jobs count are identical up to the null shift. *)
let warmed run =
  ignore (run () : Chase.t);
  run ()

let par_chase ~jobs i rules =
  Pool.with_pool ~jobs (fun pool -> Chase.run ~max_depth:3 ?pool i rules)

let rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Nca_core.Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 10000))

let prop_chase_byte_identical =
  QCheck.Test.make ~name:"chase identical at jobs in {2,3,4}" ~count:15
    rules_arb (fun rules ->
      let i = Parser.instance "E(c0,c1), A(c0), B(c1)" in
      let seq = warmed (fun () -> Chase.run ~max_depth:3 i rules) in
      List.for_all
        (fun jobs -> chase_equal seq (par_chase ~jobs i rules))
        [ 2; 3; 4 ])

(* Random edge sets for the Datalog closure comparison. *)
let edge_instance_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun pairs ->
          Instance.of_list
            (List.map
               (fun (s, t) ->
                 Atom.app "E"
                   [
                     Term.cst (Printf.sprintf "c%d" (abs s mod 5));
                     Term.cst (Printf.sprintf "c%d" (abs t mod 5));
                   ])
               pairs))
        (list_size (int_range 0 12) (pair int int)))

let closure_rules =
  Parser.parse_rules
    {| tc: E(x,y), E(y,z) -> E(x,z).
       sym: E(x,y) -> E(y,x).
       mark: E(x,y) -> A(x). |}

let prop_closure_set_equal =
  QCheck.Test.make ~name:"datalog closure set-equal at jobs in {2,3,4}"
    ~count:15 edge_instance_arb (fun i ->
      let seq = Datalog.closure i closure_rules in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              Instance.equal seq (Datalog.closure ?pool i closure_rules)))
        [ 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Seeded stress: many small runs, 2-8 domains, fixed seeds so a
   failure replays.  Each rep chases a fresh random forward-existential
   set and diffs against the sequential run. *)

let test_stress_multi_domain () =
  for rep = 0 to 49 do
    let jobs = 2 + (rep mod 7) in
    let rules =
      Nca_core.Rulesets.random_forward_existential_rules ~seed:(1000 + rep)
        ~rules:4
    in
    let i = Parser.instance "E(c0,c1), A(c0)" in
    let seq = warmed (fun () -> Chase.run ~max_depth:3 i rules) in
    if not (chase_equal seq (par_chase ~jobs i rules)) then
      Alcotest.failf "rep %d (jobs=%d, seed=%d): parallel chase diverged" rep
        jobs (1000 + rep)
  done

let test_stress_shared_pool () =
  (* one pool reused across many batches, checking reuse is as safe as
     the fresh-pool-per-run pattern above *)
  Pool.with_pool ~jobs:4 @@ function
  | None -> Alcotest.fail "expected a pool"
  | Some _ as pool ->
      for rep = 0 to 19 do
        let rules =
          Nca_core.Rulesets.random_forward_existential_rules
            ~seed:(2000 + rep) ~rules:3
        in
        let i = Parser.instance "E(c0,c1), B(c1)" in
        let seq = warmed (fun () -> Chase.run ~max_depth:3 i rules) in
        if not (chase_equal seq (Chase.run ~max_depth:3 ?pool i rules)) then
          Alcotest.failf "rep %d: shared-pool chase diverged" rep
      done

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_chase_byte_identical; prop_closure_set_equal ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          tc "map preserves task order" test_pool_map_order;
          tc "jobs=1 is sequential" test_pool_sequential_is_none;
          tc "lowest failure wins" test_pool_lowest_failure_wins;
          tc "stats account every task" test_pool_stats_account_tasks;
          tc "gate trips on step budget" test_gate_trips_on_step_budget;
        ] );
      ("equivalence", props);
      ( "stress",
        [
          tc "50 seeded reps, 2-8 domains" test_stress_multi_domain;
          tc "shared pool across runs" test_stress_shared_pool;
        ] );
    ]
