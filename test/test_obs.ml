(* The resource governor and telemetry layer.

   Three families of guarantees:
   - verdicts: each engine reports exhaustion as a typed value naming the
     resource that ran out — never an exception, never a silent flag;
   - prefix safety: a budgeted run computes a prefix of the unbudgeted
     run (same levels, same timestamps, same provenance; a subset of the
     Datalog closure) — stopping early never changes what was computed;
   - telemetry neutrality: with recording disabled every entry point is a
     no-op, and the JSON stats shape is pinned by a golden. *)

open Nca_logic
module Chase = Nca_chase.Chase
module Datalog = Nca_chase.Datalog
module Finite_model = Nca_chase.Finite_model
module Rewrite = Nca_rewriting.Rewrite
module Rulesets = Nca_core.Rulesets
module Budget = Nca_obs.Budget
module Exhausted = Nca_obs.Exhausted
module Telemetry = Nca_obs.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let resource = function
  | None -> None
  | Some (e : Exhausted.t) -> Some e.resource

let example1 = Rulesets.example1

(* ------------------------------------------------------------------ *)
(* Budget values *)

let test_unlimited_passes_everything () =
  let b = Budget.unlimited in
  check "interrupted" true (Budget.interrupted b = None);
  check "depth" true (Budget.depth b ~used:max_int = None);
  check "rounds" true (Budget.rounds b ~used:max_int = None);
  check "atoms" true (Budget.atoms b ~used:max_int = None);
  check "steps" true (Budget.steps b ~used:max_int = None);
  check "disjuncts" true (Budget.disjuncts b ~used:max_int = None);
  check "is_unlimited" true (Budget.is_unlimited b)

let test_checkpoint_directions () =
  (* the comparison directions replicate the seed engines: depth and
     rounds_reached stop at used >= limit, the rest at used > limit *)
  let b = Budget.v ~max_depth:3 ~max_rounds:3 ~max_atoms:3 ~max_steps:3 () in
  check "depth below" true (Budget.depth b ~used:2 = None);
  check "depth at" true (resource (Budget.depth b ~used:3) = Some Exhausted.Depth);
  check "rounds at" true (Budget.rounds b ~used:3 = None);
  check "rounds above" true
    (resource (Budget.rounds b ~used:4) = Some Exhausted.Rounds);
  check "rounds_reached at" true
    (resource (Budget.rounds_reached b ~used:3) = Some Exhausted.Rounds);
  check "atoms at" true (Budget.atoms b ~used:3 = None);
  check "atoms above" true
    (resource (Budget.atoms b ~used:4) = Some Exhausted.Atoms);
  check "steps above" true
    (resource (Budget.steps b ~used:4) = Some Exhausted.Steps)

let test_intersect_takes_tighter () =
  let a = Budget.v ~max_depth:5 ~max_atoms:100 () in
  let b = Budget.v ~max_depth:3 ~max_steps:7 () in
  let i = Budget.intersect a b in
  check "tighter depth" true (i.Budget.max_depth = Some 3);
  check "atoms kept" true (i.Budget.max_atoms = Some 100);
  check "steps kept" true (i.Budget.max_steps = Some 7);
  check "rounds unbounded" true (i.Budget.max_rounds = None)

let test_wall_clock_verdict () =
  let b = Budget.v ~timeout_s:0.0 () in
  check "deadline already passed" true
    (resource (Budget.interrupted b) = Some Exhausted.Wall_clock)

let test_cancel_verdict () =
  let fired = ref false in
  let b = Budget.v ~cancel:(fun () -> !fired) () in
  check "not cancelled yet" true (Budget.interrupted b = None);
  fired := true;
  check "cancelled" true
    (resource (Budget.interrupted b) = Some Exhausted.Cancelled)

(* ------------------------------------------------------------------ *)
(* Engine verdicts *)

let test_chase_wall_clock_stop () =
  let c =
    Chase.run ~budget:(Budget.v ~timeout_s:0.0 ()) example1.instance
      example1.rules
  in
  check "stopped on wall clock" true
    (resource c.stopped = Some Exhausted.Wall_clock);
  check "not saturated" false c.saturated;
  check "input level still present" true
    (Instance.equal (Chase.level c 0) example1.instance)

let test_chase_cancel_stop () =
  let c =
    Chase.run
      ~budget:(Budget.v ~cancel:(fun () -> true) ())
      example1.instance example1.rules
  in
  check "stopped on cancellation" true
    (resource c.stopped = Some Exhausted.Cancelled)

let test_chase_depth_stop_is_silent_verdict () =
  let c = Chase.run ~max_depth:2 example1.instance example1.rules in
  check "stopped on depth" true (resource c.stopped = Some Exhausted.Depth);
  check "stopped iff not saturated" true
    (Option.is_some c.stopped <> c.saturated)

let tc_rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)."

let chain n =
  Instance.of_list
    (List.init n (fun i ->
         Atom.app "E"
           [ Term.cst (Fmt.str "c%d" i); Term.cst (Fmt.str "c%d" (i + 1)) ]))

let test_datalog_rounds_verdict () =
  match Datalog.saturate ~max_rounds:1 (chain 8) tc_rules with
  | Ok _ -> Alcotest.fail "expected a rounds verdict"
  | Error { err; partial; rounds } ->
      check "rounds resource" true (err.Exhausted.resource = Exhausted.Rounds);
      check "partial contains the input" true
        (Instance.subset (chain 8) partial);
      check_int "rounds counted" rounds err.Exhausted.used

let test_datalog_wall_clock_verdict () =
  match
    Datalog.saturate ~budget:(Budget.v ~timeout_s:0.0 ()) (chain 4) tc_rules
  with
  | Ok _ -> Alcotest.fail "expected a wall-clock verdict"
  | Error { err; partial; _ } ->
      check "wall-clock resource" true
        (err.Exhausted.resource = Exhausted.Wall_clock);
      check "partial is the input (no round ran)" true
        (Instance.equal partial (chain 4))

let test_finite_model_unknown () =
  match
    Finite_model.loop_free_model_exists ~fresh:1 ~max_steps:0
      ~e:(Symbol.make "E" 2) example1.instance example1.rules
  with
  | Finite_model.Unknown e ->
      check "steps resource" true (e.Exhausted.resource = Exhausted.Steps)
  | Finite_model.Exists | Finite_model.Absent ->
      Alcotest.fail "0 steps cannot be conclusive"

let test_rewrite_stopped_verdict () =
  let q = Cq.atom_query (Symbol.make "E" 2) in
  let out = Rewrite.rewrite ~max_rounds:0 example1.rules q in
  check "incomplete" false out.complete;
  check "rounds verdict" true
    (resource out.stopped = Some Exhausted.Rounds);
  let out = Rewrite.rewrite ~max_rounds:12 Rulesets.example1_bdd.rules q in
  check "fixpoint reached" true out.complete;
  check "no verdict at fixpoint" true (out.stopped = None)

(* ------------------------------------------------------------------ *)
(* Prefix safety *)

(* Fresh nulls draw globally-unique names, so the second of two
   in-process runs names its nulls differently; levels are compared up
   to that renaming. *)
let same_level = Hom.isomorphic

let is_prefix short long =
  let rec go = function
    | [], _ -> true
    | x :: xs, y :: ys -> same_level x y && go (xs, ys)
    | _ :: _, [] -> false
  in
  go (short, long)

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 5000))

let prop_chase_budgeted_prefix =
  QCheck.Test.make ~name:"budgeted chase = prefix of unbudgeted chase"
    ~count:30 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let full = Chase.run ~max_depth:6 ~max_atoms:100000 i rules in
      let cut = Chase.run ~max_depth:3 ~max_atoms:100000 i rules in
      is_prefix cut.levels full.levels
      && Nca_graph.Multiset.Int_multiset.equal
           (Chase.timestamp_multiset cut (Instance.adom cut.instance))
           (Chase.timestamp_multiset full
              (Instance.adom (List.nth full.levels cut.depth)))
      && Term.Map.for_all (fun _ p -> p.Chase.level <= cut.depth)
           cut.provenance)

let prop_datalog_partial_subset =
  QCheck.Test.make
    ~name:"budgeted saturation ⊆ closure, monotone in the budget" ~count:20
    QCheck.(pair (int_range 1 6) (int_range 0 4))
    (fun (n, r) ->
      let i = chain n in
      let closure = Datalog.closure i tc_rules in
      let at rounds =
        match Datalog.saturate ~max_rounds:rounds i tc_rules with
        | Ok total -> total
        | Error { partial; _ } -> partial
      in
      Instance.subset (at r) closure
      && Instance.subset (at r) (at (r + 1))
      && Instance.equal (at 1000) closure)

(* ------------------------------------------------------------------ *)
(* Hom totality (the seed raised Invalid_argument from [pick]) *)

let test_hom_empty_source () =
  let tgt = Parser.instance "E(a,b)" in
  check_int "one empty homomorphism" 1 (Hom.count [] tgt);
  check "exists" true (Hom.exists [] tgt);
  check "all = [empty]" true (Hom.all [] tgt = [ Subst.empty ])

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let with_telemetry f =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable f

let test_disabled_is_empty () =
  check "disabled" false (Telemetry.enabled ());
  Telemetry.count "ghost" 42;
  Telemetry.incr "ghost";
  check_int "span still runs the body" 3 (Telemetry.span "ghost" (fun () -> 3));
  let snap = Telemetry.snapshot () in
  check "no counters" true (snap.Telemetry.counters = []);
  check "no spans" true (snap.Telemetry.spans = [])

let test_span_nesting () =
  with_telemetry @@ fun () ->
  Telemetry.span "outer" (fun () ->
      Telemetry.span "inner" (fun () -> Telemetry.incr "ticks");
      Telemetry.span "inner" (fun () -> Telemetry.incr "ticks"));
  let snap = Telemetry.snapshot () in
  check "counter" true (snap.Telemetry.counters = [ ("ticks", 2) ]);
  match snap.Telemetry.spans with
  | [ outer ] -> (
      check_str "outer name" "outer" outer.Telemetry.span_name;
      check_int "outer calls" 1 outer.Telemetry.calls;
      match outer.Telemetry.children with
      | [ inner ] ->
          check_str "inner name" "inner" inner.Telemetry.span_name;
          check_int "inner accumulates" 2 inner.Telemetry.calls
      | _ -> Alcotest.fail "expected one (accumulated) child span")
  | _ -> Alcotest.fail "expected one top-level span"

(* The --stats-json shape is versioned; this golden pins it ([scrub_times]
   zeroes the only nondeterministic field). *)
let test_stats_json_golden () =
  let json =
    with_telemetry @@ fun () ->
    (* drop memoized plans so the cache counters don't depend on what the
       other tests compiled before this one ran *)
    Nca_plan.Cache.clear ();
    (* likewise the process-wide SAT totals: another test in this binary
       may have run the finite-model engine *)
    Nca_sat.Stats.reset ();
    ignore (Datalog.closure (Parser.instance "E(a,b)") tc_rules);
    Nca_analysis.Obs_report.of_snapshot
      (Telemetry.scrub_times (Telemetry.snapshot ()))
  in
  check_str "stats json shape"
    "{\"schema\":\"nocliques/stats/v6\",\
     \"counters\":{\"datalog.atoms\":0,\"datalog.rounds\":1,\
     \"plan.cache.hit\":1,\"plan.cache.miss\":1,\"plan.exec\":2,\
     \"plan.intersections\":0,\"plan.matches\":0,\"plan.probes\":1},\
     \"plan\":{\"enabled\":true,\"plans\":1,\"cache_hits\":1,\
     \"cache_misses\":1},\
     \"sat\":{\"solves\":0,\"vars\":0,\"clauses\":0,\"learnt\":0,\
     \"decisions\":0,\"conflicts\":0,\"propagations\":0},\
     \"parallel\":{\"jobs\":1,\"batches\":0,\"domains\":[]},\
     \"provenance\":{\"facts\":0,\"store_bytes\":0,\"max_depth\":0},\
     \"histograms\":{},\"memory\":{},\
     \"spans\":[{\"name\":\"datalog.saturate\",\"calls\":1,\"time_us\":0,\
     \"children\":[{\"name\":\"datalog.round\",\"calls\":1,\"time_us\":0,\
     \"children\":[{\"name\":\"plan.compile\",\"calls\":1,\"time_us\":0,\
     \"children\":[]}]}]}]}"
    (Nca_analysis.Json.to_string json);
  match Nca_analysis.Json.parse (Nca_analysis.Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("stats json does not parse: " ^ e)

let test_chase_counters_recorded () =
  with_telemetry @@ fun () ->
  let c = Chase.run ~max_depth:3 example1.instance example1.rules in
  let snap = Telemetry.snapshot () in
  let counter name =
    Option.value ~default:0 (List.assoc_opt name snap.Telemetry.counters)
  in
  check_int "chase.rounds matches depth" c.Chase.depth
    (counter "chase.rounds");
  check_int "chase.atoms counts the derived atoms"
    (Instance.cardinal c.Chase.instance
    - Instance.cardinal example1.instance)
    (counter "chase.atoms");
  check "triggers were counted" true (counter "chase.triggers" > 0)

(* ------------------------------------------------------------------ *)
(* Profiling layer: event ring, histograms, trace export *)

module Events = Nca_obs.Events
module Metrics = Nca_obs.Metrics
module Trace_export = Nca_obs.Trace_export
module Pool = Nca_chase.Pool
module Json = Nca_analysis.Json

let ring_cap = 16

(* Wrap-around overwrites the oldest events: the snapshot holds the
   newest [min n cap] instants in order and counts the rest as drops. *)
let prop_ring_wraparound =
  QCheck.Test.make ~name:"ring wrap-around keeps newest, counts drops exactly"
    ~count:100
    QCheck.(int_range 0 (3 * ring_cap))
    (fun n ->
      Events.enable ~capacity:ring_cap ();
      let lbl = Events.label "test.ring" in
      for i = 0 to n - 1 do
        Events.instant ~arg:i lbl
      done;
      let snap = Events.snapshot () in
      Events.disable ();
      let kept = min n ring_cap in
      snap.Events.dropped = max 0 (n - ring_cap)
      && List.length snap.Events.events = kept
      && List.for_all2
           (fun (e : Events.event) i ->
             e.arg = i && e.label = lbl && e.phase = Events.Instant
             && e.tid = 0)
           snap.Events.events
           (List.init kept (fun i -> n - kept + i)))

(* A log₂ histogram's percentile is exact up to bucket resolution: it
   must land in the same bucket as the true rank-order statistic of the
   observations, and count/sum/max are exact. *)
let prop_histo_oracle =
  QCheck.Test.make
    ~name:"histogram matches sorted-list oracle up to bucket resolution"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 1_000_000))
    (fun vs ->
      let h = Metrics.Histo.create () in
      List.iter (Metrics.Histo.observe h) vs;
      let sorted = List.sort compare vs in
      let n = List.length vs in
      let oracle p =
        let rank = ((p * n) + 99) / 100 in
        List.nth sorted (max 0 (rank - 1))
      in
      Metrics.Histo.count h = n
      && Metrics.Histo.sum h = List.fold_left ( + ) 0 vs
      && Metrics.Histo.max_value h = List.fold_left max 0 vs
      && List.for_all
           (fun p ->
             let reported = Metrics.Histo.percentile h p in
             Metrics.Histo.bucket_of reported
             = Metrics.Histo.bucket_of (oracle p)
             && reported >= oracle p
             && reported <= Metrics.Histo.max_value h)
           [ 50; 90; 99; 100 ])

let assoc name fields = List.assoc_opt name fields

let test_chrome_trace_shape () =
  Events.enable ~capacity:64 ();
  let l_span = Events.label "test.span"
  and l_mark = Events.label "test.mark" in
  Events.enter l_span;
  Events.instant ~arg:7 l_mark;
  Events.leave l_span;
  let snap = Events.snapshot () in
  Events.disable ();
  match Json.parse (Trace_export.chrome_json snap) with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok (Json.Obj fields) ->
      check "droppedEvents = 0" true
        (assoc "droppedEvents" fields = Some (Json.Int 0));
      let events =
        match assoc "traceEvents" fields with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "no traceEvents array"
      in
      check_int "three events" 3 (List.length events);
      let phases =
        List.map
          (function
            | Json.Obj f ->
                check "has a name" true
                  (match assoc "name" f with
                  | Some (Json.String _) -> true
                  | _ -> false);
                check "pid = 1" true (assoc "pid" f = Some (Json.Int 1));
                check "tid = 0" true (assoc "tid" f = Some (Json.Int 0));
                check "has ts" true
                  (match assoc "ts" f with
                  | Some (Json.Int _) -> true
                  | _ -> false);
                (match assoc "ph" f with
                | Some (Json.String p) -> p
                | _ -> Alcotest.fail "no ph")
            | _ -> Alcotest.fail "event is not an object")
          events
      in
      check "phases are B, i, E" true (phases = [ "B"; "i"; "E" ])
  | Ok _ -> Alcotest.fail "trace JSON is not an object"

(* Every pool participant emits at least one event per batch, and
   absorbed worker events carry the worker's slot index as track id —
   so a [--jobs n] trace has exactly the tracks 0..n-1, stable across
   runs. *)
let test_tids_stable_across_jobs () =
  List.iter
    (fun jobs ->
      Events.enable ~capacity:1024 ();
      Pool.with_pool ~jobs (fun p ->
          match p with
          | None -> Alcotest.fail "pool did not start"
          | Some pool -> ignore (Pool.map pool 64 (fun i -> i * i)));
      let snap = Events.snapshot () in
      Events.disable ();
      let tids =
        List.sort_uniq compare
          (List.map (fun (e : Events.event) -> e.tid) snap.Events.events)
      in
      check
        (Printf.sprintf "jobs %d: one track per domain" jobs)
        true
        (tids = List.init jobs Fun.id);
      check
        (Printf.sprintf "jobs %d: nothing dropped" jobs)
        true
        (snap.Events.dropped = 0))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_chase_budgeted_prefix;
      prop_datalog_partial_subset;
      prop_ring_wraparound;
      prop_histo_oracle;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "budget",
        [
          tc "unlimited passes" `Quick test_unlimited_passes_everything;
          tc "checkpoint directions" `Quick test_checkpoint_directions;
          tc "intersect tighter" `Quick test_intersect_takes_tighter;
          tc "wall-clock verdict" `Quick test_wall_clock_verdict;
          tc "cancel verdict" `Quick test_cancel_verdict;
        ] );
      ( "verdicts",
        [
          tc "chase wall clock" `Quick test_chase_wall_clock_stop;
          tc "chase cancel" `Quick test_chase_cancel_stop;
          tc "chase depth" `Quick test_chase_depth_stop_is_silent_verdict;
          tc "datalog rounds" `Quick test_datalog_rounds_verdict;
          tc "datalog wall clock" `Quick test_datalog_wall_clock_verdict;
          tc "finite-model unknown" `Quick test_finite_model_unknown;
          tc "rewrite stopped" `Quick test_rewrite_stopped_verdict;
        ] );
      ("prefix", props);
      ("hom", [ tc "empty source" `Quick test_hom_empty_source ]);
      ( "telemetry",
        [
          tc "disabled no-op" `Quick test_disabled_is_empty;
          tc "span nesting" `Quick test_span_nesting;
          tc "stats json golden" `Quick test_stats_json_golden;
          tc "chase counters" `Quick test_chase_counters_recorded;
        ] );
      ( "profiling",
        [
          tc "chrome trace shape" `Quick test_chrome_trace_shape;
          tc "per-domain tids" `Quick test_tids_stable_across_jobs;
        ] );
    ]
