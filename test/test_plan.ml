(* The compiled-plan executor.

   Three families of guarantees:
   - the sorted posting arrays the leapfrog merge runs on are exactly the
     positional index, in ascending atom-id order (Instance invariant);
   - the executor is a drop-in for the interpreted Hom search: same match
     sets on random bodies/instances (plain, injective, seeded with an
     initial binding), and for bodies of at most two atoms the very same
     enumeration order — the property the byte-identity goldens lean on;
   - the engines rewired onto it (Trigger.all_delta, Datalog, Chase) agree
     with the interpreted oracle, including under budgets: the same
     Exhausted verdicts, the same closures, isomorphic chase results. *)

open Nca_logic
module Rulesets = Nca_core.Rulesets
module Trigger = Nca_chase.Trigger
module Chase = Nca_chase.Chase
module Datalog = Nca_chase.Datalog
module Exhausted = Nca_obs.Exhausted
module Plan = Nca_plan.Plan
module Cache = Nca_plan.Cache
module Exec = Nca_plan.Exec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let e2 = Symbol.make "E" 2
let a1 = Symbol.make "A" 1
let b1 = Symbol.make "B" 1
let sign = Symbol.Set.of_list [ e2; a1; b1 ]

let with_planner b f =
  let prev = Exec.enabled () in
  Exec.set_enabled b;
  Fun.protect ~finally:(fun () -> Exec.set_enabled prev) f

(* canonical form of a match: the bindings as (code, code) pairs in key
   order — total, and independent of the map's internal shape *)
let sub_key s =
  List.map (fun (x, t) -> (Term.code x, Term.code t)) (Subst.bindings s)

let keys subs = List.map sub_key subs
let norm subs = List.sort compare (keys subs)

(* ------------------------------------------------------------------ *)
(* Generators *)

let inst_gen =
  QCheck.Gen.(
    map
      (fun seed -> Rulesets.random_instance ~seed ~constants:4 ~atoms:8 sign)
      (int_range 0 10000))

let term_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Term.var (Fmt.str "v%d" (abs i mod 4))) int;
        map (fun i -> Term.cst (Fmt.str "c%d" (abs i mod 4))) int;
      ])

let atom_gen =
  QCheck.Gen.(
    int_range 0 3 >>= fun p ->
    match p with
    | 0 | 1 -> map2 (fun s t -> Atom.make e2 [ s; t ]) term_gen term_gen
    | 2 -> map (fun t -> Atom.make a1 [ t ]) term_gen
    | _ -> map (fun t -> Atom.make b1 [ t ]) term_gen)

let body_gen = QCheck.Gen.(list_size (int_range 1 4) atom_gen)

let search_arb = QCheck.make QCheck.Gen.(pair body_gen inst_gen)

let rules_sym_tc =
  Parser.parse_rules "sym: E(x,y) -> E(y,x). tc: E(x,y), E(y,z) -> E(x,z)."

(* ------------------------------------------------------------------ *)
(* Posting-array invariants *)

let args_at a i = List.nth (Atom.args a) i

let sorted_by_id arr =
  let ok = ref true in
  Array.iteri
    (fun j b -> if j > 0 then ok := !ok && Atom.id arr.(j - 1) < Atom.id b)
    arr;
  !ok

let prop_posting_invariant =
  QCheck.Test.make ~name:"posting arrays = positional index, id-sorted"
    ~count:100 (QCheck.make inst_gen) (fun inst ->
      (* exercise the per-record caches: a shrunk copy must rebuild its
         own arrays, not see the original's *)
      let shrunk =
        match Instance.atoms inst with
        | a :: _ -> Instance.remove a inst
        | [] -> inst
      in
      List.for_all
        (fun inst ->
          List.for_all
            (fun a ->
              let p = Atom.pred a in
              let parr = Instance.pred_array p inst in
              sorted_by_id parr
              && Array.to_list parr = Instance.with_pred p inst
              && List.for_all
                   (fun i ->
                     let t = args_at a i in
                     let arr = Instance.posting p i t inst in
                     sorted_by_id arr
                     && Instance.pos_cardinal p i t inst = Array.length arr
                     && Array.to_list arr
                        = List.filter
                            (fun b -> Term.equal (args_at b i) t)
                            (Instance.with_pred p inst))
                   (List.init (Symbol.arity p) Fun.id))
            (Instance.atoms inst))
        [ inst; shrunk ])

(* ------------------------------------------------------------------ *)
(* Differential: executor vs interpreted Hom *)

let init01 =
  Subst.add (Term.var "v0") (Term.cst "c0") Subst.empty

let prop_same_matches =
  QCheck.Test.make ~name:"compiled ≡ interpreted: match sets" ~count:300
    search_arb (fun (body, inst) ->
      let c = with_planner true (fun () -> Exec.all body inst) in
      let h = Hom.all body inst in
      norm c = norm h)

let prop_same_matches_inj =
  QCheck.Test.make ~name:"compiled ≡ interpreted: injective match sets"
    ~count:300 search_arb (fun (body, inst) ->
      let c = with_planner true (fun () -> Exec.all ~inj:true body inst) in
      let h = Hom.all ~inj:true body inst in
      norm c = norm h)

let prop_same_matches_init =
  QCheck.Test.make ~name:"compiled ≡ interpreted: seeded match sets"
    ~count:300 search_arb (fun (body, inst) ->
      let c =
        with_planner true (fun () -> Exec.all ~init:init01 body inst)
      in
      let h = Hom.all ~init:init01 body inst in
      norm c = norm h)

let prop_same_order_small =
  QCheck.Test.make
    ~name:"compiled ≡ interpreted: enumeration order (≤ 2-atom bodies)"
    ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 2) atom_gen) inst_gen))
    (fun (body, inst) ->
      let c = with_planner true (fun () -> Exec.all body inst) in
      let h = Hom.all body inst in
      keys c = keys h
      &&
      let ci = with_planner true (fun () -> Exec.all ~inj:true body inst) in
      keys ci = keys (Hom.all ~inj:true body inst))

let test_empty_body () =
  let tgt = Parser.instance "E(a,b)" in
  with_planner true @@ fun () ->
  check_int "one empty match" 1 (Exec.count [] tgt);
  check "exists" true (Exec.exists [] tgt);
  check "all = [empty]" true (Exec.all [] tgt = [ Subst.empty ])

(* ------------------------------------------------------------------ *)
(* Rewired engines vs the interpreted oracle *)

let split_delta inst =
  let _, delta =
    Instance.fold
      (fun a (i, acc) -> (i + 1, if i mod 2 = 0 then Instance.add a acc else acc))
      inst (0, Instance.empty)
  in
  delta

let prop_all_delta_agree =
  QCheck.Test.make ~name:"Trigger.all_delta: compiled ≡ interpreted"
    ~count:100 (QCheck.make inst_gen) (fun total ->
      let delta = split_delta total in
      let run on =
        with_planner on (fun () ->
            List.map Trigger.key (Trigger.all_delta rules_sym_tc ~total ~delta))
      in
      let sort = List.sort Trigger.Key.compare in
      List.equal Trigger.Key.equal (sort (run true)) (sort (run false)))

let prop_datalog_agree =
  QCheck.Test.make ~name:"Datalog closure: compiled ≡ interpreted" ~count:50
    (QCheck.make inst_gen) (fun inst ->
      let run on = with_planner on (fun () -> Datalog.closure inst rules_sym_tc) in
      Instance.equal (run true) (run false))

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed -> Rulesets.random_forward_existential_rules ~seed ~rules:4)
        (int_range 0 5000))

let resource = function
  | None -> None
  | Some (e : Exhausted.t) -> Some e.resource

(* Null numbering within one run is deterministic (trigger order), but the
   fresh-null counter is global, so two runs in one process disagree on the
   labels. Renumbering each instance's nulls from 0 in creation order makes
   runs with identical trigger sequences — which the single-atom-body rules
   of [linear_rules_arb] guarantee even across engines — structurally
   EQUAL, a far stronger check than isomorphism (and linear, where
   isomorphism search on null forests blows up). *)
let canon inst =
  let nulls =
    List.sort Int.compare
      (List.filter_map
         (function Term.Null n -> Some n | _ -> None)
         (Term.Set.elements (Instance.adom inst)))
  in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun k n -> Hashtbl.add tbl n k) nulls;
  Instance.map_terms
    (function Term.Null n -> Term.Null (Hashtbl.find tbl n) | t -> t)
    inst

let prop_chase_agree =
  QCheck.Test.make ~name:"chase: compiled ≡ interpreted (up to null names)"
    ~count:50 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let run on =
        with_planner on (fun () -> Chase.run ~max_depth:4 ~max_atoms:2000 i rules)
      in
      let c = run true and h = run false in
      c.Chase.saturated = h.Chase.saturated
      && c.Chase.depth = h.Chase.depth
      && resource c.Chase.stopped = resource h.Chase.stopped
      && Instance.equal (canon c.Chase.instance) (canon h.Chase.instance))

let prop_budget_prefix_survives =
  QCheck.Test.make
    ~name:"budgeted chase: compiled run = prefix with the same verdict"
    ~count:30 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      let run on depth =
        with_planner on (fun () ->
            Chase.run ~max_depth:depth ~max_atoms:100000 i rules)
      in
      let cut = run true 2 and cut_i = run false 2 in
      let full = run true 5 in
      resource cut.Chase.stopped = resource cut_i.Chase.stopped
      && Instance.equal (canon cut.Chase.instance) (canon cut_i.Chase.instance)
      && List.length cut.Chase.levels <= List.length full.Chase.levels
      && Instance.subset (canon cut.Chase.instance) (canon full.Chase.instance))

(* ------------------------------------------------------------------ *)
(* Plan shape and cache discipline *)

let tc_body =
  [
    Atom.make e2 [ Term.var "x"; Term.var "y" ];
    Atom.make e2 [ Term.var "y"; Term.var "z" ];
  ]

let test_plan_shape () =
  let plan = Plan.compile tc_body in
  check_int "three slots" 3 (Plan.nslots plan);
  check_int "two variants" 2 (Array.length plan.Plan.variants);
  Array.iteri
    (fun r order ->
      check_int "root first" r order.(0);
      check_int "permutation" 2 (Array.length order))
    plan.Plan.variants

let test_cache_discipline () =
  Cache.clear ();
  let p1 = Cache.find_or_compile tc_body in
  let p2 = Cache.find_or_compile tc_body in
  check "same plan shared" true (p1 == p2);
  let plans, hits, misses = Cache.stats () in
  check_int "one plan" 1 plans;
  check_int "one hit" 1 hits;
  check_int "one miss" 1 misses;
  Cache.clear ();
  check "cleared" true (Cache.stats () = (0, 0, 0))

let test_escape_hatch () =
  (* set_enabled false must route everything through the interpreted
     engine and still give the same answers *)
  let inst = Rulesets.random_instance ~seed:7 ~constants:3 ~atoms:6 sign in
  let body = tc_body in
  let on = with_planner true (fun () -> Exec.all body inst) in
  let off = with_planner false (fun () -> Exec.all body inst) in
  check "on = off" true (keys on = keys off)

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_posting_invariant;
      prop_same_matches;
      prop_same_matches_inj;
      prop_same_matches_init;
      prop_same_order_small;
      prop_all_delta_agree;
      prop_datalog_agree;
      prop_chase_agree;
      prop_budget_prefix_survives;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "plan"
    [
      ( "unit",
        [
          tc "empty body" `Quick test_empty_body;
          tc "plan shape" `Quick test_plan_shape;
          tc "cache discipline" `Quick test_cache_discipline;
          tc "escape hatch" `Quick test_escape_hatch;
        ] );
      ("properties", props);
    ]
