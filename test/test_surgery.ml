open Nca_logic
module Chase = Nca_chase.Chase
module Encode = Nca_surgery.Encode
module Reify = Nca_surgery.Reify
module Streamline = Nca_surgery.Streamline
module Body_rewrite = Nca_surgery.Body_rewrite
module Properties = Nca_surgery.Properties
module Pipeline = Nca_surgery.Pipeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let e2 = Symbol.make "E" 2

(* ------------------------------------------------------------------ *)
(* Instance encoding (Section 4.1) *)

let test_freeze_shape () =
  let i = Parser.instance "E(a,b), P(a)" in
  let r = Encode.freeze i in
  check "body is ⊤" true (Rule.body r = [ Atom.top ]);
  check_int "head has all facts" 2 (List.length (Rule.head r));
  check "all head terms are fresh variables" true
    (Term.Set.for_all Term.is_var (Atom.vars_of_list (Rule.head r)))

let test_freeze_identifies_shared_terms () =
  let i = Parser.instance "E(a,b), E(b,c)" in
  let r = Encode.freeze i in
  (* a,b,c become 3 variables, with b shared between the two atoms *)
  check_int "three variables" 3
    (Term.Set.cardinal (Atom.vars_of_list (Rule.head r)))

let test_freeze_empty_instance () =
  let r = Encode.freeze Instance.top in
  check "⊤ → ⊤" true (Rule.head r = [ Atom.top ])

let test_corollary15 () =
  (* Ch(J,S) ↔ Ch({⊤}, S ∪ {⊤→J}) *)
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let direct = Chase.run ~max_depth:4 entry.instance entry.rules in
      let encoded =
        Chase.run ~max_depth:5 Instance.top
          (Encode.encode entry.instance entry.rules)
      in
      (* one extra level absorbs the freeze step; constants must first be
         generalized to variables, as Definition 12's renaming does *)
      check (name ^ ": direct maps into encoded") true
        (Hom.exists
           (Instance.atoms (Instance.generalize direct.instance))
           encoded.instance);
      let encoded_near =
        Chase.run ~max_depth:4 Instance.top
          (Encode.encode entry.instance entry.rules)
      in
      let direct_far = Chase.run ~max_depth:5 entry.instance entry.rules in
      check (name ^ ": encoded maps into direct") true
        (Hom.exists
           (Instance.atoms encoded_near.instance)
           (Instance.add Atom.top direct_far.instance)))
    [ "example1"; "example1_bdd"; "symmetric"; "dense" ]

let test_observation16_encoding_preserves_bdd () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let encoded = Encode.encode entry.instance entry.rules in
  let verdicts =
    Nca_rewriting.Bdd.for_signature ~max_rounds:8 encoded
      (Rule.signature entry.rules)
  in
  check "encoded set still bdd" true (Nca_rewriting.Bdd.certified verdicts)

(* ------------------------------------------------------------------ *)
(* Reification (Section 4.2) *)

let test_reify_signature () =
  let t3 = Symbol.make "T" 3 in
  let sign = Symbol.Set.of_list [ e2; t3 ] in
  let reified = Reify.signature sign in
  check "binary result" true (Symbol.is_binary_signature reified);
  check_int "E + T1,T2,T3" 4 (Symbol.Set.cardinal reified);
  check "E kept" true (Symbol.Set.mem e2 reified)

let test_reify_atom () =
  let at = Atom.app "T" [ Term.cst "a"; Term.cst "b"; Term.cst "c" ] in
  let reified = Reify.atom ~fresh:Term.fresh_null at in
  check_int "three position atoms" 3 (List.length reified);
  check "all binary" true (List.for_all Atom.is_binary reified);
  (* all share the same atom-name term in second position *)
  let names =
    List.filter_map
      (fun a -> match Atom.args a with [ _; n ] -> Some n | _ -> None)
      reified
  in
  check_int "one shared name" 1
    (Term.Set.cardinal (Term.Set.of_list names))

let test_reify_binary_untouched () =
  let at = Atom.app "E" [ Term.cst "a"; Term.cst "b" ] in
  check "binary atoms are kept" true
    (Reify.atom ~fresh:Term.fresh_null at = [ at ])

let test_reify_rules_binary () =
  let entry = Nca_core.Rulesets.ternary in
  let reified = Reify.rules entry.rules in
  check "binary signature" true (Properties.is_binary reified);
  check "reify needed detection" true (Reify.needed entry.rules);
  check "already-binary not needed" false
    (Reify.needed Nca_core.Rulesets.example1.rules)

let test_lemma19 () =
  (* Ch(reify(J), reify(S)) ↔ reify(Ch(J, S)) *)
  let entry = Nca_core.Rulesets.ternary in
  let direct = Chase.run ~max_depth:3 entry.instance entry.rules in
  let reified_chase =
    Chase.run ~max_depth:3 (Reify.instance entry.instance)
      (Reify.rules entry.rules)
  in
  let reify_of_chase = Reify.instance direct.instance in
  check "reify(Ch) maps into Ch(reify)" true
    (Hom.exists (Instance.atoms reify_of_chase) reified_chase.instance);
  check "Ch(reify) maps into reify(Ch)" true
    (Hom.exists (Instance.atoms reified_chase.instance) reify_of_chase)

let test_lemma20_reify_preserves_bdd () =
  let entry = Nca_core.Rulesets.ternary in
  let reified = Reify.rules entry.rules in
  let verdicts =
    Nca_rewriting.Bdd.for_signature ~max_rounds:8 reified
      (Rule.signature reified)
  in
  check "reified set bdd" true (Nca_rewriting.Bdd.certified verdicts)

let test_reify_cq () =
  let q =
    Cq.make ~answer:[ Term.var "x" ]
      [ Atom.app "T" [ Term.var "x"; Term.var "y"; Term.var "z" ] ]
  in
  let rq = Reify.cq q in
  check_int "three atoms" 3 (Cq.size rq);
  check "answers kept" true (Cq.answer rq = Cq.answer q);
  (* the reified query holds on the reified instance iff the original held *)
  let i = Parser.instance "T(a,b,c)" in
  check "entailment preserved" true
    (Cq.holds ~tuple:[ Term.cst "a" ] (Reify.instance i) rq)

(* ------------------------------------------------------------------ *)
(* Streamlining ∇ (Section 4.3) *)

let test_streamline_triple () =
  let r = Parser.rule "E(x,y) -> E(y,z)" in
  match Streamline.of_rule r with
  | [ init; ex; dl ] ->
      check "init existential" false (Rule.is_datalog init);
      check "ex existential" false (Rule.is_datalog ex);
      check "dl datalog" true (Rule.is_datalog dl);
      check "init head feeds ex body" true
        (List.for_all
           (fun a -> List.exists (Atom.equal a) (Rule.body ex))
           (Rule.head init));
      check "ex head feeds dl body" true
        (List.for_all
           (fun a -> List.exists (Atom.equal a) (Rule.body dl))
           (Rule.head ex));
      check "dl head is the original head" true (Rule.head dl = Rule.head r)
  | _ -> Alcotest.fail "expected three rules"

let test_streamline_keeps_datalog () =
  let r = Parser.rule "E(x,y) -> E(y,x)" in
  check "datalog untouched" true (Streamline.of_rule r = [ r ])

let test_lemma25_syntactic () =
  (* ∇(S) is forward-existential and predicate-unique *)
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let nabla = Streamline.apply entry.rules in
      check (name ^ " fwd-existential") true
        (Properties.is_forward_existential nabla);
      check (name ^ " predicate-unique") true
        (Properties.is_predicate_unique nabla))
    [ "example1_bdd"; "tangle"; "backward"; "dense"; "fork" ]

let test_lemma24 () =
  (* Ch(J,S) ↔ Ch(J,∇(S)) restricted to the original signature *)
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let sign = Streamline.original_signature entry.rules in
      let direct = Chase.run ~max_depth:3 entry.instance entry.rules in
      let nabla =
        Chase.run ~max_depth:12 entry.instance (Streamline.apply entry.rules)
      in
      let nabla_restr = Instance.restrict sign nabla.instance in
      check (name ^ ": direct → ∇ chase") true
        (Hom.exists (Instance.atoms direct.instance) nabla_restr);
      let nabla_near =
        Chase.run ~max_depth:6 entry.instance (Streamline.apply entry.rules)
      in
      let direct_far = Chase.run ~max_depth:8 entry.instance entry.rules in
      check (name ^ ": ∇ chase → direct") true
        (Hom.exists
           (Instance.atoms (Instance.restrict sign nabla_near.instance))
           direct_far.instance))
    [ "example1_bdd"; "tangle"; "dense" ]

let test_streamline_loop_survives () =
  (* the bdd repair still loops after streamlining *)
  let entry = Nca_core.Rulesets.example1_bdd in
  let nabla = Streamline.apply entry.rules in
  let c = Chase.run ~max_depth:9 entry.instance nabla in
  check "loop in streamlined chase" true
    (Cq.holds c.instance (Cq.loop_query e2))

let test_streamline_fresh_w_avoids_clash () =
  let r = Parser.rule "E(w,y) -> E(y,z)" in
  match Streamline.of_rule r with
  | [ init; _; _ ] ->
      (* the fresh variable must differ from the rule's own w *)
      check "fresh w distinct" true
        (Term.Set.cardinal (Rule.exist_vars init) = 1
        && not (Term.Set.mem (Term.var "w") (Rule.exist_vars init)))
  | _ -> Alcotest.fail "expected three rules"

(* ------------------------------------------------------------------ *)
(* Body rewriting rew (Section 4.4) *)

let test_body_rewrite_adds_rules () =
  let rules =
    Parser.parse_rules
      {| sym: E(x,y) -> E(y,x).
         succ: E(x,y) -> E(y,z). |}
  in
  let result = Body_rewrite.apply rules in
  check "complete" true result.complete;
  check "added the flipped-body successor" true (result.added >= 1);
  check "contains the original rules" true
    (List.for_all
       (fun r -> List.exists (fun r' -> Rule.equal r r') result.rules)
       rules)

let test_lemma30 () =
  (* Ch(J,S) ↔ Ch(J,rew(S)) *)
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let rew = (Body_rewrite.apply entry.rules).rules in
      let direct = Chase.run ~max_depth:4 entry.instance entry.rules in
      let rewc = Chase.run ~max_depth:4 entry.instance rew in
      check (name ^ ": direct → rew") true
        (Hom.exists (Instance.atoms direct.instance) rewc.instance);
      let direct_far = Chase.run ~max_depth:6 entry.instance entry.rules in
      check (name ^ ": rew → direct") true
        (Hom.exists (Instance.atoms rewc.instance) direct_far.instance))
    [ "example1_bdd"; "symmetric"; "dense"; "inclusion" ]

let test_lemma31_preservation () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let nabla = Streamline.apply entry.rules in
  let rew = (Body_rewrite.apply nabla).rules in
  check "fwd-existential preserved" true
    (Properties.is_forward_existential rew);
  check "predicate-unique preserved" true (Properties.is_predicate_unique rew)

let test_lemma32_quickness () =
  (* rew(S) is quick; test empirically on samples *)
  let entry = Nca_core.Rulesets.example1_bdd in
  let rew = (Body_rewrite.apply entry.rules).rules in
  let samples = Nca_core.Rulesets.sample_instances (Rule.signature entry.rules) in
  check "no quickness counterexample" true
    (Properties.is_quick_on ~depth:4 rew samples)

let test_quickness_falsifier_works () =
  (* transitivity alone is visibly not quick: E(a,b),E(b,c),E(c,d) needs
     two steps to produce E(a,d) over adom(I) *)
  let rules = Parser.parse_rules "tc: E(x,y), E(y,z) -> E(x,z)." in
  let samples = [ Parser.instance "E(a,b), E(b,c), E(c,d)" ] in
  check "counterexample found" true
    (Option.is_some (Properties.quickness_counterexample ~depth:4 rules samples))

(* ------------------------------------------------------------------ *)
(* Property checkers *)

let test_forward_existential_checker () =
  check "succ is fwd-existential" true
    (Properties.is_forward_existential
       (Parser.parse_rules "r: E(x,y) -> E(y,z)."));
  check "backward is not" false
    (Properties.is_forward_existential
       (Parser.parse_rules "r: E(x,y) -> E(z,y)."));
  check "frontier-to-frontier head is not" false
    (Properties.is_forward_existential
       (Parser.parse_rules "r: E(x,y) -> E(x,y), F(y,z)."));
  check "datalog always ok" true
    (Properties.is_forward_existential
       (Parser.parse_rules "r: E(x,y) -> E(y,x)."));
  check "unary heads unconstrained" true
    (Properties.is_forward_existential
       (Parser.parse_rules "r: E(x,y) -> P(z), E(y,z)."))

let test_predicate_unique_checker () =
  check "tangle is not predicate-unique" false
    (Properties.is_predicate_unique Nca_core.Rulesets.tangle.rules);
  check "fork is" true
    (Properties.is_predicate_unique Nca_core.Rulesets.fork.rules);
  check "datalog repetition allowed" true
    (Properties.is_predicate_unique
       (Parser.parse_rules "r: E(x,y) -> E(y,x), E(x,x)."))

let test_describe () =
  let r = Properties.describe Nca_core.Rulesets.example1_bdd.rules in
  check "binary" true r.binary;
  check_int "datalog" 1 r.datalog_count;
  check_int "existential" 1 r.existential_count

(* ------------------------------------------------------------------ *)
(* The full pipeline *)

let test_pipeline_produces_regal () =
  List.iter
    (fun name ->
      let entry = Nca_core.Rulesets.find name in
      let p = Pipeline.regalize entry.instance entry.rules in
      check (name ^ " pipeline complete") true p.complete;
      let report = Pipeline.final_report p in
      check (name ^ " binary") true report.binary;
      check (name ^ " fwd-existential") true report.forward_existential;
      check (name ^ " predicate-unique") true report.predicate_unique)
    [ "example1_bdd"; "tangle"; "dense"; "ternary"; "symmetric" ]

let test_pipeline_step_count () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let p = Pipeline.regalize entry.instance entry.rules in
  check_int "four steps" 4 (List.length p.steps)

let test_pipeline_chase_preservation () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let p = Pipeline.regalize entry.instance entry.rules in
  let checks = Pipeline.verify_chase_preservation ~depth:3 entry.instance
      entry.rules p in
  List.iter
    (fun (label, ok) -> check ("chase preserved: " ^ label) true ok)
    checks

let test_pipeline_quickness () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let p = Pipeline.regalize entry.instance entry.rules in
  check "final set quick on samples" true
    (Properties.is_quick_on ~depth:3 p.final [ Instance.top ])

let test_pipeline_final_is_bdd () =
  let entry = Nca_core.Rulesets.example1_bdd in
  let p = Pipeline.regalize entry.instance entry.rules in
  let verdicts =
    Nca_rewriting.Bdd.for_signature ~max_rounds:8 p.final
      (Symbol.Set.singleton e2)
  in
  check "E-rewriting still finite" true (Nca_rewriting.Bdd.certified verdicts)

(* ------------------------------------------------------------------ *)
(* Properties *)

let linear_rules_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          Nca_core.Rulesets.random_forward_existential_rules ~seed ~rules:3)
        (int_range 0 5000))

let prop_streamline_syntactic =
  QCheck.Test.make ~name:"∇ always fwd-existential + predicate-unique"
    ~count:50 linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let nabla = Streamline.apply rules in
      Properties.is_forward_existential nabla
      && Properties.is_predicate_unique nabla)

let prop_streamline_chase_preserved =
  QCheck.Test.make ~name:"Lemma 24 on random linear sets" ~count:15
    linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), A(c0)" in
      (* "over S": the original signature includes the instance's *)
      let sign =
        Symbol.Set.union (Rule.signature rules) (Instance.signature i)
      in
      let direct = Chase.run ~max_depth:1 i rules in
      let nabla =
        Chase.run ~max_depth:5 ~max_atoms:100000 i (Streamline.apply rules)
      in
      Hom.exists
        (Instance.atoms direct.instance)
        (Instance.restrict sign nabla.instance))

let prop_encode_preserves =
  QCheck.Test.make ~name:"Corollary 15 on random linear sets" ~count:15
    linear_rules_arb (fun rules ->
      QCheck.assume (rules <> []);
      let i = Parser.instance "E(c0,c1), B(c1)" in
      let direct = Chase.run ~max_depth:2 i rules in
      let encoded =
        Chase.run ~max_depth:3 ~max_atoms:100000 Instance.top
          (Encode.encode i rules)
      in
      Hom.exists
        (Instance.atoms (Instance.generalize direct.instance))
        encoded.instance)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_streamline_syntactic; prop_streamline_chase_preserved;
      prop_encode_preserves ]

let tc name fn = Alcotest.test_case name `Quick fn

let () =
  Alcotest.run "surgery"
    [
      ( "encode",
        [
          tc "freeze shape" test_freeze_shape;
          tc "shared terms" test_freeze_identifies_shared_terms;
          tc "empty instance" test_freeze_empty_instance;
          tc "corollary 15" test_corollary15;
          tc "observation 16" test_observation16_encoding_preserves_bdd;
        ] );
      ( "reify",
        [
          tc "signature" test_reify_signature;
          tc "atom" test_reify_atom;
          tc "binary untouched" test_reify_binary_untouched;
          tc "rules binary" test_reify_rules_binary;
          tc "lemma 19" test_lemma19;
          tc "lemma 20" test_lemma20_reify_preserves_bdd;
          tc "query" test_reify_cq;
        ] );
      ( "streamline",
        [
          tc "triple" test_streamline_triple;
          tc "datalog kept" test_streamline_keeps_datalog;
          tc "lemma 25 syntactic" test_lemma25_syntactic;
          tc "lemma 24" test_lemma24;
          tc "loop survives" test_streamline_loop_survives;
          tc "fresh w" test_streamline_fresh_w_avoids_clash;
        ] );
      ( "body-rewrite",
        [
          tc "adds rules" test_body_rewrite_adds_rules;
          tc "lemma 30" test_lemma30;
          tc "lemma 31" test_lemma31_preservation;
          tc "lemma 32 quickness" test_lemma32_quickness;
          tc "quickness falsifier" test_quickness_falsifier_works;
        ] );
      ( "properties",
        [
          tc "forward-existential" test_forward_existential_checker;
          tc "predicate-unique" test_predicate_unique_checker;
          tc "describe" test_describe;
        ] );
      ( "pipeline",
        [
          tc "produces regal sets" test_pipeline_produces_regal;
          tc "step count" test_pipeline_step_count;
          tc "chase preservation" test_pipeline_chase_preservation;
          tc "quickness" test_pipeline_quickness;
          tc "final bdd" test_pipeline_final_is_bdd;
        ] );
      ("qcheck", props);
    ]
