(* nocliques — command-line front end to the No-Cliques-Allowed toolkit.

   Subcommands:
     chase       run the oblivious chase on a program file
     rewrite     UCQ-rewrite a query against the file's rules
     properties  syntactic + bdd report for a rule set
     lint        static analysis with typed NCA0xx diagnostics
     classify    chase-termination verdict (acyclicity hierarchy)
     surgery     run the Section-4 regalization pipeline
     analyze     full Section-5 valley/witness analysis
     tournament  Theorem-1 verdict (tournament vs loop)
     zoo         list or dump the built-in rule sets
*)

open Cmdliner
module Cterm = Cmdliner.Term
open Nca_logic
module Chase = Nca_chase.Chase
module Rewrite = Nca_rewriting.Rewrite
module Bdd = Nca_rewriting.Bdd
module Pipeline = Nca_surgery.Pipeline
module Properties = Nca_surgery.Properties
module Rulesets = Nca_core.Rulesets
module Theorem1 = Nca_core.Theorem1
module Witness = Nca_core.Witness
module Valley = Nca_core.Valley
module Lint = Nca_analysis.Lint
module Diagnostic = Nca_analysis.Diagnostic
module Json = Nca_analysis.Json
module Budget = Nca_obs.Budget
module Exhausted = Nca_obs.Exhausted
module Telemetry = Nca_obs.Telemetry
module Provenance = Nca_provenance.Provenance
module Proof = Nca_provenance.Proof
module Certificate = Nca_core.Certificate
module Proof_report = Nca_analysis.Proof_report
module Termination = Nca_analysis.Termination
module Pool = Nca_chase.Pool
module Events = Nca_obs.Events
module Metrics = Nca_obs.Metrics
module Trace_export = Nca_obs.Trace_export

(* The memory gauges of the v6 stats schema: [Nca_obs] sits below the
   term layer, so the process-wide occupancy probes are registered here
   rather than imported there. Sampled at span exits when metrics
   recording is on. *)
let () =
  Metrics.register_sampler "names.live_bytes" Names.live_bytes;
  Metrics.register_sampler "atoms.count" Atom.count;
  Metrics.register_sampler "atoms.shard_max_depth" (fun () ->
      List.fold_left (fun m (_, depth) -> max m depth) 0 (Atom.shard_stats ()))

(* Exit codes: 0 ok, 1 analysis/stage failure, 2 usage error (Cmdliner),
   3 budget exhausted before a verdict. *)
let exit_budget = 3

let read_file path =
  match open_in_bin path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
  | exception Sys_error reason ->
      Fmt.epr "%s@." reason;
      exit 2

let zoo_program path =
  Rulesets.zoo
  |> List.find_opt (fun e -> e.Rulesets.name = path)
  |> Option.map (fun (entry : Rulesets.entry) ->
         Parser.
           { facts = entry.instance; rules = entry.rules; queries = [] })

let load path =
  match zoo_program path with
  | Some program -> program
  | None -> (
      try Parser.parse_program (read_file path)
      with Parser.Error { position; message } ->
        Fmt.epr "%s: %s@." path (Parser.error_message position message);
        exit 1)

(* common args *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Program file (facts, rules, queries), or the name of a built-in \
           rule set (see $(b,zoo)).")

let depth_arg =
  Arg.(
    value & opt int 6
    & info [ "d"; "depth" ] ~docv:"N" ~doc:"Chase depth budget.")

let max_atoms_arg =
  Arg.(
    value & opt int 20000
    & info [ "max-atoms" ] ~docv:"N" ~doc:"Chase size budget (atoms).")

let rounds_arg =
  Arg.(
    value & opt int 10
    & info [ "rounds" ] ~docv:"N" ~doc:"Rewriting rounds budget.")

let edge_arg =
  Arg.(
    value & opt string "E"
    & info [ "e"; "edge" ] ~docv:"PRED"
        ~doc:"Binary predicate used for tournament and loop queries.")

(* observability & budget options, shared by every engine subcommand *)

type obs = {
  trace : bool;
  stats_json : bool;
  trace_json : string option;
  flame : string option;
  timeout : float option;
  provenance : bool;
  no_planner : bool;
  jobs : int;
}

let obs_term =
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print the telemetry tree (spans with call counts and timings, \
             counters) to stderr after the run.")
  in
  let stats_json_arg =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:
            "Print the telemetry snapshot as one line of JSON (schema \
             nocliques/stats/v6) to stdout after the run.")
  in
  let trace_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "Record a per-domain event timeline and write it as Chrome \
             trace-event JSON to $(docv) ($(b,-) for stdout) — loadable \
             in Perfetto or chrome://tracing, one track per domain. \
             Written even when the run stops on an exhausted budget.")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Record the event timeline and write folded stacks (self-time \
             per stack, flamegraph.pl / speedscope input) to $(docv) \
             ($(b,-) for stdout).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the engines. On expiry the run stops at \
             the next checkpoint, reports what was computed, and exits \
             with status 3.")
  in
  let provenance_arg =
    Arg.(
      value & flag
      & info [ "provenance" ]
          ~doc:
            "Record fact-level provenance during the run. Does not change \
             the command's output by itself, but populates the provenance \
             counters of --stats-json and the store behind the proof \
             artefacts (implied by --explain, --proof-json, --proof-dot).")
  in
  let no_planner_arg =
    Arg.(
      value & flag
      & info [ "no-planner" ]
          ~doc:
            "Run homomorphism search on the interpreted engine instead of \
             the compiled join plans (A/B debugging; same as setting \
             NOCLIQUES_NO_PLANNER). Output is identical either way.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~env:(Cmd.Env.info "NOCLIQUES_JOBS")
          ~doc:
            "Run the chase and Datalog engines on $(docv) domains (OCaml \
             multicore). Chase output is byte-identical at any $(docv); \
             Datalog closures are the same set. $(b,--jobs 1) (the \
             default) is the plain sequential engine.")
  in
  Cterm.(
    const (fun trace stats_json trace_json flame timeout provenance
               no_planner jobs ->
        if jobs < 1 then begin
          Fmt.epr "nocliques: --jobs must be >= 1 (got %d)@." jobs;
          Stdlib.exit 2
        end;
        {
          trace;
          stats_json;
          trace_json;
          flame;
          timeout;
          provenance;
          no_planner;
          jobs;
        })
    $ trace_arg $ stats_json_arg $ trace_json_arg $ flame_arg $ timeout_arg
    $ provenance_arg $ no_planner_arg $ jobs_arg)

let budget_of obs =
  match obs.timeout with
  | None -> Budget.unlimited
  | Some timeout_s -> Budget.v ~timeout_s ()

let write_out path content =
  match path with
  | "-" -> print_string content
  | path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content)

(* NOCLIQUES_SCRUB_TIMES=1 zeroes every timing-dependent field of the
   observability reports (span times, event timestamps, histogram values,
   memory gauges) so --trace / --trace-json / --stats-json output is
   byte-stable and golden-pinnable. *)
let scrub_times_requested () =
  match Sys.getenv_opt "NOCLIQUES_SCRUB_TIMES" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Run a subcommand body with telemetry enabled when requested; the trace
   goes to stderr (diagnostics channel), the JSON snapshot to stdout
   (machine channel), whatever status the body returns. The body receives
   the worker pool of a [--jobs N] run ([None] at jobs 1) and threads it
   to the engines it chooses to parallelize; the pool is shut down — and
   its accounting captured for the stats payload — before any report is
   printed, also on exceptions.

   Every report is emitted from the [Fun.protect] epilogue, so it runs on
   any path that leaves the body by returning or raising — in particular
   the budget-stop paths that return exit code 3: a timed-out chase still
   yields its partial timeline and stats. (Corollary for command bodies:
   return a status, never [Stdlib.exit], which skips finalizers.) *)
let with_obs obs f =
  let recording = obs.trace || obs.stats_json in
  let tracing = obs.trace_json <> None || obs.flame <> None in
  if obs.no_planner then Nca_plan.Exec.set_enabled false;
  if recording then Telemetry.enable ();
  (* --stats-json implies the v6 histograms/memory blocks; the timeline
     ring only runs when an export asked for it *)
  if recording || tracing then Metrics.enable ();
  if tracing then Events.enable ();
  if obs.provenance then Provenance.enable ();
  let pool = if obs.jobs > 1 then Some (Pool.create ~jobs:obs.jobs) else None in
  Fun.protect
    ~finally:(fun () ->
      let parallel = Option.map Pool.stats pool in
      Option.iter Pool.shutdown pool;
      let scrub = scrub_times_requested () in
      if tracing then begin
        let snap = Events.snapshot () in
        Events.disable ();
        let snap = if scrub then Events.scrub_times snap else snap in
        Option.iter
          (fun path ->
            write_out path (Trace_export.chrome_json snap ^ "\n"))
          obs.trace_json;
        Option.iter
          (fun path -> write_out path (Trace_export.folded snap))
          obs.flame
      end;
      let metrics =
        if recording || tracing then begin
          let m = Metrics.snapshot () in
          Metrics.disable ();
          Some (if scrub then Metrics.scrub m else m)
        end
        else None
      in
      (* snapshot while the provenance store is still live: the stats-json
         provenance object reads the ambient store *)
      if recording then begin
        let snap = Telemetry.snapshot () in
        Telemetry.disable ();
        let snap = if scrub then Telemetry.scrub_times snap else snap in
        if obs.trace then Fmt.epr "%a@." Telemetry.pp_snapshot snap;
        if obs.stats_json then
          Fmt.pr "%s@."
            (Json.to_string
               (Nca_analysis.Obs_report.of_snapshot ?metrics ?parallel snap))
      end;
      if obs.provenance then Provenance.disable ())
    (fun () -> f pool)

(* A wall-clock or cancellation stop is a failure to reach a verdict and
   gets the dedicated exit status; structural stops (depth/atoms/rounds…)
   are requested exploration bounds, already reported in-band. *)
let budget_status what = function
  | Some (e : Exhausted.t)
    when e.resource = Exhausted.Wall_clock || e.resource = Exhausted.Cancelled
    ->
      Fmt.epr "nocliques: %s stopped early: %a@." what Exhausted.pp e;
      exit_budget
  | Some _ | None -> 0

(* Surgery stages signal malformed intermediate rules with a typed
   exception; render it as a diagnostic, not a crash (the seed's toplevel
   handler was dead code: Cmdliner's [eval'] catches exceptions first and
   exited 125 with a backtrace). *)
let guarded f =
  try f ()
  with Pipeline.Stage_error { stage; reason } ->
    Fmt.epr "surgery stage %s failed: %s@." stage reason;
    1

(* proof artefacts (--proof-json / --proof-dot), shared by the
   proof-emitting subcommands *)

let proof_out_term =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof-json" ] ~docv:"FILE"
          ~doc:
            "Write the proof object (schema nocliques/proof/v1) as one \
             line of JSON to $(docv) ($(b,-) for stdout). Implies \
             --provenance.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof-dot" ] ~docv:"FILE"
          ~doc:
            "Write the derivation DAG as Graphviz DOT to $(docv) ($(b,-) \
             for stdout). Implies --provenance.")
  in
  Cterm.(const (fun j d -> (j, d)) $ json_arg $ dot_arg)

(* force recording whenever a proof artefact or fact-level explain was
   requested, so the store is populated by the time we read it back *)
let with_proofs obs (proof_json, proof_dot) ?(extra = false) f =
  let need = obs.provenance || proof_json <> None || proof_dot <> None in
  with_obs { obs with provenance = need || extra } f

(* The deepest derived fact of the ambient store: maximum round,
   ties broken structurally so the choice is byte-stable. *)
let deepest_fact () =
  Provenance.fold
    (fun a (e : Provenance.entry) best ->
      match best with
      | None -> Some (a, e.Provenance.round)
      | Some (b, r) ->
          if
            e.Provenance.round > r
            || (e.Provenance.round = r && Atom.compare_structural a b < 0)
          then Some (a, e.Provenance.round)
          else best)
    None

(* One DOT document for a whole certificate: the union of its support
   DAGs (each distinct fact once). *)
let certificate_dot (c : Certificate.t) =
  let seen = Hashtbl.create 64 in
  let label a = Fmt.str "%a" Atom.pp a in
  let nodes, edges =
    List.fold_left
      (fun acc p ->
        Proof.fold_distinct
          (fun (nodes, edges) (node : Proof.t) ->
            let id = label node.Proof.fact in
            if Hashtbl.mem seen id then (nodes, edges)
            else begin
              Hashtbl.add seen id ();
              let kind =
                match node.Proof.rule with
                | None -> `Input
                | Some _ -> `Derived
              in
              let edges =
                match node.Proof.rule with
                | None -> edges
                | Some r ->
                    List.fold_left
                      (fun edges (p : Proof.t) ->
                        let e =
                          (label p.Proof.fact, id, Some (Rule.name r))
                        in
                        if List.mem e edges then edges else e :: edges)
                      edges node.Proof.premises
              in
              ((id, id, kind) :: nodes, edges)
            end)
          acc p)
      ([], []) c.Certificate.support
  in
  Nca_graph.Dot.of_dag ~name:"certificate" ~nodes:(List.rev nodes)
    ~edges:(List.rev edges) ()

(* check, then write the requested artefacts; a rejected certificate is a
   hard failure — the verdict must not ship with an invalid proof *)
let emit_certificate (proof_json, proof_dot) c =
  if proof_json = None && proof_dot = None then 0
  else
    match Certificate.check c with
    | Error e ->
        Fmt.epr "nocliques: %a@." Certificate.pp_error e;
        1
    | Ok () ->
        Option.iter
          (fun path ->
            write_out path
              (Json.to_string (Proof_report.of_certificate c) ^ "\n"))
          proof_json;
        Option.iter (fun path -> write_out path (certificate_dot c)) proof_dot;
        0

let emit_proof (proof_json, proof_dot) p =
  Option.iter
    (fun path ->
      write_out path (Json.to_string (Proof_report.of_proof p) ^ "\n"))
    proof_json;
  Option.iter (fun path -> write_out path (Proof.to_dot p)) proof_dot;
  0

(* Hand-parsed FACT argument: the parser reserves the [_] prefix for
   generated names, but chase output prints nulls as [_:n<k>], and
   [explain]'s argument is exactly such printed output. Null numbering is
   deterministic per run, so re-running the chase reproduces the names. *)
let parse_fact src =
  let src = String.trim src in
  let term_of s =
    let s = String.trim s in
    if s = "" then Error "empty term"
    else if String.length s > 3 && String.sub s 0 3 = "_:n" then
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some k -> Ok (Term.null k)
      | None -> Error (Fmt.str "malformed null %S" s)
    else Ok (Term.cst s)
  in
  match String.index_opt src '(' with
  | None -> if src = "" then Error "empty fact" else Ok (Atom.app src [])
  | Some i ->
      if String.length src < i + 2 || src.[String.length src - 1] <> ')' then
        Error "expected a fact of the form P(t1,...,tn)"
      else
        let name = String.trim (String.sub src 0 i) in
        let inner = String.sub src (i + 1) (String.length src - i - 2) in
        let parts =
          if String.trim inner = "" then []
          else String.split_on_char ',' inner
        in
        List.fold_left
          (fun acc part ->
            Result.bind acc (fun ts ->
                Result.map (fun t -> t :: ts) (term_of part)))
          (Ok []) parts
        |> Result.map (fun ts -> Atom.app name (List.rev ts))

(* chase *)

let chase_cmd =
  let run file depth max_atoms print_instance explain explain_nulls proofs
      obs =
    let prog = load file in
    with_proofs obs proofs ~extra:explain @@ fun pool ->
    let c =
      Chase.run ~max_depth:depth ~max_atoms ~budget:(budget_of obs) ?pool
        prog.facts prog.rules
    in
    Fmt.pr "chase: %a@." Chase.pp_stats c;
    if print_instance then Fmt.pr "%a@." Instance.pp c.instance;
    (* fact-level explain: works on pure-Datalog runs too, where the old
       per-null trace had nothing to say *)
    if explain then begin
      match deepest_fact () with
      | None -> Fmt.pr "no derived facts to explain@."
      | Some (a, _) ->
          Fmt.pr "derivation of the deepest derived fact:@.%a@." Proof.pp
            (Proof.of_fact a)
    end;
    if explain_nulls then begin
      let invented = Term.Set.elements (Chase.invented c) in
      let ts t = Option.value ~default:0 (Chase.timestamp c t) in
      let deepest =
        List.sort (fun a b -> Int.compare (ts b) (ts a)) invented
      in
      match deepest with
      | [] -> Fmt.pr "no invented terms to explain@."
      | t :: _ ->
          Fmt.pr "derivation of the deepest invented term:@.%a@."
            Nca_chase.Derivation.pp
            (Nca_chase.Derivation.of_term c t)
    end;
    List.iter
      (fun q -> Fmt.pr "%a  ⊨ %b@." Cq.pp q (Cq.holds c.instance q))
      prog.queries;
    let proof_status =
      if proofs = (None, None) then 0
      else
        match deepest_fact () with
        | None ->
            Fmt.epr "nocliques: no derived facts — no proof to export@.";
            1
        | Some (a, _) -> emit_proof proofs (Proof.of_fact a)
    in
    let status = budget_status "chase" c.stopped in
    if status <> 0 then status else proof_status
  in
  let print_arg =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the chase instance.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the derivation of the deepest derived fact (rule, \
             round, parent facts, recursively). Implies --provenance.")
  in
  let explain_nulls_arg =
    Arg.(
      value & flag
      & info [ "explain-nulls" ]
          ~doc:
            "Print the derivation trace of the deepest invented term (the \
             per-null trace over triggers; empty on Datalog-only runs).")
  in
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the oblivious chase and answer the queries.")
    Cterm.(
      const run $ file_arg $ depth_arg $ max_atoms_arg $ print_arg
      $ explain_arg $ explain_nulls_arg $ proof_out_term $ obs_term)

(* explain *)

let explain_cmd =
  let run file fact_src depth max_atoms proofs obs =
    let prog = load file in
    match parse_fact fact_src with
    | Error reason ->
        Fmt.epr "cannot parse FACT %S: %s@." fact_src reason;
        exit 2
    | Ok fact ->
        with_proofs obs proofs ~extra:true @@ fun pool ->
        let c =
          Chase.run ~max_depth:depth ~max_atoms ~budget:(budget_of obs) ?pool
            prog.facts prog.rules
        in
        if not (Instance.mem fact c.Chase.instance) then begin
          Fmt.epr "fact %a is not in the chase (depth %d%s)@." Atom.pp fact
            c.Chase.depth
            (if c.Chase.saturated then ", saturated" else "");
          1
        end
        else begin
          let p = Proof.of_fact fact in
          Fmt.pr "%a@." Proof.pp p;
          Fmt.pr "depth=%d facts=%d rules={%s}@." (Proof.depth p)
            (Proof.size p)
            (String.concat "," (Proof.rules_used p));
          let proof_status = emit_proof proofs p in
          let status = budget_status "chase" c.Chase.stopped in
          if status <> 0 then status else proof_status
        end
  in
  let fact_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FACT"
          ~doc:
            "The fact to explain, as printed by the chase — e.g. \
             $(b,E(a,b)) or $(b,D(_:n3,_:n3)). Nulls are numbered \
             deterministically, so names from a previous run of the same \
             command are reproduced.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Chase the program with provenance recording and print the \
          derivation DAG of one fact: which rule produced it, at which \
          round, under which homomorphism, from which parent facts — \
          recursively down to the input.")
    Cterm.(
      const run $ file_arg $ fact_arg $ depth_arg $ max_atoms_arg
      $ proof_out_term $ obs_term)

(* rewrite *)

let rewrite_cmd =
  let run file rounds query obs =
    let prog = load file in
    let q =
      match (query, prog.queries) with
      | Some src, _ -> Parser.query src
      | None, q :: _ -> q
      | None, [] ->
          Fmt.epr "no query in %s and none given with --query@." file;
          exit 1
    in
    with_obs obs @@ fun _pool ->
    let out =
      Rewrite.rewrite ~max_rounds:rounds ~budget:(budget_of obs) prog.rules q
    in
    Fmt.pr "rewriting of %a@." Cq.pp q;
    Fmt.pr "complete=%b rounds=%d disjuncts=%d generated=%d@." out.complete
      out.rounds (Ucq.size out.ucq) out.generated;
    Fmt.pr "%a@." Ucq.pp out.ucq;
    budget_status "rewriting" out.stopped
  in
  let query_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY"
          ~doc:"Query to rewrite, e.g. \"?(x,y) E(x,y)\".")
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Compute a UCQ rewriting (backward chaining).")
    Cterm.(const run $ file_arg $ rounds_arg $ query_arg $ obs_term)

(* properties *)

let properties_cmd =
  let run file rounds obs =
    let prog = load file in
    with_obs obs @@ fun _pool ->
    Fmt.pr "%a@." Properties.pp_report (Properties.describe prog.rules);
    let verdicts =
      Bdd.for_signature ~max_rounds:rounds ~budget:(budget_of obs) prog.rules
        (Rule.signature prog.rules)
    in
    List.iter
      (fun (v : Bdd.verdict) ->
        Fmt.pr "%a: %s (|UCQ|=%d)@." Cq.pp v.query
          (match v.constant with
          | Some k -> Fmt.str "bdd, constant ≤ %d" k
          | None -> "no fixpoint within budget")
          (Ucq.size v.rewriting))
      verdicts;
    Fmt.pr "bdd certified (all atomic queries): %b@."
      (Bdd.certified verdicts);
    let first_stop =
      List.find_map (fun (v : Bdd.verdict) -> v.stopped) verdicts
    in
    budget_status "bdd certification" first_stop
  in
  Cmd.v
    (Cmd.info "properties"
       ~doc:"Report syntactic properties and bdd verdicts per atomic query.")
    Cterm.(const run $ file_arg $ rounds_arg $ obs_term)

(* lint *)

let lint_cmd =
  let run file json select max_warnings list_passes =
    if list_passes then begin
      List.iter
        (fun (p : Nca_analysis.Passes.t) ->
          Fmt.pr "%s  %-20s %s@." p.code p.slug p.doc)
        Nca_analysis.Passes.registry;
      0
    end
    else begin
      let file =
        match file with
        | Some f -> f
        | None ->
            Fmt.epr "required argument FILE is missing (or use --list)@.";
            exit 2
      in
      let select =
        Option.map (List.map String.uppercase_ascii) select
      in
      (match select with
      | Some codes ->
          List.iter
            (fun c ->
              if c <> "NCA001" && Nca_analysis.Passes.find c = None then begin
                Fmt.epr "unknown diagnostic code %s (try --list)@." c;
                exit 2
              end)
            codes
      | None -> ());
      let diagnostics =
        match zoo_program file with
        | Some program -> Lint.run ?select program
        | None -> Lint.lint_source ?select (read_file file)
      in
      if json then Fmt.pr "%a@." Json.pp (Lint.report_to_json diagnostics)
      else Fmt.pr "%a" Lint.pp_report diagnostics;
      Lint.exit_status ?max_warnings diagnostics
    end
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")
  in
  let select_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "select" ] ~docv:"CODES"
          ~doc:"Comma-separated diagnostic codes to run (e.g. \
                NCA007,NCA011). Default: all passes.")
  in
  let max_warnings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-warnings" ] ~docv:"N"
          ~doc:"Fail (exit 1) when more than $(docv) warnings are emitted.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the available passes and exit.")
  in
  let opt_file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Program file (facts, rules, queries), or the name of a \
             built-in rule set (see $(b,zoo)). Optional with $(b,--list).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes over the program and report typed \
          NCA0xx diagnostics. Exits non-zero on an error-severity \
          diagnostic, or on more than --max-warnings warnings.")
    Cterm.(
      const run $ opt_file_arg $ json_arg $ select_arg $ max_warnings_arg
      $ list_arg)

(* surgery *)

let surgery_cmd =
  let run file verify print_rules max_rounds obs =
    let prog = load file in
    with_obs obs @@ fun _pool ->
    guarded @@ fun () ->
    let p =
      Pipeline.regalize ?max_rounds ~budget:(budget_of obs) prog.facts
        prog.rules
    in
    List.iter
      (fun (s : Pipeline.step) ->
        Fmt.pr "step %-12s rules=%-3d %s@." s.label (List.length s.rules)
          s.note)
      p.steps;
    Fmt.pr "complete=%b final: %a@." p.complete Properties.pp_report
      (Pipeline.final_report p);
    (match Lint.of_pipeline p with
    | [] -> ()
    | ds ->
        Fmt.pr "stage invariants VIOLATED:@.";
        List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) ds);
    if print_rules then Fmt.pr "%a@." Rule.pp_set p.final;
    if verify then
      List.iter
        (fun (label, ok) -> Fmt.pr "chase preserved after %-12s %b@." label ok)
        (Pipeline.verify_chase_preservation ~depth:3 prog.facts prog.rules p);
    budget_status "surgery" p.stopped
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Check chase preservation (Cor. 15, Lemmas 19/24/30) on this \
                input.")
  in
  let print_arg =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the final rule set.")
  in
  let rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Budget for the body-rewriting fixpoint (default 12). An \
             exhausted budget is reported as a violated stage invariant.")
  in
  Cmd.v
    (Cmd.info "surgery"
       ~doc:"Run the Section-4 regalization pipeline on the rule set.")
    Cterm.(
      const run $ file_arg $ verify_arg $ print_arg $ rounds_arg $ obs_term)

(* analyze *)

let analyze_cmd =
  let run file depth edge proofs obs =
    let prog = load file in
    let e = Symbol.make edge 2 in
    with_proofs obs proofs @@ fun pool ->
    guarded @@ fun () ->
    let budget = budget_of obs in
    let p = Pipeline.regalize ~budget prog.facts prog.rules in
    Fmt.pr "regalized: %d rules, complete=%b@." (List.length p.final)
      p.complete;
    let t = Witness.analyze ~depth ~budget ?pool ~e p.final in
    Fmt.pr "Ch(R∃): %a@." Chase.pp_stats t.chase_ex;
    (match t.closure_stopped with
    | None -> ()
    | Some ex ->
        Fmt.pr "Datalog closure PARTIAL (%s) — edge counts are lower \
                bounds@."
          (Exhausted.tag ex));
    Fmt.pr "|Q_⊠| = %d (complete=%b)@." (Ucq.size t.rewriting)
      t.rewriting_complete;
    let edges = Witness.edges t in
    Fmt.pr "E-edges in Ch(Ch(R∃),R_DL): %d@." (List.length edges);
    List.iter
      (fun (s, tt) ->
        match Witness.valley_witness t s tt with
        | Some (q, _) ->
            Fmt.pr "E(%a,%a): valley witness (%a)@." Term.pp s Term.pp tt
              Valley.pp_shape (Valley.shape q)
        | None ->
            Fmt.pr "E(%a,%a): NO valley witness (budget?)@." Term.pp s
              Term.pp tt)
      edges;
    let g = Nca_graph.Digraph.of_instance e t.full in
    let tournament = Nca_graph.Tournament.max_tournament g in
    Fmt.pr "max tournament=%d loop=%b bound R(4,…,4)=%d@."
      (List.length tournament)
      (Cq.holds t.full (Cq.loop_query e))
      (Theorem1.tournament_size_bound
         ~rewriting_disjuncts:(Ucq.size t.rewriting));
    let proof_status =
      if proofs = (None, None) then 0
      else emit_certificate proofs (Certificate.of_analysis t tournament)
    in
    let first_stop =
      match p.stopped with
      | Some _ as s -> s
      | None -> (
          match t.chase_ex.Chase.stopped with
          | Some _ as s -> s
          | None -> t.closure_stopped)
    in
    let status = budget_status "analysis" first_stop in
    if status <> 0 then status else proof_status
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Full Section-5 analysis: witnesses, valleys, tournament bound.")
    Cterm.(const run $ file_arg $ depth_arg $ edge_arg $ proof_out_term
      $ obs_term)

(* tournament *)

let tournament_cmd =
  let run file depth max_atoms edge proofs obs =
    let prog = load file in
    let e = Symbol.make edge 2 in
    with_proofs obs proofs @@ fun pool ->
    let v, chase =
      Theorem1.validate_full ~max_depth:depth ~max_atoms
        ~budget:(budget_of obs) ?pool ~e prog.facts prog.rules
    in
    Fmt.pr "%a@." Theorem1.pp_verdict v;
    (if v.tournament <> [] then
       Fmt.pr "tournament: {%a}@."
         Fmt.(list ~sep:comma Term.pp)
         v.tournament);
    Fmt.pr "Theorem 1 shadow (threshold 4): %b@."
      (Theorem1.implication_holds ~threshold:4 v);
    let proof_status =
      if proofs = (None, None) then 0
      else
        emit_certificate proofs
          (Certificate.of_verdict ~input:prog.facts ~e ~rules:prog.rules v
             chase)
    in
    let status = budget_status "tournament analysis" v.stopped in
    if status <> 0 then status else proof_status
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:"Measure the largest E-tournament and loop entailment.")
    Cterm.(
      const run $ file_arg $ depth_arg $ max_atoms_arg $ edge_arg
      $ proof_out_term $ obs_term)

(* dot *)

let dot_cmd =
  let run file depth edge out =
    let prog = load file in
    let e = Symbol.make edge 2 in
    let c = Chase.run ~max_depth:depth prog.facts prog.rules in
    let g = Nca_graph.Digraph.of_instance e c.instance in
    let highlight =
      Term.Set.of_list (Nca_graph.Tournament.max_tournament g)
    in
    let doc = Nca_graph.Dot.of_graph ~name:file ~highlight g in
    (match out with
    | None -> print_string doc
    | Some path ->
        let oc = open_out path in
        output_string oc doc;
        close_out oc;
        Fmt.pr "wrote %s (max tournament highlighted)@." path);
    0
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT here.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export the chase E-graph as Graphviz DOT, largest tournament \
             highlighted.")
    Cterm.(const run $ file_arg $ depth_arg $ edge_arg $ out_arg)

(* classes *)

let classes_cmd =
  let run file =
    let prog = load file in
    Fmt.pr "%a@." Nca_surgery.Classes.pp
      (Nca_surgery.Classes.classify prog.rules);
    (match Nca_chase.Acyclicity.offending_cycle prog.rules with
    | None -> Fmt.pr "weakly acyclic: chase terminates on every instance@."
    | Some cycle ->
        Fmt.pr "position cycle through a special edge: %a@."
          Fmt.(list ~sep:(any " → ") Nca_chase.Acyclicity.pp_position)
          cycle);
    0
  in
  Cmd.v
    (Cmd.info "classes"
       ~doc:
         "Classify the rule set (linear / guarded / sticky / weakly \
          acyclic).")
    Cterm.(const run $ file_arg)

(* classify *)

let classify_cmd =
  let run file json depth max_atoms obs =
    let prog = load file in
    with_obs obs @@ fun pool ->
    let budget =
      Budget.intersect
        (Budget.v ~max_depth:depth ~max_atoms ())
        (budget_of obs)
    in
    let t = Termination.classify ~budget ?pool prog.rules in
    (* referee discipline: re-verify the certificate or witness
       independently before emitting anything — a rejected certificate
       is an analysis failure, not a verdict. Failure is a returned
       status, not [exit]: exiting here would skip the [with_obs]
       epilogue and lose the --stats-json/--trace-json payloads. *)
    match Termination.check prog.rules t.Termination.verdict with
    | Error reason ->
        Fmt.epr "nocliques: certificate rejected: %s@." reason;
        1
    | Ok () -> (
        if json then Fmt.pr "%s@." (Json.to_string (Termination.to_json t))
        else Fmt.pr "%a@." Termination.pp t;
        match t.Termination.verdict with
        | Termination.Terminating _ -> 0
        | Termination.Non_terminating _ -> 1
        | Termination.Unknown e ->
            Fmt.epr "nocliques: classification inconclusive: %a@."
              Exhausted.pp e;
            exit_budget)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the report as one line of JSON (schema \
             nocliques/classify/v1) instead of text.")
  in
  let depth_arg =
    Arg.(
      value & opt int 16
      & info [ "d"; "depth" ] ~docv:"N"
          ~doc:"Depth budget for the critical-instance chase (MFA).")
  in
  let max_atoms_arg =
    Arg.(
      value & opt int 10000
      & info [ "max-atoms" ] ~docv:"N"
          ~doc:"Atom budget for the critical-instance chase (MFA).")
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Run the chase-termination hierarchy (Datalog, weak / joint / \
          super-weak acyclicity, MFA over the critical instance) and \
          report the strongest verdict with a checkable certificate. \
          Exits 0 when termination is certified, 1 when the chase \
          provably diverges, 3 when the budget ran out first.")
    Cterm.(
      const run $ file_arg $ json_arg $ depth_arg $ max_atoms_arg $ obs_term)

(* finite *)

let witness_doc ~engine ~fresh ~forbid m =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "nocliques/fm-witness/v1");
         ( "engine",
           Json.String
             (match engine with
             | Nca_chase.Finite_model.Dfs -> "dfs"
             | Nca_chase.Finite_model.Sat -> "sat") );
         ("fresh", Json.Int fresh);
         ( "forbid",
           match forbid with
           | None -> Json.Null
           | Some q -> Json.String (Fmt.str "%a" Cq.pp q) );
         ("checked", Json.Bool true);
         ( "domain",
           Json.List
             (List.map
                (fun t -> Json.String (Term.name t))
                (Term.sorted_elements (Instance.adom m))) );
         ( "atoms",
           Json.List
             (List.map
                (fun a -> Json.String (Fmt.str "%a" Atom.pp a))
                (Instance.sorted_atoms m)) );
       ])

let finite_cmd =
  let run file fresh edge forbid_loop engine witness obs =
    let prog = load file in
    let e = Symbol.make edge 2 in
    let forbid = if forbid_loop then Some (Cq.loop_query e) else None in
    with_obs obs @@ fun _pool ->
    match
      Nca_chase.Finite_model.search ~engine ~fresh ?forbid
        ~budget:(budget_of obs) prog.facts prog.rules
    with
    | Model m -> (
        (* every emitted model goes through the independent checker
           first: a witness the replay rejects is an engine bug, not a
           result *)
        match
          Nca_chase.Fm_check.check ?forbid ~start:prog.facts
            ~rules:prog.rules m
        with
        | Error reason ->
            Fmt.epr
              "nocliques: model witness rejected by the independent \
               checker: %s@."
              reason;
            1
        | Ok () ->
            Fmt.pr "finite model (%d atoms): %a@." (Instance.cardinal m)
              Instance.pp m;
            Fmt.pr "Loop_%s holds in it: %b@." edge
              (Cq.holds m (Cq.loop_query e));
            Option.iter
              (fun path ->
                write_out path (witness_doc ~engine ~fresh ~forbid m ^ "\n"))
              witness;
            0)
    | No_model ->
        (* a completed search: a definitive negative, not an exhaustion *)
        Fmt.pr
          "no such finite model with %d extra elements — the bounded \
           search space holds none@."
          fresh;
        0
    | Exhausted ex ->
        (* no verdict ≠ no model: say so on stderr and in the exit code *)
        Fmt.pr "search budget exhausted — no verdict@.";
        Fmt.epr "nocliques: finite-model search stopped early: %a@."
          Exhausted.pp ex;
        exit_budget
  in
  let fresh_arg =
    Arg.(
      value & opt int 2
      & info [ "fresh" ] ~docv:"N" ~doc:"Extra domain elements.")
  in
  let forbid_arg =
    Arg.(
      value & flag
      & info [ "forbid-loop" ]
          ~doc:"Only accept models without an E-loop — refuting this shows \
                every finite model has one.")
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("dfs", Nca_chase.Finite_model.Dfs);
               ("sat", Nca_chase.Finite_model.Sat);
             ])
          Nca_chase.Finite_model.Dfs
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Search engine: $(b,dfs) (depth-first completion, the \
             differential oracle) or $(b,sat) (MACE-style grounding into \
             the built-in incremental SAT backend, with iterative \
             deepening over the fresh elements and symmetry breaking — \
             scales to much larger domains, and its negatives are \
             definitive UNSAT verdicts). Both observe the same budget; \
             every model from either engine is re-verified independently \
             before printing.")
  in
  let witness_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-json" ] ~docv:"FILE"
          ~doc:
            "Write the found model as a checkable witness (schema \
             nocliques/fm-witness/v1) to $(docv) ($(b,-) for stdout), \
             after the independent checker has re-verified it.")
  in
  Cmd.v
    (Cmd.info "finite"
       ~doc:"Search for a finite model (the finite side of fc).")
    Cterm.(
      const run $ file_arg $ fresh_arg $ edge_arg $ forbid_arg $ engine_arg
      $ witness_arg $ obs_term)

(* zoo *)

let zoo_cmd =
  let run name =
    (match name with
    | None ->
        List.iter
          (fun (e : Rulesets.entry) ->
            Fmt.pr "%-14s %s@." e.name e.description)
          Rulesets.zoo
    | Some n ->
        let e = Rulesets.find n in
        Fmt.pr "# %s — %s@." e.name e.description;
        List.iter
          (fun a -> Fmt.pr "%a.@." Atom.pp a)
          (Instance.sorted_atoms e.instance);
        List.iter (fun r -> Fmt.pr "%a.@." Rule.pp r) e.rules);
    0
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Entry to dump (omit to list).")
  in
  Cmd.v
    (Cmd.info "zoo" ~doc:"List or dump the built-in rule sets.")
    Cterm.(const run $ name_arg)

let intern_stats_cmd =
  let run file =
    let prog = load file in
    (* bytes the program would carry without interning: one string per
       name occurrence, vs one per distinct name in the table *)
    let seen = Hashtbl.create 64 in
    let name_bytes id =
      Hashtbl.replace seen id ();
      String.length (Names.name id)
    in
    let term_bytes t =
      match t with
      | Term.Var id | Term.Cst id -> name_bytes id
      | Term.Null _ -> 0
    in
    let atom_bytes a =
      name_bytes (Symbol.name_id (Atom.pred a))
      + List.fold_left (fun acc t -> acc + term_bytes t) 0 (Atom.args a)
    in
    let occurrence_bytes =
      Instance.fold (fun a acc -> acc + atom_bytes a) prog.Parser.facts 0
      + List.fold_left
          (fun acc r ->
            List.fold_left
              (fun acc a -> acc + atom_bytes a)
              acc
              (Rule.body r @ Rule.head r))
          0 prog.Parser.rules
      + List.fold_left
          (fun acc q ->
            List.fold_left
              (fun acc a -> acc + atom_bytes a)
              (List.fold_left
                 (fun acc t -> acc + term_bytes t)
                 acc (Cq.answer q))
              (Cq.body q))
          0 prog.Parser.queries
    in
    let names = Names.count () in
    let unique_bytes = Names.live_bytes () in
    Fmt.pr "intern tables after loading %s:@." file;
    Fmt.pr "  names    %6d interned, max id %d, %d bytes@." names (names - 1)
      unique_bytes;
    Fmt.pr "  symbols  %6d interned, max id %d@." (Symbol.count ())
      (Symbol.count () - 1);
    Fmt.pr "  atoms    %6d hash-consed, max id %d@." (Atom.count ())
      (Atom.count () - 1);
    let distinct_bytes =
      Hashtbl.fold
        (fun id () acc -> acc + String.length (Names.name id))
        seen 0
    in
    Fmt.pr
      "  program  %6d name-occurrence bytes over %d distinct names (%d \
       bytes) — %d saved by sharing@."
      occurrence_bytes (Hashtbl.length seen) distinct_bytes
      (occurrence_bytes - distinct_bytes);
    (* the domain-safe substrate, laid bare: the name store's append-only
       segment arenas and the atom hash-cons shards *)
    Fmt.pr "  name segments (capacity, entries, live bytes):@.";
    List.iteri
      (fun k (capacity, entries, bytes) ->
        if entries > 0 then
          Fmt.pr "    seg %2d  %8d cap  %8d live  %8d bytes@." k capacity
            entries bytes)
      (Names.segment_stats ());
    let shards = Atom.shard_stats () in
    let max_depth =
      List.fold_left (fun m (_, d) -> max m d) 0 shards
    in
    Fmt.pr "  atom shards %d, max collision depth %d:@." (List.length shards)
      max_depth;
    List.iteri
      (fun i (entries, depth) ->
        Fmt.pr "    shard %2d  %6d entries  depth %d@." i entries depth)
      shards;
    0
  in
  Cmd.v
    (Cmd.info "intern-stats"
       ~doc:
         "Load a program and report intern-table statistics (name, symbol \
          and atom counts, max ids, bytes saved by sharing; per-segment \
          arena and per-shard hash-cons breakdown).")
    Cterm.(const run $ file_arg)

let plan_cmd =
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"Emit the join graph of each body in DOT instead of text.")
  in
  let run file dot =
    let prog = load file in
    let stats = prog.Parser.facts in
    List.iter
      (fun r ->
        let plan = Nca_plan.Plan.compile ~stats (Rule.body r) in
        if dot then
          Fmt.pr "// rule %s@.%a" (Rule.name r) Nca_plan.Plan.pp_dot plan
        else Fmt.pr "rule %s:@.%a@." (Rule.name r) Nca_plan.Plan.pp plan)
      prog.Parser.rules;
    List.iteri
      (fun i q ->
        let plan = Nca_plan.Plan.compile ~stats (Cq.body q) in
        if dot then Fmt.pr "// query %d@.%a" i Nca_plan.Plan.pp_dot plan
        else Fmt.pr "query %d:@.%a@." i Nca_plan.Plan.pp plan)
      prog.Parser.queries;
    0
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Print the compiled join plan of every rule body (and query) of a \
          program: slot assignment and, per possible root atom, the static \
          step order with the per-position actions the executor will run.")
    Cterm.(const run $ file_arg $ dot_arg)

let termination_graph_cmd =
  let run file which out =
    let prog = load file in
    let rules = prog.Parser.rules in
    let module A = Nca_chase.Acyclicity in
    let doc =
      match which with
      | `Positions ->
          let dep = A.dependency_graph rules in
          let pos_id p = Fmt.str "%a" A.pp_position p in
          let nodes =
            List.concat_map (fun (e : A.edge) -> [ e.source; e.target ]) dep
            |> List.sort_uniq A.compare_positions
            |> List.map (fun p -> (pos_id p, pos_id p, `Derived))
          in
          let edges =
            List.map
              (fun (e : A.edge) ->
                ( pos_id e.source,
                  pos_id e.target,
                  if e.special then Some "special" else None ))
              dep
            |> List.sort_uniq compare
          in
          Nca_graph.Dot.of_dag ~name:"positions" ~nodes ~edges ()
      | `Variables ->
          let vid (k, z) = Fmt.str "%d.%a" k Term.pp z in
          let vlabel v = Fmt.str "%a" (Termination.pp_vertex rules) v in
          let nodes =
            List.concat
              (List.mapi
                 (fun k r ->
                   List.map
                     (fun z -> ((k, z), ()))
                     (Term.sorted_elements (Rule.exist_vars r)))
                 rules)
            |> List.map (fun (v, ()) -> (vid v, vlabel v, `Derived))
          in
          let edges =
            List.map
              (fun (s, t) -> (vid s, vid t, None))
              (Termination.ja_edges rules)
          in
          Nca_graph.Dot.of_dag ~name:"existential_variables" ~nodes ~edges ()
      | `Rules ->
          let rid k = string_of_int k in
          let rlabel k =
            Fmt.str "%s#%d" (Rule.name (List.nth rules k)) k
          in
          let nodes =
            List.mapi (fun k r -> (k, r)) rules
            |> List.filter (fun (_, r) -> not (Rule.is_datalog r))
            |> List.map (fun (k, _) -> (rid k, rlabel k, `Derived))
          in
          let edges =
            List.map
              (fun (s, t) -> (rid s, rid t, None))
              (Termination.swa_edges rules)
          in
          Nca_graph.Dot.of_dag ~name:"trigger_graph" ~nodes ~edges ()
    in
    (match out with
    | None -> print_string doc
    | Some path ->
        write_out path doc;
        Fmt.pr "wrote %s@." path);
    0
  in
  let which_arg =
    let graphs =
      [ ("positions", `Positions); ("variables", `Variables);
        ("rules", `Rules) ]
    in
    Arg.(
      value
      & opt (enum graphs) `Positions
      & info [ "g"; "graph" ] ~docv:"KIND"
          ~doc:
            "Which termination graph to emit: $(b,positions) (the weak-\
             acyclicity position dependency graph, special edges \
             labelled), $(b,variables) (the joint-acyclicity existential-\
             variable graph), or $(b,rules) (the super-weak-acyclicity \
             trigger graph).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT here.")
  in
  Cmd.v
    (Cmd.info "termination-graph"
       ~doc:
         "Export the graphs behind the termination classifier as \
          Graphviz DOT.")
    Cterm.(const run $ file_arg $ which_arg $ out_arg)

(* debug bench-diff: the first automated guard on the perf trajectory.
   Compares two BENCH_chase.json-shaped documents row by row (key =
   kind/name, metric = after_us, or jobs1_us for the par rows) and
   exits nonzero when any shared workload slowed past the threshold —
   unless the two host blocks differ, in which case a cross-machine
   comparison can only warn. *)
let bench_diff_cmd =
  let run old_path new_path threshold warn_only =
    let parse path =
      match Json.parse (read_file path) with
      | Ok doc -> doc
      | Error msg ->
          Fmt.epr "nocliques: %s: invalid JSON: %s@." path msg;
          Stdlib.exit 2
    in
    let old_doc = parse old_path and new_doc = parse new_path in
    let rows path doc =
      match Option.bind (Json.member "workloads" doc) Json.to_list with
      | Some rows -> rows
      | None ->
          Fmt.epr "nocliques: %s: not a bench document (no workloads)@." path;
          Stdlib.exit 2
    in
    let str k row = Option.bind (Json.member k row) Json.to_str in
    let key row =
      Fmt.str "%s/%s"
        (Option.value ~default:"?" (str "kind" row))
        (Option.value ~default:"?" (str "name" row))
    in
    let metric row =
      let int k = Option.bind (Json.member k row) Json.to_int in
      match int "after_us" with Some v -> Some v | None -> int "jobs1_us"
    in
    (* host comparability (bench_chase v2): absent or differing host
       metadata — or a smoke run against a full run — means the timings
       are not commensurable and the diff can only warn *)
    let host doc =
      match Json.member "host" doc with
      | Some h ->
          Some
            ( Option.bind (Json.member "cores" h) Json.to_int,
              Option.bind (Json.member "ocaml_version" h) Json.to_str )
      | None -> None
    in
    let smoke doc =
      match Json.member "smoke" doc with Some (Json.Bool b) -> b | _ -> false
    in
    let incomparable =
      if smoke old_doc <> smoke new_doc then
        Some "smoke run vs full run"
      else
        match (host old_doc, host new_doc) with
        | Some h1, Some h2 when h1 = h2 -> None
        | Some _, Some _ -> Some "host blocks differ"
        | None, _ | _, None -> Some "host metadata missing (bench < v2)"
    in
    let old_tbl = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace old_tbl (key r) r)
      (rows old_path old_doc);
    let regressions = ref 0 in
    List.iter
      (fun row ->
        let k = key row in
        match Hashtbl.find_opt old_tbl k with
        | None -> Fmt.pr "%-34s %28s (new row)@." k ""
        | Some old_row -> (
            Hashtbl.remove old_tbl k;
            match (metric old_row, metric row) with
            | Some o, Some n ->
                let delta = ((n - o) * 100) / max 1 o in
                let slower = delta > threshold in
                if slower then incr regressions;
                Fmt.pr "%-34s %10d us -> %10d us  %+4d%%%s@." k o n delta
                  (if slower then "  SLOWER" else "")
            | _ -> Fmt.pr "%-34s %28s (no timing)@." k ""))
      (rows new_path new_doc);
    Hashtbl.fold (fun k _ acc -> k :: acc) old_tbl []
    |> List.sort String.compare
    |> List.iter (fun k -> Fmt.pr "%-34s %28s (removed)@." k "");
    if !regressions = 0 then 0
    else begin
      Fmt.epr "nocliques: %d workload(s) slower than the %d%% threshold@."
        !regressions threshold;
      match incomparable with
      | Some reason when not warn_only ->
          Fmt.epr "nocliques: %s: warn only@." reason;
          0
      | _ -> if warn_only then 0 else 1
    end
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline bench document.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate bench document.")
  in
  let threshold_arg =
    Arg.(
      value & opt int 25
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Per-workload slowdown tolerance in percent; rows whose \
             timing grew by more than $(docv)% count as regressions.")
  in
  let warn_only_arg =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:
            "Report regressions but always exit 0 (for noisy CI \
             containers).")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_chase.json documents workload by workload \
          and fail past a slowdown threshold. Exits 1 only when the two \
          documents' host blocks match (a cross-host or smoke-vs-full \
          comparison can only warn) and --warn-only is absent.")
    Cterm.(const run $ old_arg $ new_arg $ threshold_arg $ warn_only_arg)

let debug_cmd =
  Cmd.group
    (Cmd.info "debug" ~doc:"Introspection helpers for the engine internals.")
    [ intern_stats_cmd; plan_cmd; termination_graph_cmd; bench_diff_cmd ]

let () =
  let doc = "the No-Cliques-Allowed toolkit for existential rules" in
  let info = Cmd.info "nocliques" ~version:"1.0.0" ~doc in
  (* No exception handlers here: the seed's [try Cmd.eval' … with] around
     this call was dead code — Cmdliner catches exceptions inside [eval']
     and exits 125 with a backtrace, so the handlers never fired. Budget
     exhaustion is a value now (exit 3 via [budget_status]); stage errors
     are guarded inside the subcommand bodies ([guarded]). *)
  exit
    (Cmd.eval'
       (Cmd.group info
          [ chase_cmd; explain_cmd; rewrite_cmd; properties_cmd; lint_cmd;
            classify_cmd; surgery_cmd; analyze_cmd; tournament_cmd;
            classes_cmd; finite_cmd; dot_cmd; zoo_cmd; debug_cmd ]))
